"""Pluggable dispatch policies for the cluster router.

A router is consulted once per released request, with a snapshot of every
*eligible* device's load (:class:`GpuLoadView`).  Policies are pure with
respect to the simulation — they draw no randomness and see only the views
they are handed — so routing decisions are bit-identical per seed and the
behavioral invariants (least-loaded never picks a strictly more-loaded
device, deadline-aware never strands a feasible request) are unit-testable
without a simulator.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import ClassVar, Sequence

_EPS = 1e-9


@dataclass(frozen=True)
class GpuLoadView:
    """One device's load as the router sees it at dispatch time.

    Attributes:
        index: device index within the cluster.
        outstanding_ms: predicted service time of everything queued or
            running on the device (the Clockwork-style isolated-latency
            ledger).
        queue_depth: requests queued or running on the device.
        alive: False while the device is degraded (crash recovery or a
            slowdown window); the dispatcher prefers alive devices and only
            falls back to degraded ones when no eligible device is healthy.
    """

    index: int
    outstanding_ms: float
    queue_depth: int
    alive: bool = True


class RouterPolicy(abc.ABC):
    """One dispatch policy; ``select`` returns the chosen device index."""

    name: ClassVar[str] = ""

    @abc.abstractmethod
    def select(
        self,
        now: float,
        deadline: float,
        predicted_ms: float,
        gpus: Sequence[GpuLoadView],
    ) -> int:
        """Pick a device index from the (non-empty) eligible views."""


class LeastLoadedRouter(RouterPolicy):
    """Dispatch to the device with the least outstanding predicted work.

    Invariant: the chosen device's ``outstanding_ms`` is <= every other
    eligible device's (ties break toward the lowest index).
    """

    name: ClassVar[str] = "least_loaded"

    def select(
        self,
        now: float,
        deadline: float,
        predicted_ms: float,
        gpus: Sequence[GpuLoadView],
    ) -> int:
        return min(gpus, key=lambda view: (view.outstanding_ms, view.index)).index


class RoundRobinRouter(RouterPolicy):
    """Rotate over the eligible devices, load-blind (consistent-hash style).

    The rotation counter is per-run state, so the dispatch sequence is a
    pure function of the release sequence — deterministic per seed.

    Rotation semantics under *filtered* views: the cursor counts dispatches,
    not device positions.  When the eligible list shrinks (a device dies or
    a partitioned/migrated placement narrows it) the policy keeps selecting
    position ``cursor mod len(eligible)`` of whatever list it is handed, so
    traffic stays uniform over the *current* eligible devices; it does not
    try to resume where a vanished device left off.  When the list grows
    back the rotation re-covers every device within one lap.  The dedicated
    unit test (``test_round_robin_rotation_under_filtered_views``) pins this
    distribution.
    """

    name: ClassVar[str] = "round_robin"

    def __init__(self) -> None:
        self._cursor = 0

    def select(
        self,
        now: float,
        deadline: float,
        predicted_ms: float,
        gpus: Sequence[GpuLoadView],
    ) -> int:
        choice = gpus[self._cursor % len(gpus)].index
        self._cursor += 1
        return choice

    def select_index(self, devices: Sequence[int]) -> int:
        """View-free rotation over raw device indexes (the indexed fast path).

        Shares ``_cursor`` with :meth:`select`, so a run that mixes indexed
        dispatches with view-built fallbacks (e.g. inside fault windows)
        rotates exactly like an all-reference run.
        """
        choice = devices[self._cursor % len(devices)]
        self._cursor += 1
        return choice


class DeadlineAwareRouter(RouterPolicy):
    """Bin-pack onto the most loaded device that still meets the deadline.

    A device is *feasible* when ``now + outstanding + predicted`` is within
    the request's deadline.  Among feasible devices the policy picks the
    most loaded one (preserving headroom on the others for tighter future
    requests); with no feasible device it degrades to least-loaded, which
    minimizes the lateness the per-device admission test then sees.
    """

    name: ClassVar[str] = "deadline_aware"

    def select(
        self,
        now: float,
        deadline: float,
        predicted_ms: float,
        gpus: Sequence[GpuLoadView],
    ) -> int:
        feasible = [
            view
            for view in gpus
            if now + view.outstanding_ms + predicted_ms <= deadline + _EPS
        ]
        if feasible:
            return max(feasible, key=lambda view: (view.outstanding_ms, -view.index)).index
        return min(gpus, key=lambda view: (view.outstanding_ms, view.index)).index


_ROUTER_TYPES = {
    LeastLoadedRouter.name: LeastLoadedRouter,
    RoundRobinRouter.name: RoundRobinRouter,
    DeadlineAwareRouter.name: DeadlineAwareRouter,
}


def make_router(name: str) -> RouterPolicy:
    """Fresh router instance for one run (policies may carry run state)."""
    try:
        router_cls = _ROUTER_TYPES[name]
    except KeyError:
        raise ValueError(
            f"unknown router {name!r}; choose from {', '.join(_ROUTER_TYPES)}"
        ) from None
    return router_cls()
