"""Model-to-device placement for the cluster backend.

A :class:`PlacementSpec` maps each distinct model of a task set to the
subset of devices allowed to serve it.  ``replicated`` placement serves
every model everywhere (the router balances freely); ``partitioned``
placement splits the devices into disjoint per-model subsets (device ``g``
serves model ``g % num_models``), the GSlice-style isolation answer at
cluster scale.  Migration (when enabled) *reassigns* a model at runtime, so
the spec is mutable run state built fresh per run from the fingerprinted
``ClusterConfig.placement`` policy.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.cluster.config import PLACEMENT_POLICIES


class PlacementSpec:
    """Runtime model -> eligible-device map of one cluster run."""

    def __init__(self, assignments: Dict[str, Tuple[int, ...]]):
        if not assignments:
            raise ValueError("a placement needs at least one model")
        for model_name, gpus in assignments.items():
            if not gpus:
                raise ValueError(f"model {model_name!r} is placed on no device")
        self._assignments = dict(assignments)

    @classmethod
    def build(
        cls, policy: str, model_names: Sequence[str], num_gpus: int
    ) -> "PlacementSpec":
        """Initial placement of ``model_names`` under a named policy."""
        if policy not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement {policy!r}; choose from {', '.join(PLACEMENT_POLICIES)}"
            )
        everyone = tuple(range(num_gpus))
        if policy == "replicated" or len(model_names) == 1 or num_gpus == 1:
            return cls({name: everyone for name in model_names})
        # Partitioned: device g serves model g % num_models, so every device
        # is used and the per-model subsets are disjoint.
        assignments: Dict[str, Tuple[int, ...]] = {}
        for position, name in enumerate(model_names):
            gpus = tuple(g for g in everyone if g % len(model_names) == position)
            # More models than devices: wrap the overflow models back onto
            # device position % num_gpus instead of leaving them unplaced.
            assignments[name] = gpus if gpus else (position % num_gpus,)
        return cls(assignments)

    def gpus_for(self, model_name: str) -> Tuple[int, ...]:
        """Devices currently eligible to serve ``model_name``."""
        return self._assignments[model_name]

    def reassign(self, model_name: str, gpus: Tuple[int, ...]) -> None:
        """Move a model to a new device subset (the migration primitive)."""
        if not gpus:
            raise ValueError("cannot reassign a model to no device")
        self._assignments[model_name] = tuple(gpus)

    def as_dict(self) -> Dict[str, Tuple[int, ...]]:
        """Snapshot of the current assignments (for telemetry/tests)."""
        return dict(self._assignments)
