"""O(1)-per-event dispatch index for the cluster routing fast path.

PR 9's router consumed a fresh tuple of :class:`~repro.cluster.router.GpuLoadView`
dataclasses on every released request and scanned it with a lambda-keyed
``min``/``max`` — O(num_gpus) allocation and comparison per release, which is
why the cluster got slower per job the bigger it grew.  The
:class:`DispatchLedger` replaces those snapshots with mutable per-device
arrays (``outstanding_ms``, ``queue_depth``) that the workers update in place
as requests enqueue, complete, time out or migrate, plus per-eligible-subset
index structures (:class:`DeviceGroup`) the routers read directly:

* ``least_loaded`` — a lazily-invalidated min-heap of ``(outstanding_ms,
  index)`` entries.  Every load delta pushes the device's new key; stale
  entries (whose value no longer matches the ledger) are discarded at peek
  time, so a dispatch is O(log G) amortized instead of an O(G) scan.  An
  entry that *matches* the ledger value is by construction the device's
  current key, so the surviving heap minimum is exactly the reference
  ``min(views, key=(outstanding_ms, index))``.
* ``deadline_aware`` — a bisect-maintained ascending ordering of the same
  ``(outstanding_ms, index)`` pairs.  Floating-point addition is monotone,
  so the reference feasibility predicate ``now + outstanding + predicted <=
  deadline + eps`` is true on a prefix of the ordering; a binary search that
  evaluates the *identical* float expression finds the boundary bit-exactly,
  and the pack target (max outstanding, min index among ties) is the end of
  that prefix walked left over equal loads.
* ``round_robin`` — needs no load structure; the router's cursor indexes the
  group's device tuple directly (see ``RoundRobinRouter.select_index``).

The migration trigger rides the same ledger: each group counts its member
devices with ``queue_depth < migration_backlog`` (``below_backlog``), updated
only when a depth delta crosses the threshold, so the sustained-backlog
window check collapses from a per-release min-scan to one integer compare.

Equivalence contract: every structure answers *exactly* what the PR 9
reference scan would have answered for the same ledger state — same floats,
same tie-breaks, same epsilon — which is what lets
``tests/test_perf_equivalence.py`` pin the indexed tier trace-identical to
the reference path across the router x placement x fault x migration matrix.
The alive-filter is handled by engagement, not emulation: the server only
consults the index while no device is degraded (tracked O(1) via the fault
injector's degraded-flip hook) and falls back to reference views inside
fault windows, where the filtered candidate list is no longer a pure
function of the ledger.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort
from typing import Dict, List, Optional, Tuple

from repro.cluster.router import _EPS


class DeviceGroup:
    """Routing index over one eligible-device tuple of the placement map.

    Groups are created lazily per distinct device tuple (replicated placement
    has one, partitioned placement one per model, migration adds singleton
    groups) and updated through the owning ledger whenever a member device's
    load or depth changes.
    """

    __slots__ = ("ledger", "devices", "heap", "pairs", "below_backlog")

    def __init__(self, ledger: "DispatchLedger", devices: Tuple[int, ...]):
        self.ledger = ledger
        self.devices = devices
        outstanding = ledger.outstanding_ms
        self.heap: Optional[List[Tuple[float, int]]] = None
        self.pairs: Optional[List[Tuple[float, int]]] = None
        if ledger.track_order:
            self.pairs = sorted((outstanding[g], g) for g in devices)
        elif ledger.track_load:
            self.heap = [(outstanding[g], g) for g in devices]
            heapq.heapify(self.heap)
        backlog = ledger.backlog
        if backlog:
            depth = ledger.queue_depth
            self.below_backlog = sum(1 for g in devices if depth[g] < backlog)
        else:
            self.below_backlog = len(devices)

    # -------------------------------------------------------------- selection

    def least_loaded(self) -> int:
        """The reference ``min(views, key=(outstanding_ms, index))`` answer."""
        heap = self.heap
        outstanding = self.ledger.outstanding_ms
        while True:
            value, gpu = heap[0]
            if value == outstanding[gpu]:
                return gpu
            heapq.heappop(heap)  # stale: the device moved since this push

    def deadline_aware(self, now: float, deadline: float, predicted_ms: float) -> int:
        """The reference pack-most-loaded-feasible / least-loaded-fallback.

        Evaluates the reference predicate ``now + outstanding + predicted <=
        deadline + eps`` verbatim at O(log G) probe points; monotonicity of
        float addition makes the feasible set a prefix of the ordering.
        """
        pairs = self.pairs
        limit = deadline + _EPS
        if not (now + pairs[0][0] + predicted_ms <= limit):
            return pairs[0][1]  # nothing feasible -> least loaded
        lo, hi = 0, len(pairs) - 1
        while lo < hi:  # invariant: pairs[lo] feasible; find the last one
            mid = (lo + hi + 1) >> 1
            if now + pairs[mid][0] + predicted_ms <= limit:
                lo = mid
            else:
                hi = mid - 1
        load = pairs[lo][0]
        # Ties on outstanding_ms break toward the lowest index: equal loads
        # are contiguous and index-sorted, so walk to the leftmost.
        while lo and pairs[lo - 1][0] == load:
            lo -= 1
        return pairs[lo][1]

    # ---------------------------------------------------------- invalidation

    def load_changed(self, old: float, new: float, gpu: int) -> None:
        if self.pairs is not None:
            pairs = self.pairs
            pairs.pop(bisect_left(pairs, (old, gpu)))
            insort(pairs, (new, gpu))
        elif self.heap is not None:
            heap = self.heap
            heapq.heappush(heap, (new, gpu))
            if len(heap) > 4 * len(self.devices) + 16:
                self._compact()

    def _compact(self) -> None:
        outstanding = self.ledger.outstanding_ms
        self.heap = [(outstanding[g], g) for g in self.devices]
        heapq.heapify(self.heap)

    def depth_changed(self, old: int, new: int) -> None:
        backlog = self.ledger.backlog
        if old < backlog <= new:
            self.below_backlog -= 1
        elif new < backlog <= old:
            self.below_backlog += 1


class DispatchLedger:
    """Mutable per-device load state shared by the workers and the router.

    One instance per :meth:`ClusterServer.serve` run.  Workers funnel every
    ``outstanding_ms`` / ``queue_depth`` delta through ``load_changed`` /
    ``depth_changed``; the server resolves a model's :class:`DeviceGroup`
    once per placement change and reads it per dispatch.
    """

    __slots__ = (
        "num_gpus",
        "track_load",
        "track_order",
        "backlog",
        "outstanding_ms",
        "queue_depth",
        "degraded_devices",
        "_groups",
        "_groups_by_device",
    )

    def __init__(self, num_gpus: int, router: str, backlog: int = 0):
        self.num_gpus = num_gpus
        self.track_order = router == "deadline_aware"
        self.track_load = self.track_order or router == "least_loaded"
        self.backlog = backlog
        self.outstanding_ms = [0.0] * num_gpus
        self.queue_depth = [0] * num_gpus
        #: Devices currently degraded (crash recovery / slowdown window);
        #: maintained by the fault injectors' degraded-flip hooks so the
        #: "is the alive-filter a no-op?" guard is one integer compare.
        self.degraded_devices = 0
        self._groups: Dict[Tuple[int, ...], DeviceGroup] = {}
        self._groups_by_device: List[List[DeviceGroup]] = [
            [] for _ in range(num_gpus)
        ]

    def group_for(self, devices: Tuple[int, ...]) -> DeviceGroup:
        """The (cached) index over one eligible-device tuple."""
        group = self._groups.get(devices)
        if group is None:
            group = DeviceGroup(self, devices)
            self._groups[devices] = group
            for gpu in devices:
                self._groups_by_device[gpu].append(group)
        return group

    def load_changed(self, gpu: int, new: float) -> None:
        """A device's outstanding predicted work moved; reindex it."""
        old = self.outstanding_ms[gpu]
        if new == old:
            return
        self.outstanding_ms[gpu] = new
        for group in self._groups_by_device[gpu]:
            group.load_changed(old, new, gpu)

    def depth_changed(self, gpu: int, old: int, new: int) -> None:
        """A device's queue depth moved; update the backlog counters."""
        self.queue_depth[gpu] = new
        for group in self._groups_by_device[gpu]:
            group.depth_changed(old, new)

    def degraded_changed(self, degraded: bool) -> None:
        """Fault-injector hook: a device entered/left a degraded episode."""
        self.degraded_devices += 1 if degraded else -1
