"""The cluster runtime: N per-GPU executors behind one router.

One :class:`~repro.sim.simulator.Simulator` hosts the whole cluster — each
device is a :class:`~repro.gpu.platform.GpuPlatform` (with its own engine)
on that shared event graph, and a :class:`_GpuWorker` drives it with the
Clockwork discipline: one DNN at a time, EDF order, admission by predicted
completion time.  Releases enter at the cluster level through the shared
:class:`~repro.sim.workload.ReleaseStream`, the router picks a device, and
the request becomes an event in that device's loop; completions re-arm the
device's executor.  There is no wall-clock interleaving anywhere — every
cross-device dependency is a simulator event — so runs are bit-identical
per seed under the established RNG-stream discipline.

RNG streams: arrivals and request-level fault draws come from the run's
root :class:`~repro.sim.rng.RngFactory` (the exact streams a single-GPU
Clockwork run consumes, which is what makes a 1-GPU cluster reproduce the
``clockwork`` backend's counters); device-level fault timelines of a
multi-GPU cluster come from per-device ``spawn``-derived factories, so each
device degrades independently without perturbing any other stream.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.config import ClusterConfig
from repro.cluster.placement import PlacementSpec
from repro.cluster.router import GpuLoadView, make_router
from repro.dnn.model import DnnModel
from repro.gpu.calibration import DEFAULT_CALIBRATION, GpuCalibration
from repro.gpu.platform import GpuPlatform, PlatformConfig
from repro.gpu.spec import GpuSpec, RTX_2080_TI
from repro.rt.metrics import FaultImpact, GpuTelemetry, PriorityMetrics, ScenarioMetrics
from repro.rt.task import Priority
from repro.rt.taskset import TaskSetSpec
from repro.sim.faults import (
    DEFAULT_POLICY,
    FaultInjector,
    FaultSpec,
    NO_FAULTS,
    ResiliencePolicy,
    deferred_launch,
)
from repro.sim.rng import RngFactory
from repro.sim.simulator import Simulator
from repro.sim.workload import PERIODIC_WORKLOAD, ReleaseStream, WorkloadSpec


@dataclass(order=True)
class _QueuedRequest:
    deadline: float
    seq: int
    release: float = field(compare=False)
    model: DnnModel = field(compare=False, default=None)
    priority: Priority = field(compare=False, default=Priority.LOW)
    task_name: str = field(compare=False, default="")
    predicted_ms: float = field(compare=False, default=0.0)


class _GpuWorker:
    """One device's executor: the Clockwork loop bound to a shared simulator.

    Keeps a ledger of outstanding predicted work (the router's load signal)
    and per-device telemetry; the headline counters go to the cluster-shared
    per-priority buckets so the merged metrics match what one big Clockwork
    run over the same event sequence would have produced.
    """

    def __init__(
        self,
        index: int,
        simulator: Simulator,
        platform: GpuPlatform,
        injector: FaultInjector,
        policy: ResiliencePolicy,
        timeout_ms: Optional[float],
        per_priority: Dict[Priority, PriorityMetrics],
        per_task_completed: Dict[str, int],
    ):
        self.index = index
        self.simulator = simulator
        self.platform = platform
        self.injector = injector
        self.policy = policy
        self.timeout_ms = timeout_ms
        self.per_priority = per_priority
        self.per_task_completed = per_task_completed
        self.queue: List[_QueuedRequest] = []
        self.running = False
        self.outstanding_ms = 0.0
        # Telemetry.
        self.routed = 0
        self.completed = 0
        self.missed = 0
        self.max_queue_depth = 0
        self.migrations = 0

    # ------------------------------------------------------------- load view

    @property
    def queue_depth(self) -> int:
        """Requests queued or running on this device."""
        return len(self.queue) + (1 if self.running else 0)

    @property
    def alive(self) -> bool:
        """False while degraded (crash recovery or slowdown window)."""
        return not self.injector.degraded

    def load_view(self) -> GpuLoadView:
        """Snapshot handed to the router at dispatch time."""
        return GpuLoadView(
            index=self.index,
            outstanding_ms=self.outstanding_ms,
            queue_depth=self.queue_depth,
            alive=self.alive,
        )

    # --------------------------------------------------------------- ingress

    def enqueue(self, request: _QueuedRequest) -> None:
        """Accept a routed request and start serving if idle."""
        heapq.heappush(self.queue, request)
        self.outstanding_ms += request.predicted_ms
        self.max_queue_depth = max(self.max_queue_depth, self.queue_depth)
        self.start_next()

    def take_queued(self, model_name: str) -> List[_QueuedRequest]:
        """Remove (and return) every queued request of one model.

        The migration primitive: the running request (if any) stays — only
        the waiting queue moves.
        """
        taken = [request for request in self.queue if request.model.name == model_name]
        if taken:
            self.queue = [
                request for request in self.queue if request.model.name != model_name
            ]
            heapq.heapify(self.queue)
            for request in taken:
                self.outstanding_ms -= request.predicted_ms
        return taken

    # -------------------------------------------------------------- executor

    def start_next(self) -> None:
        """Pop and serve EDF-first requests until busy (the Clockwork loop)."""
        simulator = self.simulator
        injector = self.injector
        policy = self.policy
        while self.queue and not self.running:
            request = heapq.heappop(self.queue)
            bucket = self.per_priority[request.priority]
            if (
                self.timeout_ms is not None
                and simulator.now - request.release > self.timeout_ms + 1e-9
            ):
                # The client gave up while the request sat queued; it
                # entered the system, so it counts admitted + timed out.
                bucket.admitted += 1
                bucket.timed_out += 1
                self.outstanding_ms -= request.predicted_ms
                continue
            latency = request.predicted_ms
            effective = latency
            if policy.shed_when_degraded and injector.degraded:
                factor = injector.slowdown_factor
                if 0.0 < factor < 1.0:
                    effective = latency / factor
            if simulator.now + effective > request.deadline + 1e-9:
                bucket.rejected += 1
                if simulator.now + latency <= request.deadline + 1e-9:
                    # Only the degradation-inflated prediction failed:
                    # this is a shed, not a plain rejection.
                    bucket.shed += 1
                self.outstanding_ms -= request.predicted_ms
                continue
            self.running = True
            bucket.admitted += 1
            state = {"stage": 0}

            def on_stage_done(_kernel, request=request, state=state) -> None:
                state["stage"] += 1
                if state["stage"] < request.model.num_stages:
                    submit_stage(request, state)
                    return
                self.running = False
                self.completed += 1
                bucket = self.per_priority[request.priority]
                bucket.completed += 1
                self.per_task_completed[request.task_name] = (
                    self.per_task_completed.get(request.task_name, 0) + 1
                )
                response = simulator.now - request.release
                bucket.response_times.append(response)
                late = simulator.now > request.deadline + 1e-9
                if late:
                    self.missed += 1
                    bucket.missed += 1
                self.outstanding_ms -= request.predicted_ms
                injector.note_completion(simulator.now, on_time=not late)
                self.start_next()

            def submit_stage(request=request, state=state) -> None:
                stage = request.model.stages[state["stage"]]
                self.platform.launch(
                    0,
                    0,
                    stage.to_kernel_spec(),
                    on_complete=lambda kernel: on_stage_done(kernel),
                )

            outcome = injector.launch_attempt()
            if outcome.retries:
                bucket.launch_retries += outcome.retries
            if not outcome.succeeded or outcome.delay_ms > 0.0:

                def on_launch_failed(request=request) -> None:
                    self.per_priority[request.priority].failed += 1
                    self.running = False
                    self.outstanding_ms -= request.predicted_ms
                    self.start_next()

                deferred_launch(
                    simulator,
                    outcome,
                    lambda request=request, state=state: submit_stage(request, state),
                    on_launch_failed,
                )
                return
            submit_stage(request, state)
            return

    def telemetry(self) -> GpuTelemetry:
        """Per-device breakdown after the run."""
        return GpuTelemetry(
            gpu=self.index,
            routed=self.routed,
            completed=self.completed,
            missed=self.missed,
            utilization=self.platform.average_utilization(),
            max_queue_depth=self.max_queue_depth,
            migrations=self.migrations,
        )


def _request_spec(faults: FaultSpec) -> FaultSpec:
    """The request-level (pre-routing) slice of a fault spec."""
    if faults.requests is None:
        return NO_FAULTS
    return FaultSpec(requests=faults.requests)


def _device_spec(faults: FaultSpec, gpu_index: int) -> FaultSpec:
    """The device-level slice of a fault spec as seen by one device.

    A targeted spec (``faults.gpu``) lands its slowdown/launch/crash
    components on that device only; untargeted device faults apply to every
    device (each drawing its own timeline).
    """
    if faults.gpu is not None and faults.gpu != gpu_index:
        return NO_FAULTS
    if faults.slowdown is None and faults.launch is None and faults.crash is None:
        return NO_FAULTS
    return FaultSpec(slowdown=faults.slowdown, launch=faults.launch, crash=faults.crash)


def _merged_impact(
    active: bool, injectors: List[FaultInjector]
) -> Optional[FaultImpact]:
    """Cluster-wide fault impact: episodes/downtime summed over devices."""
    if not active:
        return None
    episodes = 0
    downtime = 0.0
    recover_means: List[float] = []
    for injector in injectors:
        summary = injector.summary()
        if summary is None:
            continue
        episodes += int(summary["episodes"])
        downtime += float(summary["downtime_ms"])
        if summary["time_to_recover_ms"] is not None:
            recover_means.append(float(summary["time_to_recover_ms"]))
    recover = sum(recover_means) / len(recover_means) if recover_means else None
    return FaultImpact(
        episodes=episodes, downtime_ms=downtime, time_to_recover_ms=recover
    )


class ClusterServer:
    """N simulated GPUs behind a router, one event graph, one metrics merge."""

    def __init__(
        self,
        config: ClusterConfig,
        gpu: GpuSpec = RTX_2080_TI,
        calibration: GpuCalibration = DEFAULT_CALIBRATION,
    ):
        self.config = config
        self.gpu = gpu
        self.calibration = calibration

    def serve(
        self,
        taskset: TaskSetSpec,
        horizon_ms: float,
        workload: Optional[WorkloadSpec] = None,
        rng: Optional[RngFactory] = None,
        faults: Optional[FaultSpec] = None,
        resilience: Optional[ResiliencePolicy] = None,
        on_dispatch: Optional[
            Callable[[float, str, int, Tuple[GpuLoadView, ...]], None]
        ] = None,
    ) -> ScenarioMetrics:
        """Serve a task set across the cluster; returns the merged metrics.

        ``on_dispatch(now, model_name, chosen, views)`` (when given) observes
        every routing decision with the candidate views the router saw — the
        hook the router-invariant tests use.
        """
        if horizon_ms <= 0:
            raise ValueError("horizon must be positive")
        workload = workload if workload is not None else PERIODIC_WORKLOAD
        if workload.saturated:
            raise ValueError(
                "the cluster backend is deadline-driven; saturated workloads do not apply"
            )
        rng = rng if rng is not None else RngFactory(0)
        faults = faults if faults is not None else NO_FAULTS
        policy = resilience if resilience is not None else DEFAULT_POLICY
        config = self.config
        num_gpus = config.num_gpus

        simulator = Simulator()
        # Request-level faults (drops, client timeouts) happen before
        # routing, from the root factory's historical streams.
        cluster_injector = FaultInjector(_request_spec(faults), rng=rng, policy=policy)
        timeout_ms = cluster_injector.timeout_ms

        per_priority = {
            Priority.HIGH: PriorityMetrics(),
            Priority.LOW: PriorityMetrics(),
        }
        per_task_completed: Dict[str, int] = {}

        workers: List[_GpuWorker] = []
        device_injectors: List[FaultInjector] = []
        for index in range(num_gpus):
            platform = GpuPlatform(
                simulator,
                PlatformConfig(num_contexts=1, streams_per_context=1, oversubscription=1.0),
                spec=self.gpu,
                calibration=self.calibration,
            )
            # A 1-GPU cluster keeps the root factory so its fault streams
            # are exactly the single-device (clockwork) ones.
            device_rng = rng if num_gpus == 1 else rng.spawn(f"cluster-gpu[{index}]")
            injector = FaultInjector(
                _device_spec(faults, index), rng=device_rng, policy=policy
            )
            injector.install(simulator, platform, horizon_ms)
            workers.append(
                _GpuWorker(
                    index,
                    simulator,
                    platform,
                    injector,
                    policy,
                    timeout_ms,
                    per_priority,
                    per_task_completed,
                )
            )
            device_injectors.append(injector)

        model_names: List[str] = []
        for task in taskset.tasks:
            if task.model.name not in model_names:
                model_names.append(task.model.name)
        placement = PlacementSpec.build(config.placement, model_names, num_gpus)
        router = make_router(config.router)
        backlog_since: Dict[str, float] = {}
        seq = {"value": 0}

        def migrate(model_name: str, eligible: Tuple[int, ...], now: float) -> None:
            others = [g for g in range(num_gpus) if g not in eligible]
            if not others:
                backlog_since.pop(model_name, None)
                return
            target = min(others, key=lambda g: (workers[g].outstanding_ms, g))
            moved: List[_QueuedRequest] = []
            for g in eligible:
                moved.extend(workers[g].take_queued(model_name))
                workers[g].migrations += 1
            placement.reassign(model_name, (target,))
            backlog_since.pop(model_name, None)
            receiver = workers[target]
            for request in moved:
                heapq.heappush(receiver.queue, request)
                receiver.outstanding_ms += request.predicted_ms
            receiver.max_queue_depth = max(
                receiver.max_queue_depth, receiver.queue_depth
            )
            receiver.start_next()

        def maybe_migrate(model_name: str, now: float) -> None:
            if config.migration_backlog <= 0 or num_gpus < 2:
                return
            eligible = placement.gpus_for(model_name)
            best_depth = min(workers[g].queue_depth for g in eligible)
            if best_depth < config.migration_backlog:
                backlog_since.pop(model_name, None)
                return
            since = backlog_since.get(model_name)
            if since is None:
                backlog_since[model_name] = now
            elif now - since >= config.migration_window_ms:
                migrate(model_name, eligible, now)

        def on_release(task, release_time: float) -> None:
            bucket = per_priority[task.priority]
            bucket.released += 1
            if cluster_injector.drop_request():
                bucket.dropped += 1
                return
            model_name = task.model.name
            maybe_migrate(model_name, release_time)
            eligible = placement.gpus_for(model_name)
            views = tuple(workers[g].load_view() for g in eligible)
            candidates = tuple(view for view in views if view.alive) or views
            predicted = task.model.isolated_latency_ms(self.calibration)
            deadline = release_time + task.relative_deadline_ms
            choice = router.select(release_time, deadline, predicted, candidates)
            if on_dispatch is not None:
                on_dispatch(release_time, model_name, choice, candidates)
            seq["value"] += 1
            worker = workers[choice]
            worker.routed += 1
            worker.enqueue(
                _QueuedRequest(
                    deadline=deadline,
                    seq=seq["value"],
                    release=release_time,
                    model=task.model,
                    priority=task.priority,
                    task_name=task.name,
                    predicted_ms=predicted,
                )
            )

        ReleaseStream(workload, rng).drive_taskset(
            simulator,
            horizon_ms,
            taskset.tasks,
            lambda task, event: on_release(task, event.time),
        )
        simulator.run_until(horizon_ms)

        breakdown = tuple(worker.telemetry() for worker in workers)
        utilization = sum(gpu.utilization for gpu in breakdown) / len(breakdown)
        return ScenarioMetrics.from_priority_metrics(
            horizon_ms,
            high=per_priority[Priority.HIGH],
            low=per_priority[Priority.LOW],
            per_task_completed=per_task_completed,
            gpu_utilization=utilization,
            fault_impact=_merged_impact(faults.active, device_injectors),
            gpu_breakdown=breakdown,
        )
