"""The cluster runtime: N per-GPU executors behind one router.

One :class:`~repro.sim.simulator.Simulator` hosts the whole cluster — each
device is a :class:`~repro.gpu.platform.GpuPlatform` (with its own engine)
on that shared event graph, and a :class:`_GpuWorker` drives it with the
Clockwork discipline: one DNN at a time, EDF order, admission by predicted
completion time.  Releases enter at the cluster level through the shared
:class:`~repro.sim.workload.ReleaseStream`, the router picks a device, and
the request becomes an event in that device's loop; completions re-arm the
device's executor.  There is no wall-clock interleaving anywhere — every
cross-device dependency is a simulator event — so runs are bit-identical
per seed under the established RNG-stream discipline.

Per-event cost: dispatch is O(1) in the cluster size.  The default
*indexed* tier (``ClusterServer.indexed_dispatch_enabled``) resolves each
release through the run's :class:`~repro.cluster.ledger.DispatchLedger` —
per-task constants (predicted latency, deadline, kernel specs, metric
bucket) are memoized once per run in a :class:`_TaskProfile`, routing reads
the ledger's incremental min-heap / bisect ordering / cursor instead of
materializing ``GpuLoadView`` tuples, and the sustained-backlog migration
trigger is a per-group counter compare instead of a device scan.  The
PR 9 reference path (fresh view tuples + lambda-keyed router scans) stays
alive behind the toggle and whenever an ``on_dispatch`` observer needs the
views; ``tests/test_perf_equivalence.py`` pins both paths bit-identical
across the router x placement x fault x migration matrix.

RNG streams: arrivals and request-level fault draws come from the run's
root :class:`~repro.sim.rng.RngFactory` (the exact streams a single-GPU
Clockwork run consumes, which is what makes a 1-GPU cluster reproduce the
``clockwork`` backend's counters); device-level fault timelines of a
multi-GPU cluster come from per-device ``spawn``-derived factories, so each
device degrades independently without perturbing any other stream.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from itertools import count
from typing import Callable, ClassVar, Dict, List, Optional, Tuple

from repro.cluster.config import ClusterConfig
from repro.cluster.ledger import DispatchLedger
from repro.cluster.placement import PlacementSpec
from repro.cluster.router import GpuLoadView, RoundRobinRouter, make_router
from repro.gpu.calibration import DEFAULT_CALIBRATION, GpuCalibration
from repro.gpu.platform import GpuPlatform, PlatformConfig
from repro.gpu.spec import GpuSpec, RTX_2080_TI
from repro.rt.metrics import FaultImpact, GpuTelemetry, PriorityMetrics, ScenarioMetrics
from repro.rt.task import Priority
from repro.rt.taskset import TaskSetSpec
from repro.sim.faults import (
    DEFAULT_POLICY,
    FaultInjector,
    FaultSpec,
    NO_FAULTS,
    ResiliencePolicy,
    deferred_launch,
)
from repro.sim.rng import RngFactory
from repro.sim.simulator import Simulator
from repro.sim.workload import PERIODIC_WORKLOAD, ReleaseStream, WorkloadSpec


class _TaskProfile:
    """Dispatch constants of one task, resolved once per run.

    PR 9 recomputed ``isolated_latency_ms`` (a sum over stages), the
    relative deadline and the per-priority bucket lookup on *every* release;
    all of them are pure functions of the immutable task/model/calibration,
    so the memoized values are bit-identical to recomputation.
    """

    __slots__ = (
        "model_name",
        "task_name",
        "bucket",
        "predicted_ms",
        "relative_deadline_ms",
        "kernels",
        "num_stages",
    )

    def __init__(self, task, bucket: PriorityMetrics, predicted_ms: float, kernels):
        self.model_name = task.model.name
        self.task_name = task.name
        self.bucket = bucket
        self.predicted_ms = predicted_ms
        self.relative_deadline_ms = task.relative_deadline_ms
        self.kernels = kernels
        self.num_stages = len(kernels)


@dataclass(order=True, slots=True)
class _QueuedRequest:
    deadline: float
    seq: int
    release: float = field(compare=False)
    profile: _TaskProfile = field(compare=False, default=None)


class _GpuWorker:
    """One device's executor: the Clockwork loop bound to a shared simulator.

    Keeps a ledger of outstanding predicted work (the router's load signal)
    and per-device telemetry; the headline counters go to the cluster-shared
    per-priority buckets so the merged metrics match what one big Clockwork
    run over the same event sequence would have produced.  One request runs
    at a time, so the in-flight state lives in two slots
    (``_active``/``_stage``) instead of per-request closures, and every load
    / queue-depth delta is mirrored into the run's
    :class:`~repro.cluster.ledger.DispatchLedger` when one is bound.
    """

    __slots__ = (
        "index",
        "simulator",
        "platform",
        "_engine",
        "_stream",
        "injector",
        "policy",
        "timeout_ms",
        "per_task_completed",
        "queue",
        "outstanding_ms",
        "depth",
        "ledger",
        "_track_load",
        "_track_depth",
        "_active",
        "_stage",
        "routed",
        "completed",
        "missed",
        "max_queue_depth",
        "migrations",
    )

    def __init__(
        self,
        index: int,
        simulator: Simulator,
        platform: GpuPlatform,
        injector: FaultInjector,
        policy: ResiliencePolicy,
        timeout_ms: Optional[float],
        per_task_completed: Dict[str, int],
    ):
        self.index = index
        self.simulator = simulator
        self.platform = platform
        # The worker owns its device outright and serializes requests itself
        # (one in flight, always slot (0, 0)), so stages launch straight on
        # the engine; the platform's idle-stream bookkeeping — maintained for
        # backends that hunt for free slots — is dead weight here and its
        # drain callback is unhooked.  Pure plumbing removal: event times and
        # kernel arithmetic are untouched.
        self._engine = platform.engine
        self._stream = platform.stream(0, 0)
        self._engine.stream_idle_callback = None
        self.injector = injector
        self.policy = policy
        self.timeout_ms = timeout_ms
        self.per_task_completed = per_task_completed
        self.queue: List[_QueuedRequest] = []
        self.outstanding_ms = 0.0
        self.depth = 0  # requests queued or running (incremental)
        self.ledger: Optional[DispatchLedger] = None
        self._track_load = False
        self._track_depth = False
        self._active: Optional[_QueuedRequest] = None
        self._stage = 0
        # Telemetry.
        self.routed = 0
        self.completed = 0
        self.missed = 0
        self.max_queue_depth = 0
        self.migrations = 0

    def bind_ledger(self, ledger: DispatchLedger) -> None:
        """Mirror this device's load/depth deltas into the dispatch ledger."""
        self.ledger = ledger
        self._track_load = ledger.track_load
        self._track_depth = ledger.backlog > 0

    # ------------------------------------------------------------- load view

    @property
    def running(self) -> bool:
        """True while a request occupies the device."""
        return self._active is not None

    @property
    def queue_depth(self) -> int:
        """Requests queued or running on this device."""
        return self.depth

    @property
    def alive(self) -> bool:
        """False while degraded (crash recovery or slowdown window)."""
        return not self.injector.degraded

    def load_view(self) -> GpuLoadView:
        """Snapshot handed to the router at dispatch time (reference path)."""
        return GpuLoadView(
            index=self.index,
            outstanding_ms=self.outstanding_ms,
            queue_depth=self.depth,
            alive=not self.injector.degraded,
        )

    # ------------------------------------------------------------ bookkeeping

    def _add_load(self, delta: float) -> None:
        self.outstanding_ms += delta
        if self._track_load:
            self.ledger.load_changed(self.index, self.outstanding_ms)

    def _depth_delta(self, delta: int) -> None:
        old = self.depth
        new = old + delta
        self.depth = new
        if delta > 0 and new > self.max_queue_depth:
            self.max_queue_depth = new
        if self._track_depth:
            self.ledger.depth_changed(self.index, old, new)

    # --------------------------------------------------------------- ingress

    def enqueue(self, request: _QueuedRequest) -> None:
        """Accept a routed request and start serving if idle."""
        heapq.heappush(self.queue, request)
        self._add_load(request.profile.predicted_ms)
        self._depth_delta(1)
        self.start_next()

    def take_queued(self, model_name: str) -> List[_QueuedRequest]:
        """Remove (and return) every queued request of one model.

        The migration primitive: the running request (if any) stays — only
        the waiting queue moves.
        """
        queue = self.queue
        taken = [r for r in queue if r.profile.model_name == model_name]
        if taken:
            self.queue = [r for r in queue if r.profile.model_name != model_name]
            heapq.heapify(self.queue)
            for request in taken:
                self.outstanding_ms -= request.profile.predicted_ms
            if self._track_load:
                self.ledger.load_changed(self.index, self.outstanding_ms)
            self._depth_delta(-len(taken))
        return taken

    def receive_migrated(self, moved: List[_QueuedRequest]) -> None:
        """Absorb a migrated queue and start serving it."""
        queue = self.queue
        for request in moved:
            heapq.heappush(queue, request)
            self.outstanding_ms += request.profile.predicted_ms
        if moved:
            if self._track_load:
                self.ledger.load_changed(self.index, self.outstanding_ms)
            self._depth_delta(len(moved))
        self.start_next()

    # -------------------------------------------------------------- executor

    def start_next(self) -> None:
        """Pop and serve EDF-first requests until busy (the Clockwork loop)."""
        simulator = self.simulator
        injector = self.injector
        policy = self.policy
        timeout_ms = self.timeout_ms
        queue = self.queue
        while queue and self._active is None:
            request = heapq.heappop(queue)
            profile = request.profile
            bucket = profile.bucket
            if (
                timeout_ms is not None
                and simulator.now - request.release > timeout_ms + 1e-9
            ):
                # The client gave up while the request sat queued; it
                # entered the system, so it counts admitted + timed out.
                bucket.admitted += 1
                bucket.timed_out += 1
                self._add_load(-profile.predicted_ms)
                self._depth_delta(-1)
                continue
            latency = profile.predicted_ms
            effective = latency
            if policy.shed_when_degraded and injector.degraded:
                factor = injector.slowdown_factor
                if 0.0 < factor < 1.0:
                    effective = latency / factor
            if simulator.now + effective > request.deadline + 1e-9:
                bucket.rejected += 1
                if simulator.now + latency <= request.deadline + 1e-9:
                    # Only the degradation-inflated prediction failed:
                    # this is a shed, not a plain rejection.
                    bucket.shed += 1
                self._add_load(-profile.predicted_ms)
                self._depth_delta(-1)
                continue
            self._active = request
            self._stage = 0
            bucket.admitted += 1
            outcome = injector.launch_attempt()
            if outcome.retries:
                bucket.launch_retries += outcome.retries
            if not outcome.succeeded or outcome.delay_ms > 0.0:
                deferred_launch(
                    simulator, outcome, self._submit_stage, self._launch_failed
                )
                return
            self._submit_stage()
            return

    def _submit_stage(self) -> None:
        self._engine.launch(
            self._stream,
            self._active.profile.kernels[self._stage],
            on_complete=self._on_stage_done,
        )

    def _launch_failed(self) -> None:
        request = self._active
        request.profile.bucket.failed += 1
        self._active = None
        self._add_load(-request.profile.predicted_ms)
        self._depth_delta(-1)
        self.start_next()

    def _on_stage_done(self, _kernel) -> None:
        self._stage += 1
        request = self._active
        profile = request.profile
        if self._stage < profile.num_stages:
            self._submit_stage()
            return
        self._active = None
        self.completed += 1
        bucket = profile.bucket
        bucket.completed += 1
        per_task = self.per_task_completed
        per_task[profile.task_name] = per_task.get(profile.task_name, 0) + 1
        simulator = self.simulator
        now = simulator.now
        bucket.response_times.append(now - request.release)
        late = now > request.deadline + 1e-9
        if late:
            self.missed += 1
            bucket.missed += 1
        self._add_load(-profile.predicted_ms)
        self._depth_delta(-1)
        self.injector.note_completion(now, on_time=not late)
        self.start_next()

    def telemetry(self) -> GpuTelemetry:
        """Per-device breakdown, rolled up once at run end."""
        return GpuTelemetry(
            gpu=self.index,
            routed=self.routed,
            completed=self.completed,
            missed=self.missed,
            utilization=self.platform.average_utilization(),
            max_queue_depth=self.max_queue_depth,
            migrations=self.migrations,
        )


def _request_spec(faults: FaultSpec) -> FaultSpec:
    """The request-level (pre-routing) slice of a fault spec."""
    if faults.requests is None:
        return NO_FAULTS
    return FaultSpec(requests=faults.requests)


def _device_spec(faults: FaultSpec, gpu_index: int) -> FaultSpec:
    """The device-level slice of a fault spec as seen by one device.

    A targeted spec (``faults.gpu``) lands its slowdown/launch/crash
    components on that device only; untargeted device faults apply to every
    device (each drawing its own timeline).
    """
    if faults.gpu is not None and faults.gpu != gpu_index:
        return NO_FAULTS
    if faults.slowdown is None and faults.launch is None and faults.crash is None:
        return NO_FAULTS
    return FaultSpec(slowdown=faults.slowdown, launch=faults.launch, crash=faults.crash)


def _merged_impact(
    active: bool, injectors: List[FaultInjector]
) -> Optional[FaultImpact]:
    """Cluster-wide fault impact: episodes/downtime summed over devices."""
    if not active:
        return None
    episodes = 0
    downtime = 0.0
    recover_means: List[float] = []
    for injector in injectors:
        summary = injector.summary()
        if summary is None:
            continue
        episodes += int(summary["episodes"])
        downtime += float(summary["downtime_ms"])
        if summary["time_to_recover_ms"] is not None:
            recover_means.append(float(summary["time_to_recover_ms"]))
    recover = sum(recover_means) / len(recover_means) if recover_means else None
    return FaultImpact(
        episodes=episodes, downtime_ms=downtime, time_to_recover_ms=recover
    )


class ClusterServer:
    """N simulated GPUs behind a router, one event graph, one metrics merge."""

    #: Class toggle for the O(1) indexed-dispatch tier (PR 7 discipline).
    #: Off = the PR 9 reference path: fresh ``GpuLoadView`` tuples per
    #: release, lambda-keyed router scans and the per-release migration
    #: backlog scan.  Pinned trace-identical by ``tests/test_perf_equivalence``.
    indexed_dispatch_enabled: ClassVar[bool] = True

    def __init__(
        self,
        config: ClusterConfig,
        gpu: GpuSpec = RTX_2080_TI,
        calibration: GpuCalibration = DEFAULT_CALIBRATION,
    ):
        self.config = config
        self.gpu = gpu
        self.calibration = calibration
        #: Dispatches resolved through the indexed tier in the last
        #: ``serve`` run (the ``vector_engagements``-style engagement probe).
        self.indexed_engagements = 0

    def serve(
        self,
        taskset: TaskSetSpec,
        horizon_ms: float,
        workload: Optional[WorkloadSpec] = None,
        rng: Optional[RngFactory] = None,
        faults: Optional[FaultSpec] = None,
        resilience: Optional[ResiliencePolicy] = None,
        on_dispatch: Optional[
            Callable[[float, str, int, Tuple[GpuLoadView, ...]], None]
        ] = None,
    ) -> ScenarioMetrics:
        """Serve a task set across the cluster; returns the merged metrics.

        ``on_dispatch(now, model_name, chosen, views)`` (when given) observes
        every routing decision with the candidate views the router saw — the
        hook the router-invariant tests use.  Observed dispatches always run
        the reference view-building path, so the hook sees exactly what a
        reference run's router would.
        """
        if horizon_ms <= 0:
            raise ValueError("horizon must be positive")
        workload = workload if workload is not None else PERIODIC_WORKLOAD
        if workload.saturated:
            raise ValueError(
                "the cluster backend is deadline-driven; saturated workloads do not apply"
            )
        rng = rng if rng is not None else RngFactory(0)
        faults = faults if faults is not None else NO_FAULTS
        policy = resilience if resilience is not None else DEFAULT_POLICY
        config = self.config
        num_gpus = config.num_gpus
        indexed = type(self).indexed_dispatch_enabled
        self.indexed_engagements = 0

        simulator = Simulator()
        # Request-level faults (drops, client timeouts) happen before
        # routing, from the root factory's historical streams.
        cluster_injector = FaultInjector(_request_spec(faults), rng=rng, policy=policy)
        timeout_ms = cluster_injector.timeout_ms
        requests_spec = faults.requests
        drops_possible = requests_spec is not None and requests_spec.drop_prob > 0.0

        per_priority = {
            Priority.HIGH: PriorityMetrics(),
            Priority.LOW: PriorityMetrics(),
        }
        per_task_completed: Dict[str, int] = {}

        workers: List[_GpuWorker] = []
        device_injectors: List[FaultInjector] = []
        for index in range(num_gpus):
            platform = GpuPlatform(
                simulator,
                PlatformConfig(num_contexts=1, streams_per_context=1, oversubscription=1.0),
                spec=self.gpu,
                calibration=self.calibration,
            )
            # A 1-GPU cluster keeps the root factory so its fault streams
            # are exactly the single-device (clockwork) ones.
            device_rng = rng if num_gpus == 1 else rng.spawn(f"cluster-gpu[{index}]")
            injector = FaultInjector(
                _device_spec(faults, index), rng=device_rng, policy=policy
            )
            injector.install(simulator, platform, horizon_ms)
            workers.append(
                _GpuWorker(
                    index,
                    simulator,
                    platform,
                    injector,
                    policy,
                    timeout_ms,
                    per_task_completed,
                )
            )
            device_injectors.append(injector)

        model_names: List[str] = []
        for task in taskset.tasks:
            if task.model.name not in model_names:
                model_names.append(task.model.name)
        placement = PlacementSpec.build(config.placement, model_names, num_gpus)
        router = make_router(config.router)
        backlog_since: Dict[str, float] = {}
        dispatch_seq = count(1)
        migration_on = config.migration_backlog > 0 and num_gpus >= 2

        # Per-run memos: predicted isolated latency per (model, calibration)
        # and the stage kernel specs per model, shared by every task of that
        # model; per-task profiles bundle them with the metric bucket.
        predicted_by_model: Dict[int, float] = {}
        kernels_by_model: Dict[int, tuple] = {}
        profiles: Dict[int, _TaskProfile] = {}
        for task in taskset.tasks:
            model = task.model
            key = id(model)
            predicted = predicted_by_model.get(key)
            if predicted is None:
                predicted = model.isolated_latency_ms(self.calibration)
                predicted_by_model[key] = predicted
                kernels_by_model[key] = tuple(
                    stage.to_kernel_spec() for stage in model.stages
                )
            profiles[id(task)] = _TaskProfile(
                task, per_priority[task.priority], predicted, kernels_by_model[key]
            )

        # The indexed tier: one dispatch ledger per run, device deltas
        # mirrored in, routing and migration triggers read it directly.
        ledger: Optional[DispatchLedger] = None
        group_by_model: Dict[str, object] = {}
        if indexed:
            ledger = DispatchLedger(
                num_gpus,
                config.router,
                backlog=config.migration_backlog if migration_on else 0,
            )
            for injector in device_injectors:
                injector.on_degraded_change = ledger.degraded_changed
            for worker in workers:
                worker.bind_ledger(ledger)
            for name in model_names:
                group_by_model[name] = ledger.group_for(placement.gpus_for(name))

        def migrate(model_name: str, eligible: Tuple[int, ...], now: float) -> None:
            others = [g for g in range(num_gpus) if g not in eligible]
            if not others:
                backlog_since.pop(model_name, None)
                return
            target = min(others, key=lambda g: (workers[g].outstanding_ms, g))
            moved: List[_QueuedRequest] = []
            for g in eligible:
                taken = workers[g].take_queued(model_name)
                if taken:
                    # Only devices that actually contributed requests count
                    # a migration (PR 9 inflated this by counting every
                    # eligible device, moved or not).
                    workers[g].migrations += 1
                    moved.extend(taken)
            placement.reassign(model_name, (target,))
            if ledger is not None:
                group_by_model[model_name] = ledger.group_for((target,))
            backlog_since.pop(model_name, None)
            workers[target].receive_migrated(moved)

        maybe_migrate: Optional[Callable[[str, float], None]]
        if not migration_on:
            maybe_migrate = None
        elif ledger is not None:

            def maybe_migrate(model_name: str, now: float) -> None:
                # O(1) incremental trigger: ``below_backlog`` counts eligible
                # devices under the threshold, so "every eligible GPU holds a
                # backlog" is one integer compare per release.
                group = group_by_model[model_name]
                if group.below_backlog > 0:
                    backlog_since.pop(model_name, None)
                    return
                since = backlog_since.get(model_name)
                if since is None:
                    backlog_since[model_name] = now
                elif now - since >= config.migration_window_ms:
                    migrate(model_name, group.devices, now)

        else:

            def maybe_migrate(model_name: str, now: float) -> None:
                # Reference trigger: per-release scan over the eligible set.
                eligible = placement.gpus_for(model_name)
                best_depth = min(workers[g].queue_depth for g in eligible)
                if best_depth < config.migration_backlog:
                    backlog_since.pop(model_name, None)
                    return
                since = backlog_since.get(model_name)
                if since is None:
                    backlog_since[model_name] = now
                elif now - since >= config.migration_window_ms:
                    migrate(model_name, eligible, now)

        fast_routing = indexed and on_dispatch is None
        least_loaded_kind = config.router == "least_loaded"
        deadline_kind = config.router == "deadline_aware"
        rr_select_index = (
            router.select_index if isinstance(router, RoundRobinRouter) else None
        )
        engagements = 0

        def on_release(task, event) -> None:
            nonlocal engagements
            profile = profiles[id(task)]
            bucket = profile.bucket
            bucket.released += 1
            if drops_possible and cluster_injector.drop_request():
                bucket.dropped += 1
                return
            model_name = profile.model_name
            now = event.time
            if maybe_migrate is not None:
                maybe_migrate(model_name, now)
            predicted = profile.predicted_ms
            deadline = now + profile.relative_deadline_ms
            if fast_routing and ledger.degraded_devices == 0:
                # Indexed tier: direct ledger reads, no view materialization.
                group = group_by_model[model_name]
                if least_loaded_kind:
                    choice = group.least_loaded()
                elif deadline_kind:
                    choice = group.deadline_aware(now, deadline, predicted)
                else:
                    choice = rr_select_index(group.devices)
                engagements += 1
            else:
                # Reference path: kept alive for the toggle-off tier, the
                # ``on_dispatch`` observer, and dispatches made while any
                # device is degraded (the alive-filter needs real views).
                eligible = placement.gpus_for(model_name)
                views = tuple(workers[g].load_view() for g in eligible)
                candidates = tuple(view for view in views if view.alive) or views
                choice = router.select(now, deadline, predicted, candidates)
                if on_dispatch is not None:
                    on_dispatch(now, model_name, choice, candidates)
            worker = workers[choice]
            worker.routed += 1
            worker.enqueue(_QueuedRequest(deadline, next(dispatch_seq), now, profile))

        ReleaseStream(workload, rng).drive_taskset(
            simulator, horizon_ms, taskset.tasks, on_release
        )
        simulator.run_until(horizon_ms)
        self.indexed_engagements = engagements

        breakdown = tuple(worker.telemetry() for worker in workers)
        utilization = sum(gpu.utilization for gpu in breakdown) / len(breakdown)
        return ScenarioMetrics.from_priority_metrics(
            horizon_ms,
            high=per_priority[Priority.HIGH],
            low=per_priority[Priority.LOW],
            per_task_completed=per_task_completed,
            gpu_utilization=utilization,
            fault_impact=_merged_impact(faults.active, device_injectors),
            gpu_breakdown=breakdown,
        )
