"""The ``cluster`` scheduler backend: the composite over N per-GPU loops.

Registered like any other backend, so cluster scenarios inherit caching,
``--seeds`` replication, parallel fan-out, sharded sweeps and the DSE/Pareto
machinery unchanged.  ``ClusterConfig`` is a new config kind, so no
pre-existing (non-cluster) request fingerprint changes.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, ClassVar, Tuple, Type

from repro.backends.base import BackendRequestError, SchedulerBackend
from repro.backends.registry import register_backend
from repro.cluster.config import ClusterConfig
from repro.cluster.server import ClusterServer
from repro.sim.faults import ResiliencePolicy
from repro.sim.rng import RngFactory

if TYPE_CHECKING:  # imported lazily at runtime to avoid an import cycle
    from repro.experiments.parallel import ScenarioRequest
    from repro.experiments.runner import ScenarioResult


class ClusterBackend(SchedulerBackend):
    """N simulated GPUs behind a pluggable router, one event graph."""

    name: ClassVar[str] = "cluster"
    title: ClassVar[str] = (
        "Cluster serving: N simulated GPUs behind a router"
        " (least-loaded / round-robin / deadline-aware)"
    )
    config_type: ClassVar[Type] = ClusterConfig
    deterministic: ClassVar[bool] = True
    supported_arrivals: ClassVar[Tuple[str, ...]] = ("periodic", "poisson", "mmpp", "trace")
    # Per-device executors run the Clockwork discipline, so the cluster
    # answers faults the same way: one quick retry, then shed by the
    # degradation-inflated predicted latency.
    resilience: ClassVar[ResiliencePolicy] = ResiliencePolicy(
        max_launch_retries=1, shed_when_degraded=True
    )

    def validate_request(self, request: "ScenarioRequest") -> None:
        super().validate_request(request)
        config: ClusterConfig = request.config
        if request.faults.gpu is not None and request.faults.gpu >= config.num_gpus:
            raise BackendRequestError(
                f"the fault spec targets GPU {request.faults.gpu},"
                f" but the cluster has only {config.num_gpus}"
                f" device{'s' if config.num_gpus != 1 else ''} (0..{config.num_gpus - 1})"
            )
        if config.num_gpus == 1:
            warnings.warn(
                "a 1-GPU 'cluster' is equivalent to the plain 'clockwork'"
                " backend (plus per-GPU telemetry); use it directly unless"
                " you want the cluster metrics shape",
                stacklevel=2,
            )

    def run(self, request: "ScenarioRequest") -> "ScenarioResult":
        from repro.experiments.runner import ScenarioResult

        server = ClusterServer(
            config=request.config,
            gpu=request.gpu,
            calibration=request.calibration,
        )
        metrics = server.serve(
            request.taskset,
            request.horizon_ms,
            workload=request.workload,
            rng=RngFactory(request.seed),
            faults=request.faults,
            resilience=self.resilience,
        )
        label = request.label if request.label is not None else request.config.label()
        return ScenarioResult(label=label, config=request.config, metrics=metrics)


CLUSTER_BACKEND = register_backend(ClusterBackend())
