"""Fingerprintable configuration of the multi-GPU cluster backend.

``ClusterConfig`` is an ordinary :class:`~repro.backends.configs.BackendConfig`
— every field is a first-class config axis (``cluster.num_gpus``,
``cluster.router``, ``cluster.placement``, ``cluster.migration_backlog``,
``cluster.migration_window_ms``), addressable by ``--set``, experiment grids,
sharded sweeps and the DSE machinery without any special-casing.  The kind is
new, so no pre-existing (non-cluster) request fingerprint can change: cluster
fields fingerprint only for requests that name the ``cluster`` backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Dict

from repro.backends.configs import BackendConfig, _register_config

#: Router dispatch policies (``cluster.router`` vocabulary).
ROUTER_POLICIES = ("least_loaded", "round_robin", "deadline_aware")

#: Model-placement policies (``cluster.placement`` vocabulary).
PLACEMENT_POLICIES = ("replicated", "partitioned")


@_register_config
@dataclass(frozen=True)
class ClusterConfig(BackendConfig):
    """N simulated GPUs behind a router, with placement and migration axes.

    Attributes:
        num_gpus: devices in the cluster (each a full simulated GPU).
        router: dispatch policy — ``least_loaded`` picks the device with the
            least outstanding predicted work, ``round_robin`` rotates over
            the eligible devices, ``deadline_aware`` bin-packs onto the most
            loaded device that still meets the request's deadline.
        placement: ``replicated`` serves every model on every device;
            ``partitioned`` pins each distinct model to a disjoint device
            subset.
        migration_backlog: queue-depth threshold that triggers moving a
            model's queue to the least-loaded device (0 disables migration).
        migration_window_ms: how long the backlog must stay at or above the
            threshold before the queue actually moves.
    """

    kind: ClassVar[str] = "cluster"

    num_gpus: int = 2
    router: str = "least_loaded"
    placement: str = "replicated"
    migration_backlog: int = 0
    migration_window_ms: float = 100.0

    FIELD_ALIASES: ClassVar[Dict[str, str]] = {"gpus": "num_gpus", "policy": "router"}

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")
        if self.router not in ROUTER_POLICIES:
            raise ValueError(
                f"unknown router {self.router!r}; choose from {', '.join(ROUTER_POLICIES)}"
            )
        if self.placement not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement {self.placement!r};"
                f" choose from {', '.join(PLACEMENT_POLICIES)}"
            )
        if self.migration_backlog < 0:
            raise ValueError("migration_backlog must be >= 0 (0 disables migration)")
        if not self.migration_window_ms > 0:
            raise ValueError("migration_window_ms must be positive")

    def label(self) -> str:
        text = f"Cluster {self.num_gpus}x {self.router}"
        if self.placement != "replicated":
            text += f" {self.placement}"
        if self.migration_backlog > 0:
            text += f" mig{self.migration_backlog}"
        return text
