"""Multi-GPU cluster serving: router, placement, migration, per-GPU loops.

The paper's serving story at fleet shape: N simulated GPUs behind a
dispatcher, as one composite :class:`~repro.backends.base.SchedulerBackend`
(registered as ``cluster``) on one simulator event graph — so cluster
scenarios stay bit-identical per seed and inherit caching, replication,
parallel fan-out and sharded sweeps unchanged.

* :mod:`repro.cluster.config` — ``ClusterConfig``: ``num_gpus`` / ``router``
  / ``placement`` / migration fields as first-class config axes.
* :mod:`repro.cluster.router` — pluggable, unit-testable dispatch policies
  (``least_loaded`` / ``round_robin`` / ``deadline_aware``).
* :mod:`repro.cluster.placement` — model -> device-subset placement
  (``replicated`` / ``partitioned``) plus the migration reassignment
  primitive.
* :mod:`repro.cluster.ledger` — the O(1)-per-event dispatch index behind
  ``ClusterServer.indexed_dispatch_enabled`` (incremental load heap / bisect
  ordering / backlog counters).
* :mod:`repro.cluster.server` — the runtime: per-GPU Clockwork-style
  executors, cluster-level release routing, GPU-targetable fault injection,
  per-device telemetry, metrics merge.
* :mod:`repro.cluster.backend` — the registered ``cluster`` backend.
"""

from repro.cluster.backend import ClusterBackend
from repro.cluster.config import PLACEMENT_POLICIES, ROUTER_POLICIES, ClusterConfig
from repro.cluster.ledger import DeviceGroup, DispatchLedger
from repro.cluster.placement import PlacementSpec
from repro.cluster.router import (
    DeadlineAwareRouter,
    GpuLoadView,
    LeastLoadedRouter,
    RoundRobinRouter,
    RouterPolicy,
    make_router,
)
from repro.cluster.server import ClusterServer

__all__ = [
    "PLACEMENT_POLICIES",
    "ROUTER_POLICIES",
    "ClusterBackend",
    "ClusterConfig",
    "ClusterServer",
    "DeadlineAwareRouter",
    "DeviceGroup",
    "DispatchLedger",
    "GpuLoadView",
    "LeastLoadedRouter",
    "PlacementSpec",
    "RoundRobinRouter",
    "RouterPolicy",
    "make_router",
]
