"""DNN workload models calibrated against the paper's benchmark networks.

The paper evaluates ResNet18, ResNet50, UNet and InceptionV3 (224x224x3
inputs) on an RTX 2080 Ti.  This package describes each network as a list of
layers, groups the layers into DARIS *stages* (the paper's synchronization
boundaries), and converts stages into the GPU simulator's kernel
specifications.  A per-network calibration profile anchors the model to the
published Table I numbers (single-stream JPS, batched JPS, batching gain) and
to the architectural traits the paper calls out (UNet wide and memory-heavy,
InceptionV3 narrow with many small kernels).
"""

from repro.dnn.layer import LayerSpec, LayerKind, conv2d, pool2d, linear, elementwise, concat
from repro.dnn.profiles import DnnProfile, PROFILES, get_profile
from repro.dnn.stage import StageSpec, build_stages
from repro.dnn.model import DnnModel, calibrate_model
from repro.dnn.zoo import (
    build_resnet18,
    build_resnet50,
    build_unet,
    build_inceptionv3,
    build_model,
    available_models,
)
from repro.dnn.batching import batched_stage_specs, batching_throughput_curve, batched_latency_ms

__all__ = [
    "LayerSpec",
    "LayerKind",
    "conv2d",
    "pool2d",
    "linear",
    "elementwise",
    "concat",
    "DnnProfile",
    "PROFILES",
    "get_profile",
    "StageSpec",
    "build_stages",
    "DnnModel",
    "calibrate_model",
    "build_resnet18",
    "build_resnet50",
    "build_unet",
    "build_inceptionv3",
    "build_model",
    "available_models",
    "batched_stage_specs",
    "batching_throughput_curve",
    "batched_latency_ms",
]
