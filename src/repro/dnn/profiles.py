"""Per-DNN calibration profiles.

Each profile anchors a network to the paper's measurements:

* ``single_stream_jps`` and ``batched_max_jps`` come directly from Table I.
* ``occupancy_fraction`` is the average fraction of the GPU's SMs a *single*
  un-batched inference can keep busy.  It is derived from the batching gain:
  wide networks (UNet, gain 1.08x) already occupy most of the GPU, narrow
  ones (InceptionV3, gain 3.13x) occupy only about a third.  The un-batched
  colocation roofline of the simulator is ``single_stream_jps /
  occupancy_fraction``; the values are chosen so DARIS's best configuration
  lands where the paper reports (above the batching baseline for ResNet18 /
  ResNet50 / UNet, about 87 % of it for InceptionV3).
* ``batch_saturation_scale`` shapes how quickly throughput approaches the
  batched maximum as the batch size grows (paper Figure 1).
* ``memory_intensity`` controls sensitivity to oversubscription contention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class DnnProfile:
    """Calibration anchor for one DNN.

    Attributes:
        name: canonical network name (lower-case).
        single_stream_jps: throughput of one job at a time on the full GPU
            (Table I ``min`` column).
        batched_max_jps: saturated throughput with large batches
            (Table I ``max`` column).
        occupancy_fraction: average fraction of SMs one un-batched inference
            occupies (0..1].
        batch_saturation_scale: batch-size constant of the exponential
            saturation curve used for Figure 1.
        memory_intensity: 0..1, how memory-bound the network is.
        num_stages: number of DARIS stages the network is split into.
        preferred_batch_size: batch size the paper uses for the DARIS+batching
            experiment (Figure 10): 4 / 2 / 8 for ResNet18 / UNet /
            InceptionV3.
        reference_input: input resolution (all networks use 224x224x3).
    """

    name: str
    single_stream_jps: float
    batched_max_jps: float
    occupancy_fraction: float
    batch_saturation_scale: float
    memory_intensity: float
    num_stages: int
    preferred_batch_size: int
    reference_input: Tuple[int, int, int] = (224, 224, 3)

    def __post_init__(self) -> None:
        if self.single_stream_jps <= 0 or self.batched_max_jps <= 0:
            raise ValueError("throughputs must be positive")
        if not 0.0 < self.occupancy_fraction <= 1.0:
            raise ValueError("occupancy_fraction must be in (0, 1]")
        if self.num_stages < 1:
            raise ValueError("num_stages must be >= 1")

    def to_dict(self) -> Dict[str, object]:
        """Canonical field dictionary (stable key order; used for cache keys)."""
        return {
            "name": self.name,
            "single_stream_jps": self.single_stream_jps,
            "batched_max_jps": self.batched_max_jps,
            "occupancy_fraction": self.occupancy_fraction,
            "batch_saturation_scale": self.batch_saturation_scale,
            "memory_intensity": self.memory_intensity,
            "num_stages": self.num_stages,
            "preferred_batch_size": self.preferred_batch_size,
            "reference_input": list(self.reference_input),
        }

    @property
    def isolated_latency_ms(self) -> float:
        """Latency of one un-batched inference alone on the GPU."""
        return 1000.0 / self.single_stream_jps

    @property
    def batching_gain(self) -> float:
        """Table I batching gain (max / min)."""
        return self.batched_max_jps / self.single_stream_jps

    def colocation_roofline_jps(self, num_sms: int = 68) -> float:
        """Upper bound on un-batched throughput when SMs are perfectly shared."""
        del num_sms  # the roofline is independent of the absolute SM count
        return self.single_stream_jps / self.occupancy_fraction


PROFILES: Dict[str, DnnProfile] = {
    "resnet18": DnnProfile(
        name="resnet18",
        single_stream_jps=627.0,
        batched_max_jps=1025.0,
        occupancy_fraction=0.52,
        batch_saturation_scale=3.0,
        memory_intensity=0.30,
        num_stages=4,
        preferred_batch_size=4,
    ),
    "resnet50": DnnProfile(
        name="resnet50",
        single_stream_jps=250.0,
        batched_max_jps=433.0,
        occupancy_fraction=0.48,
        batch_saturation_scale=3.5,
        memory_intensity=0.35,
        num_stages=4,
        preferred_batch_size=4,
    ),
    "unet": DnnProfile(
        name="unet",
        single_stream_jps=241.0,
        batched_max_jps=260.0,
        occupancy_fraction=0.825,
        batch_saturation_scale=1.5,
        memory_intensity=0.70,
        num_stages=4,
        preferred_batch_size=2,
    ),
    "inceptionv3": DnnProfile(
        name="inceptionv3",
        single_stream_jps=142.0,
        batched_max_jps=446.0,
        occupancy_fraction=0.34,
        batch_saturation_scale=5.0,
        memory_intensity=0.25,
        num_stages=4,
        preferred_batch_size=8,
    ),
}


def get_profile(name: str) -> DnnProfile:
    """Look up a calibration profile by (case-insensitive) model name."""
    key = name.lower()
    if key not in PROFILES:
        raise KeyError(f"unknown DNN {name!r}; known: {sorted(PROFILES)}")
    return PROFILES[key]
