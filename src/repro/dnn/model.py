"""Calibrated DNN models.

A :class:`DnnModel` combines the layer-level architecture (relative work and
width per stage) with the calibration profile (absolute single-stream latency
and occupancy) into the stage specifications the scheduler dispatches.

A single un-batched inference leaves the GPU partially idle for two distinct
reasons, and the split between them matters for the oversubscription study:

* *launch gaps* — the time between consecutive small kernels (CPU launch cost
  plus GPU scheduling gaps); during a gap the owning context's SMs are idle
  and can only be reclaimed by another stream of the same context or, with
  oversubscription, by another context;
* *narrow kernels* — kernels that cannot occupy every SM of their context.

Calibration solves for two global scale factors:

* a *work scale* so the total work equals
  ``isolated_latency * occupancy_fraction * num_sms`` SM-milliseconds
  (this pins the colocation roofline to ``single_stream_jps /
  occupancy_fraction``), and
* a *parallelism scale* so that executing the stages back to back with all
  SMs available takes exactly the profile's isolated latency *minus* the
  launch-gap time implied by the model's kernel count.

The relative distribution of work and width across stages is preserved from
the real architecture, so stage-level behaviour (which stage is long, which
stage is wide) remains faithful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.dnn.layer import LayerSpec
from repro.dnn.profiles import DnnProfile
from repro.dnn.stage import StageSpec
from repro.gpu.calibration import DEFAULT_CALIBRATION, GpuCalibration
from repro.gpu.spec import GpuSpec, RTX_2080_TI

_MIN_PARALLELISM = 1.0


def launch_gap_ms(
    num_kernels: int,
    num_stages: int,
    gpu: GpuSpec = RTX_2080_TI,
    calibration: GpuCalibration = DEFAULT_CALIBRATION,
) -> float:
    """Total launch-gap time of one inference (kernel gaps + per-stage dispatch)."""
    if num_kernels < 0 or num_stages < 0:
        raise ValueError("kernel and stage counts must be non-negative")
    return num_kernels * gpu.launch_overhead_ms + num_stages * calibration.dispatch_overhead_ms


@dataclass(frozen=True)
class DnnModel:
    """A DNN ready to be scheduled: calibrated stages plus its profile.

    The stage sequence is stored as a tuple so the model is hashable and
    compares by value — two independently calibrated copies of the same
    network are equal, which is what gives :class:`ScenarioRequest` its
    stable identity (and cache key).
    """

    name: str
    profile: DnnProfile
    stages: Tuple[StageSpec, ...] = ()
    gpu: GpuSpec = RTX_2080_TI

    def __post_init__(self) -> None:
        if not isinstance(self.stages, tuple):
            object.__setattr__(self, "stages", tuple(self.stages))

    @property
    def num_stages(self) -> int:
        """Number of DARIS stages."""
        return len(self.stages)

    def fingerprint(self) -> Dict[str, object]:
        """Canonical nested dictionary describing the calibrated model.

        Every quantity that influences simulated behaviour is included, so
        two models with the same fingerprint are interchangeable in a
        scenario.  Used by the experiment result cache.
        """
        return {
            "name": self.name,
            "profile": self.profile.to_dict(),
            "stages": [stage.to_dict() for stage in self.stages],
            "gpu": self.gpu.to_dict(),
        }

    @property
    def total_work(self) -> float:
        """Total compute demand of one inference in SM-milliseconds."""
        return sum(stage.work for stage in self.stages)

    @property
    def total_kernels(self) -> int:
        """Number of CUDA kernel launches per inference."""
        return sum(stage.num_kernels for stage in self.stages)

    def launch_gap_ms(self, calibration: GpuCalibration = DEFAULT_CALIBRATION) -> float:
        """Per-inference launch-gap time (idle time between kernels and stages)."""
        return launch_gap_ms(self.total_kernels, self.num_stages, self.gpu, calibration)

    def compute_latency_ms(self) -> float:
        """Kernel execution time of one inference alone on the full GPU (gaps excluded)."""
        return sum(stage.isolated_duration_ms(self.gpu.num_sms) for stage in self.stages)

    def isolated_latency_ms(self, calibration: GpuCalibration = DEFAULT_CALIBRATION) -> float:
        """Latency of one inference running alone on the full GPU (gaps included)."""
        return self.compute_latency_ms() + self.launch_gap_ms(calibration)

    def mean_parallelism(self) -> float:
        """Work-weighted average SM occupancy of one inference while kernels run."""
        total = self.total_work
        if total == 0:
            return 0.0
        return total / self.compute_latency_ms()

    def stage_work_fractions(self) -> List[float]:
        """Fraction of total work contributed by each stage."""
        total = self.total_work
        return [stage.work / total for stage in self.stages]

    def merged(self) -> "DnnModel":
        """Return a single-stage version of this model (the "No Staging" ablation)."""
        total_work = self.total_work
        total_kernels = self.total_kernels
        weighted_parallelism = sum(s.work * s.parallelism for s in self.stages) / total_work
        weighted_memory = sum(s.work * s.memory_intensity for s in self.stages) / total_work
        merged_stage = StageSpec(
            name=f"{self.name}/whole",
            index=0,
            work=total_work,
            parallelism=weighted_parallelism,
            num_kernels=total_kernels,
            memory_intensity=weighted_memory,
        )
        return DnnModel(name=self.name, profile=self.profile, stages=[merged_stage], gpu=self.gpu)


def _stage_aggregates(stage_layers: Sequence[LayerSpec]) -> tuple:
    """Raw (work, width, kernel count, memory intensity) of a group of layers."""
    raw_work = sum(layer.flops_m for layer in stage_layers)
    if raw_work <= 0:
        raw_work = 1e-6
    width = sum(layer.flops_m * layer.relative_width for layer in stage_layers) / raw_work
    kernels = sum(layer.kernel_count for layer in stage_layers)
    memory = sum(layer.memory_mb for layer in stage_layers)
    return raw_work, width, kernels, memory


def calibrate_model(
    name: str,
    profile: DnnProfile,
    stage_layers: Sequence[Sequence[LayerSpec]],
    gpu: GpuSpec = RTX_2080_TI,
    calibration: GpuCalibration = DEFAULT_CALIBRATION,
) -> DnnModel:
    """Build a calibrated :class:`DnnModel` from per-stage layer lists."""
    if len(stage_layers) != profile.num_stages:
        raise ValueError(
            f"{name}: expected {profile.num_stages} stages, got {len(stage_layers)}"
        )

    aggregates = [_stage_aggregates(layers) for layers in stage_layers]
    raw_works = [agg[0] for agg in aggregates]
    raw_widths = [agg[1] for agg in aggregates]
    kernel_counts = [agg[2] for agg in aggregates]
    memory_mbs = [agg[3] for agg in aggregates]

    # Absolute work: total_work = isolated_latency * mean_parallelism.
    isolated_latency = profile.isolated_latency_ms
    mean_parallelism = profile.occupancy_fraction * gpu.num_sms
    target_total_work = isolated_latency * mean_parallelism
    work_scale = target_total_work / sum(raw_works)
    works = [raw * work_scale for raw in raw_works]

    # The kernel execution time is the isolated latency minus the launch gaps
    # implied by the model's kernel count; the gaps themselves are charged by
    # the GPU engine's per-context dispatcher at run time.
    gap_time = launch_gap_ms(sum(kernel_counts), len(stage_layers), gpu, calibration)
    compute_latency = max(isolated_latency - gap_time, 0.25 * isolated_latency)

    # Parallelism scale: find sigma such that the back-to-back kernel execution
    # time on the full GPU equals the compute latency.  The latency is a
    # monotonically decreasing function of sigma, so bisection converges.
    def latency_for(sigma: float) -> float:
        total = 0.0
        for work, width in zip(works, raw_widths):
            parallelism = min(max(sigma * width, _MIN_PARALLELISM), float(gpu.num_sms))
            total += work / parallelism
        return total

    low, high = 1e-6, 1e6
    for _ in range(200):
        mid = (low + high) / 2.0
        if latency_for(mid) > compute_latency:
            low = mid
        else:
            high = mid
    sigma = (low + high) / 2.0

    # Memory intensity: distribute the profile-level intensity across stages
    # proportionally to their per-work memory traffic.
    mem_per_work = [mb / max(w, 1e-9) for mb, w in zip(memory_mbs, works)]
    mean_mem_per_work = sum(m * w for m, w in zip(mem_per_work, works)) / sum(works)
    stages: List[StageSpec] = []
    for index, (work, width, kernels, mem_ratio) in enumerate(
        zip(works, raw_widths, kernel_counts, mem_per_work)
    ):
        parallelism = min(max(sigma * width, _MIN_PARALLELISM), float(gpu.num_sms))
        relative_memory = mem_ratio / max(mean_mem_per_work, 1e-9)
        memory_intensity = min(1.0, profile.memory_intensity * relative_memory)
        stages.append(
            StageSpec(
                name=f"{name}/stage{index}",
                index=index,
                work=work,
                parallelism=parallelism,
                num_kernels=kernels,
                memory_intensity=memory_intensity,
            )
        )
    return DnnModel(name=name, profile=profile, stages=stages, gpu=gpu)
