"""DARIS stages: groups of consecutive layers bounded by synchronization points.

The paper partitions DNNs at logical boundaries (ResNet into its four residual
super-blocks) and dispatches one stage at a time, which is what enables
coarse-grained preemption.  A :class:`StageSpec` aggregates the layers of a
stage into a single unit of GPU work with a kernel count (for launch-overhead
accounting) and a memory intensity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.dnn.layer import LayerSpec
from repro.gpu.kernel import KernelSpec


@dataclass(frozen=True)
class StageSpec:
    """One stage of a DNN as the scheduler sees it.

    Attributes:
        name: stage identifier, e.g. ``"resnet18/stage2"``.
        index: position of the stage within its model (0-based).
        work: calibrated compute demand in SM-milliseconds for batch size 1.
        parallelism: calibrated number of SMs the stage's kernels occupy for
            batch size 1.
        num_kernels: number of CUDA kernel launches the stage issues.
        memory_intensity: 0..1 weight for the contention model.
    """

    name: str
    index: int
    work: float
    parallelism: float
    num_kernels: int
    memory_intensity: float

    def isolated_duration_ms(self, available_sms: float) -> float:
        """Execution time when the stage runs alone on ``available_sms`` SMs."""
        return self.work / min(self.parallelism, available_sms)

    def to_dict(self) -> dict:
        """Canonical field dictionary (stable key order; used for cache keys)."""
        return {
            "name": self.name,
            "index": self.index,
            "work": self.work,
            "parallelism": self.parallelism,
            "num_kernels": self.num_kernels,
            "memory_intensity": self.memory_intensity,
        }

    def to_kernel_spec(self, label: str = "") -> KernelSpec:
        """Convert to the GPU engine's kernel description (batch size 1).

        The unlabeled conversion is memoized: stage specs are frozen, every
        launch of the same stage produces an identical kernel spec, and the
        conversion sits on the per-dispatch hot path.
        """
        if not label:
            # Frozen dataclasses only block __setattr__; plain reads are fine.
            cached = self.__dict__.get("_kernel_spec")
            if cached is None:
                cached = KernelSpec(
                    name=self.name,
                    work=self.work,
                    parallelism=self.parallelism,
                    num_launches=self.num_kernels,
                    memory_intensity=self.memory_intensity,
                )
                object.__setattr__(self, "_kernel_spec", cached)
            return cached
        return KernelSpec(
            name=label,
            work=self.work,
            parallelism=self.parallelism,
            num_launches=self.num_kernels,
            memory_intensity=self.memory_intensity,
        )


def build_stages(
    model_name: str,
    layers: Sequence[LayerSpec],
    boundaries: Sequence[int],
) -> List[List[LayerSpec]]:
    """Split ``layers`` into stages at the given boundary indices.

    Args:
        model_name: used only for error messages.
        layers: all layers of the model, in execution order.
        boundaries: indices (exclusive) where each stage ends; the last
            boundary must equal ``len(layers)``.

    Returns:
        A list of per-stage layer lists.
    """
    if not boundaries:
        raise ValueError(f"{model_name}: at least one stage boundary is required")
    if sorted(boundaries) != list(boundaries):
        raise ValueError(f"{model_name}: stage boundaries must be increasing")
    if boundaries[-1] != len(layers):
        raise ValueError(
            f"{model_name}: last boundary {boundaries[-1]} must equal layer count {len(layers)}"
        )
    stages: List[List[LayerSpec]] = []
    start = 0
    for end in boundaries:
        if end <= start:
            raise ValueError(f"{model_name}: empty stage at boundary {end}")
        stages.append(list(layers[start:end]))
        start = end
    return stages
