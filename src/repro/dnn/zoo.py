"""Architectures of the paper's benchmark networks.

Each builder lists the network layer by layer with realistic channel counts
and spatial resolutions for a 224x224x3 input, then groups the layers into
the DARIS stages and calibrates absolute work against the profile
(:mod:`repro.dnn.profiles`).  The relative work/width distribution across
stages therefore follows the real architectures:

* **ResNet18 / ResNet50** — stem plus the four residual super-blocks; the
  paper uses exactly these four logical blocks as stages.
* **UNet** — encoder, bottleneck, decoder and segmentation head; the wide
  spatial activations make every stage broad and memory-heavy.
* **InceptionV3** — stem, Inception-A, Inception-B/C and the classifier; the
  many small parallel branches produce a large number of narrow kernels.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.dnn.layer import LayerSpec, concat, conv2d, elementwise, linear, pool2d
from repro.dnn.model import DnnModel, calibrate_model
from repro.dnn.profiles import get_profile
from repro.gpu.spec import GpuSpec, RTX_2080_TI


def _basic_block(name: str, channels: int, spatial: int, downsample: bool) -> List[LayerSpec]:
    """ResNet basic block: two 3x3 convolutions plus the residual add."""
    stride = 2 if downsample else 1
    in_channels = channels // 2 if downsample else channels
    out_spatial = spatial // stride
    layers = [
        conv2d(f"{name}/conv1", in_channels, channels, spatial, kernel_size=3, stride=stride),
        conv2d(f"{name}/conv2", channels, channels, out_spatial, kernel_size=3),
        elementwise(f"{name}/add", channels, out_spatial),
    ]
    if downsample:
        layers.append(
            conv2d(f"{name}/downsample", in_channels, channels, spatial, kernel_size=1, stride=stride)
        )
    return layers


def _bottleneck_block(name: str, channels: int, spatial: int, downsample: bool) -> List[LayerSpec]:
    """ResNet bottleneck block (1x1 -> 3x3 -> 1x1) used by ResNet50."""
    stride = 2 if downsample else 1
    expansion = 4
    in_channels = channels * expansion if not downsample else channels * 2
    out_spatial = spatial // stride
    layers = [
        conv2d(f"{name}/conv1", in_channels, channels, spatial, kernel_size=1),
        conv2d(f"{name}/conv2", channels, channels, spatial, kernel_size=3, stride=stride),
        conv2d(f"{name}/conv3", channels, channels * expansion, out_spatial, kernel_size=1),
        elementwise(f"{name}/add", channels * expansion, out_spatial),
    ]
    if downsample:
        layers.append(
            conv2d(
                f"{name}/downsample",
                in_channels,
                channels * expansion,
                spatial,
                kernel_size=1,
                stride=stride,
            )
        )
    return layers


def build_resnet18(gpu: GpuSpec = RTX_2080_TI) -> DnnModel:
    """ResNet18, staged at the four residual super-blocks (paper Section III-B1)."""
    profile = get_profile("resnet18")
    stem = [
        conv2d("stem/conv", 3, 64, 224, kernel_size=7, stride=2),
        pool2d("stem/maxpool", 64, 112, stride=2),
    ]
    layer1 = stem + _basic_block("layer1/block1", 64, 56, False) + _basic_block(
        "layer1/block2", 64, 56, False
    )
    layer2 = _basic_block("layer2/block1", 128, 56, True) + _basic_block(
        "layer2/block2", 128, 28, False
    )
    layer3 = _basic_block("layer3/block1", 256, 28, True) + _basic_block(
        "layer3/block2", 256, 14, False
    )
    layer4 = (
        _basic_block("layer4/block1", 512, 14, True)
        + _basic_block("layer4/block2", 512, 7, False)
        + [pool2d("head/avgpool", 512, 7, stride=7), linear("head/fc", 512, 1000)]
    )
    return calibrate_model("resnet18", profile, [layer1, layer2, layer3, layer4], gpu=gpu)


def build_resnet50(gpu: GpuSpec = RTX_2080_TI) -> DnnModel:
    """ResNet50 with bottleneck blocks, staged the same way as ResNet18."""
    profile = get_profile("resnet50")
    stem = [
        conv2d("stem/conv", 3, 64, 224, kernel_size=7, stride=2),
        pool2d("stem/maxpool", 64, 112, stride=2),
    ]

    def repeat(name: str, channels: int, spatial: int, blocks: int) -> List[LayerSpec]:
        layers = _bottleneck_block(f"{name}/block1", channels, spatial, True)
        for i in range(2, blocks + 1):
            layers += _bottleneck_block(f"{name}/block{i}", channels, spatial // 2, False)
        return layers

    # The first super-block does not downsample spatially in torchvision's
    # ResNet50; modelling it with the generic helper keeps relative shapes
    # close enough for calibration.
    layer1 = stem + repeat("layer1", 64, 112, 3)
    layer2 = repeat("layer2", 128, 56, 4)
    layer3 = repeat("layer3", 256, 28, 6)
    layer4 = repeat("layer4", 512, 14, 3) + [
        pool2d("head/avgpool", 2048, 7, stride=7),
        linear("head/fc", 2048, 1000),
    ]
    return calibrate_model("resnet50", profile, [layer1, layer2, layer3, layer4], gpu=gpu)


def _double_conv(name: str, in_channels: int, out_channels: int, spatial: int) -> List[LayerSpec]:
    """UNet's characteristic double 3x3 convolution."""
    return [
        conv2d(f"{name}/conv1", in_channels, out_channels, spatial),
        conv2d(f"{name}/conv2", out_channels, out_channels, spatial),
    ]


def build_unet(gpu: GpuSpec = RTX_2080_TI) -> DnnModel:
    """UNet (4 resolution levels), staged encoder / bottleneck / decoder / head."""
    profile = get_profile("unet")
    encoder = (
        _double_conv("enc1", 3, 64, 224)
        + [pool2d("enc1/pool", 64, 224)]
        + _double_conv("enc2", 64, 128, 112)
        + [pool2d("enc2/pool", 128, 112)]
        + _double_conv("enc3", 128, 256, 56)
        + [pool2d("enc3/pool", 256, 56)]
    )
    bottleneck = (
        _double_conv("enc4", 256, 512, 28)
        + [pool2d("enc4/pool", 512, 28)]
        + _double_conv("bottleneck", 512, 1024, 14)
    )
    decoder_deep = (
        [conv2d("up4/upconv", 1024, 512, 28, kernel_size=2), concat("up4/skip", 1024, 28)]
        + _double_conv("dec4", 1024, 512, 28)
        + [conv2d("up3/upconv", 512, 256, 56, kernel_size=2), concat("up3/skip", 512, 56)]
        + _double_conv("dec3", 512, 256, 56)
    )
    decoder_shallow = (
        [conv2d("up2/upconv", 256, 128, 112, kernel_size=2), concat("up2/skip", 256, 112)]
        + _double_conv("dec2", 256, 128, 112)
        + [conv2d("up1/upconv", 128, 64, 224, kernel_size=2), concat("up1/skip", 128, 224)]
        + _double_conv("dec1", 128, 64, 224)
        + [conv2d("head/segmap", 64, 2, 224, kernel_size=1)]
    )
    return calibrate_model(
        "unet", profile, [encoder, bottleneck, decoder_deep, decoder_shallow], gpu=gpu
    )


def _inception_a(name: str, in_channels: int, spatial: int) -> List[LayerSpec]:
    """Inception-A module: four parallel branches of small convolutions."""
    return [
        conv2d(f"{name}/b1x1", in_channels, 64, spatial, kernel_size=1),
        conv2d(f"{name}/b5x5_reduce", in_channels, 48, spatial, kernel_size=1),
        conv2d(f"{name}/b5x5", 48, 64, spatial, kernel_size=5),
        conv2d(f"{name}/b3x3_reduce", in_channels, 64, spatial, kernel_size=1),
        conv2d(f"{name}/b3x3a", 64, 96, spatial, kernel_size=3),
        conv2d(f"{name}/b3x3b", 96, 96, spatial, kernel_size=3),
        pool2d(f"{name}/pool", in_channels, spatial, stride=1),
        conv2d(f"{name}/pool_proj", in_channels, 64, spatial, kernel_size=1),
        concat(f"{name}/concat", 288, spatial),
    ]


def _inception_c(name: str, in_channels: int, spatial: int) -> List[LayerSpec]:
    """Inception-C style module with factorised 7x7 convolutions."""
    return [
        conv2d(f"{name}/b1x1", in_channels, 192, spatial, kernel_size=1),
        conv2d(f"{name}/b7x7_reduce", in_channels, 128, spatial, kernel_size=1),
        conv2d(f"{name}/b1x7", 128, 128, spatial, kernel_size=1),
        conv2d(f"{name}/b7x1", 128, 192, spatial, kernel_size=7),
        conv2d(f"{name}/b7x7dbl_reduce", in_channels, 128, spatial, kernel_size=1),
        conv2d(f"{name}/b7x7dbl_a", 128, 128, spatial, kernel_size=7),
        conv2d(f"{name}/b7x7dbl_b", 128, 192, spatial, kernel_size=7),
        pool2d(f"{name}/pool", in_channels, spatial, stride=1),
        conv2d(f"{name}/pool_proj", in_channels, 192, spatial, kernel_size=1),
        concat(f"{name}/concat", 768, spatial),
    ]


def build_inceptionv3(gpu: GpuSpec = RTX_2080_TI) -> DnnModel:
    """InceptionV3: stem, Inception-A, Inception-B/C and classifier stages."""
    profile = get_profile("inceptionv3")
    stem = [
        conv2d("stem/conv1", 3, 32, 224, kernel_size=3, stride=2),
        conv2d("stem/conv2", 32, 32, 111, kernel_size=3),
        conv2d("stem/conv3", 32, 64, 111, kernel_size=3),
        pool2d("stem/pool1", 64, 111),
        conv2d("stem/conv4", 64, 80, 55, kernel_size=1),
        conv2d("stem/conv5", 80, 192, 55, kernel_size=3),
        pool2d("stem/pool2", 192, 55),
    ]
    inception_a = (
        _inception_a("mixed5b", 192, 27)
        + _inception_a("mixed5c", 288, 27)
        + _inception_a("mixed5d", 288, 27)
    )
    inception_bc = (
        [
            conv2d("mixed6a/b3x3", 288, 384, 27, kernel_size=3, stride=2),
            conv2d("mixed6a/b3x3dbl_reduce", 288, 64, 27, kernel_size=1),
            conv2d("mixed6a/b3x3dbl_a", 64, 96, 27, kernel_size=3),
            conv2d("mixed6a/b3x3dbl_b", 96, 96, 27, kernel_size=3, stride=2),
            pool2d("mixed6a/pool", 288, 27),
            concat("mixed6a/concat", 768, 13),
        ]
        + _inception_c("mixed6b", 768, 13)
        + _inception_c("mixed6c", 768, 13)
        + _inception_c("mixed6d", 768, 13)
        + _inception_c("mixed6e", 768, 13)
    )
    classifier = (
        [
            conv2d("mixed7a/b3x3_reduce", 768, 192, 13, kernel_size=1),
            conv2d("mixed7a/b3x3", 192, 320, 13, kernel_size=3, stride=2),
            conv2d("mixed7a/b7x7_reduce", 768, 192, 13, kernel_size=1),
            conv2d("mixed7a/b7x7x3", 192, 192, 13, kernel_size=7),
            pool2d("mixed7a/pool", 768, 13),
            concat("mixed7a/concat", 1280, 6),
        ]
        + _inception_a("mixed7b", 1280, 6)
        + _inception_a("mixed7c", 2048, 6)
        + [pool2d("head/avgpool", 2048, 6, stride=6), linear("head/fc", 2048, 1000)]
    )
    return calibrate_model(
        "inceptionv3", profile, [stem, inception_a, inception_bc, classifier], gpu=gpu
    )


_BUILDERS: Dict[str, Callable[[GpuSpec], DnnModel]] = {
    "resnet18": build_resnet18,
    "resnet50": build_resnet50,
    "unet": build_unet,
    "inceptionv3": build_inceptionv3,
}


def available_models() -> List[str]:
    """Names of all models in the zoo."""
    return sorted(_BUILDERS)


def build_model(name: str, gpu: GpuSpec = RTX_2080_TI) -> DnnModel:
    """Build a calibrated model by name."""
    key = name.lower()
    if key not in _BUILDERS:
        raise KeyError(f"unknown model {name!r}; available: {available_models()}")
    return _BUILDERS[key](gpu)
