"""Batching model.

Batching a DNN inference has three effects on the simulated GPU:

1. kernels *widen* — every stage's parallelism is multiplied by the batch size
   (capped at the physical SM count), so a single batched job can occupy SMs a
   single inference would leave idle;
2. launch gaps are *amortized* — one batch still issues one set of kernel
   launches, so the per-inference gap time shrinks by the batch size; and
3. per-inference kernel work changes — larger kernels are more efficient for
   networks with many small kernels (InceptionV3) but carry extra memory
   pressure for activation-heavy networks (UNet), so the per-inference work
   interpolates between the un-batched work ``W_1`` and a saturated value
   ``W_sat`` calibrated from Table I's batched maximum::

       W_b(B) = W_sat + (W_1 - W_sat) / B

The resulting single-stream batched throughput reproduces Figure 1 / Table I,
and because the widened kernels and amortized gaps are modelled explicitly,
colocating batched jobs under DARIS can exceed the single-stream batching
baseline exactly the way the paper's Section VI-H reports.
"""

from __future__ import annotations

from typing import List

from repro.dnn.model import DnnModel
from repro.dnn.stage import StageSpec
from repro.gpu.kernel import KernelSpec

_REFERENCE_BATCH = 16


def saturated_work_per_inference(model: DnnModel) -> float:
    """Per-inference work (SM-ms) at a large batch size, anchored to Table I max."""
    profile = model.profile
    gap = model.launch_gap_ms()
    num_sms = float(model.gpu.num_sms)
    latency_at_reference = 1000.0 * _REFERENCE_BATCH / profile.batched_max_jps
    compute_latency = max(latency_at_reference - gap, 0.25 * latency_at_reference)
    return compute_latency * num_sms / _REFERENCE_BATCH


def work_per_inference(model: DnnModel, batch_size: int) -> float:
    """Per-inference work at ``batch_size`` (interpolates W_1 -> W_sat)."""
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    unbatched = model.total_work
    saturated = saturated_work_per_inference(model)
    return saturated + (unbatched - saturated) / batch_size


def batched_stage_specs(model: DnnModel, batch_size: int) -> List[StageSpec]:
    """Stage specifications for a batch of ``batch_size`` inferences.

    The relative work split across stages is preserved; parallelism widens with
    the batch size (capped at the physical SM count); the launch count stays
    the same, so the engine charges the same absolute gap per batch.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if batch_size == 1:
        return list(model.stages)

    num_sms = float(model.gpu.num_sms)
    total_batch_work = work_per_inference(model, batch_size) * batch_size
    unbatched_total = model.total_work
    specs: List[StageSpec] = []
    for stage in model.stages:
        share = stage.work / unbatched_total if unbatched_total > 0 else 1.0 / model.num_stages
        specs.append(
            StageSpec(
                name=f"{stage.name}@b{batch_size}",
                index=stage.index,
                work=total_batch_work * share,
                parallelism=min(stage.parallelism * batch_size, num_sms),
                num_kernels=stage.num_kernels,
                memory_intensity=stage.memory_intensity,
            )
        )
    return specs


def batched_kernel_specs(model: DnnModel, batch_size: int) -> List[KernelSpec]:
    """Kernel specifications (one per stage) for a batched inference."""
    return [stage.to_kernel_spec() for stage in batched_stage_specs(model, batch_size)]


def batched_latency_ms(model: DnnModel, batch_size: int) -> float:
    """Latency of one batch alone on the full GPU (kernel time plus launch gaps)."""
    stages = batched_stage_specs(model, batch_size)
    compute = sum(stage.isolated_duration_ms(model.gpu.num_sms) for stage in stages)
    return compute + model.launch_gap_ms()


def batching_target_jps(model: DnnModel, batch_size: int) -> float:
    """Single-stream throughput at ``batch_size`` (the Figure 1 curve)."""
    if batch_size == 1:
        return model.profile.single_stream_jps
    return 1000.0 * batch_size / batched_latency_ms(model, batch_size)


def batching_throughput_curve(model: DnnModel, batch_sizes: List[int]) -> List[float]:
    """Throughput (JPS) the batching upper baseline reaches at each batch size."""
    return [batching_target_jps(model, batch) for batch in batch_sizes]


def batching_gain(model: DnnModel, batch_size: int) -> float:
    """Throughput gain of batching at ``batch_size`` relative to single-stream."""
    return batching_target_jps(model, batch_size) / model.profile.single_stream_jps
