"""Layer-level descriptions of DNNs.

Layers are described with enough structure to derive *relative* compute cost
(FLOPs) and *relative* width (how many SMs the layer's kernels can occupy).
Absolute execution times are then calibrated per model against the paper's
measured throughput (see :mod:`repro.dnn.model`), so the layer math only has
to get the shape of the network right, not absolute GPU performance.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass


class LayerKind(enum.Enum):
    """Supported layer families."""

    CONV2D = "conv2d"
    POOL2D = "pool2d"
    LINEAR = "linear"
    ELEMENTWISE = "elementwise"
    CONCAT = "concat"


@dataclass(frozen=True)
class LayerSpec:
    """One layer of a DNN.

    Attributes:
        name: layer name, unique within a model.
        kind: layer family.
        flops_m: forward-pass multiply-accumulate cost in MFLOPs.
        output_elements: number of output activations, which determines how
            many thread blocks the layer's kernels can spawn and therefore how
            wide the layer is on the GPU.
        memory_mb: activation + weight traffic in MB, used to derive the
            memory intensity of the stage that contains the layer.
        kernel_count: number of CUDA kernels the layer typically expands to
            (convolution + bias + activation fusion patterns differ between
            layer kinds).
    """

    name: str
    kind: LayerKind
    flops_m: float
    output_elements: int
    memory_mb: float
    kernel_count: int = 1

    def __post_init__(self) -> None:
        if self.flops_m < 0:
            raise ValueError(f"flops_m must be non-negative, got {self.flops_m}")
        if self.output_elements <= 0:
            raise ValueError("output_elements must be positive")
        if self.kernel_count < 1:
            raise ValueError("kernel_count must be >= 1")

    @property
    def relative_width(self) -> float:
        """Relative GPU width of the layer (arbitrary units).

        Width grows sub-linearly with the number of output elements: very
        large activations saturate the GPU, tiny ones occupy only a few SMs.
        """
        return math.sqrt(self.output_elements)


def conv2d(
    name: str,
    in_channels: int,
    out_channels: int,
    spatial: int,
    kernel_size: int = 3,
    stride: int = 1,
    fused_bn_relu: bool = True,
) -> LayerSpec:
    """Convolution layer (optionally with fused batch-norm + ReLU)."""
    out_spatial = max(1, spatial // stride)
    output_elements = out_channels * out_spatial * out_spatial
    flops_m = (
        2.0 * in_channels * out_channels * kernel_size * kernel_size * out_spatial * out_spatial
    ) / 1e6
    weight_mb = (in_channels * out_channels * kernel_size * kernel_size * 4) / 1e6
    activation_mb = (output_elements * 4) / 1e6
    kernel_count = 1 if fused_bn_relu else 3
    return LayerSpec(
        name=name,
        kind=LayerKind.CONV2D,
        flops_m=flops_m,
        output_elements=output_elements,
        memory_mb=weight_mb + activation_mb,
        kernel_count=kernel_count,
    )


def pool2d(name: str, channels: int, spatial: int, stride: int = 2) -> LayerSpec:
    """Max/average pooling layer."""
    out_spatial = max(1, spatial // stride)
    output_elements = channels * out_spatial * out_spatial
    flops_m = (channels * spatial * spatial) / 1e6
    return LayerSpec(
        name=name,
        kind=LayerKind.POOL2D,
        flops_m=flops_m,
        output_elements=output_elements,
        memory_mb=(output_elements * 4) / 1e6,
        kernel_count=1,
    )


def linear(name: str, in_features: int, out_features: int) -> LayerSpec:
    """Fully-connected layer."""
    flops_m = (2.0 * in_features * out_features) / 1e6
    return LayerSpec(
        name=name,
        kind=LayerKind.LINEAR,
        flops_m=flops_m,
        output_elements=max(1, out_features),
        memory_mb=(in_features * out_features * 4) / 1e6,
        kernel_count=1,
    )


def elementwise(name: str, channels: int, spatial: int) -> LayerSpec:
    """Element-wise layer (residual add, activation applied out of place, ...)."""
    output_elements = channels * spatial * spatial
    return LayerSpec(
        name=name,
        kind=LayerKind.ELEMENTWISE,
        flops_m=output_elements / 1e6,
        output_elements=output_elements,
        memory_mb=(2 * output_elements * 4) / 1e6,
        kernel_count=1,
    )


def concat(name: str, channels: int, spatial: int) -> LayerSpec:
    """Concatenation layer (UNet skip connections, Inception branch merges)."""
    output_elements = channels * spatial * spatial
    return LayerSpec(
        name=name,
        kind=LayerKind.CONCAT,
        flops_m=output_elements / 1e6,
        output_elements=output_elements,
        memory_mb=(2 * output_elements * 4) / 1e6,
        kernel_count=1,
    )
