"""Deterministic random-number streams.

Experiments need reproducible randomness that is also *independent* between
concerns (release jitter, execution-time noise, workload selection, ...), so
that adding a consumer of randomness in one subsystem does not perturb the
draws seen by another.  ``RngFactory`` derives a child generator per named
stream from a single experiment seed.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


class RngFactory:
    """Derives named, independent :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0):
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The experiment-level seed this factory was created with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self._seed}:{name}".encode("utf-8")).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            self._streams[name] = np.random.default_rng(child_seed)
        return self._streams[name]

    def spawn(self, name: str) -> "RngFactory":
        """Create a sub-factory whose streams are independent of this one's."""
        digest = hashlib.sha256(f"{self._seed}:spawn:{name}".encode("utf-8")).digest()
        return RngFactory(int.from_bytes(digest[:8], "little"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngFactory(seed={self._seed}, streams={sorted(self._streams)})"
