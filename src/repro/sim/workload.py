"""Arrival processes for periodic and aperiodic real-time workloads.

DARIS targets periodic soft real-time inference tasks, so the primary process
is :class:`PeriodicArrival` (period, phase, optional bounded release jitter).
A Poisson process is included for baseline inference-server experiments
(e.g. the batching upper-bound study), where requests are not periodic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.sim.simulator import Simulator


@dataclass(frozen=True)
class ArrivalEvent:
    """A single job arrival produced by an arrival process."""

    index: int
    time: float


class PeriodicArrival:
    """Generates job releases every ``period`` ms starting at ``phase``.

    Optional release jitter models the small variability of a real-time
    pipeline's sensor/frame arrival; jitter is bounded to stay strictly below
    one period so job indices remain in release order.
    """

    def __init__(
        self,
        period: float,
        phase: float = 0.0,
        jitter: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if jitter < 0 or jitter >= period:
            raise ValueError(f"jitter must be in [0, period), got {jitter}")
        self.period = float(period)
        self.phase = float(phase)
        self.jitter = float(jitter)
        self._rng = rng
        self._index = 0

    def nominal_release(self, index: int) -> float:
        """Release time of job ``index`` without jitter."""
        return self.phase + index * self.period

    def next_arrival(self) -> ArrivalEvent:
        """Produce the next arrival (with jitter applied if configured)."""
        base = self.nominal_release(self._index)
        offset = 0.0
        if self.jitter > 0 and self._rng is not None:
            offset = float(self._rng.uniform(0.0, self.jitter))
        event = ArrivalEvent(index=self._index, time=base + offset)
        self._index += 1
        return event

    def drive(
        self,
        simulator: Simulator,
        horizon: float,
        callback: Callable[[ArrivalEvent], None],
    ) -> int:
        """Schedule all arrivals up to ``horizon`` on ``simulator``.

        Returns the number of arrivals scheduled.  The callback receives the
        :class:`ArrivalEvent`; it is invoked at the arrival time.
        """
        count = 0
        while True:
            event = self.next_arrival()
            if event.time > horizon:
                break
            simulator.schedule_at(
                event.time,
                lambda _sim, ev=event: callback(ev),
                priority=-1,
                label=f"release[{event.index}]",
            )
            count += 1
        return count


class PoissonArrival:
    """Memoryless arrival process with a given mean rate (jobs per second)."""

    def __init__(self, rate_jps: float, rng: np.random.Generator, start: float = 0.0):
        if rate_jps <= 0:
            raise ValueError(f"rate must be positive, got {rate_jps}")
        self.rate_jps = float(rate_jps)
        self._rng = rng
        self._time = float(start)
        self._index = 0

    def next_arrival(self) -> ArrivalEvent:
        """Draw the next arrival using exponential inter-arrival times."""
        gap_ms = float(self._rng.exponential(1000.0 / self.rate_jps))
        self._time += gap_ms
        event = ArrivalEvent(index=self._index, time=self._time)
        self._index += 1
        return event

    def drive(
        self,
        simulator: Simulator,
        horizon: float,
        callback: Callable[[ArrivalEvent], None],
    ) -> int:
        """Schedule all arrivals up to ``horizon`` on ``simulator``."""
        count = 0
        while True:
            event = self.next_arrival()
            if event.time > horizon:
                break
            simulator.schedule_at(
                event.time,
                lambda _sim, ev=event: callback(ev),
                priority=-1,
                label=f"arrival[{event.index}]",
            )
            count += 1
        return count
