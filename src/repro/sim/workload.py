"""Arrival processes for periodic and aperiodic real-time workloads.

DARIS targets periodic soft real-time inference tasks, so the primary process
is :class:`PeriodicArrival` (period, phase, optional bounded release jitter).
A Poisson process is included for baseline inference-server experiments
(e.g. the batching upper-bound study), where requests are not periodic.

:class:`WorkloadSpec` is the declarative face of the same processes: it names
*which* arrival process drives a scenario (``periodic`` / ``poisson`` /
``saturated``) without binding a simulator or RNG, so it can live inside a
scenario request, be fingerprinted into a cache key, and be interpreted by
any scheduler backend.  :meth:`WorkloadSpec.arrival_for_task` is the single
place the name is turned into a concrete process, shared by DARIS and the
baseline servers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Union

import numpy as np

from repro.sim.simulator import Simulator

#: Arrival kinds a :class:`WorkloadSpec` can name.
ARRIVAL_KINDS = ("periodic", "poisson", "saturated")


@dataclass(frozen=True)
class ArrivalEvent:
    """A single job arrival produced by an arrival process."""

    index: int
    time: float


class PeriodicArrival:
    """Generates job releases every ``period`` ms starting at ``phase``.

    Optional release jitter models the small variability of a real-time
    pipeline's sensor/frame arrival; jitter is bounded to stay strictly below
    one period so job indices remain in release order.
    """

    def __init__(
        self,
        period: float,
        phase: float = 0.0,
        jitter: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if jitter < 0 or jitter >= period:
            raise ValueError(f"jitter must be in [0, period), got {jitter}")
        self.period = float(period)
        self.phase = float(phase)
        self.jitter = float(jitter)
        self._rng = rng
        self._index = 0

    def nominal_release(self, index: int) -> float:
        """Release time of job ``index`` without jitter."""
        return self.phase + index * self.period

    def next_arrival(self) -> ArrivalEvent:
        """Produce the next arrival (with jitter applied if configured)."""
        base = self.nominal_release(self._index)
        offset = 0.0
        if self.jitter > 0 and self._rng is not None:
            offset = float(self._rng.uniform(0.0, self.jitter))
        event = ArrivalEvent(index=self._index, time=base + offset)
        self._index += 1
        return event

    def drive(
        self,
        simulator: Simulator,
        horizon: float,
        callback: Callable[[ArrivalEvent], None],
    ) -> int:
        """Schedule all arrivals up to ``horizon`` on ``simulator``.

        Returns the number of arrivals scheduled.  The callback receives the
        :class:`ArrivalEvent`; it is invoked at the arrival time.
        """
        count = 0
        while True:
            event = self.next_arrival()
            if event.time > horizon:
                break
            simulator.schedule_at(
                event.time,
                lambda _sim, ev=event: callback(ev),
                priority=-1,
                label=f"release[{event.index}]",
            )
            count += 1
        return count


class PoissonArrival:
    """Memoryless arrival process with a given mean rate (jobs per second)."""

    def __init__(self, rate_jps: float, rng: np.random.Generator, start: float = 0.0):
        if rate_jps <= 0:
            raise ValueError(f"rate must be positive, got {rate_jps}")
        self.rate_jps = float(rate_jps)
        self._rng = rng
        self._time = float(start)
        self._index = 0

    def next_arrival(self) -> ArrivalEvent:
        """Draw the next arrival using exponential inter-arrival times."""
        gap_ms = float(self._rng.exponential(1000.0 / self.rate_jps))
        self._time += gap_ms
        event = ArrivalEvent(index=self._index, time=self._time)
        self._index += 1
        return event

    def drive(
        self,
        simulator: Simulator,
        horizon: float,
        callback: Callable[[ArrivalEvent], None],
    ) -> int:
        """Schedule all arrivals up to ``horizon`` on ``simulator``."""
        count = 0
        while True:
            event = self.next_arrival()
            if event.time > horizon:
                break
            simulator.schedule_at(
                event.time,
                lambda _sim, ev=event: callback(ev),
                priority=-1,
                label=f"arrival[{event.index}]",
            )
            count += 1
        return count


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative arrival-process half of a scenario.

    A scenario is a task set (what runs, at which rates and deadlines) plus a
    workload (how jobs reach the scheduler).  The spec is a pure value —
    hashable, JSON round-trippable, fingerprintable — so scenario requests
    can carry it into cache keys, and every scheduler backend interprets the
    same three kinds:

    * ``periodic`` — each task releases at its own period/phase (the paper's
      native soft real-time arrival model), with optional bounded release
      jitter.
    * ``poisson`` — each task's releases form a Poisson process with the same
      mean rate as its period (aperiodic, memoryless load at identical
      demand); request-server backends use one aggregate Poisson stream at
      the task set's total rate.
    * ``saturated`` — requests are always waiting; rates and phases are
      ignored and the executor back-to-backs work (the upper-baseline mode
      of the batching / single-tenant / GSlice servers).

    Attributes:
        arrival: one of :data:`ARRIVAL_KINDS`.
        jitter_ms: bounded uniform release jitter for ``periodic`` arrivals
            (must stay strictly below every driven period; ignored by the
            other kinds).
    """

    arrival: str = "periodic"
    jitter_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.arrival not in ARRIVAL_KINDS:
            raise ValueError(
                f"unknown arrival kind {self.arrival!r}; known: {', '.join(ARRIVAL_KINDS)}"
            )
        if self.jitter_ms < 0:
            raise ValueError("jitter_ms must be non-negative")
        if self.jitter_ms and self.arrival != "periodic":
            raise ValueError("jitter_ms applies to periodic arrivals only")

    @property
    def is_default(self) -> bool:
        """True for the plain periodic workload every legacy scenario used."""
        return self == PERIODIC_WORKLOAD

    @property
    def saturated(self) -> bool:
        """True when requests are always pending (rates ignored)."""
        return self.arrival == "saturated"

    def label(self) -> str:
        """Short human-readable tag for report rows."""
        if self.arrival == "periodic" and self.jitter_ms:
            return f"periodic+j{self.jitter_ms:g}"
        return self.arrival

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-safe form (doubles as the fingerprint)."""
        return {"arrival": self.arrival, "jitter_ms": self.jitter_ms}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "WorkloadSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(arrival=str(data["arrival"]), jitter_ms=float(data["jitter_ms"]))

    def fingerprint(self) -> Dict[str, object]:
        """Canonical dictionary for cache keys (alias of :meth:`to_dict`)."""
        return self.to_dict()

    def arrival_for_task(
        self,
        period_ms: float,
        phase_ms: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> Union[PeriodicArrival, PoissonArrival]:
        """Concrete arrival process for one task-shaped release stream.

        ``saturated`` workloads have no arrival process at all (the executor
        back-to-backs work), so asking for one is an error — callers branch
        on :attr:`saturated` first.  Randomized arrivals (poisson, jittered
        periodic) require ``rng``; silently running un-jittered would
        mislabel the scenario.
        """
        if self.arrival == "periodic":
            if self.jitter_ms > 0 and rng is None:
                raise ValueError("jittered periodic arrivals need an rng for reproducibility")
            return PeriodicArrival(
                period=period_ms, phase=phase_ms, jitter=self.jitter_ms, rng=rng
            )
        if self.arrival == "poisson":
            if rng is None:
                raise ValueError("poisson arrivals need an rng for reproducibility")
            return PoissonArrival(
                rate_jps=1000.0 / period_ms, rng=rng, start=phase_ms
            )
        raise ValueError("saturated workloads have no arrival process")


#: The workload every pre-backend scenario implicitly used: plain periodic
#: releases, no jitter.  Shared instance so default requests compare equal.
PERIODIC_WORKLOAD = WorkloadSpec()

#: Always-pending requests (the saturated server baselines).
SATURATED_WORKLOAD = WorkloadSpec(arrival="saturated")

#: Memoryless arrivals at each task's mean rate.
POISSON_WORKLOAD = WorkloadSpec(arrival="poisson")
