"""Arrival processes for periodic, aperiodic and bursty real-time workloads.

DARIS targets periodic soft real-time inference tasks, so the primary process
is :class:`PeriodicArrival` (period, phase, optional bounded release jitter).
The other processes model the load shapes a deployed inference service sees:
memoryless request streams (:class:`PoissonArrival`), bursty load from a
Markov-modulated Poisson process (:class:`MmppArrival`), and replayed
production traces (:class:`TraceArrival`).

The declarative face of the same processes is :class:`WorkloadSpec` — a pure
value built from two composable halves:

* a **base process** (:class:`BaseProcess` subclass), kind-tagged as one of
  :data:`ARRIVAL_KINDS`: ``periodic`` / ``poisson`` / ``saturated`` plus
  ``mmpp`` (N-phase bursty Poisson) and ``trace`` (explicit release times);
* zero or more **modulators** that wrap any rate-driven base: bounded release
  jitter (``jitter_ms``) and a :class:`DiurnalModulator` rate profile
  (sinusoidal or piecewise day/night load shaping via time rescaling).

A spec never binds a simulator or RNG, so it can live inside a scenario
request, be fingerprinted into a cache key, and be interpreted by any
scheduler backend.  The serialized form is backward compatible: the three
original kinds with at most jitter produce byte-identical ``to_dict`` /
``fingerprint`` output to the flat pre-hierarchy ``WorkloadSpec``, so no
existing cache entry is invalidated; new kinds and modulators add keys only
when present.

:class:`ReleaseStream` is the one shared driver that turns a spec into
scheduled simulator events.  Every backend (DARIS, RTGPU, Clockwork, the
batching server) consumes it instead of hand-rolling its own arrival loop,
which is what makes a new arrival kind a one-file change.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import (
    Callable,
    ClassVar,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

import numpy as np

from repro.sim.rng import RngFactory
from repro.sim.simulator import Simulator

#: Base arrival kinds a :class:`WorkloadSpec` can name.
ARRIVAL_KINDS = ("periodic", "poisson", "saturated", "mmpp", "trace")


class ArrivalEvent:
    """A single job arrival produced by an arrival process.

    A ``__slots__`` value type rather than a frozen dataclass: one instance
    is created per generated release, so construction cost is the floor of
    every workload benchmark.  Equality and hashing follow the historical
    ``(index, time)`` field tuple.
    """

    __slots__ = ("index", "time")

    def __init__(self, index: int, time: float):
        self.index = index
        self.time = time

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArrivalEvent):
            return NotImplemented
        return self.index == other.index and self.time == other.time

    def __hash__(self) -> int:
        return hash((self.index, self.time))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArrivalEvent(index={self.index!r}, time={self.time!r})"


class ArrivalProcess:
    """Common machinery shared by every concrete arrival process.

    Subclasses implement :meth:`next_arrival`; generation is lazy — each call
    produces exactly the next event, so driving a large horizon never
    materializes the whole release list.  A finite process (trace replay)
    signals exhaustion by returning events at ``time = inf``, which every
    horizon-bounded consumer treats as "past the horizon".

    ``chunk_safe`` marks a process that may be generated *ahead* of its
    consumer with no observable effect — either it draws no randomness at
    all, or it draws from an RNG stream it owns exclusively, so pre-drawing
    future values cannot perturb any other consumer's sequence.  Batched
    modulators (the diurnal inverter) use it to decide whether buffering the
    base process is allowed.
    """

    chunk_safe: bool = False

    def next_arrival(self) -> ArrivalEvent:
        """Produce the next arrival event."""
        raise NotImplementedError

    def prepare(self, horizon: float) -> None:
        """Hook called once before generating events up to ``horizon``.

        Batched implementations pre-draw RNG chunks here.  In batched mode
        the caller is expected to consume :meth:`events` to completion —
        chunks drawn from *shared* streams are sized to the guaranteed
        consumption for ``horizon``, which an abandoned iteration would
        undercut.  The default is a no-op.
        """

    def events(self, horizon: float) -> Iterator[ArrivalEvent]:
        """Lazily yield arrivals with ``time <= horizon``, in order."""
        self.prepare(horizon)
        while True:
            event = self.next_arrival()
            if event.time > horizon:
                return
            yield event

    def drive(
        self,
        simulator: Simulator,
        horizon: float,
        callback: Callable[[ArrivalEvent], None],
    ) -> int:
        """Schedule all arrivals up to ``horizon`` on ``simulator``.

        Returns the number of arrivals scheduled.  The callback receives the
        :class:`ArrivalEvent`; it is invoked at the arrival time.  Releases
        are bulk-inserted (append + one heapify) through
        :meth:`Simulator.schedule_batch`, which pops identically to the
        historical per-event pushes but costs O(n) instead of O(n log n).
        """
        return simulator.schedule_batch(
            (event.time, -1, lambda _sim, ev=event: callback(ev))
            for event in self.events(horizon)
        )


class PeriodicArrival(ArrivalProcess):
    """Generates job releases every ``period`` ms starting at ``phase``.

    Optional release jitter models the small variability of a real-time
    pipeline's sensor/frame arrival; jitter is bounded to stay strictly below
    one period so job indices remain in release order.

    Jitter draws come from a *shared* stream (consumed across tasks in task
    order), so batching them must never over-draw: :meth:`prepare` chunks
    exactly the draws whose consumption is guaranteed for the horizon —
    every index whose jittered time cannot exceed the horizon is certainly
    generated, plus the one event that terminates the iteration — and any
    draws beyond the chunk fall back to scalar calls on the same generator.
    The chunk is bitwise identical to the scalar sequence
    (``rng.uniform(0, j, size=k)`` equals ``k`` successive scalar draws), so
    release times are unchanged draw-for-draw.
    """

    def __init__(
        self,
        period: float,
        phase: float = 0.0,
        jitter: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if jitter < 0 or jitter >= period:
            raise ValueError(f"jitter must be in [0, period), got {jitter}")
        self.period = float(period)
        self.phase = float(phase)
        self.jitter = float(jitter)
        self._rng = rng
        self._index = 0
        self._chunk: List[float] = []
        self._chunk_pos = 0
        self.chunk_safe = rng is None or self.jitter == 0.0

    def nominal_release(self, index: int) -> float:
        """Release time of job ``index`` without jitter."""
        return self.phase + index * self.period

    def prepare(self, horizon: float) -> None:
        """Pre-draw the jitter chunk guaranteed to be consumed by ``horizon``."""
        if (
            self.jitter <= 0.0
            or self._rng is None
            or not ReleaseStream.batched_draws_enabled
            or self._chunk_pos < len(self._chunk)
            or not math.isfinite(horizon)
        ):
            return
        # Index i is *certainly* generated while nominal(i) + jitter <=
        # horizon (its jittered time cannot exceed the horizon), and the
        # consumer always generates one event past the last certain index
        # before stopping.  Walk the exact float expression to the first
        # uncertain index: the estimate is off by at most a step or two.
        period, phase, jitter = self.period, self.phase, self.jitter
        first = self._index
        estimate = int((horizon - jitter - phase) / period) if period > 0 else 0
        index = max(first, estimate - 2)
        while phase + index * period + jitter <= horizon:
            index += 1
        while index > first and phase + (index - 1) * period + jitter > horizon:
            index -= 1
        count = max(index - first + 1, 1)
        self._chunk = self._rng.uniform(0.0, jitter, size=count).tolist()
        self._chunk_pos = 0

    def next_arrival(self) -> ArrivalEvent:
        """Produce the next arrival (with jitter applied if configured)."""
        index = self._index
        base = self.phase + index * self.period
        offset = 0.0
        if self.jitter > 0 and self._rng is not None:
            pos = self._chunk_pos
            if pos < len(self._chunk):
                offset = self._chunk[pos]
                self._chunk_pos = pos + 1
            else:
                offset = float(self._rng.uniform(0.0, self.jitter))
        self._index = index + 1
        return ArrivalEvent(index, base + offset)


class PoissonArrival(ArrivalProcess):
    """Memoryless arrival process with a given mean rate (jobs per second).

    When :attr:`chunk_safe` is set (the generator is exclusively owned, as
    the per-task ``poisson-arrivals[i]`` streams are) and batched draws are
    enabled, inter-arrival gaps are drawn in chunks:
    ``rng.exponential(scale, size=k)`` is bitwise identical to ``k``
    successive scalar draws, and over-drawing an exclusive stream is
    unobservable, so the release times are unchanged draw-for-draw.
    """

    #: Chunk size for refills after the horizon-sized initial chunk.
    _REFILL = 256

    def __init__(self, rate_jps: float, rng: np.random.Generator, start: float = 0.0):
        if rate_jps <= 0:
            raise ValueError(f"rate must be positive, got {rate_jps}")
        self.rate_jps = float(rate_jps)
        self._rng = rng
        self._time = float(start)
        self._index = 0
        self._chunk: List[float] = []
        self._chunk_pos = 0
        self._batch = 0

    def prepare(self, horizon: float) -> None:
        if not self.chunk_safe or not ReleaseStream.batched_draws_enabled:
            self._batch = 0
            return
        scale = 1000.0 / self.rate_jps
        if math.isfinite(horizon) and horizon > self._time:
            expected = (horizon - self._time) / scale
            self._batch = int(expected * 1.05) + 64
        else:
            self._batch = self._REFILL

    def next_arrival(self) -> ArrivalEvent:
        """Draw the next arrival using exponential inter-arrival times."""
        pos = self._chunk_pos
        if pos < len(self._chunk):
            gap_ms = self._chunk[pos]
            self._chunk_pos = pos + 1
        elif self._batch:
            self._chunk = self._rng.exponential(
                1000.0 / self.rate_jps, size=self._batch
            ).tolist()
            self._batch = self._REFILL
            gap_ms = self._chunk[0]
            self._chunk_pos = 1
        else:
            gap_ms = float(self._rng.exponential(1000.0 / self.rate_jps))
        time = self._time + gap_ms
        self._time = time
        index = self._index
        self._index = index + 1
        return ArrivalEvent(index, time)

    def next_times(self, count: int) -> List[float]:
        """Times of the next ``count`` arrivals, without the per-event objects.

        Consumes the gap stream exactly like ``count`` successive
        :meth:`next_arrival` calls — same draws, same sequential
        ``time += gap`` fold — so the produced times are bit-identical.
        Buffered consumers (the diurnal inverter) use it to skip one
        method call and one :class:`ArrivalEvent` allocation per event.
        """
        times: List[float] = []
        append = times.append
        time = self._time
        scale = 1000.0 / self.rate_jps
        rng = self._rng
        while len(times) < count:
            pos = self._chunk_pos
            chunk = self._chunk
            if pos >= len(chunk):
                if self._batch:
                    chunk = rng.exponential(scale, size=self._batch).tolist()
                    self._chunk = chunk
                    self._batch = self._REFILL
                    pos = 0
                else:
                    time += float(rng.exponential(scale))
                    append(time)
                    continue
            take = min(len(chunk) - pos, count - len(times))
            for gap_ms in chunk[pos : pos + take]:
                time += gap_ms
                append(time)
            self._chunk_pos = pos + take
        self._time = time
        self._index += count
        return times


def _validate_mmpp_phases(rates: Sequence[float], dwells: Sequence[float]) -> None:
    """The MMPP phase constraints, shared by the spec and runtime layers."""
    if len(rates) < 2 or len(rates) != len(dwells):
        raise ValueError("mmpp needs >= 2 phases with one dwell time per rate")
    if any(rate < 0 for rate in rates) or not any(rate > 0 for rate in rates):
        raise ValueError("mmpp phase rates must be >= 0 with at least one > 0")
    if any(dwell <= 0 for dwell in dwells):
        raise ValueError("mmpp phase dwell times must be positive")


class MmppArrival(ArrivalProcess):
    """N-phase Markov-modulated Poisson process (bursty arrivals).

    The process cycles through ``len(rates_jps)`` phases; while in phase
    ``p`` it emits Poisson arrivals at ``rates_jps[p]`` and holds the phase
    for an exponentially distributed dwell with mean ``dwell_ms[p]``.  With
    two phases (a quiet rate and a burst rate) this is the classic on/off
    bursty-load model; more phases give multi-level load regimes.  A phase
    rate of zero is a pure "off" period.

    Phase switches exploit memorylessness: the pending inter-arrival draw is
    discarded at a switch, which is statistically exact for exponential gaps
    and keeps generation deterministic per RNG stream.

    Batched mode (exclusive stream + :attr:`ReleaseStream.batched_draws_enabled`)
    pre-draws chunks of *standard* exponentials and applies the per-draw
    scale as a scalar multiply: ``rng.exponential(s)`` computes exactly
    ``rng.standard_exponential() * s``, so the interleaved dwell/gap draws
    stay bitwise identical while the per-draw RNG call cost disappears.
    """

    _REFILL = 256

    def __init__(
        self,
        rates_jps: Sequence[float],
        dwell_ms: Sequence[float],
        rng: np.random.Generator,
        start: float = 0.0,
    ):
        rates = tuple(float(rate) for rate in rates_jps)
        dwells = tuple(float(dwell) for dwell in dwell_ms)
        _validate_mmpp_phases(rates, dwells)
        self.rates_jps = rates
        self.dwell_ms = dwells
        self._rng = rng
        self._time = float(start)
        self._index = 0
        self._phase = 0
        self._dwell_left: Optional[float] = None
        self._chunk: List[float] = []
        self._chunk_pos = 0
        self._batch = 0

    def prepare(self, horizon: float) -> None:
        if not self.chunk_safe or not ReleaseStream.batched_draws_enabled:
            self._batch = 0
            return
        if math.isfinite(horizon) and horizon > self._time:
            # One draw per arrival plus two per phase switch, at the
            # time-averaged rates; the estimate only sizes the first chunk.
            mean_rate = sum(self.rates_jps) / len(self.rates_jps)
            mean_dwell = sum(self.dwell_ms) / len(self.dwell_ms)
            span = horizon - self._time
            expected = span * mean_rate / 1000.0 + 2.0 * span / mean_dwell
            self._batch = int(expected * 1.05) + 64
        else:
            self._batch = self._REFILL

    def _next_std_exp(self) -> float:
        """Next standard-exponential draw from the chunk (refilling it)."""
        pos = self._chunk_pos
        if pos < len(self._chunk):
            self._chunk_pos = pos + 1
            return self._chunk[pos]
        batch = self._batch
        if not batch:  # batching turned off with a drained chunk
            return float(self._rng.standard_exponential())
        self._chunk = self._rng.standard_exponential(size=batch).tolist()
        self._batch = self._REFILL
        self._chunk_pos = 1
        return self._chunk[0]

    def next_arrival(self) -> ArrivalEvent:
        batched = self._batch or self._chunk_pos < len(self._chunk)
        while True:
            if self._dwell_left is None:
                if batched:
                    self._dwell_left = self._next_std_exp() * self.dwell_ms[self._phase]
                else:
                    self._dwell_left = float(
                        self._rng.exponential(self.dwell_ms[self._phase])
                    )
            rate = self.rates_jps[self._phase]
            if rate > 0:
                if batched:
                    gap = self._next_std_exp() * (1000.0 / rate)
                else:
                    gap = float(self._rng.exponential(1000.0 / rate))
            else:
                gap = math.inf
            if gap <= self._dwell_left:
                self._dwell_left -= gap
                self._time += gap
                index = self._index
                self._index = index + 1
                return ArrivalEvent(index, self._time)
            self._time += self._dwell_left
            self._dwell_left = None
            self._phase = (self._phase + 1) % len(self.rates_jps)


class TraceArrival(ArrivalProcess):
    """Replays an explicit, sorted list of release times (trace replay).

    ``offset_ms`` shifts the whole trace (a task's phase); past the last
    recorded release the process is exhausted and yields ``inf`` events,
    which horizon-bounded consumers treat as "no more arrivals".
    """

    chunk_safe = True  # replays recorded times; no randomness to perturb

    def __init__(self, times_ms: Sequence[float], offset_ms: float = 0.0):
        times = tuple(float(time) for time in times_ms)
        if not times:
            raise ValueError("a trace needs at least one release time")
        if any(time < 0 for time in times):
            raise ValueError("trace release times must be non-negative")
        if any(later < earlier for earlier, later in zip(times, times[1:])):
            raise ValueError("trace release times must be sorted (non-decreasing)")
        self.times_ms = times
        self.offset_ms = float(offset_ms)
        self._index = 0

    def next_arrival(self) -> ArrivalEvent:
        index = self._index
        self._index += 1
        if index >= len(self.times_ms):
            return ArrivalEvent(index=index, time=math.inf)
        return ArrivalEvent(index=index, time=self.offset_ms + self.times_ms[index])


class JitteredArrival(ArrivalProcess):
    """Bounded-jitter modulator: adds ``uniform(0, jitter_ms)`` per release.

    Wraps any base process.  Successive jittered times are clamped to be
    non-decreasing (jitter can exceed a stochastic base's inter-arrival gap),
    so release order always matches index order.  Periodic bases do not take
    this path — :class:`PeriodicArrival` carries its own (historical,
    draw-for-draw identical) jitter.
    """

    def __init__(self, base: ArrivalProcess, jitter_ms: float, rng: np.random.Generator):
        if jitter_ms <= 0:
            raise ValueError("jitter_ms must be positive for a jitter modulator")
        self._base = base
        self.jitter_ms = float(jitter_ms)
        self._rng = rng
        self._last = -math.inf

    def prepare(self, horizon: float) -> None:
        # The jitter draws themselves cannot be chunked: they come from the
        # shared jitter stream and the draw count is stochastic (one per
        # *generated* base event), so no consumption bound exists.  The base
        # still gets its own chunking chance.
        self._base.prepare(horizon)

    def next_arrival(self) -> ArrivalEvent:
        event = self._base.next_arrival()
        if math.isinf(event.time):
            return event
        time = event.time + float(self._rng.uniform(0.0, self.jitter_ms))
        time = max(time, self._last)
        self._last = time
        return ArrivalEvent(index=event.index, time=time)


class DiurnalArrival(ArrivalProcess):
    """Diurnal rate modulator: time-rescales a base process through a profile.

    The base process generates arrivals in *operational time* at its nominal
    rate; each arrival is mapped through the inverse cumulative rate profile
    ``Λ⁻¹``, so the instantaneous arrival rate becomes ``nominal x
    factor(t)``.  The mapping is strictly monotone, preserving order, and
    uses no randomness of its own — the modulated process is exactly as
    deterministic per seed as its base.
    """

    #: Base events buffered (and Newton-seeded in one numpy pass) per refill.
    _BUFFER = 512

    def __init__(self, base: ArrivalProcess, profile: "DiurnalModulator"):
        self._base = base
        self.profile = profile
        self._last = -math.inf
        self.chunk_safe = base.chunk_safe
        self._buffered = False
        self._resolved: List[float] = []
        self._pos = 0
        self._first_index = 0
        self._tail: Optional[ArrivalEvent] = None
        # Constants of the inlined crossing scan (see next_arrival), computed
        # with the exact expressions ``_sin_crossing`` uses so the inlined
        # predicate stays bitwise identical.  Meaningful for sin profiles
        # only, which is the only shape the buffered path is gated to.
        self._angular = 2.0 * math.pi / profile.period_ms
        self._coeff = profile.amplitude / self._angular
        self._slack = profile.amplitude * profile.period_ms / math.pi

    def prepare(self, horizon: float) -> None:
        # The base generates in operational time; events up to the real-time
        # horizon correspond to base times up to Λ(horizon) (the estimate
        # only sizes the base's chunks, so float slop is irrelevant).
        if math.isfinite(horizon):
            self._base.prepare(self.profile.cumulative(horizon))
        else:
            self._base.prepare(horizon)
        # Buffered vectorized inversion needs a drive-ahead-safe base (the
        # buffer over-pulls past the consumer) and the Newton sin path: the
        # numpy pass only produces *candidates*, the per-event crossing scan
        # (scalar libm, bitwise-identical to the reference bisection) does
        # the exact inversion.
        self._buffered = (
            self.chunk_safe
            and ReleaseStream.batched_draws_enabled
            and DiurnalModulator.newton_enabled
            and self.profile.shape == "sin"
            and 0.0 < self.profile.amplitude <= 0.9
        )

    def _refill(self) -> None:
        base = self._base
        bulk = getattr(base, "next_times", None)
        if bulk is not None:
            # Infinite bases with a bulk accessor (Poisson) fill the buffer
            # without one ArrivalEvent and one method call per base event.
            self._first_index = base._index
            times = bulk(self._BUFFER)
        else:
            times = []
            append = times.append
            first = -1
            for _ in range(self._BUFFER):
                event = base.next_arrival()
                if math.isinf(event.time):
                    # Base exhausted: hold the terminal event, stop buffering.
                    self._tail = event
                    self._buffered = False
                    break
                if first < 0:
                    first = event.index
                append(event.time)
            self._first_index = first
        self._pos = 0
        if not times:
            self._resolved = times
            return
        candidates = self.profile._sin_newton_candidates(np.asarray(times)).tolist()
        # Resolve the whole buffer's crossings in one tight loop —
        # ``_sin_crossing`` inlined with everything hoisted to locals, paid
        # once per 512 events instead of per ``next_arrival`` call.  Same
        # expressions, same evaluation order as the method — bitwise
        # identical (the per-event monotonic clamp stays in next_arrival,
        # where consumption order is known).
        coeff = self._coeff
        angular = self._angular
        slack = self._slack
        bisect = self.profile._sin_bisect
        cos = math.cos
        nextafter = math.nextafter
        inf = math.inf
        resolved = []
        append = resolved.append
        for pos, target in enumerate(times):
            low0 = target - slack
            if low0 < 0.0:
                low0 = 0.0
            high0 = target + 1e-12
            candidate = candidates[pos]
            if candidate < low0:
                candidate = low0
            elif candidate > high0:
                candidate = high0
            time = None
            if candidate + coeff * (1.0 - cos(angular * candidate)) >= target:
                h = candidate
                for _ in range(64):
                    l = nextafter(h, -inf)
                    if l + coeff * (1.0 - cos(angular * l)) < target:
                        if l >= low0:
                            time = 0.5 * (l + h)
                        break
                    h = l
            else:
                l = candidate
                for _ in range(64):
                    h = nextafter(l, inf)
                    if h + coeff * (1.0 - cos(angular * h)) >= target:
                        if l >= low0:
                            time = 0.5 * (l + h)
                        break
                    l = h
            if time is None:  # pathological bracket: fall back to the reference
                time = bisect(target)
            append(time)
        self._resolved = resolved

    def next_arrival(self) -> ArrivalEvent:
        pos = self._pos
        resolved = self._resolved
        if pos >= len(resolved):
            if self._buffered:
                self._refill()
                pos = self._pos
                resolved = self._resolved
            if pos >= len(resolved):
                # Scalar path: buffering off, or the base is exhausted.
                if self._tail is not None:
                    event, self._tail = self._tail, None
                    return event
                event = self._base.next_arrival()
                if math.isinf(event.time):
                    return event
                # The numeric inversion is exact to the reference bisection;
                # clamp so a pair of near-coincident base events can never
                # come back inverted.
                time = max(self.profile.inverse_cumulative(event.time), self._last)
                self._last = time
                return ArrivalEvent(event.index, time)
        time = resolved[pos]
        self._pos = pos + 1
        last = self._last
        if time < last:
            time = last
        else:
            self._last = time
        return ArrivalEvent(self._first_index + pos, time)


# --------------------------------------------------------------------------
# Declarative spec layer: kind-tagged base processes plus modulators.
# --------------------------------------------------------------------------

#: ``kind`` tag -> base process class, filled in by ``_register_base``.
_BASE_KINDS: Dict[str, Type["BaseProcess"]] = {}


def _params_to_dict(spec) -> Dict[str, object]:
    """Dataclass fields as a JSON-safe dict (tuples become lists)."""
    data: Dict[str, object] = {}
    for spec_field in fields(spec):
        value = getattr(spec, spec_field.name)
        data[spec_field.name] = list(value) if isinstance(value, tuple) else value
    return data


def _params_from_dict(cls, data: Mapping[str, object]):
    """Rebuild a dataclass from :func:`_params_to_dict` output.

    Missing keys fall back to the field defaults, so older serialized specs
    (and hand-written sweep grids) stay loadable as new fields are added.
    """
    kwargs = {}
    for spec_field in fields(cls):
        if spec_field.name not in data:
            continue
        value = data[spec_field.name]
        kwargs[spec_field.name] = tuple(value) if isinstance(value, list) else value
    return cls(**kwargs)


@dataclass(frozen=True)
class BaseProcess:
    """One kind-tagged base arrival process of a :class:`WorkloadSpec`.

    Class attributes describe the kind's capabilities:

    * ``kind`` — the tag, one of :data:`ARRIVAL_KINDS`.
    * ``rate_driven`` — the process is parameterized by a task's mean rate,
      so rate modulators (jitter, diurnal profiles) can wrap it.
    * ``randomized`` — generation draws from an RNG, so the request seed
      shapes the release times (the engine's seed-replication axis cares).
    """

    kind: ClassVar[str] = ""
    rate_driven: ClassVar[bool] = True
    randomized: ClassVar[bool] = False

    def params(self) -> Dict[str, object]:
        """The kind's own parameters (empty for parameterless kinds)."""
        return _params_to_dict(self)

    def build(
        self,
        period_ms: float,
        phase_ms: float,
        rng: Optional[np.random.Generator],
    ) -> ArrivalProcess:
        """Concrete process for one task-shaped stream (period/phase)."""
        raise NotImplementedError


def _register_base(cls: Type[BaseProcess]) -> Type[BaseProcess]:
    if not cls.kind or cls.kind not in ARRIVAL_KINDS:
        raise ValueError(f"{cls.__name__} must set a kind from ARRIVAL_KINDS")
    _BASE_KINDS[cls.kind] = cls
    return cls


@_register_base
@dataclass(frozen=True)
class PeriodicProcess(BaseProcess):
    """Releases at each task's own period/phase (the paper's native model)."""

    kind: ClassVar[str] = "periodic"

    def build(self, period_ms, phase_ms, rng):
        return PeriodicArrival(period=period_ms, phase=phase_ms)


@_register_base
@dataclass(frozen=True)
class PoissonProcess(BaseProcess):
    """Memoryless releases at each task's mean rate (aperiodic load)."""

    kind: ClassVar[str] = "poisson"
    randomized: ClassVar[bool] = True

    def build(self, period_ms, phase_ms, rng):
        if rng is None:
            raise ValueError("poisson arrivals need an rng for reproducibility")
        return PoissonArrival(rate_jps=1000.0 / period_ms, rng=rng, start=phase_ms)


@_register_base
@dataclass(frozen=True)
class SaturatedProcess(BaseProcess):
    """Requests always pending — no arrival process at all."""

    kind: ClassVar[str] = "saturated"
    rate_driven: ClassVar[bool] = False

    def build(self, period_ms, phase_ms, rng):
        raise ValueError("saturated workloads have no arrival process")


@_register_base
@dataclass(frozen=True)
class MmppProcess(BaseProcess):
    """Bursty load: an N-phase Markov-modulated Poisson process.

    ``rate_factors`` scale the driven task's mean rate per phase, so one
    spec composes with any task set (a factor of 3.0 means "3x the nominal
    rate while this phase holds"); ``dwell_ms`` gives each phase's mean
    exponential dwell.  The default is a two-phase quiet/burst profile whose
    time-averaged rate equals the nominal rate (0.5 for 400 ms, 3.0 for
    100 ms).
    """

    kind: ClassVar[str] = "mmpp"
    randomized: ClassVar[bool] = True
    rate_factors: Tuple[float, ...] = (0.5, 3.0)
    dwell_ms: Tuple[float, ...] = (400.0, 100.0)

    def __post_init__(self) -> None:
        if not isinstance(self.rate_factors, tuple):
            object.__setattr__(self, "rate_factors", tuple(self.rate_factors))
        if not isinstance(self.dwell_ms, tuple):
            object.__setattr__(self, "dwell_ms", tuple(self.dwell_ms))
        _validate_mmpp_phases(self.rate_factors, self.dwell_ms)

    def build(self, period_ms, phase_ms, rng):
        if rng is None:
            raise ValueError("mmpp arrivals need an rng for reproducibility")
        nominal_jps = 1000.0 / period_ms
        return MmppArrival(
            rates_jps=tuple(factor * nominal_jps for factor in self.rate_factors),
            dwell_ms=self.dwell_ms,
            rng=rng,
            start=phase_ms,
        )


@_register_base
@dataclass(frozen=True)
class TraceProcess(BaseProcess):
    """Replay explicit release times (each driven stream replays the trace,
    shifted by its own phase).  Deterministic: the seed never matters."""

    kind: ClassVar[str] = "trace"
    rate_driven: ClassVar[bool] = False
    times_ms: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.times_ms, tuple):
            object.__setattr__(self, "times_ms", tuple(self.times_ms))
        # Construction-time validation mirrors TraceArrival's (fail early,
        # at spec build rather than mid-scenario).
        TraceArrival(self.times_ms)

    def build(self, period_ms, phase_ms, rng):
        return TraceArrival(self.times_ms, offset_ms=phase_ms)


def base_process_from_dict(
    kind: str, params: Optional[Mapping[str, object]] = None
) -> BaseProcess:
    """Rebuild a kind-tagged base process from its serialized parameters."""
    process_cls = _BASE_KINDS.get(kind)
    if process_cls is None:
        raise ValueError(
            f"unknown arrival kind {kind!r}; known: {', '.join(ARRIVAL_KINDS)}"
        )
    if not params:
        return process_cls()
    return _params_from_dict(process_cls, params)


@dataclass(frozen=True)
class DiurnalModulator:
    """Diurnal rate profile wrapping any rate-driven base process.

    The instantaneous rate is ``nominal x factor(t)`` where ``factor`` is a
    periodic profile with mean 1 (the task's average demand is preserved):

    * ``shape="sin"`` — ``factor(t) = 1 + amplitude * sin(2πt / period_ms)``
      with ``0 <= amplitude < 1`` (smooth day/night swing);
    * ``shape="piecewise"`` — ``levels`` holds equal-width rate multipliers
      across one period, normalized internally to mean 1 (step profiles,
      e.g. quiet night / morning ramp / evening peak).

    Modulation is applied by time-rescaling through the cumulative profile,
    which needs no randomness and preserves event order for every base.
    """

    #: Class toggle: Newton-seeded inversion for the sinusoidal profile.
    #: The 64-step reference bisection remains both the disabled path and
    #: the runtime fallback; the Newton path reproduces its result *bitwise*
    #: (see ``_sin_crossing``), so flipping the toggle never changes a trace.
    newton_enabled: ClassVar[bool] = True

    period_ms: float = 1000.0
    amplitude: float = 0.5
    shape: str = "sin"
    levels: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.period_ms <= 0:
            raise ValueError("diurnal period_ms must be positive")
        if self.shape not in ("sin", "piecewise"):
            raise ValueError(f"diurnal shape must be 'sin' or 'piecewise', got {self.shape!r}")
        if self.shape == "sin":
            if not 0.0 <= self.amplitude < 1.0:
                raise ValueError("sinusoidal amplitude must be in [0, 1)")
            if self.levels is not None:
                raise ValueError("levels apply to piecewise profiles only")
            normalized: Optional[Tuple[float, ...]] = None
        else:
            if self.levels is None:
                raise ValueError("piecewise diurnal profiles need levels")
            if not isinstance(self.levels, tuple):
                object.__setattr__(self, "levels", tuple(self.levels))
            if not self.levels or any(level < 0 for level in self.levels):
                raise ValueError("piecewise levels must be non-negative (>= 1 level)")
            if not any(level > 0 for level in self.levels):
                raise ValueError("at least one piecewise level must be positive")
            mean = sum(self.levels) / len(self.levels)
            normalized = tuple(level / mean for level in self.levels)
        # Cached mean-1 normalization: consulted once per generated arrival,
        # so it must not be recomputed per event.  Not a dataclass field —
        # eq/hash/fingerprint see only the user-supplied profile.
        object.__setattr__(self, "_normalized", normalized)

    def _normalized_levels(self) -> Tuple[float, ...]:
        return self._normalized

    def cumulative(self, time_ms: float) -> float:
        """``Λ(t)``: integral of the rate factor from 0 to ``time_ms``."""
        period = self.period_ms
        if self.shape == "sin":
            angular = 2.0 * math.pi / period
            return time_ms + self.amplitude / angular * (1.0 - math.cos(angular * time_ms))
        levels = self._normalized_levels()
        width = period / len(levels)
        cycles, remainder = divmod(time_ms, period)
        total = cycles * period  # mean 1 => one period integrates to itself
        for level in levels:
            if remainder <= 0:
                break
            span = min(width, remainder)
            total += level * span
            remainder -= span
        return total

    def inverse_cumulative(self, target: float) -> float:
        """``Λ⁻¹``: the real time at which the cumulative factor hits ``target``."""
        period = self.period_ms
        if self.shape == "sin":
            if (
                DiurnalModulator.newton_enabled
                and target > 0.0
                and 0.0 < self.amplitude <= 0.9
            ):
                result = self._sin_crossing(target, self._sin_newton(target))
                if result is not None:
                    return result
            return self._sin_bisect(target)
        levels = self._normalized_levels()
        width = period / len(levels)
        cycles, remainder = divmod(target, period)
        time = cycles * period
        for level in levels:
            capacity = level * width
            if remainder <= capacity:
                return time + (remainder / level if level > 0 else 0.0)
            remainder -= capacity
            time += width
        return time  # remainder ~ 0 after the last segment (float slack)

    # --------------------------------------------- sinusoidal inversion paths

    def _sin_bisect(self, target: float) -> float:
        """The reference inversion: 64 bisection steps on the slack bracket.

        cumulative(t) - t is bounded by amplitude * period / π, so the root
        is bracketed; bisection is deterministic and monotone.  64 halvings
        shrink the bracket far below one ulp, so the result is the
        round-to-even midpoint of the adjacent float pair (l, h) straddling
        the predicate boundary ``cumulative(t) >= target`` — which is what
        ``_sin_crossing`` reproduces directly.
        """
        low = max(0.0, target - self.amplitude * self.period_ms / math.pi)
        high = target + 1e-12
        for _ in range(64):
            mid = 0.5 * (low + high)
            if self.cumulative(mid) < target:
                low = mid
            else:
                high = mid
        return 0.5 * (low + high)

    def _sin_newton(self, target: float) -> float:
        """Newton candidate for ``Λ⁻¹(target)``, seeded by the linear inverse.

        Accuracy-only: the exact (bisection-identical) result comes from
        ``_sin_crossing``, so this just has to land within a few ulp.
        ``Λ' = 1 + amplitude·sin(ωt) >= 1 - amplitude > 0``, so the
        iteration is well-conditioned for the amplitudes it is gated to.
        """
        angular = 2.0 * math.pi / self.period_ms
        coeff = self.amplitude / angular
        amp = self.amplitude
        cos = math.cos
        sin = math.sin
        t = target - coeff * (1.0 - cos(angular * target))
        if t < 0.0:
            t = 0.0
        for _ in range(10):
            f = t + coeff * (1.0 - cos(angular * t)) - target
            if f == 0.0:
                break
            step = f / (1.0 + amp * sin(angular * t))
            t -= step
            if abs(step) <= 4.5e-16 * abs(t):
                break
        return t

    def _sin_newton_candidates(self, targets: "np.ndarray") -> "np.ndarray":
        """Vectorized :meth:`_sin_newton` over a batch of targets.

        numpy trig may differ from libm in the last ulp; that is fine here
        because these are only candidates — ``_sin_crossing`` does every
        exactness-bearing evaluation with ``math.cos``.
        """
        angular = 2.0 * math.pi / self.period_ms
        coeff = self.amplitude / angular
        amp = self.amplitude
        t = targets - coeff * (1.0 - np.cos(angular * targets))
        np.maximum(t, 0.0, out=t)
        for _ in range(5):
            f = t + coeff * (1.0 - np.cos(angular * t)) - targets
            t -= f / (1.0 + amp * np.sin(angular * t))
        return t

    def _sin_crossing(self, target: float, candidate: float) -> Optional[float]:
        """Bisection-identical inversion from a near-converged candidate.

        Locates the adjacent float pair (l, h) with ``cumulative(l) <
        target <= cumulative(h)`` by ulp-stepping from the candidate, then
        returns the same round-to-even midpoint the reference bisection
        converges to.  Returns ``None`` (caller falls back to the real
        bisection) when the candidate is too far off, or when the crossing
        lies at/below the bracket floor ``max(0, target - slack)`` — there
        the bisection's never-evaluated endpoint takes over and its result
        is not the crossing midpoint.
        """
        period = self.period_ms
        angular = 2.0 * math.pi / period
        coeff = self.amplitude / angular
        low0 = target - self.amplitude * period / math.pi
        if low0 < 0.0:
            low0 = 0.0
        high0 = target + 1e-12
        if candidate < low0:
            candidate = low0
        elif candidate > high0:
            candidate = high0
        cos = math.cos
        nextafter = math.nextafter
        inf = math.inf
        # Predicate: cumulative(t) >= target, with cumulative() inlined
        # bitwise (same expression, same evaluation order).
        if candidate + coeff * (1.0 - cos(angular * candidate)) >= target:
            h = candidate
            for _ in range(64):
                l = nextafter(h, -inf)
                if l + coeff * (1.0 - cos(angular * l)) < target:
                    if l < low0:
                        return None
                    return 0.5 * (l + h)
                h = l
            return None
        l = candidate
        for _ in range(64):
            h = nextafter(l, inf)
            if h + coeff * (1.0 - cos(angular * h)) >= target:
                if l < low0:
                    return None
                return 0.5 * (l + h)
            l = h
        return None


class WorkloadSpec:
    """Declarative arrival-process half of a scenario.

    A scenario is a task set (what runs, at which rates and deadlines) plus a
    workload (how jobs reach the scheduler).  The spec is a pure value —
    hashable, JSON round-trippable, fingerprintable — composed of a
    kind-tagged :class:`BaseProcess` plus optional modulators:

    * base kinds: ``periodic`` (the paper's native soft real-time model),
      ``poisson`` (memoryless at each task's mean rate; request servers use
      one aggregate stream), ``saturated`` (requests always waiting, rates
      ignored), ``mmpp`` (N-phase bursty load), ``trace`` (explicit replay);
    * ``jitter_ms`` — bounded uniform release jitter on any rate-driven base
      (must stay strictly below every driven period for periodic bases);
    * ``diurnal`` — a :class:`DiurnalModulator` rate profile on any
      rate-driven base.

    Construction accepts either the kind tag (``WorkloadSpec("poisson")``,
    backward compatible with the flat spec) or an explicit base process
    (``WorkloadSpec(base=MmppProcess(...))``); :meth:`mmpp`, :meth:`trace`,
    :meth:`with_jitter` and :meth:`with_diurnal` are the composable
    shorthands.
    """

    def __init__(
        self,
        arrival: Optional[str] = None,
        jitter_ms: float = 0.0,
        *,
        base: Optional[BaseProcess] = None,
        diurnal: Optional[DiurnalModulator] = None,
    ):
        if base is None:
            base = base_process_from_dict(arrival if arrival is not None else "periodic")
        elif not isinstance(base, BaseProcess):
            raise TypeError(f"base must be a BaseProcess, got {type(base).__name__}")
        elif arrival is not None and arrival != base.kind:
            raise ValueError(f"arrival {arrival!r} contradicts base kind {base.kind!r}")
        jitter_ms = float(jitter_ms)
        if jitter_ms < 0:
            raise ValueError("jitter_ms must be non-negative")
        if jitter_ms and not base.rate_driven:
            raise ValueError(
                f"jitter_ms applies to rate-driven arrivals only, not {base.kind!r}"
            )
        if diurnal is not None:
            if not isinstance(diurnal, DiurnalModulator):
                raise TypeError("diurnal must be a DiurnalModulator")
            if not base.rate_driven:
                raise ValueError(
                    f"diurnal profiles apply to rate-driven arrivals only, not {base.kind!r}"
                )
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "jitter_ms", jitter_ms)
        object.__setattr__(self, "diurnal", diurnal)

    # Value semantics: the spec is frozen after construction.
    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("WorkloadSpec is immutable")

    def __delattr__(self, name: str) -> None:
        raise AttributeError("WorkloadSpec is immutable")

    def _key(self) -> Tuple[object, ...]:
        return (self.base, self.jitter_ms, self.diurnal)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WorkloadSpec):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        parts = [repr(self.base)]
        if self.jitter_ms:
            parts.append(f"jitter_ms={self.jitter_ms!r}")
        if self.diurnal is not None:
            parts.append(f"diurnal={self.diurnal!r}")
        return f"WorkloadSpec({', '.join(parts)})"

    # ------------------------------------------------------------ properties

    @property
    def arrival(self) -> str:
        """The base process's kind tag (one of :data:`ARRIVAL_KINDS`)."""
        return self.base.kind

    @property
    def is_default(self) -> bool:
        """True for the plain periodic workload every legacy scenario used."""
        return self == PERIODIC_WORKLOAD

    @property
    def saturated(self) -> bool:
        """True when requests are always pending (rates ignored)."""
        return self.base.kind == "saturated"

    @property
    def randomized(self) -> bool:
        """True when the request seed shapes the release times.

        Randomized base kinds (poisson, mmpp) and the jitter modulator draw
        from seeded RNG streams; periodic, saturated, trace and diurnal
        modulation are fully deterministic.
        """
        return self.base.randomized or self.jitter_ms > 0

    # -------------------------------------------------------------- builders

    @classmethod
    def mmpp(
        cls,
        rate_factors: Sequence[float] = (0.5, 3.0),
        dwell_ms: Sequence[float] = (400.0, 100.0),
        jitter_ms: float = 0.0,
        diurnal: Optional[DiurnalModulator] = None,
    ) -> "WorkloadSpec":
        """A bursty (Markov-modulated Poisson) workload."""
        return cls(
            base=MmppProcess(rate_factors=tuple(rate_factors), dwell_ms=tuple(dwell_ms)),
            jitter_ms=jitter_ms,
            diurnal=diurnal,
        )

    @classmethod
    def trace(cls, times_ms: Sequence[float]) -> "WorkloadSpec":
        """A trace-replay workload with explicit release times."""
        return cls(base=TraceProcess(times_ms=tuple(times_ms)))

    def with_jitter(self, jitter_ms: float) -> "WorkloadSpec":
        """This workload with bounded release jitter added (or replaced)."""
        return WorkloadSpec(base=self.base, jitter_ms=jitter_ms, diurnal=self.diurnal)

    def with_diurnal(
        self,
        period_ms: float = 1000.0,
        amplitude: float = 0.5,
        shape: str = "sin",
        levels: Optional[Sequence[float]] = None,
    ) -> "WorkloadSpec":
        """This workload with a diurnal rate profile added (or replaced)."""
        modulator = DiurnalModulator(
            period_ms=period_ms,
            amplitude=amplitude,
            shape=shape,
            levels=tuple(levels) if levels is not None else None,
        )
        return WorkloadSpec(base=self.base, jitter_ms=self.jitter_ms, diurnal=modulator)

    # ---------------------------------------------------------- serialization

    def label(self) -> str:
        """Short human-readable tag for report rows."""
        parts = [self.base.kind]
        if self.diurnal is not None:
            parts.append("diurnal")
        if self.jitter_ms:
            parts.append(f"j{self.jitter_ms:g}")
        return "+".join(parts)

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-safe form (doubles as the fingerprint).

        Byte-identical to the flat pre-hierarchy spec for the original three
        kinds with at most jitter (``{"arrival": ..., "jitter_ms": ...}``);
        parameterized kinds add one key named after the kind, and a diurnal
        modulator adds ``"diurnal"`` — new fields appear only when present,
        so no pre-existing cache key changes.
        """
        data: Dict[str, object] = {"arrival": self.base.kind, "jitter_ms": self.jitter_ms}
        params = self.base.params()
        if params:
            data[self.base.kind] = params
        if self.diurnal is not None:
            data["diurnal"] = _params_to_dict(self.diurnal)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "WorkloadSpec":
        """Rebuild a spec from :meth:`to_dict` output.

        Tolerant of missing optional keys (``jitter_ms`` and every newer
        field default when absent), so older serialized specs and
        hand-written JSON sweep grids stay loadable as fields are added.
        """
        arrival = str(data.get("arrival", "periodic"))
        base = base_process_from_dict(arrival, data.get(arrival))
        diurnal_data = data.get("diurnal")
        diurnal = (
            _params_from_dict(DiurnalModulator, diurnal_data)
            if diurnal_data is not None
            else None
        )
        return cls(base=base, jitter_ms=float(data.get("jitter_ms", 0.0)), diurnal=diurnal)

    def fingerprint(self) -> Dict[str, object]:
        """Canonical dictionary for cache keys (alias of :meth:`to_dict`)."""
        return self.to_dict()

    # ------------------------------------------------------------- processes

    def arrival_for_task(
        self,
        period_ms: float,
        phase_ms: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        jitter_rng: Optional[np.random.Generator] = None,
        exclusive_rng: bool = False,
    ) -> ArrivalProcess:
        """Concrete arrival process for one task-shaped release stream.

        ``rng`` feeds the base process's draws (poisson/mmpp gaps);
        ``jitter_rng`` feeds the jitter modulator and defaults to ``rng``
        (the historical single-generator behaviour).  ``exclusive_rng``
        asserts that ``rng`` is consumed by this process alone (a dedicated
        per-task stream), which permits chunked pre-drawing — over-drawing
        an exclusive stream is unobservable.  ``saturated`` workloads have
        no arrival process at all (the executor back-to-backs work), so
        asking for one is an error — callers branch on :attr:`saturated`
        first.  Randomized processes require their rng; silently running
        unrandomized would mislabel the scenario.
        """
        if jitter_rng is None:
            jitter_rng = rng
        if self.base.kind == "periodic" and self.diurnal is None:
            # The historical fast path: PeriodicArrival applies its own
            # (bounded, draw-for-draw identical) jitter.
            if self.jitter_ms > 0 and jitter_rng is None:
                raise ValueError("jittered periodic arrivals need an rng for reproducibility")
            return PeriodicArrival(
                period=period_ms, phase=phase_ms, jitter=self.jitter_ms, rng=jitter_rng
            )
        process = self.base.build(period_ms, phase_ms, rng)
        if exclusive_rng and self.base.randomized:
            process.chunk_safe = True
        if self.diurnal is not None:
            process = DiurnalArrival(process, self.diurnal)
        if self.jitter_ms > 0:
            if jitter_rng is None:
                raise ValueError("jittered arrivals need an rng for reproducibility")
            process = JitteredArrival(process, self.jitter_ms, jitter_rng)
        return process


class ReleaseStream:
    """The one shared release-driving pipeline behind every backend.

    Owns the RNG-stream discipline (via :class:`~repro.sim.rng.RngFactory`)
    and the per-task / aggregate driving loops that DARIS, RTGPU, Clockwork
    and the batching server previously each hand-rolled:

    * randomized base kinds draw per-task from the stream
      ``"{kind}-arrivals[{task_id}]"`` (``poisson-arrivals[i]`` is the
      historical name, preserved draw-for-draw);
    * jitter draws come from the single shared ``"release-jitter"`` stream,
      consumed in task order (the historical discipline);
    * aggregate mode (one request stream at a total rate, the batching
      server's shape) draws everything from ``"batching-arrivals"``.

    ``rng`` may be an :class:`RngFactory` (preferred), a bare numpy
    generator (legacy callers: that one generator feeds every stream), or
    ``None`` for fully deterministic workloads.
    """

    JITTER_STREAM = "release-jitter"
    AGGREGATE_STREAM = "batching-arrivals"

    #: Class toggle for chunked RNG draws (poisson/mmpp gap chunks, the
    #: bounded periodic-jitter chunk, the diurnal inverter's base buffer).
    #: Chunked draws reproduce the scalar sequence bitwise, so flipping the
    #: toggle never changes a release time; the reference scalar path is
    #: kept for the equivalence tests.
    batched_draws_enabled: bool = True

    def __init__(
        self,
        workload: Optional[WorkloadSpec],
        rng: Union[RngFactory, np.random.Generator, None] = None,
    ):
        self.workload = workload if workload is not None else PERIODIC_WORKLOAD
        self._factory: Optional[RngFactory] = None
        self._fixed: Optional[np.random.Generator] = None
        if isinstance(rng, RngFactory):
            self._factory = rng
        elif isinstance(rng, np.random.Generator):
            self._fixed = rng
        elif rng is not None:
            raise TypeError(f"rng must be an RngFactory or numpy Generator, got {type(rng).__name__}")

    def _stream(self, name: str) -> Optional[np.random.Generator]:
        if self._fixed is not None:
            return self._fixed
        if self._factory is not None:
            return self._factory.stream(name)
        return None

    def arrival_for(
        self, task_id: int, period_ms: float, phase_ms: float = 0.0
    ) -> ArrivalProcess:
        """The task's concrete arrival process under the stream discipline."""
        workload = self.workload
        if workload.base.randomized:
            base_rng = self._stream(f"{workload.base.kind}-arrivals[{task_id}]")
        else:
            base_rng = self._stream(self.JITTER_STREAM)
        return workload.arrival_for_task(
            period_ms=period_ms,
            phase_ms=phase_ms,
            rng=base_rng,
            jitter_rng=self._stream(self.JITTER_STREAM),
            # Factory mode gives each randomized base its own per-task
            # stream; legacy fixed-generator mode shares one generator with
            # everything, so chunked pre-drawing is only safe in the former.
            exclusive_rng=self._factory is not None,
        )

    def drive(
        self,
        simulator: Simulator,
        horizon_ms: float,
        *,
        task_id: int,
        period_ms: float,
        phase_ms: float = 0.0,
        callback: Callable[[ArrivalEvent], None],
    ) -> int:
        """Schedule one task-shaped stream's releases up to ``horizon_ms``."""
        return self.arrival_for(task_id, period_ms, phase_ms).drive(
            simulator, horizon_ms, callback
        )

    def drive_taskset(
        self,
        simulator: Simulator,
        horizon_ms: float,
        tasks: Sequence,
        callback: Callable[[object, ArrivalEvent], None],
    ) -> int:
        """Drive every task of a task set; ``callback(task, event)`` per release.

        Tasks must expose ``task_id`` / ``period_ms`` / ``phase_ms`` (the
        :class:`~repro.rt.task.TaskSpec` surface).  Streams are driven in
        task order, which pins the shared-jitter draw order and the
        simulator insertion order exactly as the historical per-backend
        loops did.
        """
        released = 0
        for task in tasks:
            released += self.drive(
                simulator,
                horizon_ms,
                task_id=task.task_id,
                period_ms=task.period_ms,
                phase_ms=task.phase_ms,
                callback=lambda event, task=task: callback(task, event),
            )
        return released

    def drive_aggregate(
        self,
        simulator: Simulator,
        horizon_ms: float,
        rate_jps: float,
        callback: Callable[[ArrivalEvent], None],
    ) -> int:
        """Drive one aggregate request stream at ``rate_jps`` total demand.

        The request-server mode: the whole task set collapses into a single
        stream (no per-task identity), and every draw — gaps and jitter
        alike — comes from the ``"batching-arrivals"`` stream.
        """
        if rate_jps <= 0:
            raise ValueError("aggregate arrival rate must be positive")
        rng = self._stream(self.AGGREGATE_STREAM)
        process = self.workload.arrival_for_task(
            period_ms=1000.0 / rate_jps, phase_ms=0.0, rng=rng, jitter_rng=rng
        )
        return process.drive(simulator, horizon_ms, callback)


#: The workload every pre-backend scenario implicitly used: plain periodic
#: releases, no jitter.  Shared instance so default requests compare equal.
PERIODIC_WORKLOAD = WorkloadSpec()

#: Always-pending requests (the saturated server baselines).
SATURATED_WORKLOAD = WorkloadSpec(arrival="saturated")

#: Memoryless arrivals at each task's mean rate.
POISSON_WORKLOAD = WorkloadSpec(arrival="poisson")

#: Bursty arrivals: the default two-phase quiet/burst MMPP (mean rate 1x).
MMPP_WORKLOAD = WorkloadSpec.mmpp()

#: Day/night load: Poisson arrivals under a sinusoidal diurnal profile.
DIURNAL_WORKLOAD = POISSON_WORKLOAD.with_diurnal(period_ms=1000.0, amplitude=0.6)
