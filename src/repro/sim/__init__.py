"""Discrete-event simulation core used by the GPU model and the schedulers.

The simulator is intentionally small: a time-ordered event queue with
deterministic tie-breaking, a wall-clock abstraction expressed in
milliseconds, a seeded random-number facility with named substreams, and
periodic arrival processes for real-time workloads.
"""

from repro.sim.events import Event, EventHandle
from repro.sim.simulator import Simulator
from repro.sim.rng import RngFactory
from repro.sim.workload import (
    ArrivalEvent,
    DiurnalModulator,
    MmppArrival,
    PeriodicArrival,
    PoissonArrival,
    ReleaseStream,
    TraceArrival,
    WorkloadSpec,
)

__all__ = [
    "Event",
    "EventHandle",
    "Simulator",
    "RngFactory",
    "PeriodicArrival",
    "PoissonArrival",
    "MmppArrival",
    "TraceArrival",
    "ArrivalEvent",
    "WorkloadSpec",
    "DiurnalModulator",
    "ReleaseStream",
]
