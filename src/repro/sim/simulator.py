"""A minimal, deterministic discrete-event simulator.

Time is expressed in milliseconds throughout the code base; the choice keeps
the DNN stage execution times (a few hundred microseconds to a few
milliseconds) and the task periods (tens of milliseconds) in a comfortable
numeric range.

Cancellation is lazy (cancelled events stay in the heap and are skipped when
popped), but the simulator counts live versus cancelled events and compacts
the heap when cancelled entries dominate: the GPU engine cancels and
reschedules its completion event on every replan, which would otherwise grow
the heap linearly with the number of replans.

Heap entries are ``(key, payload)`` pairs where ``key`` is the usual
``(time, priority, seq)`` tuple and ``payload`` is either a full
:class:`Event` (cancellable, labelled, handle-backed) or a bare callback.
Fire-and-forget paths (:meth:`Simulator.schedule_callback`,
:meth:`Simulator.schedule_batch`) use the bare form: no ``Event`` object is
allocated at all, which matters because dispatch/release scheduling is one of
the hottest allocation sites of a scenario run.  Keys draw sequence numbers
from the shared event counter, so the deterministic total order is unchanged.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, List, Optional, Tuple

from repro.sim.events import Event, EventHandle, next_sequence

# Compact only once this many cancelled events have accumulated *and* they
# outnumber the live events: both conditions keep compaction amortized O(1).
_COMPACTION_MIN_CANCELLED = 64


class SimulationError(RuntimeError):
    """Raised when the simulator is used incorrectly (e.g. scheduling in the past)."""


class Simulator:
    """Discrete-event simulation loop.

    The simulator owns the virtual clock and an event heap.  Components
    schedule callbacks at absolute times or after relative delays, and the
    main loop fires them in deterministic order.
    """

    def __init__(self, start_time: float = 0.0):
        # ``now`` is a plain public attribute (read ~50k times per scenario);
        # components must treat it as read-only — only the run loops advance it.
        self.now = float(start_time)
        # Heap items are ``(key, event)`` pairs: comparing the precomputed
        # key tuples stays entirely in C, avoiding an Event.__lt__ call per
        # sift step.  Keys are unique (the sequence number is), so the
        # event itself is never compared.
        self._heap: List[tuple] = []
        self._fired = 0
        self._stopped = False
        self._cancelled_in_heap = 0
        self._compactions = 0

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._fired

    @property
    def pending_events(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._heap)

    @property
    def live_events(self) -> int:
        """Number of non-cancelled events still in the queue."""
        return len(self._heap) - self._cancelled_in_heap

    @property
    def compactions(self) -> int:
        """Number of heap compaction passes performed so far."""
        return self._compactions

    def schedule_at(
        self,
        time: float,
        callback: Callable[["Simulator"], None],
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        now = self.now
        if time < now:
            if time < now - 1e-9:
                raise SimulationError(
                    f"cannot schedule event at {time:.6f} ms, current time is {now:.6f} ms"
                )
            time = now
        event = Event(time=time, priority=priority, callback=callback, label=label)
        event.in_heap = True
        heapq.heappush(self._heap, (event._key, event))
        return EventHandle(event, self)

    def schedule_callback(
        self,
        time: float,
        callback: Callable[["Simulator"], None],
        label: str = "",
    ) -> None:
        """Schedule a fire-and-forget callback (no :class:`EventHandle`).

        Identical to :meth:`schedule_at` except that no handle — and no
        :class:`Event` object — is created: the callback itself is the heap
        payload.  Use it on hot paths where the caller never cancels the
        event.  ``label`` is accepted for signature parity but not stored.
        """
        now = self.now
        if time < now:
            if time < now - 1e-9:
                raise SimulationError(
                    f"cannot schedule event at {time:.6f} ms, current time is {now:.6f} ms"
                )
            time = now
        heapq.heappush(self._heap, ((time, 0, next_sequence()), callback))

    def schedule_after(
        self,
        delay: float,
        callback: Callable[["Simulator"], None],
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` after a relative ``delay`` in milliseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay:.6f} ms")
        return self.schedule_at(self.now + delay, callback, priority=priority, label=label)

    def schedule_batch(
        self,
        entries: Iterable[Tuple[float, int, Callable[["Simulator"], None]]],
    ) -> int:
        """Bulk-schedule fire-and-forget ``(time, priority, callback)`` entries.

        Pop order is independent of the insertion strategy because keys are
        unique (the shared sequence counter) and a heap pops uniquely-keyed
        items in sorted order regardless of its internal arrangement — so the
        cheaper of two equivalent insertions is chosen per call: n individual
        pushes (O(n log heap), right when the batch is small next to the
        resident heap, e.g. one task's releases landing among every other
        task's) or append-all + one heapify (O(n + heap), right for bulk
        loads into a small heap).  The historical always-heapify form made
        per-task scheduling quadratic in the number of tasks.  Returns the
        entry count.
        """
        heap = self._heap
        now = self.now
        staged = []
        for time, priority, callback in entries:
            if time < now:
                if time < now - 1e-9:
                    raise SimulationError(
                        f"cannot schedule event at {time:.6f} ms,"
                        f" current time is {now:.6f} ms"
                    )
                time = now
            staged.append(((time, priority, next_sequence()), callback))
        count = len(staged)
        if not count:
            return 0
        total = len(heap) + count
        if count * total.bit_length() < total:
            for item in staged:
                heapq.heappush(heap, item)
        else:
            heap.extend(staged)
            heapq.heapify(heap)
        return count

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stopped = True

    # ------------------------------------------------------------- compaction

    def _note_cancelled(self) -> None:
        """Called by :class:`EventHandle` when an in-heap event is cancelled."""
        self._cancelled_in_heap += 1
        cancelled = self._cancelled_in_heap
        if cancelled >= _COMPACTION_MIN_CANCELLED and cancelled > len(self._heap) - cancelled:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events and re-heapify.

        Pop order is unaffected: events are totally ordered by
        ``(time, priority, seq)`` with a unique sequence number, so any heap
        holding the same live events pops them in the same order.
        """
        live = [
            item
            for item in self._heap
            if type(item[1]) is not Event or not item[1].cancelled
        ]
        # In-place replacement: hot-path producers (the GPU engine) hold a
        # direct reference to the heap list, which must survive compaction.
        self._heap[:] = live
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0
        self._compactions += 1

    # ------------------------------------------------------------------- run

    def run_until(self, end_time: float) -> None:
        """Run events with timestamps strictly up to and including ``end_time``.

        The clock is advanced to ``end_time`` even if the queue drains early so
        that rate-based measurements (jobs per second) use the intended
        horizon.
        """
        self._stopped = False
        limit = end_time + 1e-12
        pop = heapq.heappop
        heap = self._heap  # compaction replaces the contents in place
        fired = 0
        while heap and not self._stopped:
            key, payload = heap[0]
            time = key[0]
            if time > limit:
                break
            pop(heap)
            if type(payload) is Event:
                payload.in_heap = False
                if payload.cancelled:
                    self._cancelled_in_heap -= 1
                    continue
                callback = payload.callback
            else:
                callback = payload
            if time > self.now:
                self.now = time
            if callback is not None:
                callback(self)
            fired += 1
        self._fired += fired
        if end_time > self.now:
            self.now = end_time

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the queue is empty or ``max_events`` events have fired."""
        self._stopped = False
        fired_here = 0
        pop = heapq.heappop
        while self._heap and not self._stopped:
            key, payload = pop(self._heap)
            if type(payload) is Event:
                payload.in_heap = False
                if payload.cancelled:
                    self._cancelled_in_heap -= 1
                    continue
                callback = payload.callback
            else:
                callback = payload
            time = key[0]
            if time > self.now:
                self.now = time
            if callback is not None:
                callback(self)
            self._fired += 1
            fired_here += 1
            if max_events is not None and fired_here >= max_events:
                break

    def peek_next_time(self) -> Optional[float]:
        """Return the timestamp of the next non-cancelled event, if any."""
        heap = self._heap
        while heap:
            key, payload = heap[0]
            if type(payload) is Event and payload.cancelled:
                heapq.heappop(heap)
                payload.in_heap = False
                self._cancelled_in_heap -= 1
                continue
            return key[0]
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now:.3f} ms, pending={len(self._heap)})"
