"""A minimal, deterministic discrete-event simulator.

Time is expressed in milliseconds throughout the code base; the choice keeps
the DNN stage execution times (a few hundred microseconds to a few
milliseconds) and the task periods (tens of milliseconds) in a comfortable
numeric range.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from repro.sim.events import Event, EventHandle


class SimulationError(RuntimeError):
    """Raised when the simulator is used incorrectly (e.g. scheduling in the past)."""


class Simulator:
    """Discrete-event simulation loop.

    The simulator owns the virtual clock and an event heap.  Components
    schedule callbacks at absolute times or after relative delays, and the
    main loop fires them in deterministic order.
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: List[Event] = []
        self._fired = 0
        self._stopped = False

    @property
    def now(self) -> float:
        """Current simulation time in milliseconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._fired

    @property
    def pending_events(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._heap)

    def schedule_at(
        self,
        time: float,
        callback: Callable[["Simulator"], None],
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now - 1e-9:
            raise SimulationError(
                f"cannot schedule event at {time:.6f} ms, current time is {self._now:.6f} ms"
            )
        event = Event(time=max(time, self._now), priority=priority, callback=callback, label=label)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def schedule_after(
        self,
        delay: float,
        callback: Callable[["Simulator"], None],
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` after a relative ``delay`` in milliseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay:.6f} ms")
        return self.schedule_at(self._now + delay, callback, priority=priority, label=label)

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stopped = True

    def run_until(self, end_time: float) -> None:
        """Run events with timestamps strictly up to and including ``end_time``.

        The clock is advanced to ``end_time`` even if the queue drains early so
        that rate-based measurements (jobs per second) use the intended
        horizon.
        """
        self._stopped = False
        while self._heap and not self._stopped:
            event = self._heap[0]
            if event.time > end_time + 1e-12:
                break
            heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = max(self._now, event.time)
            event.fire(self)
            self._fired += 1
        self._now = max(self._now, end_time)

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the queue is empty or ``max_events`` events have fired."""
        self._stopped = False
        fired_here = 0
        while self._heap and not self._stopped:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = max(self._now, event.time)
            event.fire(self)
            self._fired += 1
            fired_here += 1
            if max_events is not None and fired_here >= max_events:
                break

    def peek_next_time(self) -> Optional[float]:
        """Return the timestamp of the next non-cancelled event, if any."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now:.3f} ms, pending={len(self._heap)})"
