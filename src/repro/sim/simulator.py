"""A minimal, deterministic discrete-event simulator.

Time is expressed in milliseconds throughout the code base; the choice keeps
the DNN stage execution times (a few hundred microseconds to a few
milliseconds) and the task periods (tens of milliseconds) in a comfortable
numeric range.

Cancellation is lazy (cancelled events stay in the heap and are skipped when
popped), but the simulator counts live versus cancelled events and compacts
the heap when cancelled entries dominate: the GPU engine cancels and
reschedules its completion event on every replan, which would otherwise grow
the heap linearly with the number of replans.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from repro.sim.events import Event, EventHandle

# Compact only once this many cancelled events have accumulated *and* they
# outnumber the live events: both conditions keep compaction amortized O(1).
_COMPACTION_MIN_CANCELLED = 64


class SimulationError(RuntimeError):
    """Raised when the simulator is used incorrectly (e.g. scheduling in the past)."""


class Simulator:
    """Discrete-event simulation loop.

    The simulator owns the virtual clock and an event heap.  Components
    schedule callbacks at absolute times or after relative delays, and the
    main loop fires them in deterministic order.
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        # Heap items are ``(key, event)`` pairs: comparing the precomputed
        # key tuples stays entirely in C, avoiding an Event.__lt__ call per
        # sift step.  Keys are unique (the sequence number is), so the
        # event itself is never compared.
        self._heap: List[tuple] = []
        self._fired = 0
        self._stopped = False
        self._cancelled_in_heap = 0
        self._compactions = 0

    @property
    def now(self) -> float:
        """Current simulation time in milliseconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._fired

    @property
    def pending_events(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._heap)

    @property
    def live_events(self) -> int:
        """Number of non-cancelled events still in the queue."""
        return len(self._heap) - self._cancelled_in_heap

    @property
    def compactions(self) -> int:
        """Number of heap compaction passes performed so far."""
        return self._compactions

    def schedule_at(
        self,
        time: float,
        callback: Callable[["Simulator"], None],
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        now = self._now
        if time < now:
            if time < now - 1e-9:
                raise SimulationError(
                    f"cannot schedule event at {time:.6f} ms, current time is {now:.6f} ms"
                )
            time = now
        event = Event(time=time, priority=priority, callback=callback, label=label)
        event.in_heap = True
        heapq.heappush(self._heap, (event._key, event))
        return EventHandle(event, self)

    def schedule_callback(
        self,
        time: float,
        callback: Callable[["Simulator"], None],
        label: str = "",
    ) -> None:
        """Schedule a fire-and-forget callback (no :class:`EventHandle`).

        Identical to :meth:`schedule_at` except that no handle is created:
        use it on hot paths where the caller never cancels the event.
        """
        now = self._now
        if time < now:
            if time < now - 1e-9:
                raise SimulationError(
                    f"cannot schedule event at {time:.6f} ms, current time is {now:.6f} ms"
                )
            time = now
        event = Event(time=time, callback=callback, label=label)
        event.in_heap = True
        heapq.heappush(self._heap, (event._key, event))

    def schedule_after(
        self,
        delay: float,
        callback: Callable[["Simulator"], None],
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` after a relative ``delay`` in milliseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay:.6f} ms")
        return self.schedule_at(self._now + delay, callback, priority=priority, label=label)

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stopped = True

    # ------------------------------------------------------------- compaction

    def _note_cancelled(self) -> None:
        """Called by :class:`EventHandle` when an in-heap event is cancelled."""
        self._cancelled_in_heap += 1
        cancelled = self._cancelled_in_heap
        if cancelled >= _COMPACTION_MIN_CANCELLED and cancelled > len(self._heap) - cancelled:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events and re-heapify.

        Pop order is unaffected: events are totally ordered by
        ``(time, priority, seq)`` with a unique sequence number, so any heap
        holding the same live events pops them in the same order.
        """
        live = [item for item in self._heap if not item[1].cancelled]
        self._heap = live
        heapq.heapify(live)
        self._cancelled_in_heap = 0
        self._compactions += 1

    def _pop(self) -> Event:
        event = heapq.heappop(self._heap)[1]
        event.in_heap = False
        if event.cancelled:
            self._cancelled_in_heap -= 1
        return event

    # ------------------------------------------------------------------- run

    def run_until(self, end_time: float) -> None:
        """Run events with timestamps strictly up to and including ``end_time``.

        The clock is advanced to ``end_time`` even if the queue drains early so
        that rate-based measurements (jobs per second) use the intended
        horizon.
        """
        self._stopped = False
        limit = end_time + 1e-12
        pop = heapq.heappop
        while True:
            heap = self._heap  # compaction may replace the list between events
            if not heap or self._stopped:
                break
            event = heap[0][1]
            if event.time > limit:
                break
            pop(heap)
            event.in_heap = False
            if event.cancelled:
                self._cancelled_in_heap -= 1
                continue
            if event.time > self._now:
                self._now = event.time
            callback = event.callback
            if callback is not None:
                callback(self)
            self._fired += 1
        if end_time > self._now:
            self._now = end_time

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the queue is empty or ``max_events`` events have fired."""
        self._stopped = False
        fired_here = 0
        pop = heapq.heappop
        while self._heap and not self._stopped:
            event = pop(self._heap)[1]
            event.in_heap = False
            if event.cancelled:
                self._cancelled_in_heap -= 1
                continue
            if event.time > self._now:
                self._now = event.time
            callback = event.callback
            if callback is not None:
                callback(self)
            self._fired += 1
            fired_here += 1
            if max_events is not None and fired_here >= max_events:
                break

    def peek_next_time(self) -> Optional[float]:
        """Return the timestamp of the next non-cancelled event, if any."""
        while self._heap and self._heap[0][1].cancelled:
            self._pop()
        if not self._heap:
            return None
        return self._heap[0][1].time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now:.3f} ms, pending={len(self._heap)})"
