"""Deterministic, fingerprintable fault injection for the serving stack.

Real serving fleets are defined by how they degrade: GPUs thermal-throttle,
kernel launches fail and are retried, MPS contexts crash and take a recovery
window to come back, and individual requests are lost or abandoned.  This
module gives every scenario a declarative, composable description of those
fault processes plus the one runtime that injects them:

* :class:`FaultSpec` — a pure value carried by a scenario request.  It is a
  composite of up to four optional fault components, each a frozen
  kind-tagged dataclass: :class:`SlowdownFault` (transient GPU
  slowdown/thermal-throttle windows), :class:`LaunchFault` (kernel-launch
  failures with a retry cost), :class:`CrashFault` (MPS context crashes with
  recovery latency) and :class:`RequestFaults` (per-request drops and
  timeouts).  Like :class:`~repro.sim.workload.WorkloadSpec`, the serialized
  form emits a key per component only when that component is present, so the
  default (fault-free) spec adds nothing to a request fingerprint and **no
  pre-existing cache key changes**.
* :class:`ResiliencePolicy` — how a scheduler backend *answers* faults:
  bounded launch retries with backoff, deadline-aware shedding while the GPU
  is degraded, and an optional degraded-mode fallback.  Policies are declared
  per :class:`~repro.backends.base.SchedulerBackend`; they describe the
  backend's algorithm (not the scenario), so they are not fingerprinted.
* :class:`FaultInjector` — the per-run engine.  All random draws come from
  dedicated named :class:`~repro.sim.rng.RngFactory` streams
  (``fault-windows`` / ``fault-launch`` / ``fault-crash`` / ``fault-drops``),
  so fault timelines are bit-identical per seed and adding fault draws never
  perturbs the draws any other subsystem sees.  Platform-level faults
  (slowdown windows, context crashes) are materialized eagerly at install
  time as simulator events, which keeps the RNG draw order independent of
  how the run interleaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, ClassVar, Dict, List, Mapping, Optional, Tuple, Type, Union

import numpy as np

from repro.sim.rng import RngFactory
from repro.sim.simulator import Simulator

#: Fault component kinds a :class:`FaultSpec` can carry, in serialization order.
FAULT_KINDS = ("slowdown", "launch", "crash", "requests")

#: Simulator event priority for fault state changes: fire before releases
#: (priority -1) and dispatches (priority 0) that share the same timestamp.
_FAULT_EVENT_PRIORITY = -2


def _float_dict(component) -> Dict[str, object]:
    """JSON-safe dict of a frozen component's fields (insertion order)."""
    data: Dict[str, object] = {}
    for name, value in component.__dict__.items():
        data[name] = value
    return data


@dataclass(frozen=True)
class SlowdownFault:
    """Transient GPU slowdown (thermal-throttle) windows.

    While a window is open every kernel's progress rate is multiplied by
    ``factor``.  Windows open every ``period_ms`` starting at ``start_ms``;
    with ``random=True`` the gaps between window starts are instead
    exponential with mean ``period_ms`` (drawn from the ``fault-windows``
    stream), modelling unpredictable co-tenant interference.
    """

    kind: ClassVar[str] = "slowdown"

    period_ms: float = 500.0
    duration_ms: float = 100.0
    factor: float = 0.5
    start_ms: float = 0.0
    random: bool = False

    def __post_init__(self) -> None:
        if self.period_ms <= 0:
            raise ValueError("period_ms must be positive")
        if self.duration_ms <= 0:
            raise ValueError("duration_ms must be positive")
        if not 0.0 < self.factor <= 1.0:
            raise ValueError("factor must lie in (0, 1]")
        if self.start_ms < 0:
            raise ValueError("start_ms must be non-negative")
        if not self.random and self.duration_ms > self.period_ms:
            raise ValueError("deterministic windows must not overlap (duration > period)")

    @property
    def randomized(self) -> bool:
        """Whether this component consumes random draws."""
        return self.random

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe serialized form."""
        return _float_dict(self)


@dataclass(frozen=True)
class LaunchFault:
    """Kernel-launch failures: each launch attempt fails with ``failure_prob``.

    Every failed attempt costs ``retry_cost_ms`` of extra dispatch latency
    (scaled by the backend policy's backoff); a backend's
    :class:`ResiliencePolicy` bounds how many retries are spent before the
    job is declared *failed*.
    """

    kind: ClassVar[str] = "launch"

    failure_prob: float = 0.05
    retry_cost_ms: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_prob < 1.0:
            raise ValueError("failure_prob must lie in [0, 1)")
        if self.retry_cost_ms < 0:
            raise ValueError("retry_cost_ms must be non-negative")

    @property
    def randomized(self) -> bool:
        """Whether this component consumes random draws."""
        return self.failure_prob > 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe serialized form."""
        return _float_dict(self)


@dataclass(frozen=True)
class CrashFault:
    """MPS context crashes with recovery latency.

    Crash instants are exponential with mean ``mtbf_ms``; each crash picks a
    uniformly random context (both drawn from the ``fault-crash`` stream),
    destroys the progress of every kernel in flight there, and blocks the
    context for ``recovery_ms`` while it is rebuilt.
    """

    kind: ClassVar[str] = "crash"

    mtbf_ms: float = 2000.0
    recovery_ms: float = 50.0

    def __post_init__(self) -> None:
        if self.mtbf_ms <= 0:
            raise ValueError("mtbf_ms must be positive")
        if self.recovery_ms < 0:
            raise ValueError("recovery_ms must be non-negative")

    @property
    def randomized(self) -> bool:
        """Crash timelines are always stochastic."""
        return True

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe serialized form."""
        return _float_dict(self)


@dataclass(frozen=True)
class RequestFaults:
    """Per-request faults: arrival drops and service timeouts.

    Each released request is independently lost with ``drop_prob`` (the
    ``fault-drops`` stream); a request still waiting for service
    ``timeout_ms`` after its release is abandoned by the client and counted
    *timed out*.
    """

    kind: ClassVar[str] = "requests"

    drop_prob: float = 0.0
    timeout_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_prob < 1.0:
            raise ValueError("drop_prob must lie in [0, 1)")
        if self.timeout_ms is not None and self.timeout_ms <= 0:
            raise ValueError("timeout_ms must be positive when set")
        if self.drop_prob == 0.0 and self.timeout_ms is None:
            raise ValueError("request faults need a drop probability or a timeout")

    @property
    def randomized(self) -> bool:
        """Whether this component consumes random draws."""
        return self.drop_prob > 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe serialized form (``timeout_ms`` only when set)."""
        data: Dict[str, object] = {"drop_prob": self.drop_prob}
        if self.timeout_ms is not None:
            data["timeout_ms"] = self.timeout_ms
        return data


_COMPONENT_TYPES: Dict[str, Type] = {
    "slowdown": SlowdownFault,
    "launch": LaunchFault,
    "crash": CrashFault,
    "requests": RequestFaults,
}

_Component = Union[SlowdownFault, LaunchFault, CrashFault, RequestFaults]


@dataclass(frozen=True)
class FaultSpec:
    """Composable, fingerprintable description of a scenario's fault processes.

    A pure value: never binds a simulator or RNG, lives on a
    ``ScenarioRequest``, and hashes/compares by value so equal specs coalesce
    in the experiment engine.  The default ``FaultSpec()`` (every component
    absent) is the fault-free scenario; its serialized form is the empty
    dict, and requests carrying it fingerprint exactly as they did before
    faults existed.

    ``gpu`` optionally targets the *device-level* components (slowdown,
    launch, crash) at one device of a multi-GPU cluster; request-level
    faults (drops, timeouts) happen before routing and ignore it.  Only the
    ``cluster`` backend interprets the target — single-device backends run
    on the one GPU there is.  It serializes only when set, so untargeted
    specs fingerprint exactly as before.
    """

    slowdown: Optional[SlowdownFault] = None
    launch: Optional[LaunchFault] = None
    crash: Optional[CrashFault] = None
    requests: Optional[RequestFaults] = None
    gpu: Optional[int] = None

    def __post_init__(self) -> None:
        if self.gpu is not None and self.gpu < 0:
            raise ValueError("gpu target must be non-negative when set")

    # -------------------------------------------------------------- builders

    @classmethod
    def throttle(
        cls,
        period_ms: float = 500.0,
        duration_ms: float = 100.0,
        factor: float = 0.5,
        start_ms: float = 0.0,
        random: bool = False,
    ) -> "FaultSpec":
        """Spec with only thermal-throttle slowdown windows."""
        return cls(
            slowdown=SlowdownFault(
                period_ms=period_ms,
                duration_ms=duration_ms,
                factor=factor,
                start_ms=start_ms,
                random=random,
            )
        )

    @classmethod
    def flaky_launches(
        cls, failure_prob: float = 0.05, retry_cost_ms: float = 1.0
    ) -> "FaultSpec":
        """Spec with only kernel-launch failures."""
        return cls(launch=LaunchFault(failure_prob=failure_prob, retry_cost_ms=retry_cost_ms))

    @classmethod
    def crashes(cls, mtbf_ms: float = 2000.0, recovery_ms: float = 50.0) -> "FaultSpec":
        """Spec with only MPS context crashes."""
        return cls(crash=CrashFault(mtbf_ms=mtbf_ms, recovery_ms=recovery_ms))

    @classmethod
    def lossy(
        cls, drop_prob: float = 0.05, timeout_ms: Optional[float] = None
    ) -> "FaultSpec":
        """Spec with only per-request drops/timeouts."""
        return cls(requests=RequestFaults(drop_prob=drop_prob, timeout_ms=timeout_ms))

    def with_slowdown(self, slowdown: SlowdownFault) -> "FaultSpec":
        """Copy of this spec with the slowdown component replaced."""
        return FaultSpec(slowdown, self.launch, self.crash, self.requests, self.gpu)

    def with_launch(self, launch: LaunchFault) -> "FaultSpec":
        """Copy of this spec with the launch-failure component replaced."""
        return FaultSpec(self.slowdown, launch, self.crash, self.requests, self.gpu)

    def with_crash(self, crash: CrashFault) -> "FaultSpec":
        """Copy of this spec with the crash component replaced."""
        return FaultSpec(self.slowdown, self.launch, crash, self.requests, self.gpu)

    def with_requests(self, requests: RequestFaults) -> "FaultSpec":
        """Copy of this spec with the request-fault component replaced."""
        return FaultSpec(self.slowdown, self.launch, self.crash, requests, self.gpu)

    def targeting(self, gpu: Optional[int]) -> "FaultSpec":
        """Copy of this spec with its device-fault target replaced.

        ``gpu=None`` clears the target (device faults apply cluster-wide).
        """
        return FaultSpec(self.slowdown, self.launch, self.crash, self.requests, gpu)

    # ------------------------------------------------------------ properties

    @property
    def is_default(self) -> bool:
        """True for the fault-free spec (every component absent, no target)."""
        return (
            self.slowdown is None
            and self.launch is None
            and self.crash is None
            and self.requests is None
            and self.gpu is None
        )

    @property
    def active(self) -> bool:
        """True when at least one fault component is present."""
        return not self.is_default

    @property
    def randomized(self) -> bool:
        """Whether any component consumes random draws (seed sensitivity)."""
        return any(
            component is not None and component.randomized for component in self._components()
        )

    def _components(self) -> Tuple[Optional[_Component], ...]:
        return (self.slowdown, self.launch, self.crash, self.requests)

    def label(self) -> str:
        """Compact human-readable tag (``none`` for the fault-free spec)."""
        present = [
            kind
            for kind, component in zip(FAULT_KINDS, self._components())
            if component is not None
        ]
        text = "+".join(present) if present else "none"
        if self.gpu is not None:
            text += f"@gpu{self.gpu}"
        return text

    # --------------------------------------------------------- serialization

    def to_dict(self) -> Dict[str, object]:
        """Serialized form: one key per *present* component, nothing else.

        The ``gpu`` target likewise appears only when set, so untargeted
        specs — every spec that predates cluster targeting — serialize
        byte-identically to their historical form.
        """
        data: Dict[str, object] = {}
        for kind, component in zip(FAULT_KINDS, self._components()):
            if component is not None:
                data[kind] = component.to_dict()
        if self.gpu is not None:
            data["gpu"] = self.gpu
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultSpec":
        """Rebuild a spec from :meth:`to_dict` output (missing keys default)."""
        kwargs: Dict[str, object] = {}
        for kind in FAULT_KINDS:
            payload = data.get(kind)
            if payload is not None:
                kwargs[kind] = _COMPONENT_TYPES[kind](**dict(payload))
        gpu = data.get("gpu")
        if gpu is not None:
            kwargs["gpu"] = int(gpu)
        return cls(**kwargs)

    def fingerprint(self) -> Dict[str, object]:
        """Canonical content for cache keys (identical to :meth:`to_dict`)."""
        return self.to_dict()


#: Shared fault-free default; requests carrying it fingerprint unchanged.
NO_FAULTS = FaultSpec()


@dataclass(frozen=True)
class ResiliencePolicy:
    """How a scheduler backend answers injected faults.

    Attributes:
        max_launch_retries: failed kernel launches retried at most this many
            times before the owning job is declared *failed* (0 means one
            attempt, no retry).
        retry_backoff: multiplicative backoff applied to the retry cost of
            each successive failed attempt.
        shed_when_degraded: deadline-aware shedding — while the GPU is
            degraded (inside a slowdown window or crash recovery) the backend
            inflates its predicted finish/latency by the slowdown and sheds
            requests that can no longer make their deadline.
        degraded_fallback: optional named fallback mode entered while
            degraded (e.g. the batching server's ``"partial-batch"``, which
            stops waiting for full batches to cut queueing latency).
    """

    max_launch_retries: int = 0
    retry_backoff: float = 1.0
    shed_when_degraded: bool = False
    degraded_fallback: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_launch_retries < 0:
            raise ValueError("max_launch_retries must be non-negative")
        if self.retry_backoff < 1.0:
            raise ValueError("retry_backoff must be >= 1")


#: Policy of a backend that declares nothing: no retries, no shedding.
DEFAULT_POLICY = ResiliencePolicy()


@dataclass(frozen=True)
class LaunchOutcome:
    """Result of one (possibly retried) kernel-launch attempt sequence."""

    delay_ms: float
    succeeded: bool
    retries: int


_NO_FAULT_LAUNCH = LaunchOutcome(0.0, True, 0)


class FaultInjector:
    """Per-run fault engine: draws timelines and answers backend queries.

    One injector serves one simulation run.  Construction is cheap for the
    fault-free spec (every query short-circuits), so backends create one
    unconditionally and never branch on ``faults is None``.
    """

    WINDOW_STREAM = "fault-windows"
    LAUNCH_STREAM = "fault-launch"
    CRASH_STREAM = "fault-crash"
    DROP_STREAM = "fault-drops"

    def __init__(
        self,
        spec: Optional[FaultSpec] = None,
        rng: Union[RngFactory, int, None] = None,
        policy: ResiliencePolicy = DEFAULT_POLICY,
    ):
        self.spec = spec if spec is not None else NO_FAULTS
        self.policy = policy
        if isinstance(rng, RngFactory):
            self._rng: Optional[RngFactory] = rng
        elif rng is None:
            self._rng = None
        else:
            self._rng = RngFactory(int(rng))
        if self.spec.randomized and self._rng is None:
            raise ValueError("a randomized FaultSpec requires an RngFactory (or seed)")
        self._simulator: Optional[Simulator] = None
        #: Optional observer called with True/False when ``degraded`` flips
        #: (episode opens/closes).  The cluster backend uses it to keep an
        #: O(1) count of degraded devices for its dispatch fast path.
        self.on_degraded_change: Optional[Callable[[bool], None]] = None
        # Degradation bookkeeping: overlapping windows/recoveries are merged
        # into episodes; ``_active`` counts the currently open ones.
        self._active = 0
        self._window_depth = 0  # open slowdown windows (engine multiplier owner)
        self._episode_start = 0.0
        self._episodes: List[Tuple[float, float]] = []
        self._awaiting_recovery: List[float] = []  # closed-episode end times
        self._recoveries: List[float] = []
        self._slowdown_factor = 1.0
        # Observability counters.
        self.slowdown_windows = 0
        self.crashes = 0
        self.launch_retries = 0
        self.launch_failures = 0
        self.dropped_requests = 0

    # ------------------------------------------------------------------ state

    @property
    def degraded(self) -> bool:
        """True while inside a slowdown window or a crash recovery."""
        return self._active > 0

    @property
    def slowdown_factor(self) -> float:
        """Rate multiplier currently applied by slowdown windows (1.0 = none)."""
        return self._slowdown_factor if self._window_depth > 0 else 1.0

    @property
    def timeout_ms(self) -> Optional[float]:
        """Client abandonment timeout, when the spec declares one."""
        requests = self.spec.requests
        return requests.timeout_ms if requests is not None else None

    def _stream(self, name: str) -> np.random.Generator:
        assert self._rng is not None, "randomized fault draw without an RNG"
        return self._rng.stream(name)

    # ---------------------------------------------------------------- install

    def install(self, simulator: Simulator, platform, horizon_ms: float) -> None:
        """Materialize platform-level faults as simulator events.

        Slowdown windows toggle the engine's fault-slowdown multiplier;
        context crashes call :meth:`~repro.gpu.engine.GpuEngine.interrupt_context`.
        All timelines are drawn eagerly here so the RNG draw order never
        depends on how the run interleaves.  A no-op for specs without
        platform-level components.
        """
        self._simulator = simulator
        slowdown = self.spec.slowdown
        if slowdown is not None:
            self._install_slowdown(simulator, platform.engine, slowdown, horizon_ms)
        crash = self.spec.crash
        if crash is not None:
            self._install_crashes(simulator, platform, crash, horizon_ms)

    def _install_slowdown(
        self, simulator: Simulator, engine, slowdown: SlowdownFault, horizon_ms: float
    ) -> None:
        starts: List[float] = []
        if slowdown.random:
            rng = self._stream(self.WINDOW_STREAM)
            time = slowdown.start_ms + float(rng.exponential(slowdown.period_ms))
            while time <= horizon_ms:
                starts.append(time)
                time += slowdown.duration_ms + float(rng.exponential(slowdown.period_ms))
        else:
            time = slowdown.start_ms
            while time <= horizon_ms:
                starts.append(time)
                time += slowdown.period_ms
        factor = slowdown.factor
        for start in starts:
            simulator.schedule_at(
                start,
                lambda sim, f=factor: self._enter_window(sim, engine, f),
                priority=_FAULT_EVENT_PRIORITY,
                label="fault-slowdown-start",
            )
            simulator.schedule_at(
                start + slowdown.duration_ms,
                lambda sim: self._exit_window(sim, engine),
                priority=_FAULT_EVENT_PRIORITY,
                label="fault-slowdown-end",
            )

    def _install_crashes(
        self, simulator: Simulator, platform, crash: CrashFault, horizon_ms: float
    ) -> None:
        rng = self._stream(self.CRASH_STREAM)
        schedule: List[Tuple[float, int]] = []
        time = float(rng.exponential(crash.mtbf_ms))
        while time <= horizon_ms:
            context = int(rng.integers(platform.num_contexts))
            schedule.append((time, context))
            time += float(rng.exponential(crash.mtbf_ms))
        recovery = crash.recovery_ms
        for when, context in schedule:
            simulator.schedule_at(
                when,
                lambda sim, ctx=context: self._crash(sim, platform, ctx, recovery),
                priority=_FAULT_EVENT_PRIORITY,
                label="fault-context-crash",
            )

    # ----------------------------------------------------- episode transitions

    def _enter(self, now: float) -> None:
        if self._active == 0:
            self._episode_start = now
            if self.on_degraded_change is not None:
                self.on_degraded_change(True)
        self._active += 1

    def _exit(self, now: float) -> None:
        self._active -= 1
        if self._active == 0:
            self._episodes.append((self._episode_start, now))
            self._awaiting_recovery.append(now)
            if self.on_degraded_change is not None:
                self.on_degraded_change(False)

    def _enter_window(self, simulator: Simulator, engine, factor: float) -> None:
        self.slowdown_windows += 1
        self._slowdown_factor = factor
        self._window_depth += 1
        self._enter(simulator.now)
        engine.set_fault_slowdown(factor)

    def _exit_window(self, simulator: Simulator, engine) -> None:
        self._window_depth -= 1
        if self._window_depth == 0:
            engine.set_fault_slowdown(1.0)
        self._exit(simulator.now)

    def _crash(self, simulator: Simulator, platform, context: int, recovery_ms: float) -> None:
        self.crashes += 1
        platform.engine.interrupt_context(context, recovery_ms)
        self._enter(simulator.now)
        simulator.schedule_at(
            simulator.now + recovery_ms,
            lambda sim: self._exit(sim.now),
            priority=_FAULT_EVENT_PRIORITY,
            label="fault-context-recovered",
        )

    # ------------------------------------------------------- backend queries

    def drop_request(self) -> bool:
        """Draw whether a released request is lost before entering the system."""
        requests = self.spec.requests
        if requests is None or requests.drop_prob <= 0.0:
            return False
        dropped = bool(self._stream(self.DROP_STREAM).random() < requests.drop_prob)
        if dropped:
            self.dropped_requests += 1
        return dropped

    def launch_attempt(self) -> LaunchOutcome:
        """Draw one bounded-retry launch sequence under the backend policy.

        Returns the accumulated retry delay, whether the launch ultimately
        succeeded within ``policy.max_launch_retries`` retries, and the
        number of failed attempts consumed.
        """
        launch = self.spec.launch
        if launch is None or launch.failure_prob <= 0.0:
            return _NO_FAULT_LAUNCH
        rng = self._stream(self.LAUNCH_STREAM)
        probability = launch.failure_prob
        cost = launch.retry_cost_ms
        backoff = self.policy.retry_backoff
        delay = 0.0
        failures = 0
        attempts = self.policy.max_launch_retries + 1
        for _ in range(attempts):
            if float(rng.random()) >= probability:
                if failures:
                    self.launch_retries += failures
                return LaunchOutcome(delay, True, failures)
            failures += 1
            delay += cost
            cost *= backoff
        self.launch_retries += failures
        self.launch_failures += 1
        return LaunchOutcome(delay, False, failures)

    def note_completion(self, now: float, on_time: bool) -> None:
        """Observe a completion for the time-to-recover metric.

        The first *on-time* completion at or after a fault episode's end
        closes that episode's recovery window.
        """
        if not on_time or not self._awaiting_recovery:
            return
        remaining: List[float] = []
        for end in self._awaiting_recovery:
            if end <= now:
                self._recoveries.append(now - end)
            else:
                remaining.append(end)
        self._awaiting_recovery = remaining

    # ---------------------------------------------------------------- summary

    def summary(self) -> Optional[Dict[str, object]]:
        """Fault-impact summary of the run, or None for the fault-free spec.

        Keys: ``episodes`` (merged degraded intervals), ``downtime_ms``
        (total degraded time), ``time_to_recover_ms`` (mean delay from an
        episode's end to the next on-time completion; None when no episode
        recovered within the horizon).
        """
        if self.spec.is_default:
            return None
        episodes = list(self._episodes)
        if self._active > 0 and self._simulator is not None:
            episodes.append((self._episode_start, self._simulator.now))
        downtime = sum(end - start for start, end in episodes)
        recover = (
            float(sum(self._recoveries) / len(self._recoveries)) if self._recoveries else None
        )
        return {
            "episodes": len(episodes),
            "downtime_ms": float(downtime),
            "time_to_recover_ms": recover,
        }


def deferred_launch(
    simulator: Simulator,
    outcome: LaunchOutcome,
    do_launch: Callable[[], None],
    on_failed: Callable[[], None],
) -> None:
    """Execute a launch according to a drawn :class:`LaunchOutcome`.

    Shared by every backend: launch immediately when clean, after the retry
    delay when retried, and report failure (after the wasted retry delay)
    when the retry bound was exhausted.
    """
    if outcome.succeeded:
        if outcome.delay_ms > 0.0:
            simulator.schedule_after(
                outcome.delay_ms, lambda _sim: do_launch(), label="fault-launch-retry"
            )
        else:
            do_launch()
        return
    if outcome.delay_ms > 0.0:
        simulator.schedule_after(
            outcome.delay_ms, lambda _sim: on_failed(), label="fault-launch-failed"
        )
    else:
        on_failed()
