"""Event primitives for the discrete-event simulator.

Events are ordered by (time, priority, sequence).  The sequence number makes
ordering deterministic when two events share a timestamp, which matters for
reproducibility of the scheduler experiments.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


_sequence = itertools.count()


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Attributes:
        time: absolute simulation time in milliseconds.
        priority: tie-breaker applied before the sequence number; lower values
            fire first.  Used sparingly (e.g. job releases before dispatches
            at the same instant).
        seq: monotonically increasing sequence number for deterministic
            ordering of otherwise equal events.
        callback: callable invoked with the simulator as its only argument.
        cancelled: set when the owning handle is cancelled; the simulator
            skips cancelled events instead of removing them from the heap.
    """

    time: float
    priority: int = 0
    seq: int = field(default_factory=lambda: next(_sequence))
    callback: Optional[Callable[..., Any]] = field(default=None, compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)

    def fire(self, simulator: "Any") -> None:
        """Invoke the event callback unless the event was cancelled."""
        if self.cancelled or self.callback is None:
            return
        self.callback(simulator)


class EventHandle:
    """Opaque handle returned by :meth:`Simulator.schedule`.

    Holding a handle allows the caller to cancel an event before it fires;
    cancellation is O(1) (lazy deletion).
    """

    def __init__(self, event: Event):
        self._event = event

    @property
    def time(self) -> float:
        """Scheduled firing time in milliseconds."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled

    @property
    def label(self) -> str:
        """Human-readable label attached at scheduling time."""
        return self._event.label

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self._event.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.3f}, {state}, label={self.label!r})"
