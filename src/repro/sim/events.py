"""Event primitives for the discrete-event simulator.

Events are ordered by (time, priority, sequence).  The sequence number makes
ordering deterministic when two events share a timestamp, which matters for
reproducibility of the scheduler experiments.

``Event`` is a ``__slots__`` class with a precomputed sort key: the event heap
is the hottest data structure of the whole simulator, and both the per-event
memory and the ``__lt__`` cost show up directly in scenario throughput.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional


_sequence = itertools.count()

#: Bound method used by the simulator to draw sequence numbers for lean
#: (handle-less) heap entries from the same counter as full events, so the
#: global deterministic ordering is shared across both payload kinds.
next_sequence = _sequence.__next__


class Event:
    """A single scheduled callback.

    Attributes:
        time: absolute simulation time in milliseconds.
        priority: tie-breaker applied before the sequence number; lower values
            fire first.  Used sparingly (e.g. job releases before dispatches
            at the same instant).
        seq: monotonically increasing sequence number for deterministic
            ordering of otherwise equal events.
        callback: callable invoked with the simulator as its only argument.
        cancelled: set when the owning handle is cancelled; the simulator
            skips cancelled events instead of removing them from the heap.
        in_heap: True while the event sits in a simulator heap; lets the
            simulator keep an exact count of cancelled-but-pending events for
            its compaction heuristic.
    """

    __slots__ = ("time", "priority", "seq", "callback", "cancelled", "label", "in_heap", "_key")

    def __init__(
        self,
        time: float,
        priority: int = 0,
        seq: Optional[int] = None,
        callback: Optional[Callable[..., Any]] = None,
        cancelled: bool = False,
        label: str = "",
    ):
        if seq is None:
            seq = next(_sequence)
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = cancelled
        self.label = label
        self.in_heap = False
        self._key = (time, priority, seq)

    def __lt__(self, other: "Event") -> bool:
        return self._key < other._key

    def __le__(self, other: "Event") -> bool:
        return self._key <= other._key

    def __gt__(self, other: "Event") -> bool:
        return self._key > other._key

    def __ge__(self, other: "Event") -> bool:
        return self._key >= other._key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)

    def fire(self, simulator: "Any") -> None:
        """Invoke the event callback unless the event was cancelled."""
        if self.cancelled or self.callback is None:
            return
        self.callback(simulator)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.3f}, prio={self.priority}, {state}, label={self.label!r})"


class EventHandle:
    """Opaque handle returned by :meth:`Simulator.schedule`.

    Holding a handle allows the caller to cancel an event before it fires;
    cancellation is O(1) (lazy deletion).  When the handle knows its owning
    simulator, cancellation is also reported there so the simulator can
    compact its heap once cancelled events dominate.
    """

    __slots__ = ("_event", "_simulator")

    def __init__(self, event: Event, simulator: Optional[Any] = None):
        self._event = event
        self._simulator = simulator

    @property
    def time(self) -> float:
        """Scheduled firing time in milliseconds."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled

    @property
    def label(self) -> str:
        """Human-readable label attached at scheduling time."""
        return self._event.label

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        event = self._event
        if event.cancelled:
            return
        event.cancelled = True
        if self._simulator is not None and event.in_heap:
            self._simulator._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.3f}, {state}, label={self.label!r})"
