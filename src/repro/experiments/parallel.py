"""Parallel scenario fan-out for the experiment sweeps.

Every figure of the paper is produced by sweeping many independent
``(task set, configuration, seed)`` scenarios through the simulator.  The
scenarios share nothing at runtime, which makes them embarrassingly parallel:
:func:`run_scenarios_parallel` fans a list of :class:`ScenarioRequest` objects
out over a multiprocessing pool and returns the results *in request order*,
each produced with its own fixed seed — so a parallel sweep is bit-identical
to the serial one, only faster.

Usage::

    requests = [ScenarioRequest(taskset, config, horizon_ms=2500.0) for config in grid]
    results = run_scenarios_parallel(requests, processes=8)

``processes=1`` (or a single request) runs serially in-process, which keeps
unit tests deterministic-cheap and avoids pool overhead for tiny sweeps.
``processes=None`` uses one worker per CPU, capped by the number of requests.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.experiments.runner import ScenarioResult, run_daris_scenario
from repro.gpu.calibration import DEFAULT_CALIBRATION, GpuCalibration
from repro.gpu.spec import GpuSpec, RTX_2080_TI
from repro.rt.taskset import TaskSetSpec
from repro.scheduler.config import DarisConfig


@dataclass(frozen=True)
class ScenarioRequest:
    """One scenario to run: the full argument set of ``run_daris_scenario``."""

    taskset: TaskSetSpec
    config: DarisConfig
    horizon_ms: float
    seed: int = 1
    with_trace: bool = False
    label: Optional[str] = None
    gpu: GpuSpec = RTX_2080_TI
    calibration: GpuCalibration = field(default_factory=lambda: DEFAULT_CALIBRATION)


def _run_request(request: ScenarioRequest) -> ScenarioResult:
    """Worker entry point (top-level so it pickles under spawn too)."""
    return run_daris_scenario(
        request.taskset,
        request.config,
        request.horizon_ms,
        seed=request.seed,
        with_trace=request.with_trace,
        gpu=request.gpu,
        calibration=request.calibration,
        label=request.label,
    )


def default_process_count(num_requests: int) -> int:
    """Worker count used when the caller does not specify one."""
    return max(1, min(num_requests, os.cpu_count() or 1))


def run_scenarios_parallel(
    requests: Sequence[ScenarioRequest],
    processes: Optional[int] = None,
) -> List[ScenarioResult]:
    """Run scenarios across worker processes; results come back in order.

    Args:
        requests: the scenarios to run.  Each carries its own seed, so the
            result stream is reproducible regardless of worker scheduling.
        processes: worker process count.  ``None`` chooses one per CPU
            (capped by the request count); ``1`` runs serially in-process.

    Returns:
        One :class:`ScenarioResult` per request, in request order.
    """
    requests = list(requests)
    if not requests:
        return []
    if processes is None:
        processes = default_process_count(len(requests))
    if processes <= 1 or len(requests) == 1:
        return [_run_request(request) for request in requests]

    import multiprocessing

    context = multiprocessing.get_context()
    with context.Pool(min(processes, len(requests))) as pool:
        return pool.map(_run_request, requests, chunksize=1)
