"""Parallel scenario fan-out for the experiment sweeps.

Every figure of the paper is produced by sweeping many independent
``(task set, configuration, seed)`` scenarios through the simulator.  The
scenarios share nothing at runtime, which makes them embarrassingly parallel:
:func:`run_scenarios_parallel` fans a list of :class:`ScenarioRequest` objects
out over a multiprocessing pool and returns the results *in request order*,
each produced with its own fixed seed — so a parallel sweep is bit-identical
to the serial one, only faster.

Usage::

    requests = [ScenarioRequest(taskset, config, horizon_ms=2500.0) for config in grid]
    results = run_scenarios_parallel(requests, processes=8)

``processes=1`` (or a single request) runs serially in-process, which keeps
unit tests deterministic-cheap and avoids pool overhead for tiny sweeps.
``processes=None`` uses one worker per CPU, capped by the number of requests.

Results are *streamed*: the pool is consumed with ``imap`` (not ``map``), so
the optional ``on_result`` callback fires as each scenario completes, in
request order.  The experiment engine uses this to persist cache entries
while later scenarios are still running — a crash or interrupt loses only
the in-flight scenarios, not the whole sweep.  Note that this function still
*returns* the full ordered result list (its callers need every result to
build report rows); a consumer that wants bounded memory can do its own
fold/discard inside ``on_result`` and ignore the return value.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.runner import ScenarioResult
from repro.gpu.calibration import DEFAULT_CALIBRATION, GpuCalibration
from repro.gpu.spec import GpuSpec, RTX_2080_TI
from repro.rt.taskset import TaskSetSpec
from repro.sim.faults import NO_FAULTS, FaultSpec
from repro.sim.workload import PERIODIC_WORKLOAD, WorkloadSpec

# Bump when the fingerprint layout (or anything that changes simulated
# behaviour without changing the fingerprint) is modified, so stale cache
# entries can never be mistaken for current ones.
FINGERPRINT_SCHEMA = 1

#: The backend every request runs on unless it says otherwise.
DEFAULT_SCHEDULER = "daris"


@dataclass(frozen=True)
class ScenarioRequest:
    """One scenario to run on one scheduler backend.

    ``scheduler`` names the registered backend (``"daris"`` by default) that
    interprets the request; ``config`` carries that backend's canonical
    configuration (a :class:`~repro.scheduler.config.DarisConfig` for the
    DARIS/RTGPU backends, a :class:`~repro.backends.configs.BackendConfig`
    subclass for the baseline servers); ``workload`` selects the arrival
    process (periodic / poisson / saturated).

    Requests compare (and hash) by value: every field is an immutable
    value-comparable object — ``TaskSetSpec`` and ``DnnModel`` store their
    sequences as tuples, and the default calibration is the shared
    ``DEFAULT_CALIBRATION`` constant rather than a per-instance factory — so
    two independently built but identical requests are equal, land in the
    same set/dict slot, and produce the same :meth:`cache_key`.
    """

    taskset: TaskSetSpec
    config: Any
    horizon_ms: float
    seed: int = 1
    with_trace: bool = False
    label: Optional[str] = None
    gpu: GpuSpec = RTX_2080_TI
    calibration: GpuCalibration = DEFAULT_CALIBRATION
    scheduler: str = DEFAULT_SCHEDULER
    workload: WorkloadSpec = PERIODIC_WORKLOAD
    faults: FaultSpec = NO_FAULTS

    def fingerprint(self) -> Dict[str, object]:
        """Canonical nested dictionary of everything that shapes the result.

        Covers the task set (down to per-stage calibrated work), the
        scheduler backend and its configuration, the workload, the horizon,
        the seed, the GPU spec, the interference calibration and the result
        label — mutate any of them and the fingerprint (hence the cache key)
        changes.

        Backward compatibility: the ``scheduler`` / ``workload`` / ``faults``
        keys appear only for non-default values, so every pre-backend (and
        every fault-free) request fingerprints exactly as before and existing
        caches stay valid.
        """
        data: Dict[str, object] = {
            "schema": FINGERPRINT_SCHEMA,
            "taskset": self.taskset.fingerprint(),
            "config": self.config.to_dict(),
            "horizon_ms": self.horizon_ms,
            "seed": self.seed,
            "with_trace": self.with_trace,
            "label": self.label,
            "gpu": self.gpu.to_dict(),
            "calibration": self.calibration.to_dict(),
        }
        if self.scheduler != DEFAULT_SCHEDULER:
            data["scheduler"] = self.scheduler
        if not self.workload.is_default:
            data["workload"] = self.workload.fingerprint()
        if not self.faults.is_default:
            data["faults"] = self.faults.fingerprint()
        return data

    def cache_key(self) -> str:
        """Stable content-addressed key: SHA-256 of the canonical fingerprint.

        The fingerprint is serialized with sorted keys and no whitespace;
        floats use Python's shortest-repr JSON form, which is deterministic
        and round-trips exactly.
        """
        canonical = json.dumps(self.fingerprint(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _run_request(request: ScenarioRequest) -> ScenarioResult:
    """Worker entry point (top-level so it pickles under spawn too).

    Dispatches through the scheduler-backend registry, so the pool runs any
    registered backend — DARIS or a baseline — behind the same request shape.
    The import is deferred because the backend modules import this module's
    :class:`ScenarioRequest`.
    """
    from repro.backends import get_backend

    return get_backend(request.scheduler).execute(request)


def _run_indexed(indexed: Tuple[int, ScenarioRequest]) -> Tuple[int, ScenarioResult]:
    """Worker entry point for unordered fan-out: tags results with their index."""
    index, request = indexed
    return index, _run_request(request)


def default_process_count(num_requests: int) -> int:
    """Worker count used when the caller does not specify one."""
    return max(1, min(num_requests, os.cpu_count() or 1))


#: Exceptions that signal pool *infrastructure* failure (a worker process
#: died, its pipe broke) rather than a scenario raising — the sweep retries
#: the un-delivered scenarios once on a fresh pool before giving up.
_POOL_CRASH_ERRORS: Tuple[type, ...]
try:
    from concurrent.futures.process import BrokenProcessPool

    _POOL_CRASH_ERRORS = (OSError, EOFError, BrokenProcessPool)
except ImportError:  # pragma: no cover - BrokenProcessPool exists on 3.3+
    _POOL_CRASH_ERRORS = (OSError, EOFError)


def run_scenarios_parallel(
    requests: Sequence[ScenarioRequest],
    processes: Optional[int] = None,
    on_result: Optional[Callable[[int, ScenarioResult], None]] = None,
    ordered: bool = True,
) -> List[ScenarioResult]:
    """Run scenarios across worker processes; results come back in order.

    Args:
        requests: the scenarios to run.  Each carries its own seed, so the
            result stream is reproducible regardless of worker scheduling.
        processes: worker process count.  ``None`` chooses one per CPU
            (capped by the request count); ``1`` runs serially in-process.
        on_result: optional ``(index, result)`` callback invoked as each
            scenario completes — results are streamed off the pool, so
            callers can persist or aggregate them incrementally instead of
            waiting for the slowest scenario.  ``index`` is the request's
            position in ``requests``.
        ordered: with the default ``True`` the stream (and ``on_result``)
            follows request order (``imap``).  ``False`` switches to
            ``imap_unordered``: completions are delivered the moment *any*
            worker finishes, so a slow early scenario no longer stalls the
            commit stream behind it — the mode the sharded sweep driver uses
            to checkpoint progress as fast as the pool produces it.  The
            *returned list* is in request order either way.

    Returns:
        One :class:`ScenarioResult` per request, in request order.
    """
    requests = list(requests)
    if not requests:
        return []
    if processes is None:
        processes = default_process_count(len(requests))
    if processes <= 1 or len(requests) == 1:
        results: List[ScenarioResult] = []
        for index, request in enumerate(requests):
            result = _run_request(request)
            if on_result is not None:
                on_result(index, result)
            results.append(result)
        return results

    import multiprocessing

    context = multiprocessing.get_context()
    slots: List[Optional[ScenarioResult]] = [None] * len(requests)

    def _fan_out(pending: List[Tuple[int, ScenarioRequest]]) -> None:
        """Run ``pending`` (original-index, request) pairs on a fresh pool."""
        batch = [request for _, request in pending]
        with context.Pool(min(processes, len(batch))) as pool:
            if ordered:
                stream = enumerate(pool.imap(_run_request, batch, chunksize=1))
            else:
                stream = pool.imap_unordered(
                    _run_indexed, list(enumerate(batch)), chunksize=1
                )
            for batch_index, result in stream:
                index = pending[batch_index][0]
                if on_result is not None:
                    on_result(index, result)
                slots[index] = result

    try:
        _fan_out(list(enumerate(requests)))
    except _POOL_CRASH_ERRORS:
        # A worker process died (OOM-killed, segfaulted, lost its pipe).
        # Everything already delivered is committed in ``slots``; the
        # un-delivered remainder is retried exactly once on a fresh pool —
        # each request carries its own seed, so the retry is bit-identical
        # to what the crashed worker would have produced.  A second crash
        # propagates: systematic failure, not transient worker loss.
        remaining = [
            (index, request)
            for index, request in enumerate(requests)
            if slots[index] is None
        ]
        if remaining:
            _fan_out(remaining)
    return slots  # type: ignore[return-value]
