"""Figure 8: contribution of the DARIS modules.

DARIS is compared against four degraded variants of itself (No Staging, No
Last, No Prior, No Fixed) on the ResNet18 task set under the best-throughput
configuration.  The paper reports response-time ranges per priority
(Figure 8a) and throughput normalized to full DARIS (Figure 8b).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.tables import format_table
from repro.experiments.parallel import ScenarioRequest, run_scenarios_parallel
from repro.experiments.scenarios import best_config_for, horizon_ms
from repro.rt.taskset import table2_taskset
from repro.scheduler.ablations import ABLATIONS


def run(
    quick: bool = True,
    seed: int = 1,
    model_name: str = "resnet18",
    processes: Optional[int] = 1,
) -> List[Dict[str, object]]:
    """One row per scheduler variant."""
    taskset = table2_taskset(model_name)
    base_config = best_config_for(model_name)
    horizon = horizon_ms(quick)
    variants = [(name, make_config(base_config)) for name, make_config in ABLATIONS.items()]
    results = run_scenarios_parallel(
        [
            ScenarioRequest(taskset, config, horizon, seed=seed, label=name)
            for name, config in variants
        ],
        processes=processes,
    )
    rows: List[Dict[str, object]] = []
    baseline_jps = None
    for (name, config), result in zip(variants, results):
        if name == "DARIS":
            baseline_jps = result.total_jps
        hp_stats = result.metrics.high.response_time_stats()
        lp_stats = result.metrics.low.response_time_stats()
        rows.append(
            {
                "variant": name,
                "total_jps": round(result.total_jps, 1),
                "normalized_jps": 0.0,
                "hp_dmr": round(result.hp_dmr, 4),
                "lp_dmr": round(result.lp_dmr, 4),
                "hp_resp_mean_ms": round(hp_stats["mean"], 2),
                "hp_resp_max_ms": round(hp_stats["max"], 2),
                "lp_resp_mean_ms": round(lp_stats["mean"], 2),
                "lp_resp_max_ms": round(lp_stats["max"], 2),
            }
        )
    reference = baseline_jps or 1.0
    for row in rows:
        row["normalized_jps"] = round(row["total_jps"] / reference, 3)
    return rows


def main(quick: bool = True) -> str:
    """Run and render the Figure 8 reproduction (parallel sweep)."""
    table = format_table(run(quick, processes=None))
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main(quick=False)
