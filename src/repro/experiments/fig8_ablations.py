"""Figure 8: contribution of the DARIS modules.

DARIS is compared against four degraded variants of itself (No Staging, No
Last, No Prior, No Fixed) on the ResNet18 task set under the best-throughput
configuration.  The paper reports response-time ranges per priority
(Figure 8a) and throughput normalized to full DARIS (Figure 8b).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.analysis.tables import format_table
from repro.experiments.cache import ResultCache
from repro.experiments.engine import run_experiment
from repro.experiments.parallel import ScenarioRequest
from repro.experiments.registry import (
    BuildContext,
    ExperimentPlan,
    ExperimentSpec,
    RowContext,
    register,
)
from repro.experiments.scenarios import best_config_for, horizon_ms
from repro.rt.taskset import table2_taskset
from repro.scheduler.ablations import ABLATIONS


def _build(ctx: BuildContext) -> ExperimentPlan:
    model_name = str(ctx.param("model_name", "resnet18"))
    taskset = table2_taskset(model_name)
    base_config = best_config_for(model_name)
    horizon = horizon_ms(ctx.quick)
    variants = [(name, make_config(base_config)) for name, make_config in ABLATIONS.items()]
    requests = [
        ScenarioRequest(taskset, config, horizon, seed=ctx.seed, label=name)
        for name, config in variants
    ]

    def make_rows(row_ctx: RowContext) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        baseline_jps = None
        for (name, config), result in zip(variants, row_ctx.results):
            if name == "DARIS":
                baseline_jps = result.total_jps
            hp_stats = result.metrics.high.response_time_stats()
            lp_stats = result.metrics.low.response_time_stats()
            rows.append(
                {
                    "variant": name,
                    "total_jps": round(result.total_jps, 1),
                    "normalized_jps": 0.0,
                    "hp_dmr": round(result.hp_dmr, 4),
                    "lp_dmr": round(result.lp_dmr, 4),
                    "hp_resp_mean_ms": round(hp_stats["mean"], 2),
                    "hp_resp_max_ms": round(hp_stats["max"], 2),
                    "lp_resp_mean_ms": round(lp_stats["mean"], 2),
                    "lp_resp_max_ms": round(lp_stats["max"], 2),
                }
            )
        reference = baseline_jps or 1.0
        for row in rows:
            row["normalized_jps"] = round(row["total_jps"] / reference, 3)
        return rows

    return ExperimentPlan(requests=requests, make_rows=make_rows)


SPEC = register(
    ExperimentSpec(
        name="fig8",
        title="Figure 8: DARIS module ablations (No Staging / Last / Prior / Fixed)",
        build=_build,
        defaults={"model_name": "resnet18"},
    )
)


def run(
    quick: bool = True,
    seed: int = 1,
    model_name: str = "resnet18",
    processes: Optional[int] = 1,
    seeds: int = 1,
    cache: Union[ResultCache, str, None] = None,
) -> List[Dict[str, object]]:
    """One row per scheduler variant."""
    report = run_experiment(
        SPEC,
        quick=quick,
        seeds=seeds,
        base_seed=seed,
        processes=processes,
        cache=cache,
        params={"model_name": model_name},
    )
    return report.rows


def main(quick: bool = True) -> str:
    """Run and render the Figure 8 reproduction (parallel sweep)."""
    table = format_table(run(quick, processes=None))
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main(quick=False)
