"""Table II: the evaluated task sets and their demanded load.

Purely declarative (no simulation), so the experiment registers as
non-replicable: the ``--seeds`` axis does not apply.
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.analysis.tables import format_table
from repro.dnn.zoo import build_model
from repro.experiments.cache import ResultCache
from repro.experiments.engine import run_experiment
from repro.experiments.registry import (
    BuildContext,
    ExperimentPlan,
    ExperimentSpec,
    RowContext,
    register,
)
from repro.rt.taskset import TABLE2, demanded_load_factor, table2_taskset


def _make_rows(row_ctx: RowContext) -> List[Dict[str, object]]:
    del row_ctx  # the table is cheap to build either way
    rows: List[Dict[str, object]] = []
    for name, paper_row in TABLE2.items():
        model = build_model(name)
        taskset = table2_taskset(name, model=model)
        rows.append(
            {
                "task_set": name,
                "num_high": taskset.num_high,
                "num_low": taskset.num_low,
                "task_jps": paper_row.task_jps,
                "total_demand_jps": round(taskset.total_demand_jps, 1),
                "load_vs_upper_baseline": round(
                    demanded_load_factor(taskset, model.profile.batched_max_jps), 2
                ),
                "paper_high": paper_row.num_high,
                "paper_low": paper_row.num_low,
            }
        )
    return rows


def _build(ctx: BuildContext) -> ExperimentPlan:
    del ctx  # declarative; no scenario requests
    return ExperimentPlan(requests=[], make_rows=_make_rows)


SPEC = register(
    ExperimentSpec(
        name="table2",
        title="Table II: task-set composition and demanded load",
        build=_build,
        replicable=False,
    )
)


def run(quick: bool = True, cache: Union[ResultCache, str, None] = None) -> List[Dict[str, object]]:
    """One row per Table II task set, including the implied overload factor."""
    return run_experiment(SPEC, quick=quick, cache=cache).rows


def main(quick: bool = True) -> str:
    """Run and render the Table II reproduction."""
    table = format_table(run(quick))
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
