"""Fault-injection grid: every backend x fault profile x load.

The robustness companion to the cross-backend grid: each cell runs one
scheduler backend under one named fault profile (:data:`NAMED_FAULTS` —
throttle windows, flaky kernel launches, MPS context crashes, lossy request
streams, or the all-four ``storm``) and reports the *cause breakdown* of
lost work next to throughput: how many requests finished on time, missed,
were dropped by the fault process, shed by degraded-mode admission, timed
out, or failed after exhausting launch retries — plus the injector's
recovery telemetry (fault episodes and mean time-to-recover).

Every cell is an ordinary :class:`ScenarioRequest` carrying its
:class:`~repro.sim.faults.FaultSpec`, so the grid inherits caching, seed
replication (``--seeds N`` CIs) and sharded sweeps unchanged.  Fault draws
come from dedicated named RNG streams, so each cell is bit-identical per
seed, and the ``none`` column's requests fingerprint exactly like their
pre-fault counterparts (byte-identical cache keys).

Parameters: ``--scheduler`` restricts the grid to one backend and
``--fault`` to one named fault profile (the CI smoke lane runs slices).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.analysis.tables import format_table
from repro.backends import get_backend
from repro.backends.configs import BatchingConfig, ClockworkConfig, GSliceConfig, SingleConfig
from repro.dnn.zoo import build_model
from repro.experiments.cache import ResultCache
from repro.experiments.engine import run_experiment
from repro.experiments.parallel import ScenarioRequest
from repro.experiments.registry import (
    BuildContext,
    ExperimentPlan,
    ExperimentSpec,
    RowContext,
    register,
)
from repro.experiments.scenarios import best_config_for, named_fault, named_workload
from repro.rt.taskset import make_taskset

#: One anchor model: the paper's Section VI-B comparison point.
MODEL = "resnet50"

#: Backends measured at saturation (request servers; load level is moot).
SATURATED_BACKENDS = ("single", "batching_server", "gslice")

#: Backends driven by Poisson arrivals at the task sets' mean rates.
POISSON_BACKENDS = ("daris", "rtgpu", "clockwork", "batching_server")

#: Every named fault profile is a grid column, fault-free ``none`` first —
#: the baseline column each resilience policy is judged against.
FAULT_PROFILES = ("none", "throttle", "flaky-launch", "crashy", "lossy", "storm")


def _loads(quick: bool) -> List[float]:
    """Demand levels relative to the batching upper baseline."""
    return [1.2] if quick else [1.0, 1.5]


def _grid_taskset(model, load_factor: float):
    """A homogeneous task set demanding ``load_factor`` x the batching baseline."""
    task_jps = 25.0
    total_tasks = max(3, int(round(load_factor * model.profile.batched_max_jps / task_jps)))
    num_high = max(1, total_tasks // 3)
    return make_taskset(
        [model],
        num_high=num_high,
        num_low=total_tasks - num_high,
        task_jps=task_jps,
        name=f"faults-grid/{model.name}/load{load_factor:.2f}",
    )


def _config_for(backend_name: str, model):
    """The canonical per-backend configuration of the grid."""
    if backend_name in ("daris", "rtgpu"):
        return best_config_for(model.name)
    if backend_name == "clockwork":
        return ClockworkConfig()
    if backend_name == "single":
        return SingleConfig()
    if backend_name == "batching_server":
        return BatchingConfig(batch_size=model.profile.preferred_batch_size)
    if backend_name == "gslice":
        return GSliceConfig(batch_sizes=(model.profile.preferred_batch_size,))
    raise KeyError(f"no grid configuration for backend {backend_name!r}")


def _build(ctx: BuildContext) -> ExperimentPlan:
    horizon = 800.0 if ctx.quick else 2500.0
    scheduler_filter = ctx.param("scheduler")
    fault_filter = ctx.param("fault")
    if scheduler_filter is not None:
        get_backend(str(scheduler_filter))  # unknown backend -> clean KeyError
    if fault_filter is not None:
        named_fault(str(fault_filter))  # unknown label -> clean KeyError
    model = build_model(MODEL)

    requests: List[ScenarioRequest] = []
    cells: List[Dict[str, object]] = []

    def add(backend_name: str, taskset, workload_name: str, fault_name: str, load: object) -> None:
        if scheduler_filter is not None and backend_name != scheduler_filter:
            return
        if fault_filter is not None and fault_name != fault_filter:
            return
        requests.append(
            ScenarioRequest(
                taskset,
                _config_for(backend_name, model),
                horizon,
                seed=ctx.seed,
                scheduler=backend_name,
                workload=named_workload(workload_name),
                faults=named_fault(fault_name),
            )
        )
        cells.append(
            {
                "backend": backend_name,
                "fault": fault_name,
                "workload": workload_name,
                "load": load,
            }
        )

    saturated_taskset = _grid_taskset(model, 1.0)
    loads = _loads(ctx.quick)
    load_tasksets = [(load, _grid_taskset(model, load)) for load in loads]
    for fault_name in FAULT_PROFILES:
        # Saturated cells: demand is infinite by construction, so they use
        # the canonical load-1.0 task set and appear once per backend/fault.
        for backend_name in SATURATED_BACKENDS:
            add(backend_name, saturated_taskset, "saturated", fault_name, "-")
        for load, taskset in load_tasksets:
            for backend_name in POISSON_BACKENDS:
                add(backend_name, taskset, "poisson", fault_name, load)

    def make_rows(row_ctx: RowContext) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for cell, result in zip(cells, row_ctx.results):
            metrics = result.metrics
            causes = metrics.cause_breakdown()
            impact = metrics.fault_impact
            rows.append(
                {
                    "backend": cell["backend"],
                    "fault": cell["fault"],
                    "workload": cell["workload"],
                    "load": cell["load"],
                    "jps": round(metrics.total_jps, 1),
                    "goodput_jps": round(metrics.goodput_jps, 1),
                    "dmr": round(metrics.overall_dmr, 4),
                    "on_time": causes["on_time"],
                    "missed": causes["missed"],
                    "dropped": causes["dropped"],
                    "shed": causes["shed"],
                    "timed_out": causes["timed_out"],
                    "failed": causes["failed"],
                    "retries": metrics.high.launch_retries + metrics.low.launch_retries,
                    "episodes": impact.episodes if impact is not None else 0,
                    "ttr_ms": round(impact.time_to_recover_ms, 2)
                    if impact is not None and impact.time_to_recover_ms is not None
                    else "-",
                }
            )
        return rows

    return ExperimentPlan(requests=requests, make_rows=make_rows)


SPEC = register(
    ExperimentSpec(
        name="faults",
        title="Fault-injection grid: every backend x fault profile x load, with miss/loss cause breakdown",
        build=_build,
        defaults={"scheduler": None, "fault": None},
    )
)


def run(
    quick: bool = True,
    seed: int = 1,
    seeds: int = 1,
    processes: Optional[int] = 1,
    cache: Union[ResultCache, str, None] = None,
    scheduler: Optional[str] = None,
    fault: Optional[str] = None,
) -> List[Dict[str, object]]:
    """One row per (backend, fault profile, workload, load) grid cell."""
    report = run_experiment(
        SPEC,
        quick=quick,
        seeds=seeds,
        base_seed=seed,
        processes=processes,
        cache=cache,
        params={"scheduler": scheduler, "fault": fault},
    )
    return report.rows


def main(quick: bool = True) -> str:
    """Run and render the fault-injection grid."""
    table = format_table(run(quick))
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main(quick=False)
