"""Figures 4-6: the main scheduling results.

For one Table II task set (ResNet18 -> Figure 4, UNet -> Figure 5,
InceptionV3 -> Figure 6) the full configuration grid of Section V is swept:
policies STR / MPS / MPS+STR, 2-10 parallel DNNs and oversubscription levels
``OS in {1, 1.5, 2, Nc}``.  Each row reports total throughput (Figure Xa) and
the LP deadline miss rate (Figure Xb), next to the lower (single DNN) and
upper (pure batching) baselines from Table I.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.analysis.tables import format_table
from repro.dnn.zoo import build_model
from repro.experiments.cache import ResultCache
from repro.experiments.engine import run_experiment
from repro.experiments.parallel import ScenarioRequest
from repro.experiments.registry import (
    BuildContext,
    ExperimentPlan,
    ExperimentSpec,
    RowContext,
    register,
)
from repro.experiments.scenarios import horizon_ms, main_grid
from repro.rt.taskset import table2_taskset

PAPER_HIGHLIGHTS = {
    "resnet18": {"best_jps": 1158.0, "upper_baseline": 1025.0, "lower_baseline": 627.0},
    "unet": {"best_jps": 281.0, "upper_baseline": 260.0, "lower_baseline": 241.0},
    "inceptionv3": {"best_jps": 388.0, "upper_baseline": 446.0, "lower_baseline": 142.0},
}


def _build(ctx: BuildContext) -> ExperimentPlan:
    model_name = str(ctx.param("model_name", "resnet18"))
    model = build_model(model_name)
    taskset = table2_taskset(model_name, model=model)
    horizon = horizon_ms(ctx.quick)
    configs = main_grid(ctx.quick)
    requests = [ScenarioRequest(taskset, config, horizon, seed=ctx.seed) for config in configs]

    def make_rows(row_ctx: RowContext) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for config, result in zip(configs, row_ctx.results):
            rows.append(
                {
                    "task_set": model_name,
                    "policy": config.policy.value,
                    "config": f"{config.num_contexts}x{config.streams_per_context}",
                    "oversubscription": config.oversubscription,
                    "parallel_dnns": config.max_parallel_jobs,
                    "total_jps": round(result.total_jps, 1),
                    "hp_dmr": round(result.hp_dmr, 4),
                    "lp_dmr": round(result.lp_dmr, 4),
                    "lp_rejection": round(result.metrics.low.rejection_rate, 3),
                }
            )
        return rows

    return ExperimentPlan(requests=requests, make_rows=make_rows)


SPEC = register(
    ExperimentSpec(
        name="fig4_6",
        title="Figures 4-6: main scheduling results (policy x configuration grid)",
        build=_build,
        highlights=PAPER_HIGHLIGHTS,
        defaults={"model_name": "resnet18"},
    )
)


def run(
    model_name: str = "resnet18",
    quick: bool = True,
    seed: int = 1,
    processes: Optional[int] = 1,
    seeds: int = 1,
    cache: Union[ResultCache, str, None] = None,
) -> List[Dict[str, object]]:
    """Sweep the configuration grid for one task set; one row per configuration.

    ``processes`` > 1 (or None for one worker per CPU) fans the grid out over
    a process pool; each scenario keeps its fixed seed, so the rows are
    identical to a serial sweep.  ``seeds`` > 1 replicates the sweep across
    consecutive seeds and aggregates mean / stdev / 95 %-CI columns.
    """
    report = run_experiment(
        SPEC,
        quick=quick,
        seeds=seeds,
        base_seed=seed,
        processes=processes,
        cache=cache,
        params={"model_name": model_name},
    )
    return report.rows


def best_row(rows: List[Dict[str, object]], policy: Optional[str] = None) -> Dict[str, object]:
    """Row with the highest throughput (optionally restricted to one policy)."""
    candidates = [row for row in rows if policy is None or row["policy"] == policy]
    if not candidates:
        raise ValueError("no rows to select from")
    return max(candidates, key=lambda row: row["total_jps"])


def main(model_name: str = "resnet18", quick: bool = True) -> str:
    """Run and render one of Figures 4-6 (parallel sweep, one worker per CPU)."""
    rows = run(model_name, quick, processes=None)
    highlights = PAPER_HIGHLIGHTS[model_name]
    table = format_table(rows)
    best = best_row(rows)
    summary = (
        f"\nbest configuration: {best['policy']} {best['config']} OS{best['oversubscription']}"
        f" -> {best['total_jps']} JPS"
        f" (paper best {highlights['best_jps']} JPS,"
        f" batching baseline {highlights['upper_baseline']} JPS)"
    )
    print(table + summary)
    return table + summary


if __name__ == "__main__":  # pragma: no cover
    for name in ("resnet18", "unet", "inceptionv3"):
        main(name, quick=False)
