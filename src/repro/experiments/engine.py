"""Shared experiment execution engine.

One code path executes every registered experiment:

1. **Expand** — the spec's ``build`` produces the per-seed request grid,
   which is crossed with the ``--seeds N`` replication axis by shifting each
   request's seed (seed structure within a grid is preserved).
2. **Serve or simulate** — each request is first looked up in the optional
   :class:`~repro.experiments.cache.ResultCache`; misses are fanned out
   through :func:`run_scenarios_parallel`, and completed scenarios are
   written back to the cache *as they stream in* (``imap``), not after the
   whole sweep — an interrupted sweep therefore resumes from what already
   finished.  Traced requests bypass the cache (see ``cache.py``).
3. **Aggregate** — the spec's ``make_rows`` folds each seed's results into
   that seed's report rows; with several seeds the engine aggregates the
   per-seed rows column-wise into mean / stdev / 95 %-CI columns.  With one
   seed the rows pass through untouched, bit-identical to the pre-registry
   modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.stats import replication_summary
from repro.analysis.tables import CI_SUFFIX, STD_SUFFIX
from repro.experiments.cache import ResultCache
from repro.experiments.parallel import ScenarioRequest, run_scenarios_parallel
from repro.experiments.registry import (
    BuildContext,
    ExperimentPlan,
    ExperimentSpec,
    RowContext,
    get_experiment,
)
from repro.experiments.runner import ScenarioResult

Row = Dict[str, object]


@dataclass
class _ExecutionStats:
    """Cache / simulation accounting for one batch of requests."""

    cache_hits: int = 0
    cache_misses: int = 0
    uncached: int = 0
    simulated: int = 0


def _serve_or_simulate(
    requests: Sequence[ScenarioRequest],
    processes: Optional[int],
    cache: Optional[ResultCache],
) -> Tuple[List[ScenarioResult], _ExecutionStats]:
    """Serve each request from the cache or simulate it; results in order.

    This is the single cache-consistency-critical path shared by
    :func:`run_experiment` and :func:`run_cached_scenarios`: traced requests
    bypass the cache in both directions, and misses are written back as they
    stream off the pool (``on_result``), not after the sweep completes.

    Value-identical cacheable requests (e.g. a seed-insensitive backend
    replicated across the ``--seeds`` axis) are simulated once and the one
    result serves every occurrence; traced requests are never coalesced
    (their consumers hold the live simulator objects).
    """
    stats = _ExecutionStats()
    results: List[Optional[ScenarioResult]] = [None] * len(requests)
    # Each pending entry is one simulation serving one or more result slots.
    pending: List[Tuple[ScenarioRequest, List[int]]] = []
    pending_slot: Dict[ScenarioRequest, int] = {}

    def _enqueue(request: ScenarioRequest, index: int) -> None:
        if request.with_trace:
            pending.append((request, [index]))
            return
        slot = pending_slot.get(request)
        if slot is None:
            pending_slot[request] = len(pending)
            pending.append((request, [index]))
        else:
            pending[slot][1].append(index)

    for index, request in enumerate(requests):
        if request.with_trace:
            # Traces are inherently uncacheable (live simulator objects).
            stats.uncached += 1
            _enqueue(request, index)
            continue
        if cache is None:
            # Cache disabled: plain simulation, no hit/miss/uncached accounting.
            _enqueue(request, index)
            continue
        cached = cache.get(request)
        if cached is not None:
            results[index] = cached
            stats.cache_hits += 1
        else:
            stats.cache_misses += 1
            _enqueue(request, index)
    if pending:

        def _store(pending_index: int, result: ScenarioResult) -> None:
            request, indices = pending[pending_index]
            for index in indices:
                results[index] = result
            if cache is not None and not request.with_trace:
                cache.put(request, result)

        run_scenarios_parallel(
            [request for request, _ in pending], processes=processes, on_result=_store
        )
        stats.simulated = len(pending)
    return results, stats  # type: ignore[return-value]


@dataclass
class ExperimentReport:
    """Everything the CLI (or a caller) needs from one experiment run.

    Attributes:
        spec: the executed experiment.
        quick: whether the reduced grid was used.
        seeds: the seed values actually run (length 1 for non-replicable
            specs regardless of the requested count).
        rows: the report rows — the spec's own rows for a single seed, or
            the CI-aggregated rows for a replicated run.
        rows_by_seed: the raw per-seed rows behind ``rows``.
        cache_hits / cache_misses: cache outcomes for cacheable requests.
        simulated: scenarios that actually ran through the simulator.
        uncached: scenarios executed outside the cache (traced requests).
    """

    spec: ExperimentSpec
    quick: bool
    seeds: List[int]
    rows: List[Row]
    rows_by_seed: List[List[Row]] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    simulated: int = 0
    uncached: int = 0

    @property
    def replicated(self) -> bool:
        """True when the rows aggregate more than one seed."""
        return len(self.seeds) > 1


def _resolve_cache(cache: Union[ResultCache, str, None]) -> Optional[ResultCache]:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


@dataclass(frozen=True)
class ExpandedExperiment:
    """One spec's flat request grid, crossed with the seed replication axis.

    The expansion step of :func:`run_experiment`, reified so external drivers
    (the sharded sweep in :mod:`repro.experiments.sweep`) can enumerate the
    exact same grid — same requests, same seed-major order — without running
    anything.

    Attributes:
        spec: the expanded experiment.
        quick: whether the reduced grid was used.
        params: the merged (defaults + caller) parameters the grid was built
            with.
        plan: the spec's single-seed plan (requests + row aggregator).
        seed_values: the seeds actually expanded (length 1 for non-replicable
            specs regardless of the requested count).
        requests: the flat, seed-major request list —
            ``requests[s * len(plan.requests) + i]`` is grid request ``i``
            shifted to ``seed_values[s]`` (seed-insensitive requests — see
            :meth:`SchedulerBackend.seed_sensitive` — keep their base seed,
            so their replicates are value-identical and share one cache
            entry).
    """

    spec: ExperimentSpec
    quick: bool
    params: Dict[str, object]
    plan: ExperimentPlan
    seed_values: List[int]
    requests: List[ScenarioRequest]

    @property
    def requests_per_seed(self) -> int:
        """Grid width: requests per single seed."""
        return len(self.plan.requests)


def expand_experiment(
    spec: Union[ExperimentSpec, str],
    quick: bool = True,
    seeds: int = 1,
    base_seed: int = 1,
    params: Optional[Mapping[str, object]] = None,
) -> ExpandedExperiment:
    """Expand a spec into its flat request grid without executing it."""
    if isinstance(spec, str):
        spec = get_experiment(spec)
    if seeds < 1:
        raise ValueError("seeds must be >= 1")
    merged_params = spec.merged_params(params)
    plan = spec.build(BuildContext(quick=quick, seed=base_seed, params=merged_params))
    override_specs = merged_params.get("config_overrides") or ()
    if override_specs:
        # Config axes are applied here — after the spec built its grid — so
        # every experiment gets `--set target.field=value` support without
        # knowing about it, and the sharded sweep (which re-expands the same
        # grid from the manifest's params) sees the exact same requests.
        from repro.experiments.scenarios import (
            apply_config_overrides,
            parse_config_overrides,
        )

        overrides = parse_config_overrides(override_specs)
        plan = ExperimentPlan(
            requests=[
                apply_config_overrides(request, overrides) for request in plan.requests
            ],
            make_rows=plan.make_rows,
        )
    seed_values = (
        [base_seed + offset for offset in range(seeds)] if spec.replicable else [base_seed]
    )

    def _seed_sensitive(request: ScenarioRequest) -> bool:
        # Deferred import: the backend modules import this package.
        from repro.backends import get_backend

        return get_backend(request.scheduler).seed_sensitive(
            request.workload, faults=request.faults
        )

    shiftable = (
        [_seed_sensitive(request) for request in plan.requests]
        if len(seed_values) > 1
        else []
    )
    flat_requests: List[ScenarioRequest] = []
    for seed_value in seed_values:
        offset = seed_value - base_seed
        for grid_index, request in enumerate(plan.requests):
            flat_requests.append(
                replace(request, seed=request.seed + offset)
                if offset and shiftable[grid_index]
                else request
            )
    return ExpandedExperiment(
        spec=spec,
        quick=quick,
        params=merged_params,
        plan=plan,
        seed_values=seed_values,
        requests=flat_requests,
    )


def rows_for_expanded(
    expanded: ExpandedExperiment, flat_results: Sequence[ScenarioResult]
) -> Tuple[List[Row], List[List[Row]]]:
    """Fold a grid's flat results into ``(rows, rows_by_seed)``.

    The aggregation step of :func:`run_experiment`, shared with external
    drivers: ``flat_results`` must be in the grid's seed-major request order
    (regardless of where each result came from — simulator, cache, or a
    sweep's row store), and the returned rows are then identical to a direct
    ``run_experiment`` of the same grid.
    """
    rows_by_seed: List[List[Row]] = []
    width = expanded.requests_per_seed
    for seed_index, seed_value in enumerate(expanded.seed_values):
        row_ctx = RowContext(
            quick=expanded.quick,
            seed=seed_value,
            results=flat_results[seed_index * width : (seed_index + 1) * width],
            params=expanded.params,
        )
        rows_by_seed.append(expanded.plan.make_rows(row_ctx))
    if len(expanded.seed_values) == 1:
        return rows_by_seed[0], rows_by_seed
    return aggregate_replicated_rows(rows_by_seed), rows_by_seed


def run_experiment(
    spec: Union[ExperimentSpec, str],
    quick: bool = True,
    seeds: int = 1,
    base_seed: int = 1,
    processes: Optional[int] = 1,
    cache: Union[ResultCache, str, None] = None,
    params: Optional[Mapping[str, object]] = None,
) -> ExperimentReport:
    """Execute one registered experiment end to end.

    Args:
        spec: an :class:`ExperimentSpec` or its registry name.
        quick: reduced grid / shorter horizon (the default everywhere).
        seeds: replication count; seeds ``base_seed .. base_seed+seeds-1``
            are run and aggregated.  Ignored for non-replicable specs.
        base_seed: first (and reference) seed.
        processes: worker processes for the scenario fan-out (``None`` = one
            per CPU, ``1`` = serial in-process).
        cache: a :class:`ResultCache`, a cache directory path, or ``None``
            to disable caching.
        params: spec parameters (e.g. ``{"model_name": "unet"}``), overlaid
            on the spec's defaults.
    """
    expanded = expand_experiment(
        spec, quick=quick, seeds=seeds, base_seed=base_seed, params=params
    )
    flat_results, stats = _serve_or_simulate(
        expanded.requests, processes, _resolve_cache(cache)
    )
    rows, rows_by_seed = rows_for_expanded(expanded, flat_results)
    return ExperimentReport(
        spec=expanded.spec,
        quick=quick,
        seeds=expanded.seed_values,
        rows=rows,
        rows_by_seed=rows_by_seed,
        cache_hits=stats.cache_hits,
        cache_misses=stats.cache_misses,
        simulated=stats.simulated,
        uncached=stats.uncached,
    )


def aggregate_replicated_rows(rows_by_seed: Sequence[Sequence[Row]]) -> List[Row]:
    """Column-wise aggregation of per-seed rows into mean / stdev / CI rows.

    A column is treated as a replicated metric when at least one of its rows
    is numeric across every seed *and* varies across seeds; in such a column
    every numeric row ``x`` becomes its across-seed mean plus companions
    ``x_std`` / ``x_ci95`` (Student-t 95 % half-width), while non-numeric
    cells (e.g. a baseline's ``"-"`` placeholder) pass through with ``"-"``
    companions so the row schema stays uniform.  Fully constant and fully
    non-numeric columns (labels, configuration echo columns, paper reference
    values) pass through untouched from the first seed that has them.

    The inputs are the modules' *display* rows, so the statistics are
    computed over display-rounded values (jps to 0.1, rates to 1e-4).  That
    is deliberate — it keeps single-seed rows bit-identical to the
    pre-registry modules — but it means dispersion below a column's display
    precision is reported as zero.
    """
    first = list(rows_by_seed[0])
    for seed_rows in rows_by_seed[1:]:
        if len(seed_rows) != len(first):
            raise ValueError("per-seed row lists must have identical lengths")

    def _is_number(value: object) -> bool:
        return isinstance(value, (int, float)) and not isinstance(value, bool)

    def _numeric_row(row_index: int, column: str) -> bool:
        return all(
            _is_number(seed_rows[row_index].get(column)) for seed_rows in rows_by_seed
        )

    # Scan the union of keys across every row of every seed, not just the
    # first row's: report schemas may be ragged (a column introduced by a
    # later row — e.g. a metric only some variants report) and such a column
    # must still earn its _std/_ci95 companions.
    columns: Dict[str, None] = {}
    for seed_rows in rows_by_seed:
        for row in seed_rows:
            for column in row:
                columns.setdefault(column)

    replicated_columns = set()
    for column in columns:
        for row_index in range(len(first)):
            if _numeric_row(row_index, column) and (
                len({seed_rows[row_index][column] for seed_rows in rows_by_seed}) > 1
            ):
                replicated_columns.add(column)
                break

    aggregated: List[Row] = []
    for row_index in range(len(first)):
        # Each output row spans the union of this row's columns across all
        # seeds (a column emitted only by later seeds must not be dropped);
        # the base value comes from the first seed that has the column.
        row_columns: Dict[str, None] = {}
        for seed_rows in rows_by_seed:
            for column in seed_rows[row_index]:
                row_columns.setdefault(column)
        row: Row = {}
        for column in row_columns:
            base_value = next(
                seed_rows[row_index][column]
                for seed_rows in rows_by_seed
                if column in seed_rows[row_index]
            )
            if column not in replicated_columns:
                row[column] = base_value
            elif _numeric_row(row_index, column):
                summary = replication_summary(
                    [seed_rows[row_index][column] for seed_rows in rows_by_seed]
                )
                row[column] = round(summary["mean"], 4)
                row[f"{column}{STD_SUFFIX}"] = round(summary["std"], 4)
                row[f"{column}{CI_SUFFIX}"] = round(summary["ci95"], 4)
            else:
                row[column] = base_value
                row[f"{column}{STD_SUFFIX}"] = "-"
                row[f"{column}{CI_SUFFIX}"] = "-"
        aggregated.append(row)
    return aggregated


def run_cached_scenarios(
    requests: Sequence[ScenarioRequest],
    processes: Optional[int] = None,
    cache: Union[ResultCache, str, None] = None,
) -> List[ScenarioResult]:
    """Cache-aware drop-in for :func:`run_scenarios_parallel` (request order).

    Used by ad-hoc sweeps (the ``examples/`` scripts) that want memoization
    without defining a registry spec: cached scenarios are served from disk,
    the rest are simulated in parallel and written back as they complete.
    Traced requests always simulate.
    """
    results, _ = _serve_or_simulate(list(requests), processes, _resolve_cache(cache))
    return results
