"""Cluster serving grid: router policy x GPU count x workload x load.

The multi-GPU counterpart of the ``backends`` grid: one model served by the
``cluster`` backend across every router policy, at several cluster sizes,
under rate-driven workloads (Poisson plus the bursty MMPP and diurnal
columns) and load levels relative to the cluster's aggregate serial
capacity.  Every cell is an ordinary :class:`ScenarioRequest` carrying a
:class:`~repro.cluster.config.ClusterConfig`, so the grid is cacheable,
seed-replicable and shardable like any other, and its rows are
heatmap-ready (``analysis/heatmap.py`` renders e.g. miss rate over
router x gpus).

Parameters: ``--workload`` restricts the grid to one workload column and
``--scheduler cluster`` is accepted as a no-op filter (the grid only runs
the cluster backend); ``--set cluster.placement=partitioned`` or
``--set cluster.migration_backlog=3`` overlay the placement/migration axes
onto every cell.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

import numpy as np

from repro.analysis.tables import format_table
from repro.cluster.config import ClusterConfig
from repro.dnn.zoo import build_model
from repro.experiments.cache import ResultCache
from repro.experiments.engine import run_experiment
from repro.experiments.parallel import ScenarioRequest
from repro.experiments.registry import (
    BuildContext,
    ConfigAxis,
    ExperimentPlan,
    ExperimentSpec,
    RowContext,
    register,
)
from repro.experiments.scenarios import named_workload
from repro.gpu.calibration import DEFAULT_CALIBRATION
from repro.rt.taskset import make_taskset

#: The grid's model: the paper's SOTA anchor, heavy enough that a handful of
#: per-GPU serial executors saturate at a manageable release count.
MODEL = "resnet50"

#: Rate-driven workload columns (saturated is meaningless for a
#: deadline-driven admission server).
WORKLOADS = ("poisson", "bursty", "diurnal")


def _routers(quick: bool) -> List[str]:
    return ["least_loaded", "round_robin"] if quick else [
        "least_loaded",
        "round_robin",
        "deadline_aware",
    ]


def _gpu_counts(quick: bool) -> List[int]:
    return [2, 4] if quick else [2, 4, 8]


def _workloads(quick: bool) -> List[str]:
    return ["poisson", "bursty"] if quick else list(WORKLOADS)


def _loads(quick: bool) -> List[float]:
    """Demand levels relative to the cluster's aggregate serial capacity."""
    return [0.7] if quick else [0.7, 1.5]


def _grid_taskset(model, num_gpus: int, load_factor: float):
    """A task set demanding ``load_factor`` x the cluster's serial capacity.

    Each device executes one DNN at a time, so its capacity is the isolated
    rate ``1000 / isolated_latency``; the cluster's is ``num_gpus`` times
    that.  The same task set is shared by every router at one (gpus, load)
    point, so router columns differ only by dispatch policy.
    """
    serial_jps = 1000.0 / model.isolated_latency_ms(DEFAULT_CALIBRATION)
    task_jps = 25.0
    total_tasks = max(
        2, int(round(load_factor * num_gpus * serial_jps / task_jps))
    )
    num_high = max(1, total_tasks // 3)
    return make_taskset(
        [model],
        num_high=num_high,
        num_low=total_tasks - num_high,
        task_jps=task_jps,
        name=f"cluster-grid/{model.name}/g{num_gpus}/load{load_factor:.2f}",
    )


def _build(ctx: BuildContext) -> ExperimentPlan:
    horizon = 800.0 if ctx.quick else 2500.0
    workload_filter = ctx.param("workload")
    if workload_filter is not None:
        named_workload(str(workload_filter))  # unknown label -> clean KeyError
    scheduler_filter = ctx.param("scheduler")
    if scheduler_filter is not None and scheduler_filter != "cluster":
        raise KeyError(
            f"the cluster grid only runs the 'cluster' backend, not {scheduler_filter!r}"
        )
    model = build_model(MODEL)

    requests: List[ScenarioRequest] = []
    cells: List[Dict[str, object]] = []

    def add(router: str, num_gpus: int, taskset, workload_name: str, load: float) -> None:
        if workload_filter is not None and workload_name != workload_filter:
            return
        requests.append(
            ScenarioRequest(
                taskset,
                ClusterConfig(num_gpus=num_gpus, router=router),
                horizon,
                seed=ctx.seed,
                scheduler="cluster",
                workload=named_workload(workload_name),
            )
        )
        cells.append(
            {
                "router": router,
                "gpus": num_gpus,
                "workload": workload_name,
                "load": load,
            }
        )

    loads = _loads(ctx.quick)
    peak_load = max(loads)
    for num_gpus in _gpu_counts(ctx.quick):
        for load in loads:
            taskset = _grid_taskset(model, num_gpus, load)
            for router in _routers(ctx.quick):
                add(router, num_gpus, taskset, "poisson", load)
        # Bursty / diurnal columns stress the routers at the peak load level.
        peak_taskset = _grid_taskset(model, num_gpus, peak_load)
        for workload_name in _workloads(ctx.quick):
            if workload_name == "poisson":
                continue
            for router in _routers(ctx.quick):
                add(router, num_gpus, peak_taskset, workload_name, peak_load)

    def make_rows(row_ctx: RowContext) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for cell, result in zip(cells, row_ctx.results):
            metrics = result.metrics
            responses = metrics.high.response_times + metrics.low.response_times
            released = metrics.high.released + metrics.low.released
            shed = metrics.high.shed + metrics.low.shed
            breakdown = metrics.gpu_breakdown or ()
            # Router/size come from the result's config (not the grid cell),
            # so --set cluster.* overrides report what actually ran.
            rows.append(
                {
                    "router": result.config.router,
                    "gpus": result.config.num_gpus,
                    "workload": cell["workload"],
                    "load": cell["load"],
                    "jps": round(metrics.total_jps, 1),
                    "goodput": round(metrics.goodput_jps, 1),
                    "miss_rate": round(metrics.overall_dmr, 4),
                    "shed_rate": round(shed / released, 4) if released else 0.0,
                    "p99_ms": round(float(np.percentile(responses, 99)), 3)
                    if responses
                    else 0.0,
                    "utilization": round(metrics.average_gpu_utilization, 4),
                    "max_queue": max((gpu.max_queue_depth for gpu in breakdown), default=0),
                    "migrations": sum(gpu.migrations for gpu in breakdown),
                }
            )
        return rows

    return ExperimentPlan(requests=requests, make_rows=make_rows)


SPEC = register(
    ExperimentSpec(
        name="cluster",
        title="Cluster grid: router policy x GPU count x Poisson/bursty/diurnal x load",
        build=_build,
        defaults={"workload": None, "scheduler": None},
        axes=(
            ConfigAxis(
                "cluster",
                "router",
                ("least_loaded", "round_robin", "deadline_aware"),
                "dispatch policy",
            ),
            ConfigAxis("cluster", "num_gpus", (2, 4, 8), "cluster size"),
            ConfigAxis(
                "cluster",
                "placement",
                ("replicated", "partitioned"),
                "model placement (override axis; the grid default is replicated)",
            ),
            ConfigAxis(
                "cluster",
                "migration_backlog",
                (),
                "queue-depth threshold for migrating a model's queue (0 = off)",
            ),
        ),
    )
)


def run(
    quick: bool = True,
    seed: int = 1,
    seeds: int = 1,
    processes: Optional[int] = 1,
    cache: Union[ResultCache, str, None] = None,
    workload: Optional[str] = None,
) -> List[Dict[str, object]]:
    """One row per (router, gpus, workload, load) grid cell."""
    report = run_experiment(
        SPEC,
        quick=quick,
        seeds=seeds,
        base_seed=seed,
        processes=processes,
        cache=cache,
        params={"workload": workload},
    )
    return report.rows


def main(quick: bool = True) -> str:
    """Run and render the cluster serving grid."""
    table = format_table(run(quick))
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main(quick=False)
