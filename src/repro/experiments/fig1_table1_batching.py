"""Figure 1 / Table I: batching throughput of each DNN.

For every benchmark network the single-stream throughput (Table I ``min``),
the saturated batched throughput across batch sizes (Figure 1) and the
resulting batching gain (Table I ``gain``) are measured on the simulated GPU
using the lower / upper baseline executors.

The baseline executors are deterministic (no scheduling noise), so the
experiment registers as non-replicable: the ``--seeds`` axis does not apply.
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.analysis.tables import format_table
from repro.baselines.batching_server import saturated_batching_jps
from repro.baselines.single import SingleTenantExecutor
from repro.dnn.zoo import available_models, build_model
from repro.experiments.cache import ResultCache
from repro.experiments.engine import run_experiment
from repro.experiments.registry import (
    BuildContext,
    ExperimentPlan,
    ExperimentSpec,
    RowContext,
    register,
)

PAPER_TABLE1 = {
    "resnet18": {"min_jps": 627.0, "max_jps": 1025.0, "gain": 1.63},
    "resnet50": {"min_jps": 250.0, "max_jps": 433.0, "gain": 1.73},
    "unet": {"min_jps": 241.0, "max_jps": 260.0, "gain": 1.08},
    "inceptionv3": {"min_jps": 142.0, "max_jps": 446.0, "gain": 3.13},
}

BATCH_SIZES = [1, 2, 4, 8, 16, 32]


def _make_rows(row_ctx: RowContext) -> List[Dict[str, object]]:
    horizon = 1000.0 if row_ctx.quick else 3000.0
    batch_sizes = [1, 4, 16] if row_ctx.quick else BATCH_SIZES
    rows: List[Dict[str, object]] = []
    for name in available_models():
        model = build_model(name)
        single_jps = SingleTenantExecutor(model).run(horizon)
        best_jps = single_jps
        for batch in batch_sizes:
            if batch == 1:
                jps = single_jps
            else:
                jps = saturated_batching_jps(model, batch, horizon_ms=horizon)
            best_jps = max(best_jps, jps)
            rows.append(
                {
                    "model": name,
                    "batch_size": batch,
                    "measured_jps": round(jps, 1),
                    "normalized": round(jps / single_jps, 2) if single_jps else 0.0,
                }
            )
        paper = PAPER_TABLE1[name]
        rows.append(
            {
                "model": name,
                "batch_size": "gain",
                "measured_jps": round(best_jps, 1),
                "normalized": round(best_jps / single_jps, 2) if single_jps else 0.0,
                "paper_min": paper["min_jps"],
                "paper_max": paper["max_jps"],
                "paper_gain": paper["gain"],
            }
        )
    return rows


def _build(ctx: BuildContext) -> ExperimentPlan:
    del ctx  # the batching curves use no scenario requests
    return ExperimentPlan(requests=[], make_rows=_make_rows)


SPEC = register(
    ExperimentSpec(
        name="fig1_table1",
        title="Figure 1 / Table I: batching throughput curves and gains",
        build=_build,
        highlights=PAPER_TABLE1,
        replicable=False,
    )
)


def run(quick: bool = True, cache: Union[ResultCache, str, None] = None) -> List[Dict[str, object]]:
    """Measure the batching curve of every model; one row per (model, batch size)."""
    return run_experiment(SPEC, quick=quick, cache=cache).rows


def main(quick: bool = True) -> str:
    """Run and render the Table I / Figure 1 reproduction."""
    table = format_table(run(quick))
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main(quick=False)
