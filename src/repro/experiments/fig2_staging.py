"""Figure 2: task staging and MRET-proportional virtual deadlines.

The figure in the paper is illustrative; this experiment reproduces its
content quantitatively: for each network it reports the per-stage MRET shares
and the resulting virtual relative deadlines for a job of the Table II period.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.tables import format_table
from repro.dnn.zoo import available_models, build_model
from repro.rt.deadlines import virtual_deadline_shares
from repro.rt.taskset import TABLE2


def run(quick: bool = True) -> List[Dict[str, object]]:
    """One row per (model, stage) with its deadline share."""
    del quick
    rows: List[Dict[str, object]] = []
    for name in available_models():
        model = build_model(name)
        period = 1000.0 / TABLE2[name].task_jps if name in TABLE2 else 1000.0 / 30.0
        mrets = [stage.isolated_duration_ms(model.gpu.num_sms) for stage in model.stages]
        shares = virtual_deadline_shares(mrets, period)
        for stage, mret, share in zip(model.stages, mrets, shares):
            rows.append(
                {
                    "model": name,
                    "stage": stage.index,
                    "mret_ms": round(mret, 3),
                    "virtual_deadline_ms": round(share, 2),
                    "deadline_fraction": round(share / period, 3),
                }
            )
    return rows


def main(quick: bool = True) -> str:
    """Run and render the Figure 2 reproduction."""
    table = format_table(run(quick))
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
