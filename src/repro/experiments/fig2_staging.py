"""Figure 2: task staging and MRET-proportional virtual deadlines.

The figure in the paper is illustrative; this experiment reproduces its
content quantitatively: for each network it reports the per-stage MRET shares
and the resulting virtual relative deadlines for a job of the Table II period.

The computation is closed-form (no simulation), so the experiment registers
as non-replicable: the ``--seeds`` axis does not apply.
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.analysis.tables import format_table
from repro.dnn.zoo import available_models, build_model
from repro.experiments.cache import ResultCache
from repro.experiments.engine import run_experiment
from repro.experiments.registry import (
    BuildContext,
    ExperimentPlan,
    ExperimentSpec,
    RowContext,
    register,
)
from repro.rt.deadlines import virtual_deadline_shares
from repro.rt.taskset import TABLE2


def _make_rows(row_ctx: RowContext) -> List[Dict[str, object]]:
    del row_ctx  # one deterministic row set regardless of seed / quick
    rows: List[Dict[str, object]] = []
    for name in available_models():
        model = build_model(name)
        period = 1000.0 / TABLE2[name].task_jps if name in TABLE2 else 1000.0 / 30.0
        mrets = [stage.isolated_duration_ms(model.gpu.num_sms) for stage in model.stages]
        shares = virtual_deadline_shares(mrets, period)
        for stage, mret, share in zip(model.stages, mrets, shares):
            rows.append(
                {
                    "model": name,
                    "stage": stage.index,
                    "mret_ms": round(mret, 3),
                    "virtual_deadline_ms": round(share, 2),
                    "deadline_fraction": round(share / period, 3),
                }
            )
    return rows


def _build(ctx: BuildContext) -> ExperimentPlan:
    del ctx  # closed-form; no scenario requests
    return ExperimentPlan(requests=[], make_rows=_make_rows)


SPEC = register(
    ExperimentSpec(
        name="fig2",
        title="Figure 2: staging and MRET-proportional virtual deadlines",
        build=_build,
        replicable=False,
    )
)


def run(quick: bool = True, cache: Union[ResultCache, str, None] = None) -> List[Dict[str, object]]:
    """One row per (model, stage) with its deadline share."""
    return run_experiment(SPEC, quick=quick, cache=cache).rows


def main(quick: bool = True) -> str:
    """Run and render the Figure 2 reproduction."""
    table = format_table(run(quick))
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
