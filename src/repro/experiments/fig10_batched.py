"""Figure 10: DARIS combined with input batching.

Batch sizes 4 / 2 / 8 are used for ResNet18 / UNet / InceptionV3 respectively.
For each network the experiment reports absolute throughput (Figure 10a-c),
the gain relative to the equivalent un-batched configuration (Figure 10d-f)
and the LP deadline miss rate (Figure 10g-i) across MPS configurations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.analysis.tables import format_table
from repro.dnn.zoo import build_model
from repro.experiments.cache import ResultCache
from repro.experiments.engine import run_experiment
from repro.experiments.parallel import ScenarioRequest
from repro.experiments.registry import (
    BuildContext,
    ExperimentPlan,
    ExperimentSpec,
    RowContext,
    register,
)
from repro.experiments.scenarios import horizon_ms, mps_configs
from repro.rt.taskset import table2_taskset

PAPER_GAIN_HINTS = {"resnet18": "moderate", "unet": "<= 18 %", "inceptionv3": ">= 55 %"}


def _build(ctx: BuildContext) -> ExperimentPlan:
    model_name = str(ctx.param("model_name", "resnet18"))
    model = build_model(model_name)
    batch_size = model.profile.preferred_batch_size
    horizon = horizon_ms(ctx.quick)
    unbatched = table2_taskset(model_name, model=model, batch_size=1)
    batched = table2_taskset(model_name, model=model, batch_size=batch_size)

    configs = mps_configs(ctx.quick)
    if ctx.quick:
        configs = configs[:4]
    # Two requests per configuration: the un-batched baseline then the
    # batched variant, interleaved so each row's pair is adjacent.
    requests: List[ScenarioRequest] = []
    for config in configs:
        requests.append(ScenarioRequest(unbatched, config, horizon, seed=ctx.seed))
        requests.append(ScenarioRequest(batched, config, horizon, seed=ctx.seed))

    def make_rows(row_ctx: RowContext) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for index, config in enumerate(configs):
            base = row_ctx.results[2 * index]
            with_batching = row_ctx.results[2 * index + 1]
            base_jobs = base.total_jps
            batched_jobs = with_batching.total_jps * batch_size  # jobs, not batches
            rows.append(
                {
                    "model": model_name,
                    "batch_size": batch_size,
                    "config": f"{config.num_contexts}x{config.streams_per_context}",
                    "oversubscription": config.oversubscription,
                    "unbatched_jps": round(base_jobs, 1),
                    "batched_jps": round(batched_jobs, 1),
                    "gain": round(batched_jobs / base_jobs, 2) if base_jobs else 0.0,
                    "lp_dmr_batched": round(with_batching.lp_dmr, 4),
                    "upper_baseline_jps": model.profile.batched_max_jps,
                }
            )
        return rows

    return ExperimentPlan(requests=requests, make_rows=make_rows)


SPEC = register(
    ExperimentSpec(
        name="fig10",
        title="Figure 10: DARIS + input batching across MPS configurations",
        build=_build,
        highlights=PAPER_GAIN_HINTS,
        defaults={"model_name": "resnet18"},
    )
)


def run(
    model_name: str = "resnet18",
    quick: bool = True,
    seed: int = 1,
    seeds: int = 1,
    processes: Optional[int] = 1,
    cache: Union[ResultCache, str, None] = None,
) -> List[Dict[str, object]]:
    """Sweep MPS configurations with and without batching for one network."""
    report = run_experiment(
        SPEC,
        quick=quick,
        seeds=seeds,
        base_seed=seed,
        processes=processes,
        cache=cache,
        params={"model_name": model_name},
    )
    return report.rows


def main(model_name: str = "resnet18", quick: bool = True) -> str:
    """Run and render one panel set of Figure 10."""
    rows = run(model_name, quick, processes=None)
    table = format_table(rows)
    print(table)
    print(f"paper gain hint for {model_name}: {PAPER_GAIN_HINTS[model_name]}")
    return table


if __name__ == "__main__":  # pragma: no cover
    for name in ("resnet18", "unet", "inceptionv3"):
        main(name, quick=False)
