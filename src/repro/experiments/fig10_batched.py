"""Figure 10: DARIS combined with input batching.

Batch sizes 4 / 2 / 8 are used for ResNet18 / UNet / InceptionV3 respectively.
For each network the experiment reports absolute throughput (Figure 10a-c),
the gain relative to the equivalent un-batched configuration (Figure 10d-f)
and the LP deadline miss rate (Figure 10g-i) across MPS configurations.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.tables import format_table
from repro.dnn.zoo import build_model
from repro.experiments.runner import run_daris_scenario
from repro.experiments.scenarios import horizon_ms, mps_configs
from repro.rt.taskset import table2_taskset

PAPER_GAIN_HINTS = {"resnet18": "moderate", "unet": "<= 18 %", "inceptionv3": ">= 55 %"}


def run(model_name: str = "resnet18", quick: bool = True, seed: int = 1) -> List[Dict[str, object]]:
    """Sweep MPS configurations with and without batching for one network."""
    model = build_model(model_name)
    batch_size = model.profile.preferred_batch_size
    horizon = horizon_ms(quick)
    unbatched = table2_taskset(model_name, model=model, batch_size=1)
    batched = table2_taskset(model_name, model=model, batch_size=batch_size)

    rows: List[Dict[str, object]] = []
    configs = mps_configs(quick)
    if quick:
        configs = configs[:4]
    for config in configs:
        base = run_daris_scenario(unbatched, config, horizon, seed=seed)
        with_batching = run_daris_scenario(batched, config, horizon, seed=seed)
        base_jobs = base.total_jps
        batched_jobs = with_batching.total_jps * batch_size  # jobs, not batches
        rows.append(
            {
                "model": model_name,
                "batch_size": batch_size,
                "config": f"{config.num_contexts}x{config.streams_per_context}",
                "oversubscription": config.oversubscription,
                "unbatched_jps": round(base_jobs, 1),
                "batched_jps": round(batched_jobs, 1),
                "gain": round(batched_jobs / base_jobs, 2) if base_jobs else 0.0,
                "lp_dmr_batched": round(with_batching.lp_dmr, 4),
                "upper_baseline_jps": model.profile.batched_max_jps,
            }
        )
    return rows


def main(model_name: str = "resnet18", quick: bool = True) -> str:
    """Run and render one panel set of Figure 10."""
    rows = run(model_name, quick)
    table = format_table(rows)
    print(table)
    print(f"paper gain hint for {model_name}: {PAPER_GAIN_HINTS[model_name]}")
    return table


if __name__ == "__main__":  # pragma: no cover
    for name in ("resnet18", "unet", "inceptionv3"):
        main(name, quick=False)
