"""Figure 7: mixed task set containing all three DNN types.

The paper evaluates the STR and MPS policies on a mixed workload; as with the
homogeneous sets, MPS should provide the best throughput and STR the most
reliable deadline behaviour.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.analysis.tables import format_table
from repro.experiments.cache import ResultCache
from repro.experiments.engine import run_experiment
from repro.experiments.parallel import ScenarioRequest
from repro.experiments.registry import (
    BuildContext,
    ExperimentPlan,
    ExperimentSpec,
    RowContext,
    register,
)
from repro.experiments.scenarios import horizon_ms, mps_configs, str_configs
from repro.rt.taskset import mixed_taskset


def _build(ctx: BuildContext) -> ExperimentPlan:
    taskset = mixed_taskset()
    horizon = horizon_ms(ctx.quick)
    configs = str_configs(ctx.quick) + mps_configs(ctx.quick)
    requests = [ScenarioRequest(taskset, config, horizon, seed=ctx.seed) for config in configs]

    def make_rows(row_ctx: RowContext) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for config, result in zip(configs, row_ctx.results):
            rows.append(
                {
                    "task_set": "mixed",
                    "policy": config.policy.value,
                    "config": f"{config.num_contexts}x{config.streams_per_context}",
                    "oversubscription": config.oversubscription,
                    "total_jps": round(result.total_jps, 1),
                    "hp_dmr": round(result.hp_dmr, 4),
                    "lp_dmr": round(result.lp_dmr, 4),
                }
            )
        return rows

    return ExperimentPlan(requests=requests, make_rows=make_rows)


SPEC = register(
    ExperimentSpec(
        name="fig7",
        title="Figure 7: mixed task set (STR and MPS policies)",
        build=_build,
    )
)


def run(
    quick: bool = True,
    seed: int = 1,
    processes: Optional[int] = 1,
    seeds: int = 1,
    cache: Union[ResultCache, str, None] = None,
) -> List[Dict[str, object]]:
    """Sweep STR and MPS configurations over the mixed task set."""
    report = run_experiment(
        SPEC, quick=quick, seeds=seeds, base_seed=seed, processes=processes, cache=cache
    )
    return report.rows


def main(quick: bool = True) -> str:
    """Run and render the Figure 7 reproduction (parallel sweep)."""
    rows = run(quick, processes=None)
    best_mps = max((r for r in rows if r["policy"] == "MPS"), key=lambda r: r["total_jps"])
    best_str = max((r for r in rows if r["policy"] == "STR"), key=lambda r: r["total_jps"])
    table = format_table(rows)
    summary = (
        f"\nbest MPS: {best_mps['config']} OS{best_mps['oversubscription']} -> {best_mps['total_jps']} JPS"
        f" | best STR: {best_str['config']} -> {best_str['total_jps']} JPS"
    )
    print(table + summary)
    return table + summary


if __name__ == "__main__":  # pragma: no cover
    main(quick=False)
