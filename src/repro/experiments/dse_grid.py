"""Design-space exploration grid: config axes x hardware points x Pareto.

Where :mod:`repro.experiments.backend_grid` crosses *scenarios* (models,
workloads, load levels) against fixed per-backend configurations, this grid
crosses *configurations*: scheduler tunables — DARIS's MRET window and MPS
oversubscription, Clockwork's admission slack — against GPU hardware points
(SM count), under one fixed scenario (ResNet50, Poisson arrivals at 1.5x
the batching baseline).  Every cell is an ordinary
:class:`ScenarioRequest`, so the whole design grid is cacheable,
seed-replicable (``--seeds N`` CIs) and shardable (``sweep``) exactly like
every other experiment.

The rows are heatmap-ready (one row per design point with its axis settings
as columns) and feed :func:`frontier_from_rows`, which lifts them into
:mod:`repro.analysis.pareto` points — objectives: deadline-miss rate down,
p99 response down, GPU utilization up, GPU cost down — and returns the
CI-aware Pareto split the ``dse`` CLI command renders.

Caveat: the Clockwork backend never reports GPU utilization (its metrics
carry ``average_gpu_utilization = 0``), so in a mixed-backend frontier its
points sit at the pessimal utilization; restrict to ``--scheduler daris``
or drop the utilization objective for clockwork-only analysis.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.analysis.pareto import (
    DEFAULT_OBJECTIVES,
    Objective,
    ParetoResult,
    gpu_cost_per_hour,
    pareto_frontier,
    points_from_rows,
)
from repro.analysis.tables import format_table
from repro.backends import get_backend
from repro.backends.configs import ClockworkConfig
from repro.dnn.zoo import build_model
from repro.experiments.cache import ResultCache
from repro.experiments.engine import run_experiment
from repro.experiments.parallel import ScenarioRequest
from repro.experiments.registry import (
    BuildContext,
    ConfigAxis,
    ExperimentPlan,
    ExperimentSpec,
    RowContext,
    register,
)
from repro.gpu.spec import RTX_2080_TI
from repro.rt.taskset import make_taskset
from repro.scheduler.config import DarisConfig
from repro.sim.workload import POISSON_WORKLOAD

#: The scenario every design point runs: one model, one load level.
MODEL_NAME = "resnet50"
LOAD_FACTOR = 1.5

#: DARIS lane: MRET window x MPS oversubscription (6 contexts, paper's best).
DARIS_CONTEXTS = 6
WINDOWS_QUICK = (3, 5)
WINDOWS_FULL = (3, 5, 8)
OVERSUBSCRIPTIONS_QUICK = (1.0, 6.0)
OVERSUBSCRIPTIONS_FULL = (1.0, 2.0, 6.0)

#: Clockwork lane: admission slack (>1 sheds earlier, <1 admits deeper).
SLACKS_QUICK = (1.0, 1.25)
SLACKS_FULL = (0.9, 1.0, 1.25)

#: Hardware axis: swept SM counts (the anchor RTX 2080 Ti has 68).
SM_COUNTS_QUICK = (40, 68)
SM_COUNTS_FULL = (40, 54, 68)


def _axis_values(quick_values: Sequence, full_values: Sequence, quick: bool) -> Sequence:
    return quick_values if quick else full_values


def _dse_taskset(model):
    """The grid's one scenario: ``LOAD_FACTOR`` x the batching baseline."""
    task_jps = 25.0
    total_tasks = max(
        3, int(round(LOAD_FACTOR * model.profile.batched_max_jps / task_jps))
    )
    num_high = max(1, total_tasks // 3)
    return make_taskset(
        [model],
        num_high=num_high,
        num_low=total_tasks - num_high,
        task_jps=task_jps,
        name=f"dse/{model.name}/load{LOAD_FACTOR:.2f}",
    )


def _build(ctx: BuildContext) -> ExperimentPlan:
    horizon = 800.0 if ctx.quick else 2500.0
    scheduler_filter = ctx.param("scheduler")
    if scheduler_filter is not None:
        get_backend(str(scheduler_filter))  # unknown backend -> clean KeyError
    model = build_model(MODEL_NAME)
    taskset = _dse_taskset(model)
    sm_counts = _axis_values(SM_COUNTS_QUICK, SM_COUNTS_FULL, ctx.quick)

    requests: List[ScenarioRequest] = []
    cells: List[Dict[str, object]] = []

    def add(backend_name: str, config, gpu, cell: Dict[str, object]) -> None:
        if scheduler_filter is not None and backend_name != scheduler_filter:
            return
        requests.append(
            ScenarioRequest(
                taskset,
                config,
                horizon,
                seed=ctx.seed,
                scheduler=backend_name,
                workload=POISSON_WORKLOAD,
                gpu=gpu,
            )
        )
        cells.append({"backend": backend_name, **cell, "gpu": gpu})

    for sms in sm_counts:
        gpu = RTX_2080_TI.with_field("num_sms", int(sms))
        for window in _axis_values(WINDOWS_QUICK, WINDOWS_FULL, ctx.quick):
            for oversubscription in _axis_values(
                OVERSUBSCRIPTIONS_QUICK, OVERSUBSCRIPTIONS_FULL, ctx.quick
            ):
                add(
                    "daris",
                    DarisConfig.mps_config(
                        DARIS_CONTEXTS, oversubscription, window_size=window
                    ),
                    gpu,
                    {"window": window, "os": oversubscription, "slack": "-", "sms": sms},
                )
        for slack in _axis_values(SLACKS_QUICK, SLACKS_FULL, ctx.quick):
            add(
                "clockwork",
                ClockworkConfig(admission_slack=slack),
                gpu,
                {"window": "-", "os": "-", "slack": slack, "sms": sms},
            )

    def make_rows(row_ctx: RowContext) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for cell, result in zip(cells, row_ctx.results):
            metrics = result.metrics
            responses = metrics.high.response_times + metrics.low.response_times
            p99 = float(np.percentile(np.asarray(responses), 99)) if responses else 0.0
            rows.append(
                {
                    "backend": cell["backend"],
                    "window": cell["window"],
                    "os": cell["os"],
                    "slack": cell["slack"],
                    "sms": cell["sms"],
                    "jps": round(metrics.total_jps, 1),
                    "miss_rate": round(metrics.overall_dmr, 4),
                    "p99_ms": round(p99, 3),
                    "utilization": round(metrics.average_gpu_utilization, 4),
                    # Analysis-time cost model: deterministic per hardware
                    # point, so it stays constant across seeds (no CI columns).
                    "gpu_cost": round(gpu_cost_per_hour(cell["gpu"]), 4),
                }
            )
        return rows

    return ExperimentPlan(requests=requests, make_rows=make_rows)


#: Identity columns of a design-point row (everything that is not a metric).
KEY_COLUMNS = ("backend", "window", "os", "slack", "sms")


def frontier_from_rows(
    rows: Sequence[Dict[str, object]],
    objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
) -> ParetoResult:
    """The CI-aware Pareto split of a DSE report's rows.

    Replicated runs carry ``_ci95`` companions next to each objective column
    (the engine's Student-t aggregation); they become each point's CI
    half-widths, so frontier membership is decided on statistically
    meaningful differences only.
    """
    points = points_from_rows(rows, objectives=objectives, key_columns=KEY_COLUMNS)
    return pareto_frontier(points, objectives)


SPEC = register(
    ExperimentSpec(
        name="dse",
        title="Design-space exploration: DARIS window/OS + Clockwork slack x GPU SM count, Pareto frontier",
        build=_build,
        defaults={"scheduler": None},
        axes=(
            ConfigAxis(
                "daris", "window_size", WINDOWS_FULL, "MRET window (requests)"
            ),
            ConfigAxis(
                "daris",
                "oversubscription",
                OVERSUBSCRIPTIONS_FULL,
                "MPS SM-quota oversubscription",
            ),
            ConfigAxis(
                "clockwork",
                "admission_slack",
                SLACKS_FULL,
                "admission predicted-latency slack",
            ),
            ConfigAxis("gpu", "num_sms", SM_COUNTS_FULL, "streaming multiprocessors"),
        ),
    )
)


def run(
    quick: bool = True,
    seed: int = 1,
    seeds: int = 1,
    processes: Optional[int] = 1,
    cache: Union[ResultCache, str, None] = None,
    scheduler: Optional[str] = None,
) -> List[Dict[str, object]]:
    """One heatmap-ready row per design point (axis settings + objectives)."""
    report = run_experiment(
        SPEC,
        quick=quick,
        seeds=seeds,
        base_seed=seed,
        processes=processes,
        cache=cache,
        params={"scheduler": scheduler},
    )
    return report.rows


def main(quick: bool = True) -> str:
    """Run the design grid and render rows plus the Pareto frontier."""
    rows = run(quick)
    result = frontier_from_rows(rows)
    table = format_table(rows)
    frontier = ", ".join(point.key for point in result.frontier)
    summary = (
        f"{table}\n"
        f"frontier: {len(result.frontier)} point(s); "
        f"dominated: {len(result.dominated)}\n{frontier}"
    )
    print(summary)
    return summary


if __name__ == "__main__":  # pragma: no cover
    main(quick=False)
