"""One command-line entry point for every experiment of the paper.

Usage::

    python -m repro.experiments list
    python -m repro.experiments run fig4_6 --quick --seeds 5 --jobs 8 --cache-dir .cache
    python -m repro.experiments run --all --quick
    python -m repro.experiments cache --cache-dir .cache [--prune-max-entries N] [--clear]

``run`` executes one or more registered experiments through the shared
engine: scenario grids are fanned out over worker processes, replicated
across seeds, served from / written back to the disk cache, and rendered as
text tables (with ``mean ±ci95`` cells when ``--seeds > 1``).

``--expect-cached`` turns the run into an assertion that *zero* scenarios
had to be simulated — CI uses it to verify that a repeated invocation is
served entirely from cache.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.analysis.tables import format_replicated_table, format_table
from repro.experiments.cache import ResultCache
from repro.experiments.engine import ExperimentReport, run_experiment
from repro.experiments.registry import (
    all_experiments,
    get_experiment,
    load_all_experiments,
)

EXIT_OK = 0
EXIT_UNKNOWN_EXPERIMENT = 2
EXIT_NOT_CACHED = 3


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the paper's experiments through the shared registry/engine.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list registered experiments")
    list_parser.add_argument("--json", action="store_true", help="machine-readable output")

    run_parser = subparsers.add_parser("run", help="run one or more experiments")
    run_parser.add_argument("experiments", nargs="*", help="registry names (e.g. fig4_6 sota)")
    run_parser.add_argument("--all", action="store_true", help="run every registered experiment")
    grid = run_parser.add_mutually_exclusive_group()
    grid.add_argument(
        "--quick",
        dest="quick",
        action="store_true",
        default=True,
        help="reduced grid / shorter horizon (default)",
    )
    grid.add_argument(
        "--full", dest="quick", action="store_false", help="the paper's full grids"
    )
    run_parser.add_argument("--seeds", type=int, default=1, help="replication count (default 1)")
    run_parser.add_argument("--base-seed", type=int, default=1, help="first seed (default 1)")
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: one per CPU; 1 = serial)",
    )
    run_parser.add_argument(
        "--cache-dir",
        default=".cache/experiments",
        help="result cache directory (default .cache/experiments)",
    )
    run_parser.add_argument(
        "--no-cache", action="store_true", help="bypass the result cache entirely"
    )
    run_parser.add_argument(
        "--model",
        default=None,
        help="model parameter for model-parameterized specs (fig4_6, fig8, fig10)",
    )
    run_parser.add_argument(
        "--expect-cached",
        action="store_true",
        help=(
            f"exit {EXIT_NOT_CACHED} if any cacheable scenario had to be simulated"
            " (traced scenarios are exempt: they bypass the cache by design)"
        ),
    )
    run_parser.add_argument("--json", action="store_true", help="emit rows as JSON lines")

    cache_parser = subparsers.add_parser("cache", help="inspect or trim the result cache")
    cache_parser.add_argument(
        "--cache-dir", default=".cache/experiments", help="cache directory to manage"
    )
    cache_parser.add_argument("--clear", action="store_true", help="remove every entry")
    cache_parser.add_argument(
        "--prune-max-entries", type=int, default=None, help="keep only the newest N entries"
    )
    cache_parser.add_argument(
        "--prune-max-age-days", type=float, default=None, help="drop entries older than N days"
    )
    return parser


def _command_list(args: argparse.Namespace) -> int:
    specs = all_experiments()
    if args.json:
        print(
            json.dumps(
                [
                    {"name": spec.name, "title": spec.title, "replicable": spec.replicable}
                    for spec in specs
                ]
            )
        )
        return EXIT_OK
    rows = [
        {
            "name": spec.name,
            "seeds_axis": "yes" if spec.replicable else "no (deterministic)",
            "title": spec.title,
        }
        for spec in specs
    ]
    print(format_table(rows))
    return EXIT_OK


def _print_report(report: ExperimentReport, as_json: bool) -> None:
    spec = report.spec
    if as_json:
        for row in report.rows:
            print(json.dumps({"experiment": spec.name, **row}))
        return
    seeds_note = (
        f"seeds {report.seeds[0]}..{report.seeds[-1]}" if report.replicated else f"seed {report.seeds[0]}"
    )
    print(f"== {spec.name} — {spec.title} [{'quick' if report.quick else 'full'}, {seeds_note}] ==")
    renderer = format_replicated_table if report.replicated else format_table
    print(renderer(report.rows))
    if spec.highlights:
        print(f"paper highlights: {json.dumps(spec.highlights)}")
    print(
        f"scenarios: {report.cache_hits} cached, {report.simulated} simulated"
        f" ({report.uncached} uncacheable)"
    )
    print()


def _command_run(args: argparse.Namespace) -> int:
    load_all_experiments()
    if args.all and args.experiments:
        print("pass either experiment names or --all, not both", file=sys.stderr)
        return EXIT_UNKNOWN_EXPERIMENT
    if args.all:
        specs = all_experiments()
    elif args.experiments:
        try:
            specs = [get_experiment(name) for name in args.experiments]
        except KeyError as error:
            print(error.args[0], file=sys.stderr)
            return EXIT_UNKNOWN_EXPERIMENT
    else:
        print("nothing to run: name experiments or pass --all", file=sys.stderr)
        return EXIT_UNKNOWN_EXPERIMENT

    cache: Optional[ResultCache] = None if args.no_cache else ResultCache(args.cache_dir)
    params = {"model_name": args.model} if args.model else None
    total_simulated = total_hits = total_misses = 0
    for spec in specs:
        report = run_experiment(
            spec,
            quick=args.quick,
            seeds=args.seeds,
            base_seed=args.base_seed,
            processes=args.jobs,
            cache=cache,
            params=params,
        )
        _print_report(report, args.json)
        total_simulated += report.simulated
        total_hits += report.cache_hits
        total_misses += report.cache_misses

    if not args.json:
        print(
            f"total: {len(specs)} experiment(s), {total_hits} scenario(s) from cache,"
            f" {total_simulated} simulated"
        )
    # Cache misses == cacheable scenarios that had to run; traced scenarios
    # (report.uncached) bypass the cache by design and don't fail the check.
    if args.expect_cached and (total_misses > 0 or args.no_cache):
        print(
            f"--expect-cached: {total_misses} cacheable scenario(s) had to be simulated",
            file=sys.stderr,
        )
        return EXIT_NOT_CACHED
    return EXIT_OK


def _command_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.clear:
        removed = cache.clear()
        print(f"removed {removed} entr{'y' if removed == 1 else 'ies'}")
        return EXIT_OK
    if args.prune_max_entries is not None or args.prune_max_age_days is not None:
        removed = cache.prune(
            max_entries=args.prune_max_entries, max_age_days=args.prune_max_age_days
        )
        print(f"pruned {removed} entr{'y' if removed == 1 else 'ies'}")
    entries = len(cache)
    print(f"{cache.cache_dir}: {entries} entr{'y' if entries == 1 else 'ies'},"
          f" {cache.size_bytes() / 1024.0:.1f} KiB")
    return EXIT_OK


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(list(argv) if argv is not None else None)
    if args.command == "list":
        return _command_list(args)
    if args.command == "run":
        return _command_run(args)
    return _command_cache(args)
