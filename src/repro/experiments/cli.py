"""One command-line entry point for every experiment of the paper.

Usage::

    python -m repro.experiments list
    python -m repro.experiments run fig4_6 --quick --seeds 5 --jobs 8 --cache-dir .cache
    python -m repro.experiments run --all --quick
    python -m repro.experiments run backends --quick --scheduler clockwork
    python -m repro.experiments run backends --quick --workload bursty
    python -m repro.experiments run faults --quick --fault storm
    python -m repro.experiments run fig9 --quick --set daris.mret_window=8 --set gpu.sm_count=40
    python -m repro.experiments dse --quick --seeds 3 --cache-dir .cache
    python -m repro.experiments run fig4_6 --quick --no-cache --profile
    python -m repro.experiments cache --cache-dir .cache [--prune-max-entries N] [--clear]
    python -m repro.experiments sweep plan --all --shards 8 --seeds 5
    python -m repro.experiments sweep run --all --shard 3/8 --seeds 5
    python -m repro.experiments sweep status --sweep-dir .cache/sweep
    python -m repro.experiments sweep merge --all --seeds 5

``run`` executes one or more registered experiments through the shared
engine: scenario grids are fanned out over worker processes, replicated
across seeds, served from / written back to the disk cache, and rendered as
text tables (with ``mean ±ci95`` cells when ``--seeds > 1``).  Scenarios
dispatch through the scheduler-backend registry (``list`` prints the
registered backends plus the named workload and fault-profile
vocabularies); ``--scheduler``, ``--workload`` and ``--fault`` narrow the
parameterized specs (the ``backends`` / ``faults`` grids) to one backend /
one named arrival process / one fault profile and reject unknown names as a
usage error.

``--expect-cached`` turns the run into an assertion that *zero* scenarios
had to be simulated — CI uses it to verify that a repeated invocation is
served entirely from cache.

``sweep`` is the multi-machine face of the same grids: ``plan`` sizes the
shards without simulating, ``run --shard i/N`` executes (or resumes) one
deterministic cache-key-range shard, ``status`` reports per-shard progress
from the row stores alone, and ``merge`` folds the stores back into rows
byte-identical to a single-machine ``run``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence, Tuple

from repro.analysis.tables import format_replicated_table, format_table
from repro.experiments.cache import ResultCache
from repro.experiments.engine import ExperimentReport, run_experiment
from repro.experiments.registry import (
    ExperimentSpec,
    all_experiments,
    get_experiment,
    load_all_experiments,
)
from repro.experiments.sweep import (
    SweepError,
    SweepGridMismatch,
    merge_sweep,
    plan_sweep,
    run_sweep_shard,
    sweep_status,
)

EXIT_OK = 0
EXIT_UNKNOWN_EXPERIMENT = 2
EXIT_NOT_CACHED = 3
EXIT_NO_CACHE = 4
#: The sweep is not done yet — polling again later can succeed.
EXIT_SWEEP_INCOMPLETE = 5
#: The sweep directory belongs to a different grid — retrying cannot help.
EXIT_SWEEP_MISMATCH = 6


def _positive_int(text: str) -> int:
    """argparse type: an integer >= 1, rejected with a clean usage error."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    """argparse type: an integer >= 0, rejected with a clean usage error."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _backend_name(text: str) -> str:
    """argparse type: a registered scheduler backend, rejected cleanly.

    An unknown backend is a usage error (exit 2) listing the registry, in
    the same style as the other argument validators — not a KeyError
    traceback out of the engine mid-run.
    """
    from repro.backends import backend_names

    names = backend_names()
    if text not in names:
        raise argparse.ArgumentTypeError(
            f"unknown scheduler backend {text!r}; registered: {', '.join(names)}"
        )
    return text


def _workload_label(text: str) -> str:
    """argparse type: a named workload label, rejected cleanly.

    An unknown label is a usage error (exit 2) listing the vocabulary, in
    the same style as ``--scheduler`` — not a KeyError traceback out of the
    engine mid-run.
    """
    from repro.experiments.scenarios import workload_names

    names = workload_names()
    if text not in names:
        raise argparse.ArgumentTypeError(
            f"unknown workload {text!r}; known: {', '.join(names)}"
        )
    return text


def _fault_label(text: str) -> str:
    """argparse type: a named fault-profile label, rejected cleanly.

    An unknown label is a usage error (exit 2) listing the vocabulary, in
    the same style as ``--workload`` — not a KeyError traceback out of the
    engine mid-run.
    """
    from repro.experiments.scenarios import fault_names

    names = fault_names()
    if text not in names:
        raise argparse.ArgumentTypeError(
            f"unknown fault profile {text!r}; known: {', '.join(names)}"
        )
    return text


def _config_override(text: str) -> str:
    """argparse type for ``--set TARGET.FIELD=VALUE``: a validated config axis.

    Parse-time validation catches unknown targets/fields, wrong value types
    and out-of-range values (a negative SM count, a zero batching cap) as a
    clean usage error listing the axis vocabulary — not a traceback out of
    the engine mid-sweep.  The canonical string form (aliases resolved) is
    what flows into the spec params, so the sweep manifest and the cache see
    one spelling per axis point.
    """
    from repro.experiments.scenarios import parse_config_override

    try:
        return parse_config_override(text).spec_string()
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _shard_spec(text: str) -> Tuple[int, int]:
    """argparse type for ``--shard i/N``: 0-based index out of N shards."""
    try:
        index_text, _, count_text = text.partition("/")
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected I/N (e.g. 0/4), got {text!r}"
        )
    if count < 1 or not 0 <= index < count:
        raise argparse.ArgumentTypeError(
            f"shard index must satisfy 0 <= I < N, got {text!r}"
        )
    return index, count


def _add_selection_arguments(parser: argparse.ArgumentParser) -> None:
    """Experiment-selection and grid arguments shared by run and sweep."""
    parser.add_argument("experiments", nargs="*", help="registry names (e.g. fig4_6 sota)")
    parser.add_argument("--all", action="store_true", help="select every registered experiment")
    grid = parser.add_mutually_exclusive_group()
    grid.add_argument(
        "--quick",
        dest="quick",
        action="store_true",
        default=True,
        help="reduced grid / shorter horizon (default)",
    )
    grid.add_argument(
        "--full", dest="quick", action="store_false", help="the paper's full grids"
    )
    parser.add_argument(
        "--seeds", type=_positive_int, default=1, help="replication count (default 1)"
    )
    parser.add_argument(
        "--base-seed", type=_nonnegative_int, default=1, help="first seed (default 1)"
    )
    parser.add_argument(
        "--model",
        default=None,
        help="model parameter for model-parameterized specs (fig4_6, fig8, fig10, backends)",
    )
    parser.add_argument(
        "--scheduler",
        type=_backend_name,
        default=None,
        help=(
            "scheduler-backend parameter for backend-parameterized specs"
            " (the backends grid); unknown names are a usage error listing"
            " the registry"
        ),
    )
    parser.add_argument(
        "--workload",
        type=_workload_label,
        default=None,
        help=(
            "workload parameter for workload-parameterized specs (the"
            " backends grid): one of the named arrival processes"
            " (periodic/poisson/saturated/bursty/diurnal); unknown labels"
            " are a usage error listing the vocabulary"
        ),
    )
    parser.add_argument(
        "--fault",
        type=_fault_label,
        default=None,
        help=(
            "fault-profile parameter for fault-parameterized specs (the"
            " faults grid): one of the named profiles"
            " (none/throttle/flaky-launch/crashy/lossy/storm); unknown"
            " labels are a usage error listing the vocabulary"
        ),
    )
    parser.add_argument(
        "--set",
        dest="config_overrides",
        type=_config_override,
        action="append",
        default=None,
        metavar="TARGET.FIELD=VALUE",
        help=(
            "override one config axis on every request the grid builds, e.g."
            " --set daris.mret_window=8 --set gpu.sm_count=40 (repeatable;"
            " backend overrides apply to that backend's requests, gpu"
            " overrides to all); unknown axes, wrong types and out-of-range"
            " values are a usage error listing the axis vocabulary"
        ),
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the paper's experiments through the shared registry/engine.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list registered experiments")
    list_parser.add_argument("--json", action="store_true", help="machine-readable output")

    run_parser = subparsers.add_parser("run", help="run one or more experiments")
    _add_selection_arguments(run_parser)
    run_parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        help="worker processes (default: one per CPU; 1 = serial)",
    )
    run_parser.add_argument(
        "--cache-dir",
        default=".cache/experiments",
        help="result cache directory (default .cache/experiments)",
    )
    run_parser.add_argument(
        "--no-cache", action="store_true", help="bypass the result cache entirely"
    )
    run_parser.add_argument(
        "--expect-cached",
        action="store_true",
        help=(
            f"exit {EXIT_NOT_CACHED} if any cacheable scenario had to be simulated"
            " (traced scenarios are exempt: they bypass the cache by design)"
        ),
    )
    run_parser.add_argument("--json", action="store_true", help="emit rows as JSON lines")
    run_parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "run under cProfile and print the top 25 functions by cumulative"
            " time; forces --jobs 1 (worker processes are invisible to the"
            " parent's profiler)"
        ),
    )

    dse_parser = subparsers.add_parser(
        "dse",
        help="run the design-space exploration grid and render its Pareto frontier",
    )
    grid = dse_parser.add_mutually_exclusive_group()
    grid.add_argument(
        "--quick",
        dest="quick",
        action="store_true",
        default=True,
        help="reduced design grid (default)",
    )
    grid.add_argument(
        "--full", dest="quick", action="store_false", help="the full design grid"
    )
    dse_parser.add_argument(
        "--seeds",
        type=_positive_int,
        default=1,
        help="replication count; > 1 makes the frontier CI-aware (default 1)",
    )
    dse_parser.add_argument(
        "--base-seed", type=_nonnegative_int, default=1, help="first seed (default 1)"
    )
    dse_parser.add_argument(
        "--scheduler",
        type=_backend_name,
        default=None,
        help="restrict the design grid to one backend lane (daris/clockwork)",
    )
    dse_parser.add_argument(
        "--set",
        dest="config_overrides",
        type=_config_override,
        action="append",
        default=None,
        metavar="TARGET.FIELD=VALUE",
        help="override one config axis on every design point (repeatable)",
    )
    dse_parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        help="worker processes (default: one per CPU; 1 = serial)",
    )
    dse_parser.add_argument(
        "--cache-dir",
        default=".cache/experiments",
        help="result cache directory (default .cache/experiments)",
    )
    dse_parser.add_argument(
        "--no-cache", action="store_true", help="bypass the result cache entirely"
    )
    dse_parser.add_argument(
        "--expect-cached",
        action="store_true",
        help=f"exit {EXIT_NOT_CACHED} if any scenario had to be simulated",
    )
    dse_parser.add_argument(
        "--json", action="store_true", help="emit frontier-annotated rows as JSON lines"
    )
    dse_parser.add_argument(
        "--heatmap",
        action="store_true",
        help="render a text ablation heatmap of the design grid after the frontier",
    )
    dse_parser.add_argument(
        "--heatmap-x",
        default="sms",
        metavar="COLUMN",
        help="heatmap column axis (a row column; default sms)",
    )
    dse_parser.add_argument(
        "--heatmap-y",
        default="window",
        metavar="COLUMN",
        help="heatmap row axis (a row column; default window)",
    )
    dse_parser.add_argument(
        "--heatmap-metric",
        default="miss_rate",
        metavar="COLUMN",
        help="numeric row column averaged into each cell (default miss_rate)",
    )
    dse_parser.add_argument(
        "--csv",
        dest="heatmap_csv",
        default=None,
        metavar="PATH",
        help="also write the heatmap matrix as CSV to PATH (implies --heatmap)",
    )

    cache_parser = subparsers.add_parser("cache", help="inspect or trim the result cache")
    cache_parser.add_argument(
        "--cache-dir", default=".cache/experiments", help="cache directory to manage"
    )
    cache_parser.add_argument("--clear", action="store_true", help="remove every entry")
    cache_parser.add_argument(
        "--prune-max-entries", type=int, default=None, help="keep only the newest N entries"
    )
    cache_parser.add_argument(
        "--prune-max-age-days", type=float, default=None, help="drop entries older than N days"
    )

    sweep_parser = subparsers.add_parser(
        "sweep", help="sharded, resumable sweeps across machines"
    )
    sweep_sub = sweep_parser.add_subparsers(dest="sweep_command", required=True)

    plan_parser = sweep_sub.add_parser(
        "plan", help="size every shard (committed / cached / to simulate) without simulating"
    )
    _add_selection_arguments(plan_parser)
    plan_parser.add_argument(
        "--shards", type=_positive_int, required=True, help="total shard count N"
    )

    shard_run_parser = sweep_sub.add_parser(
        "run", help="execute (or resume) one cache-key-range shard of the grid"
    )
    _add_selection_arguments(shard_run_parser)
    shard_run_parser.add_argument(
        "--shard",
        type=_shard_spec,
        required=True,
        metavar="I/N",
        help="this machine's shard, e.g. 0/4 (0-based index out of N)",
    )
    shard_run_parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        help="worker processes (default: one per CPU; 1 = serial)",
    )

    status_parser = sweep_sub.add_parser(
        "status", help="per-shard progress, read from the row stores alone"
    )

    merge_parser = sweep_sub.add_parser(
        "merge", help="fold shard row stores into the usual report rows"
    )
    _add_selection_arguments(merge_parser)
    merge_parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        help="worker processes for traced/missing scenarios (default: one per CPU)",
    )
    merge_parser.add_argument(
        "--simulate-missing",
        action="store_true",
        help="simulate units no shard committed instead of failing",
    )
    merge_parser.add_argument("--json", action="store_true", help="emit rows as JSON lines")

    for sweep_command in (plan_parser, shard_run_parser, status_parser, merge_parser):
        sweep_command.add_argument(
            "--sweep-dir",
            default=".cache/sweep",
            help="shard row-store directory (default .cache/sweep)",
        )
        if sweep_command is not status_parser:
            sweep_command.add_argument(
                "--cache-dir",
                default=".cache/experiments",
                help="shared result cache directory (default .cache/experiments)",
            )
    return parser


def _command_list(args: argparse.Namespace) -> int:
    from repro.backends import all_backends
    from repro.experiments.scenarios import NAMED_FAULTS, NAMED_WORKLOADS

    specs = all_experiments()
    backends = all_backends()

    def _json_default(value: object) -> object:
        # Spec defaults / axis levels may carry non-JSON values (enums);
        # their string form is the canonical CLI spelling anyway.
        return getattr(value, "value", str(value))

    if args.json:
        print(
            json.dumps(
                {
                    "experiments": [
                        {
                            "name": spec.name,
                            "title": spec.title,
                            "replicable": spec.replicable,
                            # The spec's declared parameters (defaults double
                            # as the declaration) and swept config axes.
                            "params": dict(spec.defaults),
                            "axes": [
                                {
                                    "axis": axis.spec_string(),
                                    "values": list(axis.values),
                                    "description": axis.description,
                                }
                                for axis in spec.axes
                            ],
                        }
                        for spec in specs
                    ],
                    "backends": [
                        {
                            "name": backend.name,
                            "workloads": list(backend.supported_arrivals),
                            "config": backend.config_type.__name__,
                            "title": backend.title,
                        }
                        for backend in backends
                    ],
                    "workloads": [
                        {
                            "name": name,
                            "arrival": workload.arrival,
                            "label": workload.label(),
                            "randomized": workload.randomized,
                        }
                        for name, workload in NAMED_WORKLOADS.items()
                    ],
                    "faults": [
                        {
                            "name": name,
                            "label": spec.label(),
                            "randomized": spec.randomized,
                        }
                        for name, spec in NAMED_FAULTS.items()
                    ],
                },
                default=_json_default,
            )
        )
        return EXIT_OK
    rows = [
        {
            "name": spec.name,
            "seeds_axis": "yes" if spec.replicable else "no (deterministic)",
            "params": ",".join(sorted(spec.defaults)) or "-",
            "title": spec.title,
        }
        for spec in specs
    ]
    print(format_table(rows))
    axis_specs = [spec for spec in specs if spec.axes]
    if axis_specs:
        print()
        print("declared config axes (override any axis with --set TARGET.FIELD=VALUE):")
        axis_rows = [
            {
                "experiment": spec.name,
                "axis": axis.spec_string(),
                "values": ",".join(str(value) for value in axis.values) or "-",
                "description": axis.description,
            }
            for spec in axis_specs
            for axis in spec.axes
        ]
        print(format_table(axis_rows))
    print()
    print("scheduler backends (run ... --scheduler NAME where a spec declares it):")
    backend_rows = [
        {
            "name": backend.name,
            "workloads": "/".join(backend.supported_arrivals),
            "config": backend.config_type.__name__,
            "title": backend.title,
        }
        for backend in backends
    ]
    print(format_table(backend_rows))
    print()
    print("named workloads (run ... --workload NAME where a spec declares it):")
    workload_rows = [
        {
            "name": name,
            "arrival": workload.arrival,
            "label": workload.label(),
            "seeded": "yes" if workload.randomized else "no",
        }
        for name, workload in NAMED_WORKLOADS.items()
    ]
    print(format_table(workload_rows))
    print()
    print("named fault profiles (run ... --fault NAME where a spec declares it):")
    fault_rows = [
        {
            "name": name,
            "faults": spec.label(),
            "seeded": "yes" if spec.randomized else "no",
        }
        for name, spec in NAMED_FAULTS.items()
    ]
    print(format_table(fault_rows))
    return EXIT_OK


def _print_report(report: ExperimentReport, as_json: bool) -> None:
    spec = report.spec
    if as_json:
        for row in report.rows:
            print(json.dumps({"experiment": spec.name, **row}))
        return
    seeds_note = (
        f"seeds {report.seeds[0]}..{report.seeds[-1]}" if report.replicated else f"seed {report.seeds[0]}"
    )
    print(f"== {spec.name} — {spec.title} [{'quick' if report.quick else 'full'}, {seeds_note}] ==")
    renderer = format_replicated_table if report.replicated else format_table
    print(renderer(report.rows))
    if spec.highlights:
        print(f"paper highlights: {json.dumps(spec.highlights)}")
    print(
        f"scenarios: {report.cache_hits} cached, {report.simulated} simulated"
        f" ({report.uncached} uncacheable)"
    )
    print()


def _select_specs(args: argparse.Namespace) -> Tuple[Optional[List[ExperimentSpec]], int]:
    """Resolve the run/sweep experiment selection; ``(None, exit_code)`` on error."""
    load_all_experiments()
    if args.all and args.experiments:
        print("pass either experiment names or --all, not both", file=sys.stderr)
        return None, EXIT_UNKNOWN_EXPERIMENT
    if args.all:
        return all_experiments(), EXIT_OK
    if args.experiments:
        try:
            return [get_experiment(name) for name in args.experiments], EXIT_OK
        except KeyError as error:
            print(error.args[0], file=sys.stderr)
            return None, EXIT_UNKNOWN_EXPERIMENT
    print("nothing to run: name experiments or pass --all", file=sys.stderr)
    return None, EXIT_UNKNOWN_EXPERIMENT


def _params_for(args: argparse.Namespace) -> Optional[dict]:
    params = {}
    if args.model:
        params["model_name"] = args.model
    if getattr(args, "scheduler", None):
        params["scheduler"] = args.scheduler
    if getattr(args, "workload", None):
        params["workload"] = args.workload
    if getattr(args, "fault", None):
        params["fault"] = args.fault
    if getattr(args, "config_overrides", None):
        params["config_overrides"] = tuple(args.config_overrides)
    return params or None


def _warn_unknown_params(specs: Sequence[ExperimentSpec], params: Optional[dict]) -> None:
    """Flag parameters a spec does not declare instead of dropping them silently."""
    for spec in specs:
        unknown = spec.unknown_params(params)
        if unknown:
            print(
                f"warning: {spec.name} does not declare parameter(s)"
                f" {', '.join(unknown)}; they are ignored by its grid",
                file=sys.stderr,
            )


def _command_run(args: argparse.Namespace) -> int:
    specs, exit_code = _select_specs(args)
    if specs is None:
        return exit_code
    cache: Optional[ResultCache] = None if args.no_cache else ResultCache(args.cache_dir)
    params = _params_for(args)
    _warn_unknown_params(specs, params)
    profiler = None
    jobs = args.jobs
    if args.profile:
        import cProfile

        # Worker processes run their own interpreters; only a serial run
        # gives the profiler the actual simulation work.
        jobs = 1
        profiler = cProfile.Profile()
        profiler.enable()
    total_simulated = total_hits = total_misses = 0
    for spec in specs:
        report = run_experiment(
            spec,
            quick=args.quick,
            seeds=args.seeds,
            base_seed=args.base_seed,
            processes=jobs,
            cache=cache,
            params=params,
        )
        _print_report(report, args.json)
        total_simulated += report.simulated
        total_hits += report.cache_hits
        total_misses += report.cache_misses
    if profiler is not None:
        import pstats

        profiler.disable()
        print("== cProfile: top 25 by cumulative time ==")
        pstats.Stats(profiler, stream=sys.stdout).sort_stats("cumulative").print_stats(25)

    if not args.json:
        print(
            f"total: {len(specs)} experiment(s), {total_hits} scenario(s) from cache,"
            f" {total_simulated} simulated"
        )
    # Cache misses == cacheable scenarios that had to run; traced scenarios
    # (report.uncached) bypass the cache by design and don't fail the check.
    if args.expect_cached and (total_misses > 0 or args.no_cache):
        print(
            f"--expect-cached: {total_misses} cacheable scenario(s) had to be simulated",
            file=sys.stderr,
        )
        return EXIT_NOT_CACHED
    return EXIT_OK


def _command_dse(args: argparse.Namespace) -> int:
    """Run the DSE grid and render its CI-aware Pareto frontier."""
    from repro.analysis.pareto import frontier_rows
    from repro.experiments.dse_grid import SPEC, frontier_from_rows

    params = {}
    if args.scheduler:
        params["scheduler"] = args.scheduler
    if args.config_overrides:
        params["config_overrides"] = tuple(args.config_overrides)
    cache: Optional[ResultCache] = None if args.no_cache else ResultCache(args.cache_dir)
    report = run_experiment(
        SPEC,
        quick=args.quick,
        seeds=args.seeds,
        base_seed=args.base_seed,
        processes=args.jobs,
        cache=cache,
        params=params or None,
    )
    result = frontier_from_rows(report.rows)
    annotated = frontier_rows(result)
    heatmap_text: Optional[str] = None
    if args.heatmap or args.heatmap_csv:
        from repro.analysis.heatmap import heatmap_csv, render_heatmap

        try:
            heatmap_text = render_heatmap(
                report.rows, args.heatmap_x, args.heatmap_y, args.heatmap_metric
            )
            if args.heatmap_csv:
                with open(args.heatmap_csv, "w", encoding="utf-8") as handle:
                    handle.write(
                        heatmap_csv(
                            report.rows,
                            args.heatmap_x,
                            args.heatmap_y,
                            args.heatmap_metric,
                        )
                    )
        except ValueError as error:
            print(f"--heatmap: {error}", file=sys.stderr)
            return EXIT_UNKNOWN_EXPERIMENT
    if args.json:
        for row in annotated:
            print(json.dumps({"experiment": SPEC.name, **row}))
    else:
        seeds_note = (
            f"seeds {report.seeds[0]}..{report.seeds[-1]}"
            if report.replicated
            else f"seed {report.seeds[0]}"
        )
        print(
            f"== dse — {SPEC.title}"
            f" [{'quick' if report.quick else 'full'}, {seeds_note}] =="
        )
        renderer = format_replicated_table if report.replicated else format_table
        print(renderer(report.rows))
        print()
        objectives = " x ".join(
            f"{objective.label} ({objective.sense})" for objective in result.objectives
        )
        print(f"Pareto frontier over {objectives}:")
        print(format_table([row for row in annotated if row["frontier"] == "yes"]))
        dominated = [row for row in annotated if row["frontier"] == "no"]
        print(
            f"frontier: {len(result.frontier)} design point(s);"
            f" dominated: {len(dominated)}"
            + (
                " (max dominated_by "
                + str(max(row["dominated_by"] for row in dominated))
                + ")"
                if dominated
                else ""
            )
        )
        if report.replicated:
            print(
                "dominance is CI-aware: a point is dominated only when it loses"
                " by more than the combined 95% CIs on some objective"
            )
        if heatmap_text is not None:
            print()
            print(heatmap_text)
        print(
            f"scenarios: {report.cache_hits} cached, {report.simulated} simulated"
            f" ({report.uncached} uncacheable)"
        )
    if args.heatmap_csv:
        print(f"heatmap CSV written to {args.heatmap_csv}", file=sys.stderr)
    if args.expect_cached and (report.cache_misses > 0 or args.no_cache):
        print(
            f"--expect-cached: {report.cache_misses} cacheable scenario(s)"
            " had to be simulated",
            file=sys.stderr,
        )
        return EXIT_NOT_CACHED
    return EXIT_OK


def _command_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if not cache.exists():
        # Inspection must not fabricate an empty cache directory as a side
        # effect — report the absence instead.
        print(f"no such cache: {args.cache_dir}", file=sys.stderr)
        return EXIT_NO_CACHE
    if args.clear:
        removed = cache.clear()
        print(f"removed {removed} entr{'y' if removed == 1 else 'ies'}")
        return EXIT_OK
    if args.prune_max_entries is not None or args.prune_max_age_days is not None:
        removed = cache.prune(
            max_entries=args.prune_max_entries, max_age_days=args.prune_max_age_days
        )
        print(f"pruned {removed} entr{'y' if removed == 1 else 'ies'}")
    entries = len(cache)
    print(f"{cache.cache_dir}: {entries} entr{'y' if entries == 1 else 'ies'},"
          f" {cache.size_bytes() / 1024.0:.1f} KiB")
    return EXIT_OK


def _command_sweep_plan(args: argparse.Namespace) -> int:
    specs, exit_code = _select_specs(args)
    if specs is None:
        return exit_code
    params = _params_for(args)
    _warn_unknown_params(specs, params)
    try:
        grid, entries = plan_sweep(
            specs,
            num_shards=args.shards,
            quick=args.quick,
            seeds=args.seeds,
            base_seed=args.base_seed,
            sweep_dir=args.sweep_dir,
            cache=args.cache_dir,
            params=params,
        )
    except SweepGridMismatch as error:
        print(str(error), file=sys.stderr)
        return EXIT_SWEEP_MISMATCH
    except SweepError as error:
        print(str(error), file=sys.stderr)
        return EXIT_SWEEP_INCOMPLETE
    traced_note = (
        f" ({len(grid.traced)} uncacheable scenario(s) excluded — merge simulates them)"
        if grid.traced
        else ""
    )
    print(
        f"sweep plan: {len(grid.unique_units())} unit(s) across {args.shards} shard(s),"
        f" grid {grid.fingerprint[:12]}{traced_note}"
    )
    for entry in entries:
        print(
            f"shard {entry.shard_index}/{args.shards}: {entry.units} unit(s) —"
            f" {entry.committed} committed, {entry.cached} cached,"
            f" {entry.misses} to simulate"
        )
    return EXIT_OK


def _command_sweep_run(args: argparse.Namespace) -> int:
    specs, exit_code = _select_specs(args)
    if specs is None:
        return exit_code
    shard_index, num_shards = args.shard
    params = _params_for(args)
    _warn_unknown_params(specs, params)
    try:
        report = run_sweep_shard(
            specs,
            shard_index=shard_index,
            num_shards=num_shards,
            quick=args.quick,
            seeds=args.seeds,
            base_seed=args.base_seed,
            processes=args.jobs,
            sweep_dir=args.sweep_dir,
            cache=args.cache_dir,
            params=params,
        )
    except SweepGridMismatch as error:
        print(str(error), file=sys.stderr)
        return EXIT_SWEEP_MISMATCH
    except SweepError as error:
        print(str(error), file=sys.stderr)
        return EXIT_SWEEP_INCOMPLETE
    print(
        f"shard {report.shard_index}/{report.num_shards}:"
        f" {report.shard_units}/{report.total_units} unit(s);"
        f" {report.already_committed} already committed,"
        f" {report.from_cache} served from cache, {report.simulated} simulated"
    )
    return EXIT_OK


def _command_sweep_status(args: argparse.Namespace) -> int:
    statuses = sweep_status(args.sweep_dir)
    if not statuses:
        print(f"no shard stores under {args.sweep_dir}", file=sys.stderr)
        return EXIT_SWEEP_INCOMPLETE
    fingerprints = {status.grid_fingerprint for status in statuses}
    complete = 0
    for status in statuses:
        if status.complete:
            state = "complete"
        elif not status.manifest_ok:
            state = "incomplete: manifest unreadable"
        else:
            state = "incomplete"
        complete += status.complete
        print(
            f"shard {status.shard_index}/{status.num_shards}:"
            f" {status.committed}/{status.num_units} committed ({state})"
        )
    if len(fingerprints) > 1:
        print(
            f"warning: {len(fingerprints)} different grids share this sweep dir",
            file=sys.stderr,
        )
    # A shard whose machine never started leaves no store at all; every
    # manifest records the sweep's shard count, so its absence is visible.
    missing_stores = 0
    for fingerprint in fingerprints:
        group = [status for status in statuses if status.grid_fingerprint == fingerprint]
        expected = max(status.num_shards for status in group)
        missing_stores += max(0, expected - len(group))
    if missing_stores:
        print(f"{missing_stores} shard store(s) not started yet", file=sys.stderr)
    print(f"{complete}/{len(statuses)} shard store(s) complete")
    return (
        EXIT_OK
        if complete == len(statuses) and not missing_stores
        else EXIT_SWEEP_INCOMPLETE
    )


def _command_sweep_merge(args: argparse.Namespace) -> int:
    specs, exit_code = _select_specs(args)
    if specs is None:
        return exit_code
    params = _params_for(args)
    _warn_unknown_params(specs, params)
    try:
        merged = merge_sweep(
            specs,
            quick=args.quick,
            seeds=args.seeds,
            base_seed=args.base_seed,
            sweep_dir=args.sweep_dir,
            cache=args.cache_dir,
            params=params,
            processes=args.jobs,
            simulate_missing=args.simulate_missing,
        )
    except SweepGridMismatch as error:
        print(str(error), file=sys.stderr)
        return EXIT_SWEEP_MISMATCH
    except SweepError as error:  # includes SweepIncomplete
        print(str(error), file=sys.stderr)
        return EXIT_SWEEP_INCOMPLETE
    for report in merged.reports:
        _print_report(report, args.json)
    if not args.json:
        print(
            f"merge: {merged.from_store} unit(s) from shard stores,"
            f" {merged.from_cache} from cache, {merged.simulated} simulated,"
            f" {merged.traced} traced"
        )
    return EXIT_OK


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(list(argv) if argv is not None else None)
    if args.command == "list":
        return _command_list(args)
    if args.command == "run":
        return _command_run(args)
    if args.command == "dse":
        return _command_dse(args)
    if args.command == "sweep":
        handlers = {
            "plan": _command_sweep_plan,
            "run": _command_sweep_run,
            "status": _command_sweep_status,
            "merge": _command_sweep_merge,
        }
        return handlers[args.sweep_command](args)
    return _command_cache(args)
