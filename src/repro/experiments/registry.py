"""Declarative experiment registry.

Every figure/table module declares *what* it sweeps — an
:class:`ExperimentSpec` whose ``build`` callback expands into
:class:`~repro.experiments.parallel.ScenarioRequest` objects plus a row
aggregator — and registers it here.  *How* the sweep is executed (parallel
fan-out, seed replication, disk caching, CI aggregation) lives once, in
:mod:`repro.experiments.engine`, instead of being hand-rolled per module.

A spec's ``build(ctx)`` returns an :class:`ExperimentPlan`:

* ``plan.requests`` — the scenario grid for one seed (the engine crosses it
  with the ``--seeds N`` replication axis by shifting each request's seed);
* ``plan.make_rows(row_ctx)`` — turns one seed's results back into the
  module's report rows.  Called once per seed; with a single seed the rows
  are therefore *identical* to what the module produced before the registry
  existed, and with several seeds the engine aggregates the per-seed rows
  into mean / stdev / 95 %-CI columns.

Analytic experiments (Table II, Figure 2, the batching curves) return an
empty request list and compute their rows directly in ``make_rows``; they
mark themselves ``replicable=False`` so the engine does not pointlessly
replicate a deterministic computation across seeds.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.experiments.parallel import ScenarioRequest
from repro.experiments.runner import ScenarioResult

#: Modules that register an experiment spec on import (one per paper artefact).
EXPERIMENT_MODULES = (
    "repro.experiments.fig1_table1_batching",
    "repro.experiments.table2_tasksets",
    "repro.experiments.fig2_staging",
    "repro.experiments.fig4_6_main",
    "repro.experiments.fig7_mixed",
    "repro.experiments.fig8_ablations",
    "repro.experiments.fig9_mret",
    "repro.experiments.fig10_batched",
    "repro.experiments.fig11_overload",
    "repro.experiments.sota_comparison",
    "repro.experiments.backend_grid",
    "repro.experiments.faults_grid",
    "repro.experiments.dse_grid",
    "repro.experiments.cluster_grid",
)


@dataclass(frozen=True)
class BuildContext:
    """Inputs available when a spec expands into concrete requests."""

    quick: bool = True
    seed: int = 1
    params: Mapping[str, object] = field(default_factory=dict)

    def param(self, name: str, default: object = None) -> object:
        """Convenience lookup for spec parameters (e.g. ``model_name``)."""
        return self.params.get(name, default)


@dataclass(frozen=True)
class RowContext:
    """Inputs available when one seed's results are folded into rows."""

    quick: bool
    seed: int
    results: Sequence[ScenarioResult]
    params: Mapping[str, object] = field(default_factory=dict)

    def param(self, name: str, default: object = None) -> object:
        """Convenience lookup for spec parameters (e.g. ``model_name``)."""
        return self.params.get(name, default)


@dataclass(frozen=True)
class ExperimentPlan:
    """One seed's worth of work: the request grid plus the row aggregator."""

    requests: List[ScenarioRequest]
    make_rows: Callable[[RowContext], List[Dict[str, object]]]


@dataclass(frozen=True)
class ConfigAxis:
    """One config dimension a spec sweeps (or accepts overrides on).

    An axis addresses one fingerprintable field of a config dataclass by
    its ``target.field`` spelling from the shared axis vocabulary
    (:func:`repro.experiments.scenarios.config_axis_vocabulary`) — e.g.
    ``daris.window_size``, ``clockwork.admission_slack``, ``gpu.num_sms``.
    ``values`` lists the levels a declared grid crosses (empty for a
    free-form axis that only accepts ``--set`` overrides).
    """

    target: str
    field: str
    values: Sequence[object] = ()
    description: str = ""

    def spec_string(self) -> str:
        """The canonical ``target.field`` spelling of this axis."""
        return f"{self.target}.{self.field}"


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one paper artefact's experiment.

    Attributes:
        name: registry key, e.g. ``"fig4_6"`` (what the CLI accepts).
        title: one-line human description shown by ``list`` and reports.
        build: expands the spec into an :class:`ExperimentPlan` for one seed.
        highlights: the paper's reported numbers for quick comparison.
        replicable: whether the ``--seeds`` axis applies; ``False`` for
            purely analytic experiments whose output is seed-independent.
        defaults: default ``params`` merged under any caller-supplied ones
            (e.g. ``{"model_name": "resnet18"}``).
        axes: the config axes the spec's grid crosses (design-space
            dimensions); shown by ``list`` and exported by ``list --json``.
    """

    name: str
    title: str
    build: Callable[[BuildContext], ExperimentPlan]
    highlights: Mapping[str, object] = field(default_factory=dict)
    replicable: bool = True
    defaults: Mapping[str, object] = field(default_factory=dict)
    axes: Sequence[ConfigAxis] = ()

    def merged_params(self, params: Optional[Mapping[str, object]] = None) -> Dict[str, object]:
        """Spec defaults overlaid with caller-supplied parameters."""
        merged = dict(self.defaults)
        if params:
            merged.update(params)
        return merged

    def unknown_params(self, params: Optional[Mapping[str, object]] = None) -> List[str]:
        """Caller-supplied parameter names the spec does not declare.

        ``defaults`` doubles as the spec's parameter declaration: anything
        outside it is still merged (forward compatibility) but is almost
        certainly ignored by ``build`` — e.g. ``--model`` applied to a spec
        that sweeps no model.  Callers use this to warn instead of silently
        dropping the parameter.

        ``config_overrides`` is reserved: the engine applies it to every
        spec's requests generically (``--set`` config axes), so it is never
        unknown.
        """
        if not params:
            return []
        return sorted(set(params) - set(self.defaults) - {"config_overrides"})


_REGISTRY: Dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add a spec to the registry (idempotent per name); returns the spec.

    Re-registering the same name replaces the entry, which keeps module
    reloads (pytest importmode quirks, interactive use) harmless.
    """
    _REGISTRY[spec.name] = spec
    return spec


def get_experiment(name: str) -> ExperimentSpec:
    """Look up a registered spec, loading the experiment modules on demand."""
    if name not in _REGISTRY:
        load_all_experiments()
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown experiment {name!r}; known: {', '.join(experiment_names()) or '(none)'}"
        )
    return _REGISTRY[name]


#: Canonical (paper) ordering of the built-in experiment names; listings are
#: sorted by this rather than import order, which varies with test ordering.
_CANONICAL_ORDER = (
    "fig1_table1",
    "table2",
    "fig2",
    "fig4_6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "sota",
    "backends",
    "faults",
    "dse",
    "cluster",
)


def _canonical_rank(name: str) -> tuple:
    try:
        return (0, _CANONICAL_ORDER.index(name))
    except ValueError:
        return (1, 0)  # user-registered specs trail the built-ins, stably


def experiment_names() -> List[str]:
    """Registered experiment names, built-ins first in paper order."""
    return sorted(_REGISTRY, key=_canonical_rank)


def all_experiments() -> List[ExperimentSpec]:
    """Every registered spec, loading the experiment modules on demand."""
    load_all_experiments()
    return [_REGISTRY[name] for name in experiment_names()]


def load_all_experiments() -> None:
    """Import every experiment module so its spec registers itself.

    Imports are deferred to first use (rather than done at package import)
    to keep ``import repro`` light and to avoid import cycles: the modules
    themselves import this registry.
    """
    for module_name in EXPERIMENT_MODULES:
        importlib.import_module(module_name)
