"""Figure 9: measured execution time versus the MRET prediction.

The paper plots ResNet18's actual execution time against its MRET under the
best-throughput configuration (6x1 OS6, where MRET tracks execution well) and
under the most volatile one (3x3 OS1, where execution frequently exceeds the
prediction).  This experiment reproduces the two traces and summarises how
often MRET under-predicts in each.

The scenario requests carry ``with_trace=True``; traced results hold live
simulator objects and therefore bypass the result cache entirely (they are
re-simulated on every run — see ``repro/experiments/cache.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.analysis.tables import format_table
from repro.experiments.cache import ResultCache
from repro.experiments.engine import run_experiment
from repro.experiments.parallel import ScenarioRequest
from repro.experiments.registry import (
    BuildContext,
    ExperimentPlan,
    ExperimentSpec,
    RowContext,
    register,
)
from repro.experiments.runner import run_daris_scenario
from repro.experiments.scenarios import best_config_for, horizon_ms, worst_dmr_config
from repro.rt.taskset import table2_taskset


def _build(ctx: BuildContext) -> ExperimentPlan:
    window_size = int(ctx.param("window_size", 5))
    taskset = table2_taskset("resnet18")
    horizon = horizon_ms(ctx.quick)
    configs = {
        "6x1 OS6 (best throughput)": best_config_for("resnet18").with_overrides(
            window_size=window_size
        ),
        "3x3 OS1 (worst DMR)": worst_dmr_config().with_overrides(window_size=window_size),
    }
    requests = [
        ScenarioRequest(taskset, config, horizon, seed=ctx.seed, with_trace=True, label=label)
        for label, config in configs.items()
    ]

    def make_rows(row_ctx: RowContext) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for label, result in zip(configs, row_ctx.results):
            trace = result.trace
            task_name = taskset.tasks[0].name
            series = trace.execution_vs_mret(task_name)
            executions = [measured for _, measured, _ in series]
            predictions = [predicted for _, _, predicted in series]
            errors = [abs(measured - predicted) for _, measured, predicted in series]
            rows.append(
                {
                    "config": label,
                    "jobs_traced": len(series),
                    "mean_exec_ms": round(sum(executions) / len(executions), 3)
                    if executions
                    else 0.0,
                    "max_exec_ms": round(max(executions), 3) if executions else 0.0,
                    "mean_mret_ms": round(sum(predictions) / len(predictions), 3)
                    if predictions
                    else 0.0,
                    "mean_abs_error_ms": round(sum(errors) / len(errors), 3) if errors else 0.0,
                    "underprediction_rate": round(trace.underprediction_rate(task_name), 3),
                    "lp_dmr": round(result.lp_dmr, 4),
                    "total_jps": round(result.total_jps, 1),
                }
            )
        return rows

    return ExperimentPlan(requests=requests, make_rows=make_rows)


SPEC = register(
    ExperimentSpec(
        name="fig9",
        title="Figure 9: execution time vs MRET prediction (traced, uncached)",
        build=_build,
        defaults={"window_size": 5},
    )
)


def run(
    quick: bool = True,
    seed: int = 1,
    window_size: int = 5,
    seeds: int = 1,
    processes: Optional[int] = 1,
    cache: Union[ResultCache, str, None] = None,
) -> List[Dict[str, object]]:
    """One row per configuration with MRET tracking statistics."""
    report = run_experiment(
        SPEC,
        quick=quick,
        seeds=seeds,
        base_seed=seed,
        processes=processes,
        cache=cache,
        params={"window_size": window_size},
    )
    return report.rows


def trace_series(quick: bool = True, seed: int = 1) -> Dict[str, List[tuple]]:
    """The raw (time, execution, MRET) series for both configurations."""
    taskset = table2_taskset("resnet18")
    horizon = horizon_ms(quick)
    series: Dict[str, List[tuple]] = {}
    for label, config in (
        ("6x1 OS6", best_config_for("resnet18")),
        ("3x3 OS1", worst_dmr_config()),
    ):
        result = run_daris_scenario(
            taskset, config, horizon, seed=seed, with_trace=True, label=label
        )
        series[label] = result.trace.execution_vs_mret(taskset.tasks[0].name)
    return series


def main(quick: bool = True) -> str:
    """Run and render the Figure 9 reproduction."""
    table = format_table(run(quick))
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main(quick=False)
