"""Experiment harness: one module per table / figure of the paper's evaluation.

Every module declares an :class:`ExperimentSpec` (its scenario grid plus row
aggregator) in the shared registry; the shared engine executes any spec with
parallel fan-out, ``--seeds N`` replication (mean / stdev / 95 %-CI columns)
and a disk-backed result cache; the sharded sweep driver
(:mod:`repro.experiments.sweep`) partitions the same grids across machines
by cache-key range with append-only, resumable per-shard row stores.
``python -m repro.experiments`` is the CLI front end
(``list`` / ``run`` / ``cache`` / ``sweep plan|run|status|merge``).

Each module still exposes the historical ``run(quick=True)`` returning its
result rows and a ``main()`` that prints them — both now thin wrappers over
``run_experiment`` — so existing callers and notebooks keep working.  The
``quick`` flag selects a reduced configuration grid and shorter simulation
horizon; ``quick=False`` runs the full grids used for EXPERIMENTS.md.

==========================  =======================================
Module (registry name)      Paper artefact
==========================  =======================================
``fig1_table1_batching``    Figure 1 and Table I (``fig1_table1``)
``table2_tasksets``         Table II (``table2``)
``fig2_staging``            Figure 2 (``fig2``)
``fig4_6_main``             Figures 4-6 (``fig4_6``)
``fig7_mixed``              Figure 7 (``fig7``)
``fig8_ablations``          Figure 8 (``fig8``)
``fig9_mret``               Figure 9 (``fig9``)
``fig10_batched``           Figure 10 (``fig10``)
``fig11_overload``          Figure 11 (``fig11``)
``sota_comparison``         Section VI-B (``sota``)
``backend_grid``            Cross-backend grid (``backends``)
==========================  =======================================

Every scenario names its scheduler *backend* (``ScenarioRequest.scheduler``,
default ``"daris"``): the engine dispatches through
:mod:`repro.backends`, so the five baseline systems get the same caching,
replication and sweep machinery as DARIS.
"""

from repro.experiments.cache import ResultCache
from repro.experiments.engine import (
    ExpandedExperiment,
    ExperimentReport,
    expand_experiment,
    rows_for_expanded,
    run_cached_scenarios,
    run_experiment,
)
from repro.experiments.parallel import ScenarioRequest, run_scenarios_parallel
from repro.experiments.registry import (
    BuildContext,
    ExperimentPlan,
    ExperimentSpec,
    RowContext,
    all_experiments,
    get_experiment,
    load_all_experiments,
    register,
)
from repro.experiments.runner import ScenarioResult, run_daris_scenario
from repro.experiments.sweep import (
    ShardRunReport,
    SweepError,
    SweepGridMismatch,
    SweepIncomplete,
    SweepMergeReport,
    build_sweep_grid,
    merge_sweep,
    plan_sweep,
    run_sweep_shard,
    shard_for_key,
    sweep_status,
)

__all__ = [
    "BuildContext",
    "ExpandedExperiment",
    "ExperimentPlan",
    "ExperimentReport",
    "ExperimentSpec",
    "ResultCache",
    "RowContext",
    "ScenarioRequest",
    "ScenarioResult",
    "ShardRunReport",
    "SweepError",
    "SweepGridMismatch",
    "SweepIncomplete",
    "SweepMergeReport",
    "all_experiments",
    "build_sweep_grid",
    "expand_experiment",
    "get_experiment",
    "load_all_experiments",
    "merge_sweep",
    "plan_sweep",
    "register",
    "rows_for_expanded",
    "run_cached_scenarios",
    "run_daris_scenario",
    "run_experiment",
    "run_scenarios_parallel",
    "run_sweep_shard",
    "shard_for_key",
    "sweep_status",
]
