"""Experiment harness: one module per table / figure of the paper's evaluation.

Every module exposes ``run(quick=True)`` returning a list of result rows
(dictionaries) and a ``main()`` that prints the rows as a text table.  The
``quick`` flag selects a reduced configuration grid and shorter simulation
horizon so the benchmark suite finishes in minutes; ``quick=False`` runs the
full grids used for EXPERIMENTS.md.

==========================  =======================================
Module                      Paper artefact
==========================  =======================================
``fig1_table1_batching``    Figure 1 and Table I (batching gains)
``table2_tasksets``         Table II (task-set composition)
``fig2_staging``            Figure 2 (staging + virtual deadlines)
``fig4_6_main``             Figures 4-6 (main scheduling results)
``fig7_mixed``              Figure 7 (mixed task set)
``fig8_ablations``          Figure 8 (module contributions)
``fig9_mret``               Figure 9 (execution time vs MRET)
``fig10_batched``           Figure 10 (DARIS + batching)
``fig11_overload``          Figure 11 (overload and HP:LP ratios)
``sota_comparison``         Section VI-B (ResNet50 vs GSlice/batching)
==========================  =======================================
"""

from repro.experiments.parallel import ScenarioRequest, run_scenarios_parallel
from repro.experiments.runner import ScenarioResult, run_daris_scenario

__all__ = [
    "ScenarioRequest",
    "ScenarioResult",
    "run_daris_scenario",
    "run_scenarios_parallel",
]
