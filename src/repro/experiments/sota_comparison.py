"""Section VI-B: comparison with the state of the art on ResNet50.

The paper reports, for ResNet50 on its hardware: 433 JPS with pure batching,
498 JPS with DARIS (+15 % over batching, +11.5 % over GSlice's relative gain),
and 374 JPS for DARIS without SM oversubscription (8 % below batching).  This
experiment reproduces those four points on the simulated GPU, plus the
Clockwork-like and RTGPU-like baselines for context.

All six systems run through the scheduler-backend registry as ordinary
scenario requests, so every row — deterministic servers included — is served
from the result cache on repeat runs, replicates across ``--seeds`` and
shards across sweep machines.  The row values are numerically equivalent to
the pre-backend implementation, which called each baseline's bespoke entry
point by hand outside the engine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.analysis.tables import format_table
from repro.backends.configs import BatchingConfig, ClockworkConfig, GSliceConfig
from repro.baselines.results import accepted_miss_rate
from repro.dnn.zoo import build_model
from repro.experiments.cache import ResultCache
from repro.experiments.engine import run_experiment
from repro.experiments.parallel import ScenarioRequest
from repro.experiments.registry import (
    BuildContext,
    ExperimentPlan,
    ExperimentSpec,
    RowContext,
    register,
)
from repro.experiments.scenarios import horizon_ms
from repro.rt.taskset import make_taskset
from repro.scheduler.config import DarisConfig
from repro.sim.workload import SATURATED_WORKLOAD

PAPER_VALUES = {
    "batching": 433.0,
    "gslice": 433.0 * 1.035,  # GSlice's reported ~3.5 % gain over batching
    "daris": 498.0,
    "daris_no_oversubscription": 374.0,
}


def _resnet50_taskset(model, load_factor: float = 1.5):
    """A ResNet50 task set demanding ``load_factor`` x the batching baseline."""
    task_jps = 25.0
    total_tasks = max(3, int(round(load_factor * model.profile.batched_max_jps / task_jps)))
    num_high = max(1, total_tasks // 3)
    return make_taskset(
        [model],
        num_high=num_high,
        num_low=total_tasks - num_high,
        task_jps=task_jps,
        name="resnet50-sota",
    )


def _build(ctx: BuildContext) -> ExperimentPlan:
    model = build_model("resnet50")
    horizon = 1500.0 if ctx.quick else horizon_ms(False)
    taskset = _resnet50_taskset(model)

    best_config = DarisConfig.mps_config(6, 6.0)
    no_oversub_config = DarisConfig.mps_config(6, 1.0)
    requests = [
        ScenarioRequest(
            taskset,
            BatchingConfig(batch_size=16),
            horizon,
            seed=ctx.seed,
            scheduler="batching_server",
            workload=SATURATED_WORKLOAD,
        ),
        ScenarioRequest(
            taskset,
            GSliceConfig(batch_sizes=(16,)),
            horizon,
            seed=ctx.seed,
            scheduler="gslice",
            workload=SATURATED_WORKLOAD,
        ),
        ScenarioRequest(taskset, best_config, horizon, seed=ctx.seed),
        ScenarioRequest(taskset, no_oversub_config, horizon, seed=ctx.seed),
        ScenarioRequest(taskset, ClockworkConfig(), horizon, seed=ctx.seed, scheduler="clockwork"),
        ScenarioRequest(taskset, best_config, horizon, seed=ctx.seed, scheduler="rtgpu"),
    ]

    def make_rows(row_ctx: RowContext) -> List[Dict[str, object]]:
        batching, gslice, daris, daris_no_os, clockwork, rtgpu = row_ctx.results

        rows: List[Dict[str, object]] = [
            {
                "system": "pure batching (upper baseline)",
                "measured_jps": round(batching.total_jps, 1),
                "paper_jps": PAPER_VALUES["batching"],
                "lp_dmr": "-",
            },
            {
                "system": "GSlice-like (spatial sharing + batching)",
                "measured_jps": round(gslice.total_jps, 1),
                "paper_jps": round(PAPER_VALUES["gslice"], 1),
                "lp_dmr": "-",
            },
            {
                "system": "DARIS (MPS 6x1 OS6)",
                "measured_jps": round(daris.total_jps, 1),
                "paper_jps": PAPER_VALUES["daris"],
                "lp_dmr": round(daris.lp_dmr, 4),
            },
            {
                "system": "DARIS without oversubscription (OS1)",
                "measured_jps": round(daris_no_os.total_jps, 1),
                "paper_jps": PAPER_VALUES["daris_no_oversubscription"],
                "lp_dmr": round(daris_no_os.lp_dmr, 4),
            },
            {
                "system": "Clockwork-like (one DNN at a time)",
                "measured_jps": round(clockwork.total_jps, 1),
                "paper_jps": "-",
                "lp_dmr": round(accepted_miss_rate(clockwork.metrics), 4),
            },
            {
                "system": "RTGPU-like (EDF, no priorities)",
                "measured_jps": round(rtgpu.total_jps, 1),
                "paper_jps": "-",
                "lp_dmr": round(rtgpu.metrics.low.deadline_miss_rate, 4),
            },
        ]
        return rows

    return ExperimentPlan(requests=requests, make_rows=make_rows)


SPEC = register(
    ExperimentSpec(
        name="sota",
        title="Section VI-B: ResNet50 vs batching / GSlice / Clockwork / RTGPU",
        build=_build,
        highlights=PAPER_VALUES,
    )
)


def run(
    quick: bool = True,
    seed: int = 1,
    seeds: int = 1,
    processes: Optional[int] = 1,
    cache: Union[ResultCache, str, None] = None,
) -> List[Dict[str, object]]:
    """One row per system (batching, GSlice, DARIS, DARIS w/o OS, Clockwork, RTGPU)."""
    report = run_experiment(
        SPEC, quick=quick, seeds=seeds, base_seed=seed, processes=processes, cache=cache
    )
    return report.rows


def main(quick: bool = True) -> str:
    """Run and render the Section VI-B comparison."""
    table = format_table(run(quick))
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main(quick=False)
