"""Shared scenario runner used by every experiment module."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.gpu.calibration import DEFAULT_CALIBRATION, GpuCalibration
from repro.gpu.spec import GpuSpec, RTX_2080_TI
from repro.rt.metrics import ScenarioMetrics
from repro.rt.taskset import TaskSetSpec
from repro.rt.trace import TraceRecorder
from repro.scheduler.config import DarisConfig
from repro.scheduler.daris import DarisScheduler
from repro.sim.faults import FaultSpec, ResiliencePolicy
from repro.sim.rng import RngFactory
from repro.sim.simulator import Simulator
from repro.sim.workload import WorkloadSpec


@dataclass(frozen=True)
class ScenarioResult:
    """One scheduling run: configuration label, metrics and optional trace.

    ``config`` is the scheduler configuration of the originating request —
    a :class:`DarisConfig` for the DARIS/RTGPU backends, a
    :class:`~repro.backends.configs.BackendConfig` for the baseline servers;
    both serialize canonically and round-trip through :meth:`from_dict`.
    """

    label: str
    config: Any
    metrics: ScenarioMetrics
    trace: Optional[TraceRecorder] = None

    @property
    def total_jps(self) -> float:
        """Total completed jobs per second."""
        return self.metrics.total_jps

    @property
    def lp_dmr(self) -> float:
        """Low-priority deadline miss rate."""
        return self.metrics.low.deadline_miss_rate

    @property
    def hp_dmr(self) -> float:
        """High-priority deadline miss rate."""
        return self.metrics.high.deadline_miss_rate

    def to_dict(self) -> Dict[str, object]:
        """Lossless JSON-safe form of the result — *minus the trace*.

        A :class:`TraceRecorder` holds references to live ``Job`` / ``Task``
        objects and is deliberately not serializable; traced results are
        therefore never written to the result cache (the cache refuses them).
        """
        if self.trace is not None:
            raise ValueError("traced ScenarioResults cannot be serialized (TraceRecorder)")
        return {
            "label": self.label,
            "config": self.config.to_dict(),
            "metrics": self.metrics.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ScenarioResult":
        """Rebuild a (trace-less) result from :meth:`to_dict` output.

        Backend configs serialize with a ``"kind"`` tag and dispatch to
        their own class; untagged config dictionaries are ``DarisConfig``
        (the historical cache-entry shape).
        """
        # Imported here, not at module top: the backends package imports this
        # module when its built-ins load, and config deserialization is the
        # only place the dependency points the other way.
        from repro.backends.configs import config_from_dict

        return cls(
            label=str(data["label"]),
            config=config_from_dict(data["config"]),
            metrics=ScenarioMetrics.from_dict(data["metrics"]),
            trace=None,
        )


def run_daris_scenario(
    taskset: TaskSetSpec,
    config: DarisConfig,
    horizon_ms: float,
    seed: int = 1,
    with_trace: bool = False,
    gpu: GpuSpec = RTX_2080_TI,
    calibration: GpuCalibration = DEFAULT_CALIBRATION,
    label: Optional[str] = None,
    workload: Optional[WorkloadSpec] = None,
    faults: Optional[FaultSpec] = None,
    resilience: Optional[ResiliencePolicy] = None,
) -> ScenarioResult:
    """Run one DARIS configuration against a task set and return the result.

    ``workload`` selects the release process (periodic by default,
    ``poisson`` for memoryless releases at the tasks' mean rates);
    ``faults`` injects the scenario's fault processes and ``resilience``
    sets the scheduler's answer to them (see :mod:`repro.sim.faults`).
    """
    simulator = Simulator()
    trace = TraceRecorder(enabled=with_trace)
    scheduler = DarisScheduler(
        simulator,
        taskset,
        config,
        gpu=gpu,
        calibration=calibration,
        rng=RngFactory(seed),
        trace=trace,
        workload=workload,
        faults=faults,
        resilience=resilience,
    )
    metrics = scheduler.run(horizon_ms)
    return ScenarioResult(
        label=label if label is not None else config.label(),
        config=config,
        metrics=metrics,
        trace=trace if with_trace else None,
    )
