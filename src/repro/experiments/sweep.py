"""Sharded, resumable sweep driver on top of the registry and result cache.

The paper's evaluation is a cross-product of ``(task set, configuration,
seed)`` scenarios; :func:`~repro.experiments.engine.run_experiment` handles
one machine and one uninterrupted run.  This module scales the same grids
past both limits:

* **Sharding** — any registered spec (or all of them) expands into its flat
  request grid, and each request is assigned to exactly one of ``N`` shards
  by its *cache-key range* (:func:`shard_for_key`): the hex key space is cut
  into ``N`` contiguous, near-equal prefix buckets.  Assignment depends only
  on ``(key, N)``, so it is stable across machines, re-runs and Python
  versions — every machine that runs ``--shard i/N`` of the same grid agrees
  on who owns what, with no coordinator.
* **The cache as the dedup/commit layer** — a shard executes only its own
  cache misses through :func:`run_scenarios_parallel` (unordered streaming,
  so completions commit the moment any worker finishes) and commits every
  completed scenario twice: to the shared
  :class:`~repro.experiments.cache.ResultCache` (global dedup across shards,
  sweeps and plain ``run`` invocations) and to the shard's own append-only
  row store.
* **Resume for free** — the row store is a ``manifest.json`` plus an
  append-only ``rows.jsonl`` (one self-describing line per committed
  scenario, flushed per line).  Killing a shard loses only in-flight
  scenarios: re-running the same command skips everything already in the
  row store or the cache and simulates just the remainder.  A truncated
  final line (the signature of a kill) is ignored on read.
* **Merge** — :func:`merge_sweep` folds every shard's row store (plus the
  cache as fallback) back into each spec's seed-major result order, then
  reuses the engine's :func:`~repro.experiments.engine.rows_for_expanded`,
  so the merged rows are byte-identical to a single-machine
  ``run_experiment`` of the same grid.

Traced requests (``with_trace=True``) carry live simulator objects and can
be neither cached nor stored; they are excluded from the shardable units and
re-simulated by ``merge``, exactly as plain ``run`` re-simulates them on
every invocation.

**Config sweeps need no special handling here.**  ``--set`` config-axis
overrides (see :mod:`repro.experiments.scenarios`) travel inside ``params``
as the reserved ``config_overrides`` tuple and are applied by
:func:`~repro.experiments.engine.expand_experiment` when the grid is
(re-)expanded — so ``plan`` / ``run --shard`` / ``merge`` invoked with the
same ``--set`` flags all see the exact same overridden requests, the grid
fingerprint (built from the requests' cache keys) distinguishes every
override combination, and ``merge == run`` byte-equality holds for design
grids exactly as for scenario grids.

Store layout::

    <sweep_dir>/
        shard-0000-of-0002/
            manifest.json   grid fingerprint + unit counts (atomic write)
            rows.jsonl      append-only commit log, one scenario per line

Every manifest embeds the *grid fingerprint* — a digest of the expanded
request keys and the sweep arguments — so shards from a different grid
(other specs, seeds, quick/full, parameters) can never be silently mixed
into a run or a merge.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.experiments.cache import ResultCache
from repro.experiments.engine import (
    ExpandedExperiment,
    ExperimentReport,
    _resolve_cache,
    expand_experiment,
    rows_for_expanded,
)
from repro.experiments.parallel import ScenarioRequest, run_scenarios_parallel
from repro.experiments.registry import ExperimentSpec, get_experiment
from repro.experiments.runner import ScenarioResult

#: Manifest / row-record schema; bump when the store layout changes.
SWEEP_SCHEMA = 1

#: Hex digits of the cache key used for range bucketing.  16**8 ≈ 4.3e9
#: buckets keeps shard boundaries far finer than any realistic shard count
#: while staying in exact integer arithmetic.
KEY_PREFIX_LEN = 8

#: Envelope key extractor for the payload-free row-store scan: the writer
#: puts ``"key"`` before ``"result"``, so the leftmost match is the envelope.
_KEY_FIELD = re.compile(r'"key"\s*:\s*"([0-9a-fA-F]+)"')


class SweepError(RuntimeError):
    """Base class for sweep-driver failures."""


class SweepGridMismatch(SweepError):
    """A shard store on disk was written for a different grid."""


class SweepIncomplete(SweepError):
    """Merge found grid units that no shard store (or the cache) holds."""

    def __init__(self, message: str, missing: int) -> None:
        super().__init__(message)
        self.missing = missing


def shard_for_key(key: str, num_shards: int, prefix_len: int = KEY_PREFIX_LEN) -> int:
    """Deterministic shard of a cache key: contiguous hex-prefix ranges.

    The first ``prefix_len`` hex digits of ``key``, read as an integer
    ``p``, select shard ``p * num_shards // 16**prefix_len`` — i.e. the key
    space ``[0, 16**prefix_len)`` is cut into ``num_shards`` contiguous,
    near-equal ranges.  SHA-256 keys are uniform, so shard sizes are
    balanced to within sampling noise; contiguity means each shard owns a
    literal key *range*, which makes ``ResultCache.iter_keys(prefix)``-style
    range scans line up with shard ownership.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    prefix = int(key[:prefix_len], 16)
    return prefix * num_shards // (16 ** prefix_len)


@dataclass(frozen=True)
class SweepUnit:
    """One shardable scenario of a sweep: a request plus its identity."""

    experiment: str
    flat_index: int  # position in the spec's seed-major flat request grid
    seed: int
    request: ScenarioRequest
    key: str  # the request's cache key ("" only for traced units)


@dataclass(frozen=True)
class SweepGrid:
    """Every selected spec's expanded grid, flattened into shardable units."""

    expanded: Tuple[ExpandedExperiment, ...]
    units: Tuple[SweepUnit, ...]  # cacheable units, across all specs
    traced: Tuple[SweepUnit, ...]  # uncacheable units; merge simulates these
    fingerprint: str

    def expanded_by_name(self) -> Dict[str, ExpandedExperiment]:
        return {expansion.spec.name: expansion for expansion in self.expanded}

    def unique_units(self) -> List[SweepUnit]:
        """One unit per distinct cache key (first occurrence wins).

        Seed-insensitive requests replicated across the ``--seeds`` axis
        expand to several value-identical units sharing one key; executing
        (and counting) them once per key is what makes shard progress
        accounting line up with the key-deduplicated row stores.  ``merge``
        still iterates :attr:`units` in full — every duplicate placement
        resolves from the same committed record.
        """
        unique: List[SweepUnit] = []
        seen: set = set()
        for unit in self.units:
            if unit.key not in seen:
                seen.add(unit.key)
                unique.append(unit)
        return unique


def _resolve_specs(
    experiments: Sequence[Union[ExperimentSpec, str]]
) -> List[ExperimentSpec]:
    return [
        spec if isinstance(spec, ExperimentSpec) else get_experiment(spec)
        for spec in experiments
    ]


def build_sweep_grid(
    experiments: Sequence[Union[ExperimentSpec, str]],
    quick: bool = True,
    seeds: int = 1,
    base_seed: int = 1,
    params: Optional[Mapping[str, object]] = None,
) -> SweepGrid:
    """Expand specs into the flat unit list every sweep subcommand shares.

    The returned grid (and its fingerprint) is a pure function of the
    arguments: ``plan``, every ``run --shard i/N`` and ``merge`` invoked with
    the same arguments — on any machine — see the same units, the same
    ownership, and the same fingerprint.
    """
    units: List[SweepUnit] = []
    traced: List[SweepUnit] = []
    expanded: List[ExpandedExperiment] = []
    for spec in _resolve_specs(experiments):
        expansion = expand_experiment(
            spec, quick=quick, seeds=seeds, base_seed=base_seed, params=params
        )
        expanded.append(expansion)
        width = expansion.requests_per_seed
        for flat_index, request in enumerate(expansion.requests):
            unit = SweepUnit(
                experiment=spec.name,
                flat_index=flat_index,
                seed=expansion.seed_values[flat_index // width],
                request=request,
                key="" if request.with_trace else request.cache_key(),
            )
            (traced if request.with_trace else units).append(unit)

    keys_digest = hashlib.sha256(
        "".join(sorted(unit.key for unit in units)).encode("ascii")
    ).hexdigest()
    payload = {
        "schema": SWEEP_SCHEMA,
        "experiments": [expansion.spec.name for expansion in expanded],
        "quick": quick,
        "seeds": seeds,
        "base_seed": base_seed,
        "num_units": len(units),
        "num_traced": len(traced),
        "keys": keys_digest,
    }
    fingerprint = hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    ).hexdigest()
    return SweepGrid(
        expanded=tuple(expanded),
        units=tuple(units),
        traced=tuple(traced),
        fingerprint=fingerprint,
    )


# --------------------------------------------------------------------- stores


class ShardStore:
    """Append-only commit log for one shard of one sweep grid.

    ``rows.jsonl`` holds one JSON record per committed scenario::

        {"key": ..., "experiment": ..., "flat_index": ..., "seed": ...,
         "source": "simulated" | "cache", "result": {...}}

    Records are self-describing (they embed the result payload, not a cache
    pointer), so a merge needs only the shard directories — the cache is a
    fallback, not a requirement.  Appends are flushed per line; a killed
    process leaves at most one truncated final line, which
    :meth:`committed_records` skips.
    """

    def __init__(
        self, sweep_dir: Union[str, Path], shard_index: int, num_shards: int
    ) -> None:
        self.shard_index = shard_index
        self.num_shards = num_shards
        self.directory = (
            Path(sweep_dir) / f"shard-{shard_index:04d}-of-{num_shards:04d}"
        )
        self.manifest_path = self.directory / "manifest.json"
        self.rows_path = self.directory / "rows.jsonl"

    def exists(self) -> bool:
        return self.manifest_path.is_file()

    def load_manifest(self) -> Optional[Dict[str, object]]:
        """The shard's manifest, or ``None`` if absent/unreadable."""
        try:
            with self.manifest_path.open("r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError):
            return None
        return manifest if isinstance(manifest, dict) else None

    def write_manifest(self, manifest: Dict[str, object]) -> None:
        """Atomically persist the manifest (tempfile + fsync + ``os.replace``).

        The fsync before the rename makes the write crash-safe, not just
        atomic: without it a power loss shortly after ``os.replace`` can
        leave the *new name* pointing at *unwritten bytes* on journaled
        filesystems, which is exactly the torn state the rename was meant
        to prevent.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        descriptor, temp_name = tempfile.mkstemp(
            prefix=".manifest.", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, indent=2, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_name, self.manifest_path)
        except OSError:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def _iter_records(self) -> Iterator[Dict[str, object]]:
        """Parse ``rows.jsonl`` leniently, skipping damaged lines.

        Unparsable lines (a truncated tail from a killed shard) and records
        without a key/result are skipped — an interrupted append can cost at
        most the one in-flight scenario, never the store.
        """
        try:
            with self.rows_path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue
                    key = record.get("key") if isinstance(record, dict) else None
                    if isinstance(key, str) and key and "result" in record:
                        yield record
        except OSError:
            return

    def committed_records(self) -> Dict[str, Dict[str, object]]:
        """Every durable record in the row store, keyed by cache key."""
        return {record["key"]: record for record in self._iter_records()}  # type: ignore[misc]

    def committed_keys(self) -> set:
        """Only the committed keys — result payloads are never deserialized.

        Every line except the last is complete by construction: the store is
        single-writer and line-flushed, a kill can only truncate the tail,
        and :meth:`appender` truncates any such partial tail away before a
        resume appends again.  Keys are therefore pulled out with a string
        scan, and only the final line pays for the full lenient parse that
        rejects a truncated tail.
        Status/plan polls therefore scan the commit log without parsing the
        embedded results.
        """
        keys: set = set()

        def _scan(line: str, final: bool) -> None:
            line = line.strip()
            if not line:
                return
            if not final:
                match = _KEY_FIELD.search(line)
                if match is not None and '"result"' in line:
                    keys.add(match.group(1))
                    return
            try:
                record = json.loads(line)
            except ValueError:
                return
            key = record.get("key") if isinstance(record, dict) else None
            if isinstance(key, str) and key and "result" in record:
                keys.add(key)

        previous: Optional[str] = None
        try:
            with self.rows_path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    if previous is not None:
                        _scan(previous, final=False)
                    previous = line
        except OSError:
            return keys
        if previous is not None:
            _scan(previous, final=True)
        return keys

    @contextmanager
    def appender(self) -> Iterator[Callable[[Dict[str, object]], None]]:
        """Context manager yielding an append-one-record callable.

        Each record becomes one line, flushed immediately, so concurrent
        readers (``status``) and a post-kill resume see every completed
        scenario that reached the OS.  If a previous run was killed
        mid-append, the file ends in a partial line with no newline; that
        dangling tail is *truncated away* before appending resumes — not
        merely newline-terminated, which would leave a damaged line in the
        interior of the file and break :meth:`committed_keys`' invariant
        that only the final line can be incomplete.  The dropped bytes are
        an uncommitted scenario by definition (readers already skip them).

        The store is single-writer by design; an advisory lock enforces it,
        so a second concurrent ``sweep run`` of the same shard fails fast
        with :class:`SweepError` instead of truncating the live writer's
        in-flight tail and interleaving appends.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        lock_descriptor = os.open(self.directory / ".lock", os.O_CREAT | os.O_RDWR)
        try:
            try:
                import fcntl

                fcntl.flock(lock_descriptor, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except ImportError:  # non-POSIX: proceed without the advisory lock
                pass
            except OSError:
                raise SweepError(
                    f"{self.directory} is already being written by another"
                    " process; one writer per shard store"
                )
            self._truncate_partial_tail()
            with self.rows_path.open("a", encoding="utf-8") as handle:

                def append(record: Dict[str, object]) -> None:
                    handle.write(json.dumps(record, separators=(",", ":")) + "\n")
                    # flush pushes the record to the OS (safe against this
                    # process dying); fsync pushes it to disk (safe against
                    # the machine dying) — each committed scenario is durable
                    # the moment append returns, so a crashed shard resumes
                    # from its last completed scenario, not its last sync.
                    handle.flush()
                    os.fsync(handle.fileno())

                yield append
        finally:
            os.close(lock_descriptor)  # releases the flock, if held

    def _truncate_partial_tail(self) -> None:
        """Drop a kill-truncated final line (one without a newline), if any."""
        try:
            with self.rows_path.open("rb+") as handle:
                handle.seek(0, os.SEEK_END)
                size = handle.tell()
                if size == 0:
                    return
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) == b"\n":
                    return
                # Scan backwards for the last newline; the partial line is at
                # most one record, so this touches a few KiB, not the file.
                position, keep = size, 0
                while position > 0:
                    step = min(4096, position)
                    handle.seek(position - step)
                    chunk = handle.read(step)
                    newline = chunk.rfind(b"\n")
                    if newline != -1:
                        keep = position - step + newline + 1
                        break
                    position -= step
                handle.truncate(keep)
        except OSError:  # missing file: nothing to repair
            return


def discover_shard_stores(sweep_dir: Union[str, Path]) -> List[ShardStore]:
    """Every shard store under ``sweep_dir`` (sorted), regardless of grid."""
    stores: List[ShardStore] = []
    root = Path(sweep_dir)
    if not root.is_dir():
        return stores
    for directory in sorted(root.glob("shard-*-of-*")):
        name_parts = directory.name.split("-")
        try:
            shard_index, num_shards = int(name_parts[1]), int(name_parts[3])
        except (IndexError, ValueError):
            continue
        store = ShardStore(root, shard_index, num_shards)
        if store.exists():
            stores.append(store)
    return stores


def _check_store_grid(store: ShardStore, grid: SweepGrid) -> None:
    manifest = store.load_manifest()
    if manifest is None:
        if store.exists():
            # A manifest file that cannot be read can no longer be attributed
            # to any grid — refusing it beats silently adopting the store.
            raise SweepGridMismatch(
                f"{store.directory} has an unreadable manifest; its grid cannot"
                " be verified — repair it or use a fresh --sweep-dir"
            )
        return
    if manifest.get("grid_fingerprint") != grid.fingerprint:
        raise SweepGridMismatch(
            f"{store.directory} was written for a different grid"
            f" (manifest fingerprint {manifest.get('grid_fingerprint')!r},"
            f" this command expands to {grid.fingerprint!r});"
            " use a fresh --sweep-dir or re-run with the original arguments"
        )


def _result_from_payload(payload: object) -> Optional[ScenarioResult]:
    """Rebuild a result from a stored payload; ``None`` if it is damaged.

    Mirrors the cache's damaged-entry contract: a payload that cannot be
    rebuilt costs a re-simulation (or a fallback source), never an abort.
    """
    try:
        return ScenarioResult.from_dict(payload)  # type: ignore[arg-type]
    except (ValueError, KeyError, TypeError):
        return None


def _record_for(unit: SweepUnit, result_payload: Mapping[str, object], source: str) -> Dict[str, object]:
    return {
        "schema": SWEEP_SCHEMA,
        "key": unit.key,
        "experiment": unit.experiment,
        "flat_index": unit.flat_index,
        "seed": unit.seed,
        "source": source,
        "result": dict(result_payload),
    }


# ------------------------------------------------------------------ run/plan


@dataclass
class ShardRunReport:
    """What one ``sweep run --shard i/N`` invocation did."""

    shard_index: int
    num_shards: int
    total_units: int  # cacheable units in the whole grid
    shard_units: int  # units this shard owns
    already_committed: int = 0  # served by the row store (a previous run)
    from_cache: int = 0  # committed now from a cache hit, no simulation
    simulated: int = 0  # actually simulated by this invocation
    uncacheable: int = 0  # traced units excluded grid-wide (merge simulates)

    @property
    def complete(self) -> bool:
        return self.already_committed + self.from_cache + self.simulated == self.shard_units


def run_sweep_shard(
    experiments: Sequence[Union[ExperimentSpec, str]],
    shard_index: int,
    num_shards: int,
    quick: bool = True,
    seeds: int = 1,
    base_seed: int = 1,
    processes: Optional[int] = None,
    sweep_dir: Union[str, Path] = ".cache/sweep",
    cache: Union[ResultCache, str, None] = ".cache/experiments",
    params: Optional[Mapping[str, object]] = None,
) -> ShardRunReport:
    """Execute (or resume) one shard of a sweep grid.

    Only this shard's units are considered; of those, units already in the
    row store are skipped outright, units present in the shared cache are
    committed to the store without simulating, and the remainder is fanned
    out through :func:`run_scenarios_parallel` in unordered streaming mode —
    every completion is written to the cache *and* appended to the row store
    the moment it arrives, so an interrupt loses only in-flight scenarios
    and re-running the identical command resumes from the committed state.
    """
    if not 0 <= shard_index < num_shards:
        raise ValueError("shard_index must be within [0, num_shards)")
    grid = build_sweep_grid(
        experiments, quick=quick, seeds=seeds, base_seed=base_seed, params=params
    )
    result_cache = _resolve_cache(cache)
    unique_units = grid.unique_units()
    shard_units = [
        unit for unit in unique_units if shard_for_key(unit.key, num_shards) == shard_index
    ]
    store = ShardStore(sweep_dir, shard_index, num_shards)
    _check_store_grid(store, grid)
    if not store.exists():
        store.write_manifest(
            {
                "manifest_schema": SWEEP_SCHEMA,
                "grid_fingerprint": grid.fingerprint,
                "shard_index": shard_index,
                "num_shards": num_shards,
                "num_units": len(shard_units),
                "total_units": len(unique_units),
                "sweep": {
                    "experiments": [e.spec.name for e in grid.expanded],
                    "quick": quick,
                    "seeds": seeds,
                    "base_seed": base_seed,
                    "params": dict(params or {}),
                },
            }
        )

    committed = store.committed_keys()
    pending = [unit for unit in shard_units if unit.key not in committed]
    report = ShardRunReport(
        shard_index=shard_index,
        num_shards=num_shards,
        total_units=len(unique_units),
        shard_units=len(shard_units),
        already_committed=len(shard_units) - len(pending),
        uncacheable=len(grid.traced),
    )
    if not pending:
        return report

    with store.appender() as append:
        misses: List[SweepUnit] = []
        for unit in pending:
            # The raw cached payload is committed byte-for-byte, but only
            # after it survives a ScenarioResult rebuild — a damaged cache
            # entry degrades to a re-simulation instead of poisoning the
            # row store.
            entry = result_cache.read_entry(unit.key) if result_cache else None
            payload = entry["result"] if entry is not None else None
            if payload is not None and _result_from_payload(payload) is not None:
                append(_record_for(unit, payload, source="cache"))  # type: ignore[arg-type]
                report.from_cache += 1
            else:
                misses.append(unit)

        def _commit(index: int, result: ScenarioResult) -> None:
            unit = misses[index]
            if result_cache is not None:
                result_cache.put(unit.request, result)
            append(_record_for(unit, result.to_dict(), source="simulated"))
            report.simulated += 1

        run_scenarios_parallel(
            [unit.request for unit in misses],
            processes=processes,
            on_result=_commit,
            ordered=False,
        )
    return report


@dataclass(frozen=True)
class ShardPlanEntry:
    """Predicted work for one shard: committed / cached / still to simulate."""

    shard_index: int
    units: int
    committed: int
    cached: int
    misses: int


def plan_sweep(
    experiments: Sequence[Union[ExperimentSpec, str]],
    num_shards: int,
    quick: bool = True,
    seeds: int = 1,
    base_seed: int = 1,
    sweep_dir: Union[str, Path] = ".cache/sweep",
    cache: Union[ResultCache, str, None] = ".cache/experiments",
    params: Optional[Mapping[str, object]] = None,
) -> Tuple[SweepGrid, List[ShardPlanEntry]]:
    """Size every shard of a prospective sweep without simulating anything.

    Pure inspection: the grid is expanded, each unit is assigned to its
    shard, cache entries are probed with ``stat``-level operations
    (:meth:`ResultCache.contains`) and existing row stores with the
    payload-free key scan (:meth:`ShardStore.committed_keys`) — no result
    is deserialized, no directory is created, no scenario runs.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    grid = build_sweep_grid(
        experiments, quick=quick, seeds=seeds, base_seed=base_seed, params=params
    )
    result_cache = _resolve_cache(cache)
    probe_cache = result_cache is not None and result_cache.exists()
    entries: List[ShardPlanEntry] = []
    by_shard: Dict[int, List[SweepUnit]] = {index: [] for index in range(num_shards)}
    for unit in grid.unique_units():
        by_shard[shard_for_key(unit.key, num_shards)].append(unit)
    for shard_index in range(num_shards):
        units = by_shard[shard_index]
        store = ShardStore(sweep_dir, shard_index, num_shards)
        _check_store_grid(store, grid)
        committed_keys = store.committed_keys() if store.exists() else set()
        committed = sum(1 for unit in units if unit.key in committed_keys)
        cached = (
            sum(
                1
                for unit in units
                if unit.key not in committed_keys and result_cache.contains(unit.key)
            )
            if probe_cache
            else 0
        )
        entries.append(
            ShardPlanEntry(
                shard_index=shard_index,
                units=len(units),
                committed=committed,
                cached=cached,
                misses=len(units) - committed - cached,
            )
        )
    return grid, entries


# --------------------------------------------------------------- status/merge


@dataclass(frozen=True)
class ShardStatus:
    """Progress of one shard store on disk."""

    shard_index: int
    num_shards: int
    num_units: int
    committed: int
    grid_fingerprint: str
    manifest_ok: bool = True

    @property
    def complete(self) -> bool:
        # Without a readable manifest the unit count is unknowable, so the
        # shard can never report itself complete.
        return self.manifest_ok and self.committed >= self.num_units


def sweep_status(sweep_dir: Union[str, Path]) -> List[ShardStatus]:
    """Progress of every shard store under ``sweep_dir`` (manifest order).

    Works purely from the stores — no grid expansion, no cache access, no
    result payloads held in memory — so it can run on any machine that sees
    the sweep directory, mid-sweep.
    """
    statuses: List[ShardStatus] = []
    for store in discover_shard_stores(sweep_dir):
        manifest = store.load_manifest()
        committed = store.committed_keys()
        num_units = (manifest or {}).get("num_units")
        statuses.append(
            ShardStatus(
                shard_index=store.shard_index,
                num_shards=store.num_shards,
                num_units=int(num_units) if isinstance(num_units, int) else len(committed),
                committed=len(committed),
                grid_fingerprint=str((manifest or {}).get("grid_fingerprint", "")),
                manifest_ok=manifest is not None and isinstance(num_units, int),
            )
        )
    return statuses


@dataclass
class SweepMergeReport:
    """Merged rows for every spec of a sweep, plus provenance accounting."""

    reports: List[ExperimentReport] = field(default_factory=list)
    from_store: int = 0  # units served by shard row stores
    from_cache: int = 0  # units the stores lacked but the cache held
    simulated: int = 0  # units simulated by the merge itself
    traced: int = 0  # traced scenarios (always simulated)


def merge_sweep(
    experiments: Sequence[Union[ExperimentSpec, str]],
    quick: bool = True,
    seeds: int = 1,
    base_seed: int = 1,
    sweep_dir: Union[str, Path] = ".cache/sweep",
    cache: Union[ResultCache, str, None] = ".cache/experiments",
    params: Optional[Mapping[str, object]] = None,
    processes: Optional[int] = None,
    simulate_missing: bool = False,
) -> SweepMergeReport:
    """Fold every shard's row store back into per-spec report rows.

    Results are sourced per unit: shard row stores first, the shared cache
    second, the simulator last — and only for traced requests (which can
    never be stored) unless ``simulate_missing`` is set.  With every shard
    complete the merge touches no simulator at all and its rows are
    byte-identical to a single-machine ``run_experiment`` of the same grid,
    because both paths share the grid expansion and row aggregation code.

    Raises:
        SweepGridMismatch: a store under ``sweep_dir`` belongs to another grid.
        SweepIncomplete: cacheable units are missing everywhere and
            ``simulate_missing`` is off.
    """
    grid = build_sweep_grid(
        experiments, quick=quick, seeds=seeds, base_seed=base_seed, params=params
    )
    result_cache = _resolve_cache(cache)
    report = SweepMergeReport(traced=len(grid.traced))

    committed: Dict[str, Dict[str, object]] = {}
    for store in discover_shard_stores(sweep_dir):
        _check_store_grid(store, grid)
        committed.update(store.committed_records())

    results: Dict[str, List[Optional[ScenarioResult]]] = {
        expansion.spec.name: [None] * len(expansion.requests)
        for expansion in grid.expanded
    }
    served: Dict[str, Dict[str, int]] = {
        expansion.spec.name: {"store": 0, "cache": 0, "simulated": 0}
        for expansion in grid.expanded
    }
    pending: List[SweepUnit] = list(grid.traced)
    missing = 0
    for unit in grid.units:
        record = committed.get(unit.key)
        result = _result_from_payload(record["result"]) if record is not None else None
        if result is not None:
            results[unit.experiment][unit.flat_index] = result
            report.from_store += 1
            served[unit.experiment]["store"] += 1
            continue
        entry = result_cache.read_entry(unit.key) if result_cache else None
        result = _result_from_payload(entry["result"]) if entry is not None else None
        if result is not None:
            results[unit.experiment][unit.flat_index] = result
            report.from_cache += 1
            served[unit.experiment]["cache"] += 1
            continue
        missing += 1
        pending.append(unit)
    # Every record has been consulted exactly once; drop the raw payloads
    # before the simulation fan-out so peak memory is one result set, not two.
    committed.clear()
    if missing and not simulate_missing:
        raise SweepIncomplete(
            f"{missing} scenario(s) of the grid are in no shard store and not in"
            " the cache; finish the shards (sweep run) or pass --simulate-missing",
            missing=missing,
        )

    if pending:

        def _place(index: int, result: ScenarioResult) -> None:
            unit = pending[index]
            results[unit.experiment][unit.flat_index] = result
            served[unit.experiment]["simulated"] += 1  # traced count as simulated
            if not unit.request.with_trace:
                if result_cache is not None:
                    result_cache.put(unit.request, result)
                report.simulated += 1

        run_scenarios_parallel(
            [unit.request for unit in pending],
            processes=processes,
            on_result=_place,
            ordered=False,
        )

    for expansion in grid.expanded:
        name = expansion.spec.name
        rows, rows_by_seed = rows_for_expanded(expansion, results[name])
        report.reports.append(
            ExperimentReport(
                spec=expansion.spec,
                quick=quick,
                seeds=expansion.seed_values,
                rows=rows,
                rows_by_seed=rows_by_seed,
                cache_hits=served[name]["store"] + served[name]["cache"],
                simulated=served[name]["simulated"],
                uncached=sum(1 for unit in grid.traced if unit.experiment == name),
            )
        )
    return report
