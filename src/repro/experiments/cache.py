"""Disk-backed, content-addressed cache of completed scenario results.

Every figure of the paper re-runs scenarios that earlier sweeps (or earlier
seeds of the same sweep) already simulated.  The cache memoizes each completed
:class:`~repro.experiments.runner.ScenarioResult` under the SHA-256 of its
request's canonical fingerprint (task set + configuration + horizon + seed +
GPU + calibration + label), so a repeated sweep is served entirely from disk
and is bit-identical to a fresh one: metrics round-trip losslessly through
JSON (see ``ScenarioMetrics.to_dict``).

Layout::

    <cache_dir>/
        <key[:2]>/<key>.json     one entry per scenario (atomic writes)

Sharding by the first two hex digits keeps directories small even with
hundreds of thousands of entries.  Entries are self-describing (they embed
the full request fingerprint), so ``prune`` / external tooling can inspect
them without the originating code.

Traced requests (``with_trace=True``) are **never** cached: a
``TraceRecorder`` holds references to live ``Job``/``Task`` objects and is
not serializable, and trace consumers (Figure 9) need the live objects
anyway.  The engine skips the cache for those requests and :meth:`put`
refuses them defensively.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.experiments.parallel import ScenarioRequest
from repro.experiments.runner import ScenarioResult

_ENTRY_SCHEMA = 1

_LOG = logging.getLogger(__name__)


class ResultCache:
    """Content-addressed scenario result store under one directory.

    Attributes:
        hits: number of :meth:`get` calls served from disk.
        misses: number of :meth:`get` calls that found nothing (or an
            unreadable / stale entry, which is treated as a miss).
    """

    def __init__(self, cache_dir: Union[str, Path]) -> None:
        # The directory is created lazily, on the first successful `put`:
        # constructing a cache (or inspecting one through the CLI) must not
        # fabricate an empty store as a side effect.
        self.cache_dir = Path(cache_dir)
        self.hits = 0
        self.misses = 0

    def exists(self) -> bool:
        """Whether the cache directory is present on disk at all."""
        return self.cache_dir.is_dir()

    # ------------------------------------------------------------------ keys

    @staticmethod
    def key_for(request: ScenarioRequest) -> str:
        """The content-addressed key of a request (SHA-256 hex digest)."""
        return request.cache_key()

    def path_for(self, key: str) -> Path:
        """Filesystem location of the entry with the given key."""
        return self.cache_dir / key[:2] / f"{key}.json"

    # ---------------------------------------------------------------- access

    def contains(self, key: str) -> bool:
        """Whether an entry with ``key`` exists on disk.

        A pure ``stat`` — nothing is read or deserialized and the hit/miss
        counters are untouched, so sweep planners can probe huge grids
        cheaply.  (The entry may still turn out corrupt on :meth:`get`, which
        then counts a miss and re-simulates.)
        """
        return self.path_for(key).is_file()

    def iter_keys(self, prefix: str = "") -> Iterator[str]:
        """Stored keys, optionally restricted to a hex-prefix range.

        Keys are recovered from filenames alone — no entry is opened — so
        iterating a million-entry cache is directory walks, not JSON parses.
        ``prefix`` selects the contiguous key range ``[prefix000…, prefixfff…]``
        that sharded sweep drivers partition the key space into.
        """
        if len(prefix) >= 2:
            pattern = f"{prefix[:2]}/{prefix}*.json"
        elif prefix:
            pattern = f"{prefix}?/{prefix}*.json"
        else:
            pattern = "??/*.json"
        for path in self.cache_dir.glob(pattern):
            yield path.stem

    def read_entry(self, key: str) -> Optional[Dict[str, object]]:
        """The raw stored entry for ``key`` (fingerprint + result payload).

        Returns the entry dictionary without rebuilding a
        :class:`ScenarioResult`, which lets sweep drivers re-commit cached
        payloads to their row stores byte-for-byte.  Corrupt, unreadable or
        schema-stale entries count as misses, exactly like :meth:`get` —
        and are *quarantined* (renamed to ``<entry>.json.corrupt``) so the
        damaged bytes stop shadowing the key: the scenario re-simulates and
        the rewritten entry is clean, while the quarantined file survives
        for post-mortem inspection.  A missing entry is a plain miss.
        """
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                entry = json.load(handle)
            if entry.get("entry_schema") != _ENTRY_SCHEMA:
                raise ValueError("stale cache entry schema")
            if "result" not in entry:
                raise KeyError("result")
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError) as error:
            self.misses += 1
            self._quarantine(path, error)
            return None
        self.hits += 1
        return entry

    def _quarantine(self, path: Path, error: Exception) -> None:
        """Move a damaged entry aside as ``<name>.json.corrupt`` and log it.

        The ``.corrupt`` suffix removes the file from every ``*.json`` glob
        (``iter_keys`` / ``prune`` / ``__len__``), so a torn entry — e.g.
        from a machine that lost power mid-write on a filesystem without
        atomic rename durability — costs exactly one re-simulation and
        nothing else.  Failure to rename degrades to the old leave-in-place
        behaviour (the entry still reads as a miss every time).
        """
        quarantined = path.with_suffix(path.suffix + ".corrupt")
        try:
            os.replace(path, quarantined)
        except OSError:
            return
        _LOG.warning(
            "quarantined corrupt cache entry %s -> %s (%s: %s); the scenario"
            " will be re-simulated and the entry rewritten",
            path.name,
            quarantined.name,
            type(error).__name__,
            error,
        )

    def get(self, request: ScenarioRequest) -> Optional[ScenarioResult]:
        """Return the cached result for ``request``, or ``None`` on a miss.

        Corrupt, unreadable or schema-stale entries count as misses and are
        quarantined to ``*.json.corrupt``, so a damaged cache can never
        poison an experiment — it costs a re-simulation, after which the
        clean result is rewritten under the same key.
        """
        key = self.key_for(request)
        entry = self.read_entry(key)
        if entry is None:
            return None
        try:
            return ScenarioResult.from_dict(entry["result"])  # type: ignore[arg-type]
        except (ValueError, KeyError, TypeError) as error:
            # Undo read_entry's optimistic hit: a payload that cannot be
            # rebuilt is a miss like any other damaged entry — quarantine it
            # too, so the re-simulated result overwrites a clean slot.
            self.hits -= 1
            self.misses += 1
            self._quarantine(self.path_for(key), error)
            return None

    def put(self, request: ScenarioRequest, result: ScenarioResult) -> bool:
        """Store a completed result; returns whether it was written.

        Traced requests/results are refused (see module docstring).  Writes
        are atomic (tempfile + ``os.replace``) so concurrent experiment
        processes sharing one cache directory can never observe a torn entry.
        """
        if request.with_trace or result.trace is not None:
            return False
        key = self.key_for(request)
        path = self.path_for(key)
        entry = {
            "entry_schema": _ENTRY_SCHEMA,
            "key": key,
            "fingerprint": request.fingerprint(),
            "result": result.to_dict(),
        }
        # Any filesystem failure (unwritable/read-only dir, disk full, ...)
        # degrades to "not cached" — a broken cache must never abort a sweep
        # whose scenarios already simulated successfully.
        temp_name = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            descriptor, temp_name = tempfile.mkstemp(
                prefix=f".{key[:8]}.", suffix=".tmp", dir=path.parent
            )
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, separators=(",", ":"))
            os.replace(temp_name, path)
        except OSError:
            if temp_name is not None:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
            return False
        return True

    # ------------------------------------------------------------ management

    def _entry_paths(self) -> Iterator[Path]:
        yield from self.cache_dir.glob("??/*.json")

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def size_bytes(self) -> int:
        """Total size of all entries on disk."""
        return sum(path.stat().st_size for path in self._entry_paths())

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        for path in list(self._entry_paths()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def prune(
        self,
        max_entries: Optional[int] = None,
        max_age_days: Optional[float] = None,
    ) -> int:
        """Evict entries, oldest (by mtime) first; returns the number removed.

        Args:
            max_entries: keep at most this many of the most recently written
                entries.
            max_age_days: additionally drop entries older than this many days.
        """
        import time

        entries: List[tuple] = sorted(
            (path.stat().st_mtime, path) for path in self._entry_paths()
        )
        doomed: List[Path] = []
        if max_age_days is not None:
            cutoff = time.time() - max_age_days * 86400.0
            doomed.extend(path for mtime, path in entries if mtime < cutoff)
        if max_entries is not None:
            doomed_set = set(doomed)
            survivors = [path for _, path in entries if path not in doomed_set]
            excess = len(survivors) - max_entries
            if excess > 0:
                doomed.extend(survivors[:excess])
        removed = 0
        for path in doomed:  # age pass and entry pass are disjoint by construction
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
