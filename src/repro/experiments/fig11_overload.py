"""Figure 11: overloading and HP-to-LP task ratios.

ResNet18 and UNet task sets are generated at full load and at 150 % overload
with different fractions of the load assigned to HP tasks.  Three variants are
compared, matching the paper:

* **Full load** — demand equals the upper baseline; no deadline misses are
  expected.
* **Overload** — 150 % demand; HP tasks bypass the admission test, so once HP
  demand alone exceeds capacity their miss rate rises sharply.
* **Overload+HPA** — the admission test is also applied to HP tasks, trading
  dropped HP jobs for (near) zero HP deadline misses.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.analysis.tables import format_table
from repro.dnn.zoo import build_model
from repro.experiments.cache import ResultCache
from repro.experiments.engine import run_experiment
from repro.experiments.parallel import ScenarioRequest
from repro.experiments.registry import (
    BuildContext,
    ExperimentPlan,
    ExperimentSpec,
    RowContext,
    register,
)
from repro.experiments.scenarios import best_config_for, horizon_ms
from repro.rt.taskset import ratio_taskset


def _build(ctx: BuildContext) -> ExperimentPlan:
    horizon = horizon_ms(ctx.quick)
    models = ["resnet18"] if ctx.quick else ["resnet18", "unet"]
    hp_fractions = [1.0 / 3.0, 2.0 / 3.0] if ctx.quick else [1.0 / 3.0, 0.5, 2.0 / 3.0, 1.0]
    scenarios = [
        ("full load", 1.0, False),
        ("overload", 1.5, False),
        ("overload+HPA", 1.5, True),
    ]
    cells: List[Dict[str, object]] = []
    requests: List[ScenarioRequest] = []
    for model_name in models:
        model = build_model(model_name)
        config = best_config_for(model_name)
        for hp_fraction in hp_fractions:
            for label, load_factor, hpa in scenarios:
                taskset = ratio_taskset(
                    model_name, hp_fraction=hp_fraction, load_factor=load_factor, model=model
                )
                requests.append(
                    ScenarioRequest(
                        taskset, config.with_overrides(hp_admission=hpa), horizon, seed=ctx.seed
                    )
                )
                cells.append(
                    {
                        "model": model_name,
                        "hp_fraction": round(hp_fraction, 2),
                        "scenario": label,
                        "upper": model.profile.batched_max_jps,
                    }
                )

    def make_rows(row_ctx: RowContext) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for cell, result in zip(cells, row_ctx.results):
            upper = cell["upper"]
            rows.append(
                {
                    "model": cell["model"],
                    "hp_fraction": cell["hp_fraction"],
                    "scenario": cell["scenario"],
                    "total_jps": round(result.total_jps, 1),
                    "normalized_jps": round(result.total_jps / upper, 3),
                    "hp_dmr": round(result.hp_dmr, 4),
                    "lp_dmr": round(result.lp_dmr, 4),
                    "hp_rejection": round(result.metrics.high.rejection_rate, 3),
                    "lp_rejection": round(result.metrics.low.rejection_rate, 3),
                }
            )
        return rows

    return ExperimentPlan(requests=requests, make_rows=make_rows)


SPEC = register(
    ExperimentSpec(
        name="fig11",
        title="Figure 11: overload and HP:LP ratio study",
        build=_build,
    )
)


def run(
    quick: bool = True,
    seed: int = 1,
    processes: Optional[int] = 1,
    seeds: int = 1,
    cache: Union[ResultCache, str, None] = None,
) -> List[Dict[str, object]]:
    """One row per (model, HP fraction, load scenario)."""
    report = run_experiment(
        SPEC, quick=quick, seeds=seeds, base_seed=seed, processes=processes, cache=cache
    )
    return report.rows


def main(quick: bool = True) -> str:
    """Run and render the Figure 11 reproduction (parallel sweep)."""
    table = format_table(run(quick, processes=None))
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main(quick=False)
