"""Cross-backend comparison grid: every scheduler x model x workload.

The paper's Section VI-B comparison fixes one model (ResNet50) and one
arrival model; this experiment widens it into the scenario-diversity grid
the backend API makes cheap: every registered backend runs ResNet50 and
InceptionV3 under the workloads it supports — the request-server baselines
(single / batching / GSlice) at saturation, the deadline-driven schedulers
(DARIS / RTGPU / Clockwork, plus the batching server's rate-driven mode)
under Poisson arrivals at one or more load levels relative to the batching
upper baseline, plus bursty (two-phase MMPP) and diurnal (sinusoidally
rate-modulated Poisson) columns at the highest load level.

Every cell is an ordinary :class:`ScenarioRequest`, so the whole grid is
cacheable, seed-replicable (``--seeds N`` CIs) and shardable (``sweep``).

Parameters: ``--model`` restricts the grid to one zoo model, ``--scheduler``
to one backend and ``--workload`` to one named workload column (the CI smoke
lanes run single-backend and single-workload slices).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.analysis.tables import format_table
from repro.backends import get_backend
from repro.backends.configs import BatchingConfig, ClockworkConfig, GSliceConfig, SingleConfig
from repro.dnn.zoo import build_model
from repro.experiments.cache import ResultCache
from repro.experiments.engine import run_experiment
from repro.experiments.parallel import ScenarioRequest
from repro.experiments.registry import (
    BuildContext,
    ExperimentPlan,
    ExperimentSpec,
    RowContext,
    register,
)
from repro.experiments.scenarios import best_config_for, named_workload
from repro.rt.taskset import make_taskset
from repro.sim.workload import POISSON_WORKLOAD, SATURATED_WORKLOAD

#: The two SOTA-anchor models of the comparison (PAPERS.md: Clockwork, GSlice).
MODELS = ("resnet50", "inceptionv3")

#: Backends measured at saturation (request servers; load level is moot).
SATURATED_BACKENDS = ("single", "batching_server", "gslice")

#: Backends driven by rate-based arrivals at the task sets' mean rates.
POISSON_BACKENDS = ("daris", "rtgpu", "clockwork", "batching_server")

#: The rate-driven workload columns beyond plain Poisson: bursty MMPP and a
#: sinusoidal diurnal profile, both run at the grid's highest load level.
MODULATED_WORKLOADS = ("bursty", "diurnal")


def _loads(quick: bool) -> List[float]:
    """Demand levels relative to the batching upper baseline."""
    return [1.5] if quick else [1.0, 1.5]


def _grid_taskset(model, load_factor: float):
    """A homogeneous task set demanding ``load_factor`` x the batching baseline."""
    task_jps = 25.0
    total_tasks = max(3, int(round(load_factor * model.profile.batched_max_jps / task_jps)))
    num_high = max(1, total_tasks // 3)
    return make_taskset(
        [model],
        num_high=num_high,
        num_low=total_tasks - num_high,
        task_jps=task_jps,
        name=f"backend-grid/{model.name}/load{load_factor:.2f}",
    )


def _config_for(backend_name: str, model):
    """The canonical per-backend configuration of the grid."""
    if backend_name in ("daris", "rtgpu"):
        return best_config_for(model.name)
    if backend_name == "clockwork":
        return ClockworkConfig()
    if backend_name == "single":
        return SingleConfig()
    if backend_name == "batching_server":
        return BatchingConfig(batch_size=model.profile.preferred_batch_size)
    if backend_name == "gslice":
        return GSliceConfig(batch_sizes=(model.profile.preferred_batch_size,))
    raise KeyError(f"no grid configuration for backend {backend_name!r}")


def _build(ctx: BuildContext) -> ExperimentPlan:
    horizon = 800.0 if ctx.quick else 2500.0
    model_filter = ctx.param("model_name")
    scheduler_filter = ctx.param("scheduler")
    workload_filter = ctx.param("workload")
    if scheduler_filter is not None:
        get_backend(str(scheduler_filter))  # unknown backend -> clean KeyError
    if workload_filter is not None:
        named_workload(str(workload_filter))  # unknown label -> clean KeyError
    model_names = [str(model_filter)] if model_filter else list(MODELS)

    requests: List[ScenarioRequest] = []
    cells: List[Dict[str, object]] = []

    def add(backend_name: str, model, taskset, workload_name: str, load: object) -> None:
        if scheduler_filter is not None and backend_name != scheduler_filter:
            return
        if workload_filter is not None and workload_name != workload_filter:
            return
        requests.append(
            ScenarioRequest(
                taskset,
                _config_for(backend_name, model),
                horizon,
                seed=ctx.seed,
                scheduler=backend_name,
                workload=named_workload(workload_name),
            )
        )
        cells.append(
            {
                "backend": backend_name,
                "model": model.name,
                "workload": workload_name,
                "load": load,
            }
        )

    for model_name in model_names:
        model = build_model(model_name)
        # Saturated cells: demand is infinite by construction, so they use
        # the canonical load-1.0 task set (the rates are ignored anyway) and
        # appear once per backend/model, not once per load level.
        saturated_taskset = _grid_taskset(model, 1.0)
        for backend_name in SATURATED_BACKENDS:
            add(backend_name, model, saturated_taskset, "saturated", "-")
        loads = _loads(ctx.quick)
        for load in loads:
            taskset = _grid_taskset(model, load)
            for backend_name in POISSON_BACKENDS:
                add(backend_name, model, taskset, "poisson", load)
        # Bursty / diurnal columns stress the rate-driven backends at the
        # grid's highest load level (one row per backend/model/workload).
        peak_load = max(loads)
        peak_taskset = _grid_taskset(model, peak_load)
        for workload_name in MODULATED_WORKLOADS:
            for backend_name in POISSON_BACKENDS:
                add(backend_name, model, peak_taskset, workload_name, peak_load)

    def make_rows(row_ctx: RowContext) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for cell, result in zip(cells, row_ctx.results):
            metrics = result.metrics
            responses = metrics.high.response_times + metrics.low.response_times
            rows.append(
                {
                    "backend": cell["backend"],
                    "model": cell["model"],
                    "workload": cell["workload"],
                    "load": cell["load"],
                    "config": result.label,
                    "jps": round(metrics.total_jps, 1),
                    "dmr": round(metrics.overall_dmr, 4),
                    "mean_resp_ms": round(sum(responses) / len(responses), 3)
                    if responses
                    else "-",
                }
            )
        return rows

    return ExperimentPlan(requests=requests, make_rows=make_rows)


SPEC = register(
    ExperimentSpec(
        name="backends",
        title="Cross-backend grid: every scheduler x ResNet50/InceptionV3 x saturated/Poisson/bursty/diurnal",
        build=_build,
        defaults={"model_name": None, "scheduler": None, "workload": None},
    )
)


def run(
    quick: bool = True,
    seed: int = 1,
    seeds: int = 1,
    processes: Optional[int] = 1,
    cache: Union[ResultCache, str, None] = None,
    model_name: Optional[str] = None,
    scheduler: Optional[str] = None,
    workload: Optional[str] = None,
) -> List[Dict[str, object]]:
    """One row per (backend, model, workload, load) grid cell."""
    report = run_experiment(
        SPEC,
        quick=quick,
        seeds=seeds,
        base_seed=seed,
        processes=processes,
        cache=cache,
        params={"model_name": model_name, "scheduler": scheduler, "workload": workload},
    )
    return report.rows


def main(quick: bool = True) -> str:
    """Run and render the cross-backend comparison grid."""
    table = format_table(run(quick))
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main(quick=False)
