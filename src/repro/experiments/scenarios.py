"""Configuration and workload grids shared by the experiment modules.

The paper sweeps 2-10 parallel DNNs (``Np = Nc * Ns``) under the three
partitioning policies with oversubscription levels ``OS in {1, 1.5, 2, Nc}``.
``main_grid`` reproduces that sweep; ``quick_grid`` is the reduced subset used
by the benchmark suite.

:data:`NAMED_WORKLOADS` is the matching vocabulary for the *workload* half of
a scenario: the canonical, CLI-addressable arrival processes the sweepable
grids (and the ``--workload`` slice flag) use as columns.
"""

from __future__ import annotations

from typing import Dict, List

from repro.scheduler.config import DarisConfig, Policy
from repro.sim.faults import (
    NO_FAULTS,
    CrashFault,
    FaultSpec,
    LaunchFault,
    RequestFaults,
)
from repro.sim.workload import (
    DIURNAL_WORKLOAD,
    MMPP_WORKLOAD,
    PERIODIC_WORKLOAD,
    POISSON_WORKLOAD,
    SATURATED_WORKLOAD,
    WorkloadSpec,
)

#: CLI-addressable workload label -> canonical spec.  ``bursty`` is the
#: default two-phase MMPP (quiet/burst at mean rate 1x) and ``diurnal`` is
#: Poisson under a sinusoidal rate profile; the other three are the original
#: flat kinds.  ``trace`` workloads carry explicit times, so they have no
#: canonical named entry — build them with ``WorkloadSpec.trace``.
NAMED_WORKLOADS: Dict[str, WorkloadSpec] = {
    "periodic": PERIODIC_WORKLOAD,
    "poisson": POISSON_WORKLOAD,
    "saturated": SATURATED_WORKLOAD,
    "bursty": MMPP_WORKLOAD,
    "diurnal": DIURNAL_WORKLOAD,
}


def workload_names() -> List[str]:
    """The addressable workload labels, in declaration order."""
    return list(NAMED_WORKLOADS)


def named_workload(label: str) -> WorkloadSpec:
    """Resolve a workload label; unknown labels list the vocabulary."""
    try:
        return NAMED_WORKLOADS[label]
    except KeyError:
        raise KeyError(
            f"unknown workload {label!r}; known: {', '.join(NAMED_WORKLOADS)}"
        ) from None


#: CLI-addressable fault-profile label -> canonical spec — the *fault* half
#: of a scenario's environment, mirroring :data:`NAMED_WORKLOADS`.  ``none``
#: is the fault-free default (its requests keep their pre-fault cache keys
#: byte-identical); the single-kind profiles isolate one fault process each,
#: and ``storm`` composes all four for the worst-case resilience column.
NAMED_FAULTS: Dict[str, FaultSpec] = {
    "none": NO_FAULTS,
    "throttle": FaultSpec.throttle(period_ms=500.0, duration_ms=100.0, factor=0.5),
    "flaky-launch": FaultSpec.flaky_launches(failure_prob=0.08, retry_cost_ms=1.0),
    "crashy": FaultSpec.crashes(mtbf_ms=1500.0, recovery_ms=40.0),
    "lossy": FaultSpec.lossy(drop_prob=0.05, timeout_ms=250.0),
    "storm": (
        FaultSpec.throttle(period_ms=500.0, duration_ms=100.0, factor=0.5)
        .with_launch(LaunchFault(failure_prob=0.08, retry_cost_ms=1.0))
        .with_crash(CrashFault(mtbf_ms=1500.0, recovery_ms=40.0))
        .with_requests(RequestFaults(drop_prob=0.05, timeout_ms=250.0))
    ),
}


def fault_names() -> List[str]:
    """The addressable fault-profile labels, in declaration order."""
    return list(NAMED_FAULTS)


def named_fault(label: str) -> FaultSpec:
    """Resolve a fault-profile label; unknown labels list the vocabulary."""
    try:
        return NAMED_FAULTS[label]
    except KeyError:
        raise KeyError(
            f"unknown fault profile {label!r}; known: {', '.join(NAMED_FAULTS)}"
        ) from None


def oversubscription_options(num_contexts: int, quick: bool = False) -> List[float]:
    """The paper's OS options, clipped to the valid range for ``num_contexts``."""
    options = [1.0, float(num_contexts)] if quick else [1.0, 1.5, 2.0, float(num_contexts)]
    valid = sorted({min(max(option, 1.0), float(num_contexts)) for option in options})
    return valid


def str_configs(quick: bool = False) -> List[DarisConfig]:
    """STR policy configurations (one context, 2..10 streams)."""
    stream_counts = [2, 6, 10] if quick else [2, 3, 4, 6, 8, 10]
    return [DarisConfig.str_config(count) for count in stream_counts]


def mps_configs(quick: bool = False) -> List[DarisConfig]:
    """MPS policy configurations (2..10 contexts, every OS option)."""
    context_counts = [2, 6, 8] if quick else [2, 3, 4, 6, 8, 10]
    configs: List[DarisConfig] = []
    for count in context_counts:
        for oversubscription in oversubscription_options(count, quick):
            configs.append(DarisConfig.mps_config(count, oversubscription))
    return configs


def mps_str_configs(quick: bool = False) -> List[DarisConfig]:
    """MPS+STR policy configurations (Nc x Ns with both > 1)."""
    layouts = [(2, 2), (3, 2)] if quick else [(2, 2), (3, 2), (2, 3), (4, 2), (3, 3), (5, 2)]
    configs: List[DarisConfig] = []
    for num_contexts, streams in layouts:
        for oversubscription in oversubscription_options(num_contexts, quick):
            configs.append(
                DarisConfig.mps_str_config(num_contexts, streams, oversubscription)
            )
    return configs


def main_grid(quick: bool = False) -> List[DarisConfig]:
    """The full Figures 4-6 configuration grid (all three policies)."""
    return str_configs(quick) + mps_configs(quick) + mps_str_configs(quick)


def best_config_for(model_name: str) -> DarisConfig:
    """The per-DNN best-throughput configuration reported by the paper."""
    key = model_name.lower()
    if key == "inceptionv3":
        return DarisConfig.mps_config(8, 8.0)
    return DarisConfig.mps_config(6, 6.0)


def worst_dmr_config() -> DarisConfig:
    """The configuration the paper highlights as the most volatile (3x3 OS1)."""
    return DarisConfig.mps_str_config(3, 3, 1.0)


def horizon_ms(quick: bool = False) -> float:
    """Simulation horizon used by the experiments."""
    return 2500.0 if quick else 6000.0


def policy_name(config: DarisConfig) -> str:
    """Short policy name for report rows."""
    return config.policy.value
