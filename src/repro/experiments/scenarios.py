"""Configuration and workload grids shared by the experiment modules.

The paper sweeps 2-10 parallel DNNs (``Np = Nc * Ns``) under the three
partitioning policies with oversubscription levels ``OS in {1, 1.5, 2, Nc}``.
``main_grid`` reproduces that sweep; ``quick_grid`` is the reduced subset used
by the benchmark suite.

:data:`NAMED_WORKLOADS` is the matching vocabulary for the *workload* half of
a scenario: the canonical, CLI-addressable arrival processes the sweepable
grids (and the ``--workload`` slice flag) use as columns.

The **config-axis** vocabulary lives here too: every fingerprintable field
of a backend's config (``daris.window_size``, ``clockwork.admission_slack``,
``gslice.oversubscription``, ...) and of the GPU spec (``gpu.num_sms``,
``gpu.memory_bandwidth_gbps``, ...) is addressable as ``target.field``.
:func:`parse_config_override` turns one ``target.field=value`` assignment
into a validated :class:`ConfigOverride` (unknown target/field, a value of
the wrong type, or an out-of-range value — negative SM count, zero batching
cap — all raise ``ValueError`` with the vocabulary, *before* any simulation
starts), and :func:`apply_config_overrides` rewrites a request with the
overrides that address it.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.scheduler.config import DarisConfig, Policy
from repro.sim.faults import (
    NO_FAULTS,
    CrashFault,
    FaultSpec,
    LaunchFault,
    RequestFaults,
)
from repro.sim.workload import (
    DIURNAL_WORKLOAD,
    MMPP_WORKLOAD,
    PERIODIC_WORKLOAD,
    POISSON_WORKLOAD,
    SATURATED_WORKLOAD,
    WorkloadSpec,
)

#: CLI-addressable workload label -> canonical spec.  ``bursty`` is the
#: default two-phase MMPP (quiet/burst at mean rate 1x) and ``diurnal`` is
#: Poisson under a sinusoidal rate profile; the other three are the original
#: flat kinds.  ``trace`` workloads carry explicit times, so they have no
#: canonical named entry — build them with ``WorkloadSpec.trace``.
NAMED_WORKLOADS: Dict[str, WorkloadSpec] = {
    "periodic": PERIODIC_WORKLOAD,
    "poisson": POISSON_WORKLOAD,
    "saturated": SATURATED_WORKLOAD,
    "bursty": MMPP_WORKLOAD,
    "diurnal": DIURNAL_WORKLOAD,
}


def workload_names() -> List[str]:
    """The addressable workload labels, in declaration order."""
    return list(NAMED_WORKLOADS)


def named_workload(label: str) -> WorkloadSpec:
    """Resolve a workload label; unknown labels list the vocabulary."""
    try:
        return NAMED_WORKLOADS[label]
    except KeyError:
        raise KeyError(
            f"unknown workload {label!r}; known: {', '.join(NAMED_WORKLOADS)}"
        ) from None


#: CLI-addressable fault-profile label -> canonical spec — the *fault* half
#: of a scenario's environment, mirroring :data:`NAMED_WORKLOADS`.  ``none``
#: is the fault-free default (its requests keep their pre-fault cache keys
#: byte-identical); the single-kind profiles isolate one fault process each,
#: and ``storm`` composes all four for the worst-case resilience column.
NAMED_FAULTS: Dict[str, FaultSpec] = {
    "none": NO_FAULTS,
    "throttle": FaultSpec.throttle(period_ms=500.0, duration_ms=100.0, factor=0.5),
    "flaky-launch": FaultSpec.flaky_launches(failure_prob=0.08, retry_cost_ms=1.0),
    "crashy": FaultSpec.crashes(mtbf_ms=1500.0, recovery_ms=40.0),
    "lossy": FaultSpec.lossy(drop_prob=0.05, timeout_ms=250.0),
    "storm": (
        FaultSpec.throttle(period_ms=500.0, duration_ms=100.0, factor=0.5)
        .with_launch(LaunchFault(failure_prob=0.08, retry_cost_ms=1.0))
        .with_crash(CrashFault(mtbf_ms=1500.0, recovery_ms=40.0))
        .with_requests(RequestFaults(drop_prob=0.05, timeout_ms=250.0))
    ),
}


def fault_names() -> List[str]:
    """The addressable fault-profile labels, in declaration order."""
    return list(NAMED_FAULTS)


def named_fault(label: str) -> FaultSpec:
    """Resolve a fault-profile label; unknown labels list the vocabulary."""
    try:
        return NAMED_FAULTS[label]
    except KeyError:
        raise KeyError(
            f"unknown fault profile {label!r}; known: {', '.join(NAMED_FAULTS)}"
        ) from None


def oversubscription_options(num_contexts: int, quick: bool = False) -> List[float]:
    """The paper's OS options, clipped to the valid range for ``num_contexts``."""
    options = [1.0, float(num_contexts)] if quick else [1.0, 1.5, 2.0, float(num_contexts)]
    valid = sorted({min(max(option, 1.0), float(num_contexts)) for option in options})
    return valid


def str_configs(quick: bool = False) -> List[DarisConfig]:
    """STR policy configurations (one context, 2..10 streams)."""
    stream_counts = [2, 6, 10] if quick else [2, 3, 4, 6, 8, 10]
    return [DarisConfig.str_config(count) for count in stream_counts]


def mps_configs(quick: bool = False) -> List[DarisConfig]:
    """MPS policy configurations (2..10 contexts, every OS option)."""
    context_counts = [2, 6, 8] if quick else [2, 3, 4, 6, 8, 10]
    configs: List[DarisConfig] = []
    for count in context_counts:
        for oversubscription in oversubscription_options(count, quick):
            configs.append(DarisConfig.mps_config(count, oversubscription))
    return configs


def mps_str_configs(quick: bool = False) -> List[DarisConfig]:
    """MPS+STR policy configurations (Nc x Ns with both > 1)."""
    layouts = [(2, 2), (3, 2)] if quick else [(2, 2), (3, 2), (2, 3), (4, 2), (3, 3), (5, 2)]
    configs: List[DarisConfig] = []
    for num_contexts, streams in layouts:
        for oversubscription in oversubscription_options(num_contexts, quick):
            configs.append(
                DarisConfig.mps_str_config(num_contexts, streams, oversubscription)
            )
    return configs


def main_grid(quick: bool = False) -> List[DarisConfig]:
    """The full Figures 4-6 configuration grid (all three policies)."""
    return str_configs(quick) + mps_configs(quick) + mps_str_configs(quick)


def best_config_for(model_name: str) -> DarisConfig:
    """The per-DNN best-throughput configuration reported by the paper."""
    key = model_name.lower()
    if key == "inceptionv3":
        return DarisConfig.mps_config(8, 8.0)
    return DarisConfig.mps_config(6, 6.0)


def worst_dmr_config() -> DarisConfig:
    """The configuration the paper highlights as the most volatile (3x3 OS1)."""
    return DarisConfig.mps_str_config(3, 3, 1.0)


def horizon_ms(quick: bool = False) -> float:
    """Simulation horizon used by the experiments."""
    return 2500.0 if quick else 6000.0


def policy_name(config: DarisConfig) -> str:
    """Short policy name for report rows."""
    return config.policy.value


# --------------------------------------------------------------- config axes

#: The pseudo-target addressing :class:`~repro.gpu.spec.GpuSpec` fields —
#: hardware axes apply to *every* request of a grid, not one backend's.
GPU_AXIS_TARGET = "gpu"


class ConfigOverride(Tuple[str, str, object]):
    """One validated ``target.field=value`` assignment (value-typed tuple).

    ``target`` is a registered backend name or :data:`GPU_AXIS_TARGET`,
    ``field`` the *canonical* dataclass field name (aliases already
    resolved), ``value`` the coerced, range-checked value.  Being a plain
    tuple keeps overrides hashable and trivially serializable.
    """

    __slots__ = ()

    def __new__(cls, target: str, field: str, value: object) -> "ConfigOverride":
        return super().__new__(cls, (target, field, value))

    @property
    def target(self) -> str:
        return self[0]

    @property
    def field(self) -> str:
        return self[1]

    @property
    def value(self) -> object:
        return self[2]

    def spec_string(self) -> str:
        """The canonical ``target.field=value`` text form."""
        value = self.value
        if isinstance(value, Policy):
            value = value.value
        elif isinstance(value, tuple):
            value = ",".join(str(item) for item in value)
        elif isinstance(value, bool):
            value = "true" if value else "false"
        return f"{self.target}.{self.field}={value}"


def _axis_targets() -> Dict[str, type]:
    """Axis target -> config class: every registered backend plus ``gpu``."""
    from repro.backends import all_backends
    from repro.gpu.spec import GpuSpec

    targets: Dict[str, type] = {
        backend.name: backend.config_type for backend in all_backends()
    }
    targets[GPU_AXIS_TARGET] = GpuSpec
    return targets


def config_axis_vocabulary() -> Dict[str, Dict[str, object]]:
    """Every addressable axis: target -> canonical field -> :class:`AxisField`."""
    from repro.backends.base import axis_fields_of

    return {
        target: axis_fields_of(config_cls)
        for target, config_cls in sorted(_axis_targets().items())
    }


def format_axis_vocabulary() -> str:
    """One-line-per-target summary of the axis vocabulary (error messages)."""
    lines = []
    for target, axes in config_axis_vocabulary().items():
        names = []
        for axis in axes.values():
            names.append(
                axis.name if not axis.aliases else f"{axis.name}|{'|'.join(axis.aliases)}"
            )
        lines.append(f"  {target}: {', '.join(names)}")
    return "\n".join(lines)


def _probe_instance(target: str, config_cls: type) -> object:
    """A constructible default instance range checks are probed against."""
    from repro.gpu.spec import RTX_2080_TI

    if target == GPU_AXIS_TARGET:
        return RTX_2080_TI
    if config_cls is DarisConfig:
        # DarisConfig has no no-argument default; probe the widest MPS shape
        # so per-field range checks (window >= 1, OS within [1, Nc]) engage.
        return DarisConfig.mps_config(8, 1.0)
    return config_cls()


def _coerce_value(text: str, reference: object, annotation: str, field: str) -> object:
    """Coerce override text to the field's value type; ValueError on mismatch."""
    lowered = text.strip().lower()
    if isinstance(reference, bool) or annotation == "bool":
        if lowered in ("true", "1", "yes", "on"):
            return True
        if lowered in ("false", "0", "no", "off"):
            return False
        raise ValueError(f"expected a boolean for {field!r}, got {text!r}")
    if isinstance(reference, int) or annotation == "int":
        try:
            return int(text)
        except ValueError:
            raise ValueError(f"expected an integer for {field!r}, got {text!r}") from None
    if isinstance(reference, float) or annotation == "float":
        try:
            return float(text)
        except ValueError:
            raise ValueError(f"expected a number for {field!r}, got {text!r}") from None
    if isinstance(reference, Policy) or annotation == "Policy":
        try:
            return Policy(text)
        except ValueError:
            options = "/".join(policy.value for policy in Policy)
            raise ValueError(
                f"expected a policy ({options}) for {field!r}, got {text!r}"
            ) from None
    if isinstance(reference, str) or annotation == "str":
        return text
    # Optional / tuple-valued fields (no reference value): literal parsing.
    if lowered in ("none", "null"):
        return None
    tuple_valued = isinstance(reference, tuple) or "Tuple" in annotation
    if tuple_valued or "," in text:
        items = [item.strip() for item in text.split(",") if item.strip()]
        try:
            return tuple(int(item) for item in items)
        except ValueError:
            try:
                return tuple(float(item) for item in items)
            except ValueError:
                raise ValueError(
                    f"expected a comma-separated number list for {field!r}, got {text!r}"
                ) from None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def parse_config_override(text: str) -> ConfigOverride:
    """Parse and validate one ``target.field=value`` assignment.

    Raises ``ValueError`` — listing the axis vocabulary — for an unknown
    target or field, a value that does not coerce to the field's type, or a
    value the config itself rejects (the range check is probed by applying
    the override to the target's default instance, so a negative SM count or
    a zero batching cap fails here, not as a traceback mid-sweep).
    """
    assignment, separator, value_text = text.partition("=")
    target, dot, field_text = assignment.partition(".")
    if not separator or not dot or not target or not field_text:
        raise ValueError(
            f"expected TARGET.FIELD=VALUE (e.g. daris.mret_window=8), got {text!r}"
        )
    targets = _axis_targets()
    if target not in targets:
        raise ValueError(
            f"unknown config-axis target {target!r}; known targets and fields:\n"
            + format_axis_vocabulary()
        )
    from repro.backends.base import axis_fields_of

    config_cls = targets[target]
    canonical = getattr(config_cls, "FIELD_ALIASES", {}).get(field_text, field_text)
    axes = axis_fields_of(config_cls)
    if canonical not in axes:
        raise ValueError(
            f"unknown config axis {target}.{field_text}; known targets and fields:\n"
            + format_axis_vocabulary()
        )
    axis = axes[canonical]
    value = _coerce_value(value_text, axis.default, axis.type_name, canonical)
    # Range probe: the dataclasses' own __post_init__ validation, surfaced
    # at parse time against the target's default instance.  Cross-field
    # constraints are re-checked against each grid's real configs when the
    # override is applied.
    probe = _probe_instance(target, config_cls)
    try:
        probe.with_field(canonical, value)
    except (ValueError, TypeError) as error:
        raise ValueError(f"invalid value for {target}.{canonical}: {error}") from None
    return ConfigOverride(target, canonical, value)


def parse_config_overrides(texts: Sequence[object]) -> Tuple[ConfigOverride, ...]:
    """Parse several override strings (the ``config_overrides`` spec param).

    Already-parsed :class:`ConfigOverride` instances pass through, so the
    parameter can carry either canonical strings (what the CLI and the sweep
    manifest serialize) or parsed overrides (programmatic callers).
    """
    return tuple(
        text if isinstance(text, ConfigOverride) else parse_config_override(str(text))
        for text in texts
    )


def apply_config_overrides(
    request, overrides: Sequence[ConfigOverride]
):
    """Rewrite one request with every override that addresses it.

    ``gpu`` overrides apply to every request (hardware is scenario-global);
    backend overrides apply only to requests dispatched to that backend, so
    one override list can shape a heterogeneous grid.  Returns the request
    unchanged (same object) when nothing addresses it.
    """
    changed = request
    for override in overrides:
        if override.target == GPU_AXIS_TARGET:
            changed = replace(changed, gpu=changed.gpu.with_field(override.field, override.value))
        elif changed.scheduler == override.target:
            changed = replace(
                changed, config=changed.config.with_field(override.field, override.value)
            )
    return changed
