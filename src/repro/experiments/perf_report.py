"""Perf-report helper: persist benchmark timings as ``BENCH_*.json`` files.

The substrate benchmarks (``benchmarks/test_bench_substrate.py``) measure the
simulator itself rather than a paper figure, and the workload benchmarks
(``benchmarks/test_bench_workloads.py``) measure arrival-process generation
rates.  This module turns their timings into small ``BENCH_*.json``
summaries that can be committed or diffed across revisions, so performance
regressions are visible in review.

The benchmark conftests call :func:`write_bench_summary` at session end; the
files can also be produced manually::

    PYTHONPATH=src pytest benchmarks/test_bench_substrate.py --benchmark-only

See ``benchmarks/README.md`` for how to read the output.
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

DEFAULT_REPORT_NAME = "BENCH_substrate.json"
DEFAULT_REPORT_TITLE = "simulation substrate benchmarks"


def build_bench_summary(
    timings_s: Mapping[str, float],
    title: str = DEFAULT_REPORT_TITLE,
    extras: Optional[Mapping[str, Mapping[str, object]]] = None,
) -> Dict[str, object]:
    """Build the summary dictionary for a ``{benchmark name: seconds}`` map.

    ``extras`` optionally attaches benchmark-specific fields (e.g. a
    ``releases_per_second`` rate) to the entry of the same name.
    """
    benchmarks: List[Dict[str, object]] = []
    for name, seconds in sorted(timings_s.items()):
        entry: Dict[str, object] = {
            "name": name,
            "seconds": round(float(seconds), 6),
            "ops_per_second": round(1.0 / seconds, 3) if seconds > 0 else None,
        }
        if extras and name in extras:
            entry.update(extras[name])
        benchmarks.append(entry)
    return {
        "report": title,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "benchmarks": benchmarks,
    }


def write_bench_summary(
    timings_s: Mapping[str, float],
    path: Union[str, Path, None] = None,
    title: str = DEFAULT_REPORT_TITLE,
    extras: Optional[Mapping[str, Mapping[str, object]]] = None,
) -> Optional[Path]:
    """Write the benchmark summary JSON; returns the path (None if no data).

    Args:
        timings_s: benchmark wall times in seconds, keyed by benchmark name.
        path: output file; defaults to ``BENCH_substrate.json`` in the
            current working directory.
        title: the report's ``"report"`` field (one per benchmark family).
        extras: per-benchmark extra fields merged into the matching entry.
    """
    if not timings_s:
        return None
    target = Path(path) if path is not None else Path(DEFAULT_REPORT_NAME)
    target.write_text(
        json.dumps(build_bench_summary(timings_s, title=title, extras=extras), indent=2)
        + "\n"
    )
    return target
