"""Perf-report helper: persist substrate benchmark timings as JSON.

The substrate benchmarks (``benchmarks/test_bench_substrate.py``) measure the
simulator itself rather than a paper figure.  This module turns their timings
into a small ``BENCH_*.json`` summary that can be committed or diffed across
revisions, so simulator performance regressions are visible in review.

The benchmark conftest calls :func:`write_bench_summary` at session end; the
file can also be produced manually::

    PYTHONPATH=src pytest benchmarks/test_bench_substrate.py --benchmark-only

See ``benchmarks/README.md`` for how to read the output.
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

DEFAULT_REPORT_NAME = "BENCH_substrate.json"


def build_bench_summary(timings_s: Mapping[str, float]) -> Dict[str, object]:
    """Build the summary dictionary for a ``{benchmark name: seconds}`` map."""
    benchmarks: List[Dict[str, object]] = [
        {
            "name": name,
            "seconds": round(float(seconds), 6),
            "ops_per_second": round(1.0 / seconds, 3) if seconds > 0 else None,
        }
        for name, seconds in sorted(timings_s.items())
    ]
    return {
        "report": "simulation substrate benchmarks",
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "benchmarks": benchmarks,
    }


def write_bench_summary(
    timings_s: Mapping[str, float],
    path: Union[str, Path, None] = None,
) -> Optional[Path]:
    """Write the benchmark summary JSON; returns the path (None if no data).

    Args:
        timings_s: benchmark wall times in seconds, keyed by benchmark name.
        path: output file; defaults to ``BENCH_substrate.json`` in the
            current working directory.
    """
    if not timings_s:
        return None
    target = Path(path) if path is not None else Path(DEFAULT_REPORT_NAME)
    target.write_text(json.dumps(build_bench_summary(timings_s), indent=2) + "\n")
    return target
