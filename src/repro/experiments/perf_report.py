"""Perf-report helper: persist and compare ``BENCH_*.json`` benchmark files.

The substrate benchmarks (``benchmarks/test_bench_substrate.py``) measure the
simulator itself rather than a paper figure, and the workload benchmarks
(``benchmarks/test_bench_workloads.py``) measure arrival-process generation
rates.  This module turns their timings into small ``BENCH_*.json``
summaries that can be committed or diffed across revisions, so performance
regressions are visible in review.

The benchmark conftests call :func:`write_bench_summary` at session end; the
files can also be produced manually::

    PYTHONPATH=src pytest benchmarks/test_bench_substrate.py --benchmark-only

The module doubles as a regression gate: compare a freshly produced summary
against a committed baseline and fail (exit 1) on any benchmark more than
20% slower::

    PYTHONPATH=src python -m repro.experiments.perf_report \\
        BENCH_substrate.json --baseline baselines/BENCH_substrate.json

See ``benchmarks/README.md`` for how to read the output.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

DEFAULT_REPORT_NAME = "BENCH_substrate.json"
DEFAULT_REPORT_TITLE = "simulation substrate benchmarks"

#: A benchmark counts as regressed when it is more than this much slower
#: than the baseline (0.20 == 20% more wall time).
DEFAULT_REGRESSION_THRESHOLD = 0.20

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_BAD_INPUT = 2


def build_bench_summary(
    timings_s: Mapping[str, float],
    title: str = DEFAULT_REPORT_TITLE,
    extras: Optional[Mapping[str, Mapping[str, object]]] = None,
) -> Dict[str, object]:
    """Build the summary dictionary for a ``{benchmark name: seconds}`` map.

    ``extras`` optionally attaches benchmark-specific fields (e.g. a
    ``releases_per_second`` rate) to the entry of the same name.
    """
    benchmarks: List[Dict[str, object]] = []
    for name, seconds in sorted(timings_s.items()):
        entry: Dict[str, object] = {
            "name": name,
            "seconds": round(float(seconds), 6),
            "ops_per_second": round(1.0 / seconds, 3) if seconds > 0 else None,
        }
        if extras and name in extras:
            entry.update(extras[name])
        benchmarks.append(entry)
    return {
        "report": title,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "benchmarks": benchmarks,
    }


def write_bench_summary(
    timings_s: Mapping[str, float],
    path: Union[str, Path, None] = None,
    title: str = DEFAULT_REPORT_TITLE,
    extras: Optional[Mapping[str, Mapping[str, object]]] = None,
) -> Optional[Path]:
    """Write the benchmark summary JSON; returns the path (None if no data).

    Args:
        timings_s: benchmark wall times in seconds, keyed by benchmark name.
        path: output file; defaults to ``BENCH_substrate.json`` in the
            current working directory.
        title: the report's ``"report"`` field (one per benchmark family).
        extras: per-benchmark extra fields merged into the matching entry.
    """
    if not timings_s:
        return None
    target = Path(path) if path is not None else Path(DEFAULT_REPORT_NAME)
    target.write_text(
        json.dumps(build_bench_summary(timings_s, title=title, extras=extras), indent=2)
        + "\n"
    )
    return target


# ------------------------------------------------------- baseline comparison


def load_bench_summary(path: Union[str, Path]) -> Dict[str, float]:
    """Read a ``BENCH_*.json`` file back into a ``{name: seconds}`` map.

    Entries without a usable ``seconds`` field are skipped rather than
    poisoning the comparison; a malformed file raises ``ValueError`` with
    the offending path in the message.
    """
    target = Path(path)
    try:
        data = json.loads(target.read_text())
        benchmarks = data["benchmarks"]
    except (OSError, json.JSONDecodeError, KeyError, TypeError) as error:
        raise ValueError(f"unreadable benchmark summary {target}: {error}") from error
    timings: Dict[str, float] = {}
    for entry in benchmarks:
        name = entry.get("name")
        seconds = entry.get("seconds")
        if isinstance(name, str) and isinstance(seconds, (int, float)) and seconds > 0:
            timings[name] = float(seconds)
    return timings


def compare_bench_summaries(
    current: Mapping[str, float],
    baseline: Mapping[str, float],
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
) -> List[Dict[str, object]]:
    """Per-benchmark deltas of ``current`` against ``baseline``.

    Each row carries the benchmark name, both timings, the ``speedup``
    ratio (baseline over current — above 1.0 is faster) and a ``status``:
    ``ok``, ``regressed`` (more than ``threshold`` slower), ``new``
    (no baseline entry) or ``removed`` (baseline only).
    """
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative, got {threshold}")
    rows: List[Dict[str, object]] = []
    for name in sorted(set(current) | set(baseline)):
        current_s = current.get(name)
        baseline_s = baseline.get(name)
        if current_s is None:
            rows.append({"name": name, "baseline_s": baseline_s, "current_s": None,
                         "speedup": None, "status": "removed"})
            continue
        if baseline_s is None:
            rows.append({"name": name, "baseline_s": None, "current_s": current_s,
                         "speedup": None, "status": "new"})
            continue
        speedup = baseline_s / current_s
        regressed = current_s > baseline_s * (1.0 + threshold)
        rows.append({
            "name": name,
            "baseline_s": baseline_s,
            "current_s": current_s,
            "speedup": speedup,
            "status": "regressed" if regressed else "ok",
        })
    return rows


def format_comparison(rows: Sequence[Mapping[str, object]]) -> str:
    """Human-readable comparison table for :func:`compare_bench_summaries`."""
    lines = [f"{'benchmark':<48} {'baseline':>10} {'current':>10} {'speedup':>8}  status"]
    for row in rows:
        baseline_s = row["baseline_s"]
        current_s = row["current_s"]
        speedup = row["speedup"]
        lines.append(
            f"{str(row['name']):<48}"
            f" {f'{baseline_s * 1e3:.2f}ms' if baseline_s is not None else '-':>10}"
            f" {f'{current_s * 1e3:.2f}ms' if current_s is not None else '-':>10}"
            f" {f'{speedup:.2f}x' if speedup is not None else '-':>8}"
            f"  {row['status']}"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: compare a benchmark summary against a baseline summary.

    Exits ``1`` when any benchmark present in both files is more than
    ``--threshold`` slower than its baseline, so CI can gate on the result.
    New and removed benchmarks are reported but never fail the check — a
    renamed benchmark should not masquerade as a perf change.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.perf_report",
        description="Compare BENCH_*.json benchmark summaries against a baseline.",
    )
    parser.add_argument("current", help="freshly produced BENCH_*.json")
    parser.add_argument(
        "--baseline",
        required=True,
        help="committed BENCH_*.json to compare against",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_REGRESSION_THRESHOLD,
        help="relative slowdown that counts as a regression (default 0.20 = 20%%)",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        current = load_bench_summary(args.current)
        baseline = load_bench_summary(args.baseline)
        rows = compare_bench_summaries(current, baseline, threshold=args.threshold)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return EXIT_BAD_INPUT
    print(format_comparison(rows))
    regressed = [row for row in rows if row["status"] == "regressed"]
    if regressed:
        names = ", ".join(str(row["name"]) for row in regressed)
        print(
            f"perf regression: {len(regressed)} benchmark(s) more than"
            f" {args.threshold:.0%} slower than baseline: {names}",
            file=sys.stderr,
        )
        return EXIT_REGRESSION
    return EXIT_OK


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in CI
    sys.exit(main())
