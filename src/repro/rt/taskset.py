"""Task-set construction (paper Table II and the Figure 11 ratio study).

The paper's three main task sets each consist of a single DNN type, sized so
that the total demanded throughput is roughly 150 % of the pure-batching upper
baseline (the "150 % overload" of Section V), with a 2:1 LP-to-HP task ratio:

========== ===== ===== ==========
Task set   #High #Low  Task JPS
========== ===== ===== ==========
ResNet18     17    34      30
UNet          5    10      24
InceptionV3   9    18      24
========== ===== ===== ==========

A mixed set combines all three DNNs (Figure 7), and :func:`ratio_taskset`
builds the full-load / overload task sets with configurable HP:LP ratios used
in Figure 11.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dnn.model import DnnModel
from repro.dnn.zoo import build_model
from repro.rt.task import Priority, TaskSpec


@dataclass(frozen=True)
class Table2Row:
    """One row of the paper's Table II."""

    model_name: str
    num_high: int
    num_low: int
    task_jps: float


TABLE2: Dict[str, Table2Row] = {
    "resnet18": Table2Row("resnet18", num_high=17, num_low=34, task_jps=30.0),
    "unet": Table2Row("unet", num_high=5, num_low=10, task_jps=24.0),
    "inceptionv3": Table2Row("inceptionv3", num_high=9, num_low=18, task_jps=24.0),
}


@dataclass(frozen=True)
class TaskSetSpec:
    """A fully specified task set ready to be instantiated by a scheduler.

    The task sequence is stored as a tuple so the spec is hashable and
    compares by value: two independently built but identical task sets are
    equal, which gives :class:`~repro.experiments.parallel.ScenarioRequest`
    a stable identity (and cache key).
    """

    name: str
    tasks: Tuple[TaskSpec, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.tasks, tuple):
            object.__setattr__(self, "tasks", tuple(self.tasks))

    def fingerprint(self) -> Dict[str, object]:
        """Canonical nested dictionary of the full task set (for cache keys)."""
        return {
            "name": self.name,
            "tasks": [task.to_dict() for task in self.tasks],
        }

    @property
    def num_high(self) -> int:
        """Number of HP tasks."""
        return sum(1 for task in self.tasks if task.priority is Priority.HIGH)

    @property
    def num_low(self) -> int:
        """Number of LP tasks."""
        return sum(1 for task in self.tasks if task.priority is Priority.LOW)

    @property
    def total_demand_jps(self) -> float:
        """Total demanded throughput in inferences per second (batches count batch_size)."""
        return sum(task.batch_size * 1000.0 / task.period_ms for task in self.tasks)

    def demand_jps(self, priority: Priority) -> float:
        """Demanded inference throughput of one priority level."""
        return sum(
            task.batch_size * 1000.0 / task.period_ms
            for task in self.tasks
            if task.priority is priority
        )


def _staggered_phases(count: int, period_ms: float) -> List[float]:
    """Evenly staggered release phases so tasks do not all release at once."""
    if count <= 0:
        return []
    return [period_ms * index / count for index in range(count)]


def make_taskset(
    models: Sequence[DnnModel],
    num_high: int,
    num_low: int,
    task_jps: float,
    name: str = "custom",
    batch_size: int = 1,
    start_task_id: int = 0,
) -> TaskSetSpec:
    """Build a task set with ``num_high`` HP and ``num_low`` LP tasks.

    DNN models are assigned round-robin from ``models`` so a single-model list
    yields a homogeneous set (Table II) while a multi-model list yields a mixed
    set (Figure 7).

    ``task_jps`` is the *inference* rate of each task.  With ``batch_size > 1``
    (the Figure 10 study) each released job carries a whole batch, so the
    period is stretched by the batch size and the demanded inference rate is
    unchanged.
    """
    if task_jps <= 0:
        raise ValueError("task_jps must be positive")
    if num_high < 0 or num_low < 0 or num_high + num_low == 0:
        raise ValueError("the task set must contain at least one task")
    if not models:
        raise ValueError("at least one DNN model is required")

    period_ms = 1000.0 * batch_size / task_jps
    total = num_high + num_low
    phases = _staggered_phases(total, period_ms)
    tasks: List[TaskSpec] = []
    for index in range(total):
        priority = Priority.HIGH if index < num_high else Priority.LOW
        model = models[index % len(models)]
        tasks.append(
            TaskSpec(
                task_id=start_task_id + index,
                model=model,
                period_ms=period_ms,
                priority=priority,
                batch_size=batch_size,
                phase_ms=phases[index],
            )
        )
    return TaskSetSpec(name=name, tasks=tasks)


def table2_taskset(
    model_name: str,
    model: Optional[DnnModel] = None,
    batch_size: int = 1,
    scale: float = 1.0,
) -> TaskSetSpec:
    """Build one of the paper's Table II task sets.

    Args:
        model_name: ``resnet18``, ``unet`` or ``inceptionv3``.
        model: optionally a pre-built model (to avoid rebuilding the zoo).
        batch_size: per-task inference batch size (Figure 10 uses 4/2/8).
        scale: fraction of the Table II task counts to instantiate; useful for
            scaled-down continuous-integration runs.
    """
    key = model_name.lower()
    if key not in TABLE2:
        raise KeyError(f"unknown Table II task set {model_name!r}; known: {sorted(TABLE2)}")
    row = TABLE2[key]
    dnn = model if model is not None else build_model(key)
    num_high = max(1, int(round(row.num_high * scale)))
    num_low = max(1, int(round(row.num_low * scale)))
    return make_taskset(
        [dnn],
        num_high=num_high,
        num_low=num_low,
        task_jps=row.task_jps,
        name=f"table2/{key}",
        batch_size=batch_size,
    )


def mixed_taskset(
    models: Optional[Dict[str, DnnModel]] = None,
    scale: float = 1.0,
    batch_size: int = 1,
) -> TaskSetSpec:
    """Mixed task set containing all three DNN types (Figure 7).

    The composition keeps each network's Table II rate and the global 2:1
    LP-to-HP ratio, at roughly one third of each homogeneous set's size so the
    combined demand stays comparable to a single Table II set.
    """
    if models is None:
        models = {name: build_model(name) for name in TABLE2}
    tasks: List[TaskSpec] = []
    next_id = 0
    for key, row in TABLE2.items():
        dnn = models[key]
        num_high = max(1, int(round(row.num_high * scale / 3.0)))
        num_low = max(1, int(round(row.num_low * scale / 3.0)))
        subset = make_taskset(
            [dnn],
            num_high=num_high,
            num_low=num_low,
            task_jps=row.task_jps,
            name=f"mixed/{key}",
            batch_size=batch_size,
            start_task_id=next_id,
        )
        tasks.extend(subset.tasks)
        next_id += len(subset.tasks)
    return TaskSetSpec(name="mixed", tasks=tasks)


def ratio_taskset(
    model_name: str,
    hp_fraction: float,
    load_factor: float,
    upper_baseline_jps: Optional[float] = None,
    model: Optional[DnnModel] = None,
    task_jps: Optional[float] = None,
) -> TaskSetSpec:
    """Task set for the overload / HP-ratio study (Figure 11).

    Args:
        model_name: DNN to use (the paper uses ResNet18 and UNet).
        hp_fraction: fraction of the demanded load contributed by HP tasks
            (e.g. ``1/3`` for the default 2:1 LP-to-HP ratio, ``0.5``, ``1.0``).
        load_factor: demanded load relative to the upper baseline (1.0 = full
            load, 1.5 = the paper's overload scenario).
        upper_baseline_jps: throughput treated as "full load"; defaults to the
            profile's batched maximum (Table I).
        model: optionally a pre-built model.
        task_jps: per-task rate; defaults to the Table II rate for the model.
    """
    if not 0.0 <= hp_fraction <= 1.0:
        raise ValueError("hp_fraction must be within [0, 1]")
    if load_factor <= 0:
        raise ValueError("load_factor must be positive")
    key = model_name.lower()
    dnn = model if model is not None else build_model(key)
    if upper_baseline_jps is None:
        upper_baseline_jps = dnn.profile.batched_max_jps
    if task_jps is None:
        task_jps = TABLE2[key].task_jps if key in TABLE2 else 30.0

    total_tasks = max(1, int(round(load_factor * upper_baseline_jps / task_jps)))
    num_high = int(round(hp_fraction * total_tasks))
    num_high = min(max(num_high, 0), total_tasks)
    num_low = total_tasks - num_high
    if num_high == 0 and hp_fraction > 0:
        num_high, num_low = 1, max(0, num_low - 1)
    return make_taskset(
        [dnn],
        num_high=num_high,
        num_low=num_low,
        task_jps=task_jps,
        name=f"ratio/{key}/hp{hp_fraction:.2f}/load{load_factor:.2f}",
    )


def demanded_load_factor(taskset: TaskSetSpec, upper_baseline_jps: float) -> float:
    """Demanded throughput of a task set relative to an upper baseline."""
    if upper_baseline_jps <= 0:
        raise ValueError("upper_baseline_jps must be positive")
    return taskset.total_demand_jps / upper_baseline_jps
