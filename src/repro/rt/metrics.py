"""Throughput, deadline-miss and response-time metrics (paper Section V-VI).

The evaluation uses three headline metrics:

* **JPS** — completed jobs per second (throughput),
* **DMR** — missed deadlines over *accepted* jobs, reported per priority, and
* **response time** — completion minus release time, reported per priority.

Under fault injection (:mod:`repro.sim.faults`) a miss/loss *cause breakdown*
rides along: per priority, how many jobs were dropped at arrival, shed by a
degraded-mode policy, abandoned by a client timeout, or failed after
exhausting launch retries — plus **goodput** (on-time completions per
second) and a per-run :class:`FaultImpact` (degraded episodes, downtime,
time-to-recover).  All breakdown fields serialize only when non-zero, so a
fault-free run's metrics are byte-identical to their pre-fault form and no
cached entry is invalidated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.rt.task import Job, Priority


@dataclass
class PriorityMetrics:
    """Counters and samples for one priority level.

    The fault-cause counters refine the headline ones: ``dropped`` requests
    were lost at arrival (fault draw) and are part of ``released`` only;
    ``shed`` rejections are the subset of ``rejected`` attributable to a
    degraded-mode shedding policy; ``timed_out`` and ``failed`` jobs were
    admitted but never completed (client abandonment / launch-retry
    exhaustion); ``launch_retries`` counts recovered launch failures.
    """

    released: int = 0
    admitted: int = 0
    rejected: int = 0
    completed: int = 0
    missed: int = 0
    response_times: List[float] = field(default_factory=list)
    dropped: int = 0
    shed: int = 0
    timed_out: int = 0
    failed: int = 0
    launch_retries: int = 0

    @property
    def deadline_miss_rate(self) -> float:
        """Missed deadlines divided by accepted jobs (the paper's DMR)."""
        if self.admitted == 0:
            return 0.0
        return self.missed / self.admitted

    @property
    def rejection_rate(self) -> float:
        """Rejected jobs divided by released jobs."""
        if self.released == 0:
            return 0.0
        return self.rejected / self.released

    @property
    def on_time(self) -> int:
        """Completions that made their deadline."""
        return self.completed - self.missed

    def cause_breakdown(self) -> Dict[str, int]:
        """Where every released job ended up, by cause.

        ``on_time + missed + timed_out + failed + in_flight`` equals
        ``admitted``, and ``admitted + rejected + dropped`` equals
        ``released`` (``shed`` attributes a subset of ``rejected``).
        """
        in_flight = self.admitted - self.completed - self.timed_out - self.failed
        return {
            "on_time": self.on_time,
            "missed": self.missed,
            "dropped": self.dropped,
            "rejected": self.rejected,
            "shed": self.shed,
            "timed_out": self.timed_out,
            "failed": self.failed,
            "in_flight": in_flight,
        }

    def response_time_stats(self) -> Dict[str, float]:
        """Mean / p50 / p95 / max response time in milliseconds."""
        if not self.response_times:
            return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0, "min": 0.0}
        values = np.asarray(self.response_times)
        return {
            "mean": float(values.mean()),
            "p50": float(np.percentile(values, 50)),
            "p95": float(np.percentile(values, 95)),
            "max": float(values.max()),
            "min": float(values.min()),
        }

    def to_dict(self) -> Dict[str, object]:
        """Lossless dictionary form (JSON-safe).

        ``response_times`` is preserved sample by sample rather than as
        summary statistics: Python floats survive a JSON round-trip exactly
        (shortest-repr serialization), so a cached scenario reproduces every
        derived statistic bit for bit.
        """
        data: Dict[str, object] = {
            "released": self.released,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "missed": self.missed,
            "response_times": list(self.response_times),
        }
        # Fault-cause counters serialize only when non-zero: a fault-free
        # run's dict is byte-identical to the pre-fault schema, so every
        # pre-existing cache entry keeps round-tripping unchanged.
        for key in ("dropped", "shed", "timed_out", "failed", "launch_retries"):
            value = getattr(self, key)
            if value:
                data[key] = value
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "PriorityMetrics":
        """Rebuild metrics from :meth:`to_dict` output (missing keys default)."""
        return cls(
            released=int(data["released"]),
            admitted=int(data["admitted"]),
            rejected=int(data["rejected"]),
            completed=int(data["completed"]),
            missed=int(data["missed"]),
            response_times=list(data["response_times"]),
            dropped=int(data.get("dropped", 0)),
            shed=int(data.get("shed", 0)),
            timed_out=int(data.get("timed_out", 0)),
            failed=int(data.get("failed", 0)),
            launch_retries=int(data.get("launch_retries", 0)),
        )


@dataclass(frozen=True)
class FaultImpact:
    """Per-run summary of injected-fault impact.

    Attributes:
        episodes: merged degraded intervals (overlapping slowdown windows
            and crash recoveries count once).
        downtime_ms: total time spent degraded.
        time_to_recover_ms: mean delay from an episode's end to the next
            on-time completion; None when no episode recovered in-horizon.
    """

    episodes: int = 0
    downtime_ms: float = 0.0
    time_to_recover_ms: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        """Lossless dictionary form (JSON-safe)."""
        return {
            "episodes": self.episodes,
            "downtime_ms": self.downtime_ms,
            "time_to_recover_ms": self.time_to_recover_ms,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultImpact":
        """Rebuild an impact summary from :meth:`to_dict` output."""
        recover = data.get("time_to_recover_ms")
        return cls(
            episodes=int(data["episodes"]),
            downtime_ms=float(data["downtime_ms"]),
            time_to_recover_ms=None if recover is None else float(recover),
        )

    @classmethod
    def from_summary(cls, summary: Optional[Mapping[str, object]]) -> Optional["FaultImpact"]:
        """Build from :meth:`repro.sim.faults.FaultInjector.summary` output."""
        if summary is None:
            return None
        return cls.from_dict(summary)


@dataclass(frozen=True)
class GpuTelemetry:
    """Per-device breakdown of one cluster GPU's share of a run.

    Produced only by the ``cluster`` backend (single-GPU backends carry no
    breakdown); folded into :class:`ScenarioMetrics.gpu_breakdown` and
    serialized only when present, so single-GPU metrics stay byte-identical
    to their pre-cluster form.

    Attributes:
        gpu: device index within the cluster.
        routed: requests the router dispatched to this device.
        completed: requests this device finished.
        missed: late completions this device contributed.
        utilization: the device's time-averaged SM utilization.
        max_queue_depth: deepest backlog observed on the device's queue.
        migrations: model queues migrated *away* from this device.
    """

    gpu: int
    routed: int = 0
    completed: int = 0
    missed: int = 0
    utilization: float = 0.0
    max_queue_depth: int = 0
    migrations: int = 0

    def to_dict(self) -> Dict[str, object]:
        """Lossless dictionary form (JSON-safe)."""
        return {
            "gpu": self.gpu,
            "routed": self.routed,
            "completed": self.completed,
            "missed": self.missed,
            "utilization": self.utilization,
            "max_queue_depth": self.max_queue_depth,
            "migrations": self.migrations,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "GpuTelemetry":
        """Rebuild per-device telemetry from :meth:`to_dict` output."""
        return cls(
            gpu=int(data["gpu"]),
            routed=int(data.get("routed", 0)),
            completed=int(data.get("completed", 0)),
            missed=int(data.get("missed", 0)),
            utilization=float(data.get("utilization", 0.0)),
            max_queue_depth=int(data.get("max_queue_depth", 0)),
            migrations=int(data.get("migrations", 0)),
        )


@dataclass(frozen=True)
class ScenarioMetrics:
    """Immutable summary of one scheduling run."""

    horizon_ms: float
    total_jps: float
    high: PriorityMetrics
    low: PriorityMetrics
    per_task_completed: Dict[str, int]
    average_gpu_utilization: float = 0.0
    fault_impact: Optional[FaultImpact] = None
    gpu_breakdown: Optional[Tuple[GpuTelemetry, ...]] = None

    @property
    def total_completed(self) -> int:
        """Completed jobs across both priorities."""
        return self.high.completed + self.low.completed

    @property
    def overall_dmr(self) -> float:
        """DMR across both priorities (missed / admitted)."""
        admitted = self.high.admitted + self.low.admitted
        if admitted == 0:
            return 0.0
        return (self.high.missed + self.low.missed) / admitted

    @property
    def goodput_jps(self) -> float:
        """On-time completions per second — throughput that met its deadline."""
        return 1000.0 * (self.high.on_time + self.low.on_time) / self.horizon_ms

    def cause_breakdown(self) -> Dict[str, int]:
        """Combined miss/loss cause breakdown across both priorities."""
        high = self.high.cause_breakdown()
        low = self.low.cause_breakdown()
        return {key: high[key] + low[key] for key in high}

    def to_dict(self) -> Dict[str, object]:
        """Lossless dictionary form (JSON-safe); inverse of :meth:`from_dict`.

        ``fault_impact`` and ``gpu_breakdown`` serialize only when present,
        keeping fault-free / single-GPU output byte-identical to the
        pre-fault (pre-cluster) schema.
        """
        data: Dict[str, object] = {
            "horizon_ms": self.horizon_ms,
            "total_jps": self.total_jps,
            "high": self.high.to_dict(),
            "low": self.low.to_dict(),
            "per_task_completed": dict(self.per_task_completed),
            "average_gpu_utilization": self.average_gpu_utilization,
        }
        if self.fault_impact is not None:
            data["fault_impact"] = self.fault_impact.to_dict()
        if self.gpu_breakdown is not None:
            data["gpu_breakdown"] = [gpu.to_dict() for gpu in self.gpu_breakdown]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ScenarioMetrics":
        """Rebuild a summary from :meth:`to_dict` output."""
        impact = data.get("fault_impact")
        breakdown = data.get("gpu_breakdown")
        return cls(
            horizon_ms=float(data["horizon_ms"]),
            total_jps=float(data["total_jps"]),
            high=PriorityMetrics.from_dict(data["high"]),
            low=PriorityMetrics.from_dict(data["low"]),
            per_task_completed={str(k): int(v) for k, v in dict(data["per_task_completed"]).items()},
            average_gpu_utilization=float(data["average_gpu_utilization"]),
            fault_impact=None if impact is None else FaultImpact.from_dict(impact),
            gpu_breakdown=None
            if breakdown is None
            else tuple(GpuTelemetry.from_dict(gpu) for gpu in breakdown),
        )

    @classmethod
    def from_priority_metrics(
        cls,
        horizon_ms: float,
        high: Optional[PriorityMetrics] = None,
        low: Optional[PriorityMetrics] = None,
        per_task_completed: Optional[Dict[str, int]] = None,
        gpu_utilization: float = 0.0,
        fault_impact: Optional[FaultImpact] = None,
        gpu_breakdown: Optional[Tuple[GpuTelemetry, ...]] = None,
    ) -> "ScenarioMetrics":
        """Summary from already-accumulated per-priority counters.

        The constructor every scheduler *backend* shares: baseline servers
        (Clockwork, GSlice, batching, single-tenant) count completions and
        response times themselves rather than through a
        :class:`MetricsCollector`, and this turns those counters into the
        same :class:`ScenarioMetrics` a DARIS run produces — throughput is
        derived from the completions, missing priority levels default to
        empty buckets.
        """
        if horizon_ms <= 0:
            raise ValueError("horizon must be positive")
        high = high if high is not None else PriorityMetrics()
        low = low if low is not None else PriorityMetrics()
        return cls(
            horizon_ms=horizon_ms,
            total_jps=1000.0 * (high.completed + low.completed) / horizon_ms,
            high=high,
            low=low,
            per_task_completed=dict(per_task_completed or {}),
            average_gpu_utilization=gpu_utilization,
            fault_impact=fault_impact,
            gpu_breakdown=gpu_breakdown,
        )


class MetricsCollector:
    """Accumulates per-job outcomes during a run and produces the summary."""

    def __init__(self) -> None:
        self._per_priority: Dict[Priority, PriorityMetrics] = {
            Priority.HIGH: PriorityMetrics(),
            Priority.LOW: PriorityMetrics(),
        }
        self._per_task_completed: Dict[str, int] = {}
        self._warmup_ms = 0.0

    def set_warmup(self, warmup_ms: float) -> None:
        """Ignore jobs released before ``warmup_ms`` when computing rates."""
        if warmup_ms < 0:
            raise ValueError("warmup must be non-negative")
        self._warmup_ms = warmup_ms

    def _bucket(self, job: Job) -> Optional[PriorityMetrics]:
        if job.release_time < self._warmup_ms:
            return None
        return self._per_priority[job.priority]

    def record_release(self, job: Job) -> None:
        """A job was released."""
        bucket = self._bucket(job)
        if bucket is not None:
            bucket.released += 1

    def record_admission(self, job: Job) -> None:
        """A job passed the admission test (or was HP and exempt)."""
        bucket = self._bucket(job)
        if bucket is not None:
            bucket.admitted += 1

    def record_rejection(self, job: Job, shed: bool = False) -> None:
        """A job was rejected by the admission test.

        ``shed=True`` additionally attributes the rejection to a
        degraded-mode shedding policy in the cause breakdown.
        """
        bucket = self._bucket(job)
        if bucket is not None:
            bucket.rejected += 1
            if shed:
                bucket.shed += 1

    def record_drop(self, job: Job) -> None:
        """A released job was lost to a request-drop fault before admission."""
        bucket = self._bucket(job)
        if bucket is not None:
            bucket.dropped += 1

    def record_timeout(self, job: Job) -> None:
        """An admitted job was abandoned by its client before service."""
        bucket = self._bucket(job)
        if bucket is not None:
            bucket.timed_out += 1

    def record_failure(self, job: Job) -> None:
        """An admitted job died after exhausting its launch-retry budget."""
        bucket = self._bucket(job)
        if bucket is not None:
            bucket.failed += 1

    def record_launch_retries(self, job: Job, retries: int) -> None:
        """Recovered launch failures spent on a job's kernels."""
        bucket = self._bucket(job)
        if bucket is not None and retries > 0:
            bucket.launch_retries += retries

    def record_completion(self, job: Job) -> None:
        """A job finished; accounts for throughput, DMR and response time."""
        bucket = self._bucket(job)
        if bucket is None:
            return
        bucket.completed += 1
        if job.response_time is not None:
            bucket.response_times.append(job.response_time)
        if job.missed_deadline:
            bucket.missed += 1
        task_name = job.task.name
        self._per_task_completed[task_name] = self._per_task_completed.get(task_name, 0) + 1

    def priority_metrics(self, priority: Priority) -> PriorityMetrics:
        """Metrics of one priority level (mutable view)."""
        return self._per_priority[priority]

    def summarize(
        self,
        horizon_ms: float,
        gpu_utilization: float = 0.0,
        fault_impact: Optional[FaultImpact] = None,
    ) -> ScenarioMetrics:
        """Produce the immutable scenario summary for a measurement horizon."""
        if horizon_ms <= 0:
            raise ValueError("horizon must be positive")
        effective_horizon = horizon_ms - self._warmup_ms
        if effective_horizon <= 0:
            raise ValueError("horizon must exceed the warm-up period")
        completed = (
            self._per_priority[Priority.HIGH].completed
            + self._per_priority[Priority.LOW].completed
        )
        total_jps = 1000.0 * completed / effective_horizon
        return ScenarioMetrics(
            horizon_ms=effective_horizon,
            total_jps=total_jps,
            high=self._per_priority[Priority.HIGH],
            low=self._per_priority[Priority.LOW],
            per_task_completed=dict(self._per_task_completed),
            average_gpu_utilization=gpu_utilization,
            fault_impact=fault_impact,
        )
