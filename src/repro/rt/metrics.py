"""Throughput, deadline-miss and response-time metrics (paper Section V-VI).

The evaluation uses three headline metrics:

* **JPS** — completed jobs per second (throughput),
* **DMR** — missed deadlines over *accepted* jobs, reported per priority, and
* **response time** — completion minus release time, reported per priority.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.rt.task import Job, Priority


@dataclass
class PriorityMetrics:
    """Counters and samples for one priority level."""

    released: int = 0
    admitted: int = 0
    rejected: int = 0
    completed: int = 0
    missed: int = 0
    response_times: List[float] = field(default_factory=list)

    @property
    def deadline_miss_rate(self) -> float:
        """Missed deadlines divided by accepted jobs (the paper's DMR)."""
        if self.admitted == 0:
            return 0.0
        return self.missed / self.admitted

    @property
    def rejection_rate(self) -> float:
        """Rejected jobs divided by released jobs."""
        if self.released == 0:
            return 0.0
        return self.rejected / self.released

    def response_time_stats(self) -> Dict[str, float]:
        """Mean / p50 / p95 / max response time in milliseconds."""
        if not self.response_times:
            return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0, "min": 0.0}
        values = np.asarray(self.response_times)
        return {
            "mean": float(values.mean()),
            "p50": float(np.percentile(values, 50)),
            "p95": float(np.percentile(values, 95)),
            "max": float(values.max()),
            "min": float(values.min()),
        }

    def to_dict(self) -> Dict[str, object]:
        """Lossless dictionary form (JSON-safe).

        ``response_times`` is preserved sample by sample rather than as
        summary statistics: Python floats survive a JSON round-trip exactly
        (shortest-repr serialization), so a cached scenario reproduces every
        derived statistic bit for bit.
        """
        return {
            "released": self.released,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "missed": self.missed,
            "response_times": list(self.response_times),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "PriorityMetrics":
        """Rebuild metrics from :meth:`to_dict` output."""
        return cls(
            released=int(data["released"]),
            admitted=int(data["admitted"]),
            rejected=int(data["rejected"]),
            completed=int(data["completed"]),
            missed=int(data["missed"]),
            response_times=list(data["response_times"]),
        )


@dataclass(frozen=True)
class ScenarioMetrics:
    """Immutable summary of one scheduling run."""

    horizon_ms: float
    total_jps: float
    high: PriorityMetrics
    low: PriorityMetrics
    per_task_completed: Dict[str, int]
    average_gpu_utilization: float = 0.0

    @property
    def total_completed(self) -> int:
        """Completed jobs across both priorities."""
        return self.high.completed + self.low.completed

    @property
    def overall_dmr(self) -> float:
        """DMR across both priorities (missed / admitted)."""
        admitted = self.high.admitted + self.low.admitted
        if admitted == 0:
            return 0.0
        return (self.high.missed + self.low.missed) / admitted

    def to_dict(self) -> Dict[str, object]:
        """Lossless dictionary form (JSON-safe); inverse of :meth:`from_dict`."""
        return {
            "horizon_ms": self.horizon_ms,
            "total_jps": self.total_jps,
            "high": self.high.to_dict(),
            "low": self.low.to_dict(),
            "per_task_completed": dict(self.per_task_completed),
            "average_gpu_utilization": self.average_gpu_utilization,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ScenarioMetrics":
        """Rebuild a summary from :meth:`to_dict` output."""
        return cls(
            horizon_ms=float(data["horizon_ms"]),
            total_jps=float(data["total_jps"]),
            high=PriorityMetrics.from_dict(data["high"]),
            low=PriorityMetrics.from_dict(data["low"]),
            per_task_completed={str(k): int(v) for k, v in dict(data["per_task_completed"]).items()},
            average_gpu_utilization=float(data["average_gpu_utilization"]),
        )

    @classmethod
    def from_priority_metrics(
        cls,
        horizon_ms: float,
        high: Optional[PriorityMetrics] = None,
        low: Optional[PriorityMetrics] = None,
        per_task_completed: Optional[Dict[str, int]] = None,
        gpu_utilization: float = 0.0,
    ) -> "ScenarioMetrics":
        """Summary from already-accumulated per-priority counters.

        The constructor every scheduler *backend* shares: baseline servers
        (Clockwork, GSlice, batching, single-tenant) count completions and
        response times themselves rather than through a
        :class:`MetricsCollector`, and this turns those counters into the
        same :class:`ScenarioMetrics` a DARIS run produces — throughput is
        derived from the completions, missing priority levels default to
        empty buckets.
        """
        if horizon_ms <= 0:
            raise ValueError("horizon must be positive")
        high = high if high is not None else PriorityMetrics()
        low = low if low is not None else PriorityMetrics()
        return cls(
            horizon_ms=horizon_ms,
            total_jps=1000.0 * (high.completed + low.completed) / horizon_ms,
            high=high,
            low=low,
            per_task_completed=dict(per_task_completed or {}),
            average_gpu_utilization=gpu_utilization,
        )


class MetricsCollector:
    """Accumulates per-job outcomes during a run and produces the summary."""

    def __init__(self) -> None:
        self._per_priority: Dict[Priority, PriorityMetrics] = {
            Priority.HIGH: PriorityMetrics(),
            Priority.LOW: PriorityMetrics(),
        }
        self._per_task_completed: Dict[str, int] = {}
        self._warmup_ms = 0.0

    def set_warmup(self, warmup_ms: float) -> None:
        """Ignore jobs released before ``warmup_ms`` when computing rates."""
        if warmup_ms < 0:
            raise ValueError("warmup must be non-negative")
        self._warmup_ms = warmup_ms

    def _bucket(self, job: Job) -> Optional[PriorityMetrics]:
        if job.release_time < self._warmup_ms:
            return None
        return self._per_priority[job.priority]

    def record_release(self, job: Job) -> None:
        """A job was released."""
        bucket = self._bucket(job)
        if bucket is not None:
            bucket.released += 1

    def record_admission(self, job: Job) -> None:
        """A job passed the admission test (or was HP and exempt)."""
        bucket = self._bucket(job)
        if bucket is not None:
            bucket.admitted += 1

    def record_rejection(self, job: Job) -> None:
        """A job was rejected by the admission test."""
        bucket = self._bucket(job)
        if bucket is not None:
            bucket.rejected += 1

    def record_completion(self, job: Job) -> None:
        """A job finished; accounts for throughput, DMR and response time."""
        bucket = self._bucket(job)
        if bucket is None:
            return
        bucket.completed += 1
        if job.response_time is not None:
            bucket.response_times.append(job.response_time)
        if job.missed_deadline:
            bucket.missed += 1
        task_name = job.task.name
        self._per_task_completed[task_name] = self._per_task_completed.get(task_name, 0) + 1

    def priority_metrics(self, priority: Priority) -> PriorityMetrics:
        """Metrics of one priority level (mutable view)."""
        return self._per_priority[priority]

    def summarize(self, horizon_ms: float, gpu_utilization: float = 0.0) -> ScenarioMetrics:
        """Produce the immutable scenario summary for a measurement horizon."""
        if horizon_ms <= 0:
            raise ValueError("horizon must be positive")
        effective_horizon = horizon_ms - self._warmup_ms
        if effective_horizon <= 0:
            raise ValueError("horizon must exceed the warm-up period")
        completed = (
            self._per_priority[Priority.HIGH].completed
            + self._per_priority[Priority.LOW].completed
        )
        total_jps = 1000.0 * completed / effective_horizon
        return ScenarioMetrics(
            horizon_ms=effective_horizon,
            total_jps=total_jps,
            high=self._per_priority[Priority.HIGH],
            low=self._per_priority[Priority.LOW],
            per_task_completed=dict(self._per_task_completed),
            average_gpu_utilization=gpu_utilization,
        )
