"""Utilization accounting (paper Equations 3-7 and 11).

Utilization is always derived from the *current* MRET (or the AFET fallback
before measurements exist), so the same functions serve the offline load
balancing (total utilization, Equation 6) and the online admission test
(active utilization, Equation 7, against the remaining capacity of
Equation 11).
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.rt.task import Job, Priority, Task


def task_utilization(task: Task) -> float:
    """Paper Equation 3: MRET over period."""
    return task.utilization()


def context_priority_utilization(tasks: Iterable[Task], context_index: int) -> Tuple[float, float]:
    """Paper Equations 4-5: total HP and LP utilization of one context."""
    high = 0.0
    low = 0.0
    for task in tasks:
        if task.context_index != context_index:
            continue
        utilization = task.utilization()
        if task.priority is Priority.HIGH:
            high += utilization
        else:
            low += utilization
    return high, low


def context_total_utilization(tasks: Iterable[Task], context_index: int) -> float:
    """Paper Equation 6: total utilization of one context."""
    high, low = context_priority_utilization(tasks, context_index)
    return high + low


def active_low_priority_utilization(active_jobs: Iterable[Job], context_index: int) -> float:
    """Utilization of LP tasks with an active (released, unfinished) job (Equation 7)."""
    total = 0.0
    seen_tasks = set()
    for job in active_jobs:
        if job.context_index != context_index or job.priority is not Priority.LOW:
            continue
        if job.task.task_id in seen_tasks:
            continue
        seen_tasks.add(job.task.task_id)
        total += job.task.utilization()
    return total


def remaining_utilization(streams_per_context: int, high_priority_utilization: float) -> float:
    """Paper Equation 11: remaining capacity of a context for LP tasks."""
    if streams_per_context < 1:
        raise ValueError("streams_per_context must be >= 1")
    return float(streams_per_context) - high_priority_utilization


def admission_test(
    streams_per_context: int,
    high_priority_utilization: float,
    active_low_utilization: float,
    candidate_utilization: float,
) -> bool:
    """Paper Equation 12: whether a candidate LP job fits in a context."""
    remaining = remaining_utilization(streams_per_context, high_priority_utilization)
    return active_low_utilization + candidate_utilization < remaining
