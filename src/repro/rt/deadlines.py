"""Virtual deadline assignment (paper Equation 8 and Figure 2).

Each stage of a job receives a share of the task's relative deadline
proportional to its MRET; the absolute virtual deadline of stage ``j`` is the
release time plus the cumulative share of stages ``1..j``.  Longer stages thus
receive a larger slice of the deadline, and the last stage's virtual deadline
coincides with the job's actual deadline.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.rt.task import Job


def virtual_deadline_shares(mret_per_stage: Sequence[float], relative_deadline: float) -> List[float]:
    """Relative virtual deadlines ``D_{i,j}`` for one job (Equation 8).

    When all MRETs are zero (no timing information at all) the deadline is
    split uniformly so that the shares still sum to the relative deadline.

    The shares sum *exactly* to ``relative_deadline``: each share is computed
    from the well-scaled ratio ``value / total`` (avoiding subnormal
    intermediates for very small MRETs) and the final share is normalized to
    absorb the residual rounding error, clamped at zero.  Without the
    normalization the last stage's virtual deadline could drift off the job's
    actual deadline by accumulated rounding error.
    """
    if relative_deadline <= 0:
        raise ValueError("relative_deadline must be positive")
    if not mret_per_stage:
        raise ValueError("at least one stage is required")
    if any(value < 0 for value in mret_per_stage):
        raise ValueError("MRET values must be non-negative")
    total = sum(mret_per_stage)
    count = len(mret_per_stage)
    if total <= 0:
        shares = [relative_deadline / count] * count
    else:
        shares = [relative_deadline * (value / total) for value in mret_per_stage]
    shares[-1] = max(0.0, relative_deadline - sum(shares[:-1]))
    return shares


def assign_virtual_deadlines(job: Job) -> None:
    """Assign absolute virtual deadlines to every stage of ``job`` in place.

    Also records the MRET snapshot used for the assignment on each stage
    instance so later analysis (Figure 9) can compare prediction with the
    actually measured execution time.
    """
    task = job.task
    timing = task.timing
    version = timing.version
    if version != task._vd_version:
        # The share split depends only on the MRET snapshot; releases between
        # two timing-model updates reuse it (identical values, so identical
        # virtual deadlines).
        mrets = [timing.stage_value(i) for i in range(job.num_stages)]
        task._vd_mrets = mrets
        task._vd_shares = virtual_deadline_shares(mrets, task.spec.relative_deadline_ms)
        task._vd_version = version
    cumulative = job.release_time
    for stage, share, mret in zip(job.stages, task._vd_shares, task._vd_mrets):
        cumulative += share
        stage.virtual_deadline = cumulative
        stage.mret_at_release = mret
