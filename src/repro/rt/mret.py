"""Maximum Recent Execution Time (MRET) estimation (paper Section III-B2).

MRET is a sliding-window maximum of recently observed execution times,
computed per stage (Equation 1) and summed per task (Equation 2).  It replaces
static WCET estimates, adapting to the actual co-location the task currently
experiences.  Before any observation exists the estimator falls back to the
offline AFET value (Equation 10).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional


class MretEstimator:
    """Sliding-window maximum of execution times for one stage."""

    def __init__(self, window_size: int = 5, initial: Optional[float] = None):
        if window_size < 1:
            raise ValueError(f"window_size must be >= 1, got {window_size}")
        self.window_size = window_size
        self.initial = initial
        self._window: Deque[float] = deque(maxlen=window_size)
        self._cached_value: Optional[float] = None

    @property
    def observations(self) -> int:
        """Number of samples currently inside the window."""
        return len(self._window)

    def observe(self, execution_time: float) -> None:
        """Record a measured execution time (milliseconds)."""
        if execution_time < 0:
            raise ValueError(f"execution_time must be non-negative, got {execution_time}")
        self._window.append(execution_time)
        self._cached_value = None

    def value(self) -> float:
        """Current MRET: window maximum, or the AFET fallback when empty.

        The window maximum is cached between observations: ``value`` is called
        on every admission test and virtual-deadline assignment, far more
        often than the window changes.
        """
        cached = self._cached_value
        if cached is not None:
            return cached
        if self._window:
            result = max(self._window)
        elif self.initial is not None:
            result = self.initial
        else:
            result = 0.0
        self._cached_value = result
        return result

    def set_initial(self, afet: float) -> None:
        """Install the offline AFET fallback used before any measurement exists."""
        if afet < 0:
            raise ValueError("afet must be non-negative")
        self.initial = afet
        if not self._window:
            self._cached_value = None

    def window_values(self) -> List[float]:
        """Copy of the current window contents (oldest first)."""
        return list(self._window)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MretEstimator(ws={self.window_size}, value={self.value():.3f})"


class TaskTimingModel:
    """Per-task collection of stage MRET estimators."""

    def __init__(self, num_stages: int, window_size: int = 5):
        if num_stages < 1:
            raise ValueError("num_stages must be >= 1")
        self.window_size = window_size
        self._estimators = [MretEstimator(window_size=window_size) for _ in range(num_stages)]
        self._cached_total: Optional[float] = None
        # Bumped on every mutation; lets consumers cache derived quantities
        # (e.g. the scheduler's per-context MRET backlog contributions).
        self.version = 0

    @property
    def num_stages(self) -> int:
        """Number of stages tracked."""
        return len(self._estimators)

    def estimator(self, stage_index: int) -> MretEstimator:
        """The estimator of one stage."""
        return self._estimators[stage_index]

    def set_afet(self, afet_per_stage: List[float]) -> None:
        """Initialize every stage with its offline AFET value."""
        if len(afet_per_stage) != len(self._estimators):
            raise ValueError(
                f"expected {len(self._estimators)} AFET values, got {len(afet_per_stage)}"
            )
        for estimator, afet in zip(self._estimators, afet_per_stage):
            estimator.set_initial(afet)
        self._cached_total = None
        self.version += 1

    def observe(self, stage_index: int, execution_time: float) -> None:
        """Record a measurement for one stage."""
        self._estimators[stage_index].observe(execution_time)
        self._cached_total = None
        self.version += 1

    def stage_value(self, stage_index: int) -> float:
        """MRET of one stage (Equation 1)."""
        return self._estimators[stage_index].value()

    def stage_values(self) -> List[float]:
        """MRET of every stage."""
        return [estimator.value() for estimator in self._estimators]

    def total(self) -> float:
        """Task-level MRET (Equation 2), cached between observations."""
        cached = self._cached_total
        if cached is None:
            cached = sum(estimator.value() for estimator in self._estimators)
            self._cached_total = cached
        return cached
