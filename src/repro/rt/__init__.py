"""Real-time task model: tasks, jobs, stages, timing estimation and metrics.

This package implements the DARIS task model of Section III of the paper:
periodic tasks with implicit deadlines and two priority levels, divided into
sequential stages, with MRET-based dynamic timing estimation, AFET-based
offline initialization, utilization accounting, virtual deadlines, and the
throughput / deadline-miss / response-time metrics used in the evaluation.
"""

from repro.rt.task import (
    Priority,
    TaskSpec,
    Task,
    Job,
    StageInstance,
    JobState,
)
from repro.rt.mret import MretEstimator, TaskTimingModel
from repro.rt.afet import estimate_afet_analytic, profile_afet
from repro.rt.utilization import (
    task_utilization,
    context_total_utilization,
    context_priority_utilization,
    remaining_utilization,
)
from repro.rt.deadlines import assign_virtual_deadlines, virtual_deadline_shares
from repro.rt.taskset import (
    TaskSetSpec,
    make_taskset,
    table2_taskset,
    mixed_taskset,
    ratio_taskset,
    TABLE2,
)
from repro.rt.metrics import MetricsCollector, PriorityMetrics, ScenarioMetrics
from repro.rt.trace import TraceRecorder, StageTraceRecord, JobTraceRecord

__all__ = [
    "Priority",
    "TaskSpec",
    "Task",
    "Job",
    "StageInstance",
    "JobState",
    "MretEstimator",
    "TaskTimingModel",
    "estimate_afet_analytic",
    "profile_afet",
    "task_utilization",
    "context_total_utilization",
    "context_priority_utilization",
    "remaining_utilization",
    "assign_virtual_deadlines",
    "virtual_deadline_shares",
    "TaskSetSpec",
    "make_taskset",
    "table2_taskset",
    "mixed_taskset",
    "ratio_taskset",
    "TABLE2",
    "MetricsCollector",
    "PriorityMetrics",
    "ScenarioMetrics",
    "TraceRecorder",
    "StageTraceRecord",
    "JobTraceRecord",
]
