"""Average Full-Load Execution Time (AFET) profiling (paper Section IV-A1).

AFET is the offline, pessimistic initialization of the timing model: the
target task is executed in one stream while the remaining streams run randomly
chosen other tasks, and the average per-stage execution time is recorded.  It
seeds the MRET estimators (Equation 10) and is replaced by measurements as
soon as the online phase produces them.

Two implementations are provided:

* :func:`profile_afet` runs the measurement procedure on the simulated GPU,
  mirroring the paper's methodology.
* :func:`estimate_afet_analytic` computes a closed-form approximation (stage
  work divided by its fair SM share under full load), useful for fast test
  setups and for seeding very large experiments.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.dnn.model import DnnModel
from repro.gpu.calibration import DEFAULT_CALIBRATION, GpuCalibration
from repro.gpu.platform import GpuPlatform, PlatformConfig
from repro.gpu.spec import GpuSpec, RTX_2080_TI
from repro.sim.simulator import Simulator


def estimate_afet_analytic(
    model: DnnModel,
    sm_quota: float,
    concurrent_jobs: int,
    calibration: GpuCalibration = DEFAULT_CALIBRATION,
    num_sms: Optional[int] = None,
) -> List[float]:
    """Closed-form AFET estimate per stage.

    Under full load every co-resident kernel competes for SMs; each stage of
    the target task receives roughly ``min(parallelism, quota,
    num_sms / concurrent_jobs)`` SMs, degraded by the calibrated intra-context
    and contention efficiencies.
    """
    if concurrent_jobs < 1:
        raise ValueError("concurrent_jobs must be >= 1")
    total_sms = float(num_sms if num_sms is not None else model.gpu.num_sms)
    afets = []
    for stage in model.stages:
        fair_share = max(total_sms / concurrent_jobs, calibration.min_rate_sms)
        allocation = min(stage.parallelism, sm_quota, fair_share)
        pressure = max(1.0, concurrent_jobs * min(stage.parallelism, sm_quota) / total_sms)
        efficiency = calibration.contention_efficiency(pressure, stage.memory_intensity)
        afets.append(stage.work / (allocation * efficiency))
    return afets


def profile_afet(
    target: DnnModel,
    background: Sequence[DnnModel],
    platform_config: PlatformConfig,
    repetitions: int = 10,
    gpu: GpuSpec = RTX_2080_TI,
    calibration: GpuCalibration = DEFAULT_CALIBRATION,
    seed: int = 0,
) -> List[float]:
    """Measure AFET per stage of ``target`` on the simulated GPU.

    The target task runs its stages back to back in context 0 / stream 0 while
    every other (context, stream) slot continuously executes stages drawn at
    random from ``background``.  The mean measured duration per stage over
    ``repetitions`` runs is returned.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    rng = np.random.default_rng(seed)
    simulator = Simulator()
    platform = GpuPlatform(simulator, platform_config, spec=gpu, calibration=calibration)

    durations: Dict[int, List[float]] = {i: [] for i in range(target.num_stages)}
    state = {"stage": 0, "repetition": 0, "done": False}

    def launch_target(_kernel=None) -> None:
        if _kernel is not None:
            stage_index = state["stage"]
            durations[stage_index].append(_kernel.execution_time_ms)
            state["stage"] += 1
            if state["stage"] >= target.num_stages:
                state["stage"] = 0
                state["repetition"] += 1
                if state["repetition"] >= repetitions:
                    state["done"] = True
                    return
        stage = target.stages[state["stage"]]
        platform.launch(0, 0, stage.to_kernel_spec(), on_complete=launch_target)

    def launch_background(context_index: int, stream_index: int) -> None:
        def relaunch(_kernel) -> None:
            if not state["done"]:
                launch_background(context_index, stream_index)

        if not background:
            return
        model = background[int(rng.integers(len(background)))]
        stage = model.stages[int(rng.integers(model.num_stages))]
        platform.launch(context_index, stream_index, stage.to_kernel_spec(), on_complete=relaunch)

    for context_index in range(platform.num_contexts):
        for stream_index in range(platform.streams_per_context):
            if context_index == 0 and stream_index == 0:
                continue
            launch_background(context_index, stream_index)
    launch_target()

    # A generous horizon; the loop stops feeding work once done.
    horizon = repetitions * target.num_stages * 200.0 + 1000.0
    simulator.run_until(horizon)

    afets: List[float] = []
    for stage_index in range(target.num_stages):
        samples = durations[stage_index][:repetitions]
        if samples:
            afets.append(float(np.mean(samples)))
        else:  # pragma: no cover - only reachable with absurdly short horizons
            afets.append(target.stages[stage_index].isolated_duration_ms(gpu.num_sms))
    return afets
