"""Execution traces for analysis figures.

Figure 9 of the paper plots the measured execution time of ResNet18 against
its MRET prediction over time, for a well-behaved configuration (6x1 OS6) and
for a volatile one (3x3 OS1).  The :class:`TraceRecorder` captures exactly the
information needed for that comparison, plus per-job records used by the
response-time analysis (Figure 8a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.rt.task import Priority


@dataclass(frozen=True)
class StageTraceRecord:
    """One completed stage execution."""

    time_ms: float
    task_name: str
    priority: Priority
    job_index: int
    stage_index: int
    execution_time_ms: float
    mret_prediction_ms: float
    virtual_deadline_ms: float
    missed_virtual_deadline: bool
    context_index: int


@dataclass(frozen=True)
class JobTraceRecord:
    """One completed job."""

    time_ms: float
    task_name: str
    priority: Priority
    job_index: int
    release_time_ms: float
    response_time_ms: float
    missed_deadline: bool
    context_index: int


class TraceRecorder:
    """Collects stage- and job-level records during a run."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.stage_records: List[StageTraceRecord] = []
        self.job_records: List[JobTraceRecord] = []

    def record_stage(self, record: StageTraceRecord) -> None:
        """Append a stage record (no-op when disabled)."""
        if self.enabled:
            self.stage_records.append(record)

    def record_job(self, record: JobTraceRecord) -> None:
        """Append a job record (no-op when disabled)."""
        if self.enabled:
            self.job_records.append(record)

    def stage_series(
        self, task_name: Optional[str] = None, stage_index: Optional[int] = None
    ) -> List[StageTraceRecord]:
        """Stage records filtered by task name and/or stage index."""
        records = self.stage_records
        if task_name is not None:
            records = [r for r in records if r.task_name == task_name]
        if stage_index is not None:
            records = [r for r in records if r.stage_index == stage_index]
        return records

    def job_series(self, priority: Optional[Priority] = None) -> List[JobTraceRecord]:
        """Job records filtered by priority."""
        if priority is None:
            return list(self.job_records)
        return [r for r in self.job_records if r.priority is priority]

    def execution_vs_mret(self, task_name: str) -> List[tuple]:
        """(time, measured task execution, predicted task MRET) tuples for Figure 9.

        Stage records of the same job are aggregated so the series is at task
        granularity, matching the paper's plot.
        """
        per_job = {}
        for record in self.stage_records:
            if record.task_name != task_name:
                continue
            key = record.job_index
            entry = per_job.setdefault(key, {"time": 0.0, "exec": 0.0, "mret": 0.0})
            entry["time"] = max(entry["time"], record.time_ms)
            entry["exec"] += record.execution_time_ms
            entry["mret"] += record.mret_prediction_ms
        series = [
            (entry["time"], entry["exec"], entry["mret"])
            for entry in per_job.values()
        ]
        series.sort(key=lambda item: item[0])
        return series

    def underprediction_rate(self, task_name: str) -> float:
        """Fraction of jobs whose measured execution exceeded the MRET prediction."""
        series = self.execution_vs_mret(task_name)
        if not series:
            return 0.0
        over = sum(1 for _, measured, predicted in series if measured > predicted + 1e-9)
        return over / len(series)
