"""Task, job and stage-instance runtime objects (paper Section III-A).

A *task* corresponds to one DNN served periodically; each released *job* is
divided into sequential *stage instances*, the unit the DARIS stage scheduler
dispatches.  Tasks carry their timing model (MRET per stage) and their current
context assignment, which the online phase may change for low-priority tasks
(migration).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import List, Optional

from repro.dnn.model import DnnModel
from repro.dnn.stage import StageSpec
from repro.rt.mret import TaskTimingModel


class Priority(enum.IntEnum):
    """Two task priority levels; HIGH beats LOW everywhere in the scheduler."""

    HIGH = 0
    LOW = 1


class JobState(enum.Enum):
    """Lifecycle of a released job.

    The last three states are terminal fault outcomes (see
    :mod:`repro.sim.faults`): the request was lost at arrival, abandoned by
    its client before service, or killed after exhausting launch retries.
    """

    RELEASED = "released"
    ADMITTED = "admitted"
    REJECTED = "rejected"
    RUNNING = "running"
    COMPLETED = "completed"
    DROPPED = "dropped"
    TIMED_OUT = "timed_out"
    FAILED = "failed"


@dataclass(frozen=True)
class TaskSpec:
    """Static description of a periodic inference task.

    Attributes:
        task_id: unique integer id.
        name: human-readable name (defaults to ``"{model}/task{id}"``).
        model: the calibrated DNN the task serves.
        period_ms: release period ``T_i``.
        deadline_ms: relative deadline ``D_i``; the paper uses implicit
            deadlines (``D_i = T_i``).
        priority: HIGH or LOW.
        batch_size: inference batch size (1 in the main experiments, 4/2/8 in
            the Figure 10 batching study).
        phase_ms: release offset of the first job.
    """

    task_id: int
    model: DnnModel
    period_ms: float
    priority: Priority
    deadline_ms: Optional[float] = None
    batch_size: int = 1
    phase_ms: float = 0.0
    name: str = ""

    def __post_init__(self) -> None:
        if self.period_ms <= 0:
            raise ValueError(f"period must be positive, got {self.period_ms}")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline must be positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if not self.name:
            object.__setattr__(self, "name", f"{self.model.name}/task{self.task_id}")

    @property
    def relative_deadline_ms(self) -> float:
        """Relative deadline ``D_i`` (defaults to the period)."""
        return self.deadline_ms if self.deadline_ms is not None else self.period_ms

    def to_dict(self) -> dict:
        """Canonical field dictionary (stable key order; used for cache keys).

        The model is flattened through :meth:`DnnModel.fingerprint` so the
        dictionary captures everything that influences simulated behaviour.
        """
        return {
            "task_id": self.task_id,
            "name": self.name,
            "model": self.model.fingerprint(),
            "period_ms": self.period_ms,
            "deadline_ms": self.deadline_ms,
            "priority": int(self.priority),
            "batch_size": self.batch_size,
            "phase_ms": self.phase_ms,
        }

    @property
    def is_high_priority(self) -> bool:
        """True for HP tasks."""
        return self.priority is Priority.HIGH


class Task:
    """Runtime state of a task: timing model, context assignment, counters.

    ``task_id``/``name``/``priority``/``num_stages`` are plain instance
    attributes rather than properties delegating to the spec: the scheduler
    and admission hot paths read them hundreds of thousands of times per
    scenario, and the spec-side values are immutable after construction.
    """

    def __init__(self, spec: TaskSpec, stages: Optional[List[StageSpec]] = None, window_size: int = 5):
        self.spec = spec
        self.stages: List[StageSpec] = list(stages) if stages is not None else list(spec.model.stages)
        self.timing = TaskTimingModel(num_stages=len(self.stages), window_size=window_size)
        self.task_id: int = spec.task_id
        self.name: str = spec.name
        self.priority: Priority = spec.priority
        self.num_stages: int = len(self.stages)
        self.context_index: int = -1
        self.jobs_released = 0
        self.jobs_admitted = 0
        self.jobs_rejected = 0
        self.jobs_completed = 0
        self.jobs_missed = 0
        # Utilization memo, keyed by the timing-model version.
        self._util_version = -1
        self._util_value = 0.0
        # Virtual-deadline share memo (see repro.rt.deadlines), same keying:
        # consecutive releases between MRET updates reuse the share split.
        self._vd_version = -1
        self._vd_mrets: List[float] = []
        self._vd_shares: List[float] = []

    def mret_total(self) -> float:
        """Paper Equation 2: sum of per-stage MRETs."""
        return self.timing.total()

    def utilization(self) -> float:
        """Paper Equation 3 (with Equation 10's AFET fallback handled by the timing model).

        Cached on the timing-model version: the admission test evaluates the
        utilization of every task in a context per probe, far more often than
        an MRET window changes.
        """
        timing = self.timing
        version = timing.version
        if version != self._util_version:
            self._util_value = timing.total() / self.spec.period_ms
            self._util_version = version
        return self._util_value

    def release_job(self, release_time: float) -> "Job":
        """Create the next job of this task at ``release_time``."""
        job = Job(task=self, index=self.jobs_released, release_time=release_time)
        self.jobs_released += 1
        return job

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Task({self.name!r}, {self.priority.name}, T={self.spec.period_ms:.2f} ms, "
            f"ctx={self.context_index})"
        )


_job_counter = itertools.count()


class Job:
    """One released instance of a task.

    A ``__slots__`` class: one instance per release, with the priority and
    stage count denormalized from the task because the admission test and the
    stage-queue keys read them on every probe.
    """

    __slots__ = (
        "uid",
        "task",
        "index",
        "release_time",
        "absolute_deadline",
        "state",
        "context_index",
        "completion_time",
        "stages",
        "current_stage_index",
        "priority",
        "num_stages",
    )

    def __init__(self, task: Task, index: int, release_time: float):
        self.uid = next(_job_counter)
        self.task = task
        self.index = index
        self.release_time = release_time
        self.absolute_deadline = release_time + task.spec.relative_deadline_ms
        self.state = JobState.RELEASED
        self.context_index: int = task.context_index
        self.completion_time: Optional[float] = None
        self.priority: Priority = task.priority
        self.stages: List[StageInstance] = [
            StageInstance(job=self, stage_index=i, spec=stage)
            for i, stage in enumerate(task.stages)
        ]
        self.num_stages: int = len(self.stages)
        self.current_stage_index = 0

    @property
    def current_stage(self) -> "StageInstance":
        """The stage that should execute next."""
        return self.stages[self.current_stage_index]

    @property
    def is_finished(self) -> bool:
        """True once every stage completed."""
        return self.current_stage_index >= len(self.stages)

    @property
    def response_time(self) -> Optional[float]:
        """Completion time minus release time, if the job finished."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.release_time

    @property
    def missed_deadline(self) -> Optional[bool]:
        """Whether the job finished after its absolute deadline."""
        if self.completion_time is None:
            return None
        return self.completion_time > self.absolute_deadline + 1e-9

    def advance(self) -> None:
        """Mark the current stage as done and move to the next one."""
        self.current_stage_index += 1

    def remaining_mret(self) -> float:
        """Sum of MRET of the stages that have not completed yet."""
        return sum(
            self.task.timing.stage_value(i)
            for i in range(self.current_stage_index, len(self.stages))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Job({self.task.name}#{self.index}, state={self.state.value})"


@dataclass(slots=True)
class StageInstance:
    """One stage of one job: the dispatchable unit of the DARIS scheduler."""

    job: Job
    stage_index: int
    spec: StageSpec
    virtual_deadline: float = 0.0
    mret_at_release: float = 0.0
    context_index: int = -1
    enqueue_time: float = 0.0
    dispatch_time: Optional[float] = None
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    missed_virtual_deadline: bool = False
    predecessor_missed: bool = False

    @property
    def is_last(self) -> bool:
        """True for the final stage of its job (``tau_{i,n_i}``)."""
        return self.stage_index == self.job.num_stages - 1

    @property
    def priority(self) -> Priority:
        """Task priority of the owning job."""
        return self.job.priority

    @property
    def execution_time(self) -> Optional[float]:
        """Measured execution time (start to finish), once completed."""
        if self.start_time is None or self.finish_time is None:
            return None
        return self.finish_time - self.start_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StageInstance({self.job.task.name}#{self.job.index}.s{self.stage_index}, "
            f"vd={self.virtual_deadline:.2f})"
        )
