"""Registry of scheduler backends, mirroring the experiment-spec registry.

Backends register themselves by name; the scenario runner dispatches each
request through :func:`get_backend`.  The built-in backends (DARIS plus the
five baseline systems) live in :mod:`repro.backends.builtin`, the composite
multi-GPU backend in :mod:`repro.cluster.backend`; both are loaded on first
use, so importing the registry stays cheap and cycle-free.
"""

from __future__ import annotations

import importlib
from typing import Dict, List

from repro.backends.base import SchedulerBackend

#: Modules that register backends on import.
BACKEND_MODULES = ("repro.backends.builtin", "repro.cluster.backend")

_REGISTRY: Dict[str, SchedulerBackend] = {}

#: Canonical listing order: the paper's system first, then its baselines
#: alphabetically, then the composite cluster backend; later user-registered
#: backends trail, stably.
_CANONICAL_ORDER = (
    "daris",
    "batching_server",
    "clockwork",
    "gslice",
    "rtgpu",
    "single",
    "cluster",
)


def register_backend(backend: SchedulerBackend) -> SchedulerBackend:
    """Add a backend to the registry (idempotent per name); returns it.

    Re-registering a name replaces the entry, which keeps module reloads
    (pytest import-mode quirks, interactive use) harmless.
    """
    _REGISTRY[backend.name] = backend
    return backend


def load_all_backends() -> None:
    """Import every backend module so its backends register themselves."""
    for module_name in BACKEND_MODULES:
        importlib.import_module(module_name)


def get_backend(name: str) -> SchedulerBackend:
    """Look up a registered backend, loading the built-ins on demand."""
    if name not in _REGISTRY:
        load_all_backends()
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown scheduler backend {name!r}; known: {', '.join(backend_names()) or '(none)'}"
        )
    return _REGISTRY[name]


def _canonical_rank(name: str) -> tuple:
    try:
        return (0, _CANONICAL_ORDER.index(name))
    except ValueError:
        return (1, name)


def backend_names() -> List[str]:
    """Registered backend names (built-ins loaded on demand), canonical order."""
    load_all_backends()
    return sorted(_REGISTRY, key=_canonical_rank)


def all_backends() -> List[SchedulerBackend]:
    """Every registered backend, in canonical listing order."""
    return [_REGISTRY[name] for name in backend_names()]
