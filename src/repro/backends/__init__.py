"""Pluggable scheduler backends behind one scenario API.

The paper's headline claims are comparative — DARIS versus batching-,
GSlice-, Clockwork- and RTGPU-style serving — so the baselines deserve the
same experiment machinery as DARIS itself.  This package makes every
scheduler a *backend* of the scenario API:

* :mod:`repro.backends.base` — the :class:`SchedulerBackend` protocol: one
  request (task set + workload + config + GPU + seed + horizon) in, one
  uniform :class:`~repro.rt.metrics.ScenarioMetrics`-carrying result out.
* :mod:`repro.backends.configs` — canonical, fingerprintable configurations
  per backend (``to_dict`` / ``from_dict``, like ``DarisConfig``).
* :mod:`repro.backends.registry` — name -> backend lookup the scenario
  runner dispatches through (``ScenarioRequest.scheduler``).
* :mod:`repro.backends.builtin` — DARIS plus the five baseline systems
  (``rtgpu``, ``clockwork``, ``single``, ``batching_server``, ``gslice``),
  loaded on first use.

Any registered backend automatically gains seed replication with confidence
intervals, the content-addressed result cache, parallel fan-out and sharded
sweeps — the experiment engine never special-cases a scheduler.
"""

from repro.backends.base import BackendRequestError, SchedulerBackend
from repro.backends.configs import (
    AnyBackendConfig,
    BackendConfig,
    BatchingConfig,
    ClockworkConfig,
    GSliceConfig,
    SingleConfig,
    config_from_dict,
)
from repro.backends.registry import (
    all_backends,
    backend_names,
    get_backend,
    load_all_backends,
    register_backend,
)

__all__ = [
    "AnyBackendConfig",
    "BackendConfig",
    "BackendRequestError",
    "BatchingConfig",
    "ClockworkConfig",
    "GSliceConfig",
    "SchedulerBackend",
    "SingleConfig",
    "all_backends",
    "backend_names",
    "config_from_dict",
    "get_backend",
    "load_all_backends",
    "register_backend",
]
