"""The scheduler-backend protocol.

A *backend* turns one :class:`~repro.experiments.parallel.ScenarioRequest`
into one :class:`~repro.experiments.runner.ScenarioResult`: it interprets the
request's task set, workload (arrival process), configuration, GPU, seed and
horizon, runs its scheduler/server, and returns the uniform
:class:`~repro.rt.metrics.ScenarioMetrics` summary.  DARIS itself and every
baseline the paper compares against implement the same protocol, which is
what lets the experiment engine give *any* scheduler seed replication, CI
aggregation, disk caching and sharded sweeps without knowing which one it is
running.

Backends are stateless (a fresh server/scheduler is built per run), so one
registered instance can serve concurrent requests from the multiprocessing
pool — each worker process re-imports the registry and dispatches by name.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import TYPE_CHECKING, ClassVar, Dict, List, Optional, Tuple, Type

from repro.dnn.model import DnnModel
from repro.rt.taskset import TaskSetSpec
from repro.sim.faults import DEFAULT_POLICY, FaultSpec, ResiliencePolicy
from repro.sim.workload import WorkloadSpec

if TYPE_CHECKING:  # imported lazily at runtime to avoid an import cycle
    from repro.experiments.parallel import ScenarioRequest
    from repro.experiments.runner import ScenarioResult


class BackendRequestError(ValueError):
    """A request is malformed for the backend it names (config/workload/trace)."""


@dataclasses.dataclass(frozen=True)
class AxisField:
    """One sweepable configuration field of a backend (or of the GPU spec).

    The design-space-exploration layer treats every fingerprintable dataclass
    field of a backend's config (and of :class:`~repro.gpu.spec.GpuSpec`) as
    a potential sweep axis; this is the declaration the CLI vocabulary,
    ``list --json`` and the ``--set`` validator are built from.

    Attributes:
        name: the canonical dataclass field name.
        type_name: the field's value type on the default/probe instance
            (what ``--set`` coerces the text to).
        default: the field's default value (``None`` when the field is
            required and has no default).
        aliases: accepted alternative spellings (``mret_window`` for
            DARIS's ``window_size``).
    """

    name: str
    type_name: str
    default: Optional[object] = None
    aliases: Tuple[str, ...] = ()


def axis_fields_of(config_cls: Type) -> Dict[str, AxisField]:
    """The sweepable fields of one config dataclass, keyed by canonical name.

    Any fingerprintable dataclass field is sweepable; ``FIELD_ALIASES``
    (when the class declares it) contributes the accepted alternative
    spellings.  Works for ``DarisConfig``, every ``BackendConfig`` subclass
    and ``GpuSpec`` — they share the frozen-dataclass + aliases protocol.
    """
    aliases_of: Dict[str, List[str]] = {}
    for alias, target in getattr(config_cls, "FIELD_ALIASES", {}).items():
        aliases_of.setdefault(target, []).append(alias)
    axes: Dict[str, AxisField] = {}
    for config_field in dataclasses.fields(config_cls):
        default = (
            config_field.default
            if config_field.default is not dataclasses.MISSING
            else None
        )
        if default is not None:
            type_name = type(default).__name__
        else:
            # Required fields (and None-defaulted optionals) carry their
            # annotation instead of a value type.
            type_name = str(config_field.type).replace("typing.", "")
        axes[config_field.name] = AxisField(
            name=config_field.name,
            type_name=type_name,
            default=default,
            aliases=tuple(sorted(aliases_of.get(config_field.name, []))),
        )
    return axes


class SchedulerBackend(abc.ABC):
    """One scheduling system behind the uniform scenario API.

    Class attributes (the backend's declaration):

    * ``name`` — registry key, the value of ``ScenarioRequest.scheduler``.
    * ``title`` — one-line description for CLI listings.
    * ``config_type`` — the configuration class requests must carry
      (:class:`~repro.scheduler.config.DarisConfig` or a
      :class:`~repro.backends.configs.BackendConfig` subclass).
    * ``supported_arrivals`` — which workload arrival kinds the backend can
      execute (subset of :data:`~repro.sim.workload.ARRIVAL_KINDS`).
    * ``supports_traces`` — whether ``with_trace=True`` requests are
      honoured (only DARIS records stage traces).
    * ``deterministic`` — the backend itself draws no randomness, so the
      request seed can only matter through rng-driven arrivals or fault
      draws (see :meth:`seed_sensitive`).
    * ``resilience`` — the backend's :class:`ResiliencePolicy`: how it
      answers injected faults (launch-retry budget, degraded-mode shedding,
      fallback mode).  A property of the backend's *algorithm*, not of the
      scenario, so it is never fingerprinted.
    """

    name: ClassVar[str]
    title: ClassVar[str] = ""
    config_type: ClassVar[Type]
    supported_arrivals: ClassVar[Tuple[str, ...]] = ("periodic",)
    supports_traces: ClassVar[bool] = False
    deterministic: ClassVar[bool] = False
    resilience: ClassVar[ResiliencePolicy] = DEFAULT_POLICY

    @classmethod
    def config_axes(cls) -> Dict[str, AxisField]:
        """The backend's sweepable config fields (its config-axis vocabulary).

        Derived from ``config_type``: every fingerprintable field is a
        declared axis, addressable as ``<backend>.<field>`` by experiment
        grids and the CLI's ``--set`` overrides.
        """
        return axis_fields_of(cls.config_type)

    def seed_sensitive(
        self, workload: WorkloadSpec, faults: Optional[FaultSpec] = None
    ) -> bool:
        """Whether the request seed can influence the result under ``workload``.

        The experiment engine consults this when crossing a grid with the
        ``--seeds N`` replication axis: replicating a seed-insensitive
        scenario would re-simulate (and cache) N identical results, so such
        requests keep their base seed across replicates and every replicate
        shares one simulation and one cache entry — the behaviour the
        pre-backend experiment code got by computing deterministic baselines
        once per run.
        """
        if not self.deterministic:
            return True
        # Randomized fault processes (launch failures, crashes, drops,
        # random slowdown windows) draw from seeded streams, so they make
        # even a purely deterministic server seed-sensitive.
        if faults is not None and faults.randomized:
            return True
        # A deterministic server otherwise sees the seed only through
        # rng-driven arrivals: randomized base kinds (poisson, mmpp) or a
        # jitter modulator.  The workload spec itself knows which it is.
        return workload.randomized

    def validate_request(self, request: "ScenarioRequest") -> None:
        """Reject a request this backend cannot execute, with a clear reason."""
        if request.scheduler != self.name:
            raise BackendRequestError(
                f"request names scheduler {request.scheduler!r}, not {self.name!r}"
            )
        if not isinstance(request.config, self.config_type):
            raise BackendRequestError(
                f"the {self.name!r} backend needs a {self.config_type.__name__}"
                f" config, got {type(request.config).__name__}"
            )
        if request.workload.arrival not in self.supported_arrivals:
            raise BackendRequestError(
                f"the {self.name!r} backend supports"
                f" {'/'.join(self.supported_arrivals)} workloads,"
                f" not {request.workload.arrival!r}"
            )
        if request.with_trace and not self.supports_traces:
            raise BackendRequestError(
                f"the {self.name!r} backend does not record stage traces"
            )

    def execute(self, request: "ScenarioRequest") -> "ScenarioResult":
        """Validate and run: the entry point the scenario runner dispatches to."""
        self.validate_request(request)
        return self.run(request)

    @abc.abstractmethod
    def run(self, request: "ScenarioRequest") -> "ScenarioResult":
        """Execute one validated request and return its result."""

    # ------------------------------------------------------------- utilities

    @staticmethod
    def taskset_models(taskset: TaskSetSpec) -> List[DnnModel]:
        """Distinct DNN models of a task set, in order of first appearance.

        The request-server backends (single / batching / GSlice) are
        model-centric rather than task-centric; they derive their served
        models from the shared task set so the same scenario vocabulary
        drives every backend.
        """
        models: List[DnnModel] = []
        seen = set()
        for task in taskset.tasks:
            if task.model.name not in seen:
                seen.add(task.model.name)
                models.append(task.model)
        return models

    def single_model(self, taskset: TaskSetSpec) -> DnnModel:
        """The task set's one model; error if it is heterogeneous."""
        models = self.taskset_models(taskset)
        if len(models) != 1:
            raise BackendRequestError(
                f"the {self.name!r} backend serves exactly one model;"
                f" the task set contains {len(models)}"
                f" ({', '.join(model.name for model in models)})"
            )
        return models[0]
