"""Canonical, fingerprintable configurations for the baseline backends.

Every scheduler backend declares one configuration type that plays the role
:class:`~repro.scheduler.config.DarisConfig` plays for DARIS: a frozen,
hashable dataclass with a stable ``to_dict`` / ``from_dict`` round-trip, so a
scenario request carrying it fingerprints deterministically into a cache key
and cached results rebuild losslessly.

Serialized backend configs are *self-describing*: ``to_dict`` embeds a
``"kind"`` tag naming the owning backend, and :func:`config_from_dict`
dispatches on it.  ``DarisConfig`` dictionaries predate the tag and stay
untagged — both for backward compatibility with existing cache entries and
because untagged input unambiguously means DARIS (the RTGPU backend reuses
``DarisConfig`` wholesale).
"""

from __future__ import annotations

from dataclasses import MISSING, dataclass, fields, replace
from typing import ClassVar, Dict, FrozenSet, Mapping, Optional, Tuple, Type, Union

from repro.scheduler.config import DarisConfig

#: ``kind`` tag -> config class, filled in by ``_register_config``.
_CONFIG_KINDS: Dict[str, Type["BackendConfig"]] = {}


@dataclass(frozen=True)
class BackendConfig:
    """Base class for backend configurations (value semantics, JSON-safe).

    Subclasses set ``kind`` to their backend's registry name; field values
    must be JSON-representable scalars or tuples thereof (tuples round-trip
    through JSON lists).
    """

    kind: ClassVar[str] = ""

    #: Fields added *after* the config first shipped (config-axis tunables).
    #: They serialize only when non-default, so every pre-existing request's
    #: fingerprint — hence its cache key — stays byte-identical while a swept
    #: (overridden) config still keys its own cache entries.
    EXTENDED_FIELDS: ClassVar[FrozenSet[str]] = frozenset()

    #: Sweep-axis aliases (``--set <backend>.<alias>=...``), mirroring
    #: ``DarisConfig.FIELD_ALIASES`` / ``GpuSpec.FIELD_ALIASES``.
    FIELD_ALIASES: ClassVar[Dict[str, str]] = {}

    def label(self) -> str:
        """Human-readable configuration label for report rows."""
        return self.kind

    def to_dict(self) -> Dict[str, object]:
        """Canonical field dictionary, tagged with the owning backend.

        :data:`EXTENDED_FIELDS` members are emitted only when they differ
        from their default — the cache-key compatibility rule for tunables
        added as config axes after the config's first release.
        """
        data: Dict[str, object] = {"kind": self.kind}
        for config_field in fields(self):
            value = getattr(self, config_field.name)
            if (
                config_field.name in self.EXTENDED_FIELDS
                and config_field.default is not MISSING
                and value == config_field.default
            ):
                continue
            data[config_field.name] = list(value) if isinstance(value, tuple) else value
        return data

    def with_field(self, name: str, value: object) -> "BackendConfig":
        """Return a copy with one (possibly aliased) field replaced.

        The config-axis entry point; validation is the subclass's own
        ``__post_init__`` (an out-of-range value raises ``ValueError``).
        """
        return replace(self, **{self.FIELD_ALIASES.get(name, name): value})

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "BackendConfig":
        """Rebuild a configuration from :meth:`to_dict` output.

        Keys absent from ``data`` fall back to the field defaults (the same
        forward-compatibility rule as ``WorkloadSpec.from_dict``), so older
        serialized configs and hand-written JSON sweep grids stay loadable
        as new tunables are added.
        """
        kwargs = {}
        for config_field in fields(cls):
            if config_field.name not in data:
                continue
            value = data[config_field.name]
            kwargs[config_field.name] = tuple(value) if isinstance(value, list) else value
        return cls(**kwargs)


def _register_config(cls: Type[BackendConfig]) -> Type[BackendConfig]:
    if not cls.kind:
        raise ValueError(f"{cls.__name__} must set a non-empty kind")
    _CONFIG_KINDS[cls.kind] = cls
    return cls


AnyBackendConfig = Union[DarisConfig, BackendConfig]


def config_from_dict(data: Mapping[str, object]) -> AnyBackendConfig:
    """Rebuild any scheduler configuration from its serialized form.

    Tagged dictionaries dispatch to the backend config class named by their
    ``"kind"``; untagged dictionaries are :class:`DarisConfig` (the historical
    shape — existing cache entries carry no tag).
    """
    kind = data.get("kind")
    if kind is None:
        return DarisConfig.from_dict(data)
    config_cls = _CONFIG_KINDS.get(str(kind))
    if config_cls is None:
        # Config kinds registered outside this module (e.g. the cluster
        # backend's) appear once their backend module is imported.
        from repro.backends.registry import load_all_backends

        load_all_backends()
        config_cls = _CONFIG_KINDS.get(str(kind))
    if config_cls is None:
        raise KeyError(
            f"unknown backend config kind {kind!r}; known: {', '.join(sorted(_CONFIG_KINDS))}"
        )
    return config_cls.from_dict(data)


@_register_config
@dataclass(frozen=True)
class ClockworkConfig(BackendConfig):
    """Clockwork: one DNN at a time, EDF, admission by predicted latency.

    ``admission_slack`` scales the predicted completion time the admission
    test compares against the deadline — the design-space knob between
    Clockwork's two failure modes.  ``1.0`` is the paper's predictor taken
    at face value; ``> 1`` is conservative (more shedding, fewer late
    misses), ``< 1`` optimistic (more admissions, more misses).
    """

    kind: ClassVar[str] = "clockwork"
    admission_slack: float = 1.0

    EXTENDED_FIELDS: ClassVar[FrozenSet[str]] = frozenset({"admission_slack"})
    FIELD_ALIASES: ClassVar[Dict[str, str]] = {"slack": "admission_slack"}

    def __post_init__(self) -> None:
        if not self.admission_slack > 0:
            raise ValueError("admission_slack must be positive")

    def label(self) -> str:
        if self.admission_slack == 1.0:
            return "Clockwork"
        return f"Clockwork slack{self.admission_slack:g}"


@_register_config
@dataclass(frozen=True)
class SingleConfig(BackendConfig):
    """Single-tenant execution has no tunables: one stream, no batching."""

    kind: ClassVar[str] = "single"

    def label(self) -> str:
        return "Single 1x1"


@_register_config
@dataclass(frozen=True)
class BatchingConfig(BackendConfig):
    """Pure-batching server: fixed batch size, optional partial-batch timeout.

    ``batch_size=0`` means "the served model's preferred batch size" (resolved
    by the backend from its profile), which keeps one config usable across a
    model sweep.
    """

    kind: ClassVar[str] = "batching_server"
    batch_size: int = 0
    timeout_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.batch_size < 0:
            raise ValueError("batch_size must be >= 0 (0 = model's preferred size)")
        if self.timeout_ms is not None and self.timeout_ms <= 0:
            raise ValueError("timeout_ms must be positive when set")

    def label(self) -> str:
        batch = "pref" if self.batch_size == 0 else str(self.batch_size)
        return f"Batching b{batch}"


@_register_config
@dataclass(frozen=True)
class GSliceConfig(BackendConfig):
    """GSlice-like server: one spatial partition per model.

    ``batch_sizes`` pins the per-partition batch size (one entry per distinct
    model in the task set, in order of first appearance); ``None`` uses each
    model's preferred batch size.

    ``oversubscription`` sizes the partitions: it is the MPS SM-quota
    oversubscription ratio across the per-model contexts.  ``1.0`` is
    GSlice's strict provisioning (disjoint quotas, full isolation); larger
    values overlap the partitions so each can borrow idle SMs — the
    partition-sizing design-space axis.
    """

    kind: ClassVar[str] = "gslice"
    batch_sizes: Optional[Tuple[int, ...]] = None
    oversubscription: float = 1.0

    EXTENDED_FIELDS: ClassVar[FrozenSet[str]] = frozenset({"oversubscription"})
    FIELD_ALIASES: ClassVar[Dict[str, str]] = {"os": "oversubscription"}

    def __post_init__(self) -> None:
        if self.batch_sizes is not None:
            if not isinstance(self.batch_sizes, tuple):
                object.__setattr__(self, "batch_sizes", tuple(self.batch_sizes))
            if any(batch < 1 for batch in self.batch_sizes):
                raise ValueError("every batch size must be >= 1")
        if not self.oversubscription >= 1.0:
            raise ValueError("oversubscription must be >= 1.0")

    def label(self) -> str:
        if self.batch_sizes is None:
            return "GSlice bpref"
        return f"GSlice b{'/'.join(str(batch) for batch in self.batch_sizes)}"
