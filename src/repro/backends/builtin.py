"""The built-in scheduler backends: DARIS plus the paper's five baselines.

Each backend adapts one existing scheduler/server to the uniform
:class:`~repro.backends.base.SchedulerBackend` protocol.  The heterogeneous
legacy entry points — ``run_daris_scenario``, ``RtgpuScheduler.run_taskset``,
``ClockworkServer.run_taskset``, ``GSliceServer.run_saturated``,
``BatchingServer.run_saturated`` / ``run_with_arrivals``,
``SingleTenantExecutor.run`` — all normalize to *(request in, result out)*,
so every system gets caching, seed replication, CI aggregation and sharded
sweeps from the experiment engine for free.

Seeding: every backend builds its randomness from
``RngFactory(request.seed)``, so a backend run twice with the same seed is
bit-identical (the determinism contract the pipeline tests pin).  The purely
deterministic servers ignore the seed by construction, which satisfies the
same contract trivially.
"""

from __future__ import annotations

from typing import ClassVar, Tuple, Type

from repro.backends.base import BackendRequestError, SchedulerBackend
from repro.backends.configs import (
    BatchingConfig,
    ClockworkConfig,
    GSliceConfig,
    SingleConfig,
)
from repro.backends.registry import register_backend
from repro.baselines.batching_server import BatchingServer
from repro.baselines.clockwork import ClockworkServer
from repro.baselines.gslice import GSliceServer
from repro.baselines.rtgpu import RtgpuScheduler
from repro.baselines.single import SingleTenantExecutor
from repro.experiments.parallel import ScenarioRequest
from repro.experiments.runner import ScenarioResult, run_daris_scenario
from repro.rt.metrics import ScenarioMetrics
from repro.rt.taskset import TaskSetSpec
from repro.scheduler.config import DarisConfig
from repro.sim.faults import ResiliencePolicy
from repro.sim.rng import RngFactory


def _result(request: ScenarioRequest, metrics: ScenarioMetrics) -> ScenarioResult:
    """Uniform result assembly: explicit label, else the config's own."""
    label = request.label if request.label is not None else request.config.label()
    return ScenarioResult(label=label, config=request.config, metrics=metrics)


def _min_relative_deadline_ms(taskset: TaskSetSpec) -> float:
    """Tightest per-request deadline in the task set (the honest bound for
    aggregate request streams, which carry no per-task identity)."""
    return min(task.relative_deadline_ms for task in taskset.tasks)


class DarisBackend(SchedulerBackend):
    """The paper's scheduler, unchanged — the reference backend."""

    name: ClassVar[str] = "daris"
    title: ClassVar[str] = "DARIS: deadline-aware staged scheduler (the paper's system)"
    config_type: ClassVar[Type] = DarisConfig
    supported_arrivals: ClassVar[Tuple[str, ...]] = ("periodic", "poisson", "mmpp", "trace")
    supports_traces: ClassVar[bool] = True
    # Deadline-aware scheduler, deadline-aware degradation: retry failed
    # launches with backoff and shed admissions while the GPU is degraded.
    resilience: ClassVar[ResiliencePolicy] = ResiliencePolicy(
        max_launch_retries=3, retry_backoff=1.5, shed_when_degraded=True
    )

    def run(self, request: ScenarioRequest) -> ScenarioResult:
        return run_daris_scenario(
            request.taskset,
            request.config,
            request.horizon_ms,
            seed=request.seed,
            with_trace=request.with_trace,
            gpu=request.gpu,
            calibration=request.calibration,
            label=request.label,
            workload=request.workload,
            faults=request.faults,
            resilience=self.resilience,
        )


class RtgpuBackend(SchedulerBackend):
    """RTGPU-like EDF scheduling: DARIS machinery, priorities disabled."""

    name: ClassVar[str] = "rtgpu"
    title: ClassVar[str] = "RTGPU-like: EDF real-time scheduling without task priorities"
    config_type: ClassVar[Type] = DarisConfig
    supported_arrivals: ClassVar[Tuple[str, ...]] = ("periodic", "poisson", "mmpp", "trace")
    # Retries launches like DARIS but — lacking priorities — never sheds.
    resilience: ClassVar[ResiliencePolicy] = ResiliencePolicy(max_launch_retries=3)

    def run(self, request: ScenarioRequest) -> ScenarioResult:
        scheduler = RtgpuScheduler(
            request.config, gpu=request.gpu, calibration=request.calibration
        )
        metrics = scheduler.run_taskset(
            request.taskset,
            request.horizon_ms,
            seed=request.seed,
            workload=request.workload,
            faults=request.faults,
            resilience=self.resilience,
        )
        return _result(request, metrics)


class ClockworkBackend(SchedulerBackend):
    """Clockwork-like predictable serving: one DNN at a time, drop-if-late."""

    name: ClassVar[str] = "clockwork"
    title: ClassVar[str] = "Clockwork-like: one DNN at a time, EDF, admission by predicted latency"
    config_type: ClassVar[Type] = ClockworkConfig
    deterministic: ClassVar[bool] = True
    supported_arrivals: ClassVar[Tuple[str, ...]] = ("periodic", "poisson", "mmpp", "trace")
    # Predictability-first: one quick retry, then shed by (degradation-
    # inflated) predicted latency — Clockwork's own admission mechanism.
    resilience: ClassVar[ResiliencePolicy] = ResiliencePolicy(
        max_launch_retries=1, shed_when_degraded=True
    )

    def run(self, request: ScenarioRequest) -> ScenarioResult:
        server = ClockworkServer(
            gpu=request.gpu,
            calibration=request.calibration,
            admission_slack=request.config.admission_slack,
        )
        outcome = server.run_taskset(
            request.taskset,
            request.horizon_ms,
            workload=request.workload,
            rng=RngFactory(request.seed),
            faults=request.faults,
            resilience=self.resilience,
        )
        return _result(request, outcome.metrics)


class SingleBackend(SchedulerBackend):
    """Single-tenant lower baseline: one inference at a time, no batching."""

    name: ClassVar[str] = "single"
    title: ClassVar[str] = "Single-tenant: one inference at a time on the whole GPU (Table I min)"
    config_type: ClassVar[Type] = SingleConfig
    deterministic: ClassVar[bool] = True
    supported_arrivals: ClassVar[Tuple[str, ...]] = ("saturated",)
    # No queue to fall back on: persistent retries are the only answer.
    resilience: ClassVar[ResiliencePolicy] = ResiliencePolicy(max_launch_retries=3)

    def run(self, request: ScenarioRequest) -> ScenarioResult:
        executor = SingleTenantExecutor(
            self.single_model(request.taskset),
            gpu=request.gpu,
            calibration=request.calibration,
        )
        outcome = executor.run(
            request.horizon_ms,
            faults=request.faults,
            resilience=self.resilience,
            rng=RngFactory(request.seed),
        )
        return _result(request, outcome.metrics)


class BatchingBackend(SchedulerBackend):
    """Pure-batching upper baseline; saturated or rate-driven with deadlines."""

    name: ClassVar[str] = "batching_server"
    title: ClassVar[str] = "Pure batching: fixed-size batches on the whole GPU (Table I max)"
    config_type: ClassVar[Type] = BatchingConfig
    deterministic: ClassVar[bool] = True
    supported_arrivals: ClassVar[Tuple[str, ...]] = (
        "saturated",
        "periodic",
        "poisson",
        "mmpp",
        "trace",
    )

    # Batches amortize launches, so one retry; when degraded, stop waiting
    # for full batches (partial-batch fallback) instead of queuing deeper.
    resilience: ClassVar[ResiliencePolicy] = ResiliencePolicy(
        max_launch_retries=1, degraded_fallback="partial-batch"
    )

    def run(self, request: ScenarioRequest) -> ScenarioResult:
        model = self.single_model(request.taskset)
        batch_size = request.config.batch_size or model.profile.preferred_batch_size
        server = BatchingServer(
            model, batch_size, gpu=request.gpu, calibration=request.calibration
        )
        if request.workload.saturated:
            outcome = server.run_saturated(
                request.horizon_ms,
                faults=request.faults,
                resilience=self.resilience,
                rng=RngFactory(request.seed),
            )
            return _result(request, outcome.metrics)
        outcome = server.run_with_arrivals(
            arrival_rate_jps=request.taskset.total_demand_jps,
            deadline_ms=_min_relative_deadline_ms(request.taskset),
            horizon_ms=request.horizon_ms,
            timeout_ms=request.config.timeout_ms,
            workload=request.workload,
            rng=RngFactory(request.seed),
            faults=request.faults,
            resilience=self.resilience,
        )
        return _result(request, outcome.metrics)


class GSliceBackend(SchedulerBackend):
    """GSlice-like spatial sharing: one isolated partition per model."""

    name: ClassVar[str] = "gslice"
    title: ClassVar[str] = "GSlice-like: static spatial partitions with per-partition batching"
    config_type: ClassVar[Type] = GSliceConfig
    deterministic: ClassVar[bool] = True
    supported_arrivals: ClassVar[Tuple[str, ...]] = ("saturated",)
    # Isolated partitions contain the blast radius; one retry per batch.
    resilience: ClassVar[ResiliencePolicy] = ResiliencePolicy(max_launch_retries=1)

    def run(self, request: ScenarioRequest) -> ScenarioResult:
        models = self.taskset_models(request.taskset)
        batch_sizes = request.config.batch_sizes
        if request.config.oversubscription > len(models):
            raise BackendRequestError(
                f"gslice oversubscription {request.config.oversubscription:g} exceeds"
                f" the partition count ({len(models)} model(s) in the task set)"
            )
        server = GSliceServer(
            models,
            batch_sizes=list(batch_sizes) if batch_sizes is not None else None,
            gpu=request.gpu,
            calibration=request.calibration,
            oversubscription=request.config.oversubscription,
        )
        outcome = server.run_saturated(
            request.horizon_ms,
            faults=request.faults,
            resilience=self.resilience,
            rng=RngFactory(request.seed),
        )
        return _result(request, outcome.metrics)


BUILTIN_BACKENDS = tuple(
    register_backend(backend)
    for backend in (
        DarisBackend(),
        RtgpuBackend(),
        ClockworkBackend(),
        SingleBackend(),
        BatchingBackend(),
        GSliceBackend(),
    )
)
