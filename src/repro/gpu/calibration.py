"""Calibration constants of the GPU interference model.

The DARIS paper evaluates on real hardware; this reproduction substitutes a
simulator whose free parameters are collected here so that the calibration is
explicit, reviewable and easy to adjust.  The defaults were tuned so that the
headline qualitative results of the paper hold (see DESIGN.md section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Mapping

# Memory-intensity weighting of the contention penalty:
# weight = CONTENTION_WEIGHT_BASE + CONTENTION_WEIGHT_MEMORY * memory_intensity.
# The GPU engine inlines the efficiency formulas on its replan fast paths
# (see GpuEngine._replan); it imports these constants so the model has a
# single source of truth.  If the formula *shape* changes here, the inlined
# copies must change too — the equivalence tests
# (tests/test_perf_equivalence.py) catch a divergence.
CONTENTION_WEIGHT_BASE = 0.6
CONTENTION_WEIGHT_MEMORY = 0.5


@dataclass(frozen=True)
class GpuCalibration:
    """Tunable coefficients of the contention / interference model.

    Attributes:
        intra_stream_penalty: efficiency loss per *additional* concurrently
            running kernel inside the same context.  Models the hardware
            scheduler interleaving kernels of co-resident streams; this is the
            main reason a single multi-stream context (the STR policy) yields
            less throughput than several MPS contexts.
        contention_penalty: efficiency loss proportional to how far the total
            SM demand exceeds the physical SM count (oversubscription
            pressure), scaled by kernel memory intensity.
        noise_sigma_base: log-normal execution-time noise applied to every
            kernel, representing clock/driver variability on an otherwise
            idle partition.
        noise_sigma_intra: additional noise per concurrent kernel in the same
            context; this is what makes MRET under-predict in heavily shared
            configurations such as 3x3 OS=1 (paper Figure 9).
        noise_sigma_contention: additional noise per unit of oversubscription
            pressure beyond 1.0.
        dispatch_overhead_ms: scheduler-side cost of submitting one stage
            (synchronisation + bookkeeping), paid once per stage dispatch in
            addition to per-kernel launch overheads.
        min_rate_sms: numerical floor for a kernel's SM allocation so progress
            never stalls completely.
    """

    intra_stream_penalty: float = 0.055
    contention_penalty: float = 0.012
    noise_sigma_base: float = 0.015
    noise_sigma_intra: float = 0.100
    noise_sigma_contention: float = 0.040
    dispatch_overhead_ms: float = 0.020
    min_rate_sms: float = 0.25

    def to_dict(self) -> Dict[str, float]:
        """Canonical field dictionary (stable key order; used for cache keys)."""
        return {cal_field.name: getattr(self, cal_field.name) for cal_field in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, float]) -> "GpuCalibration":
        """Rebuild a calibration from :meth:`to_dict` output."""
        return cls(**{cal_field.name: data[cal_field.name] for cal_field in fields(cls)})

    def intra_efficiency(self, concurrent_in_context: int) -> float:
        """Efficiency multiplier for ``concurrent_in_context`` running kernels."""
        extra = max(0, concurrent_in_context - 1)
        return 1.0 / (1.0 + self.intra_stream_penalty * extra)

    def contention_efficiency(self, pressure: float, memory_intensity: float) -> float:
        """Efficiency multiplier under oversubscription ``pressure`` (>= 1.0 when contended)."""
        excess = max(0.0, pressure - 1.0)
        weight = CONTENTION_WEIGHT_BASE + CONTENTION_WEIGHT_MEMORY * memory_intensity
        return 1.0 / (1.0 + self.contention_penalty * excess * weight)

    def noise_sigma(self, concurrent_in_context: int, pressure: float) -> float:
        """Standard deviation of the log-normal execution-time noise."""
        extra = max(0, concurrent_in_context - 1)
        excess = max(0.0, pressure - 1.0)
        return (
            self.noise_sigma_base
            + self.noise_sigma_intra * extra
            + self.noise_sigma_contention * excess
        )


DEFAULT_CALIBRATION = GpuCalibration()
