"""MPS-style SM partitioning (paper Equation 9).

All contexts receive an equal SM quota::

    N_SM = ceil_even(OS * N_SM_max / N_c)

where ``ceil_even`` rounds up to the nearest even integer, ``OS`` is the
oversubscription level (``1 <= OS <= N_c``), and ``N_SM_max`` is the physical
SM count.  ``OS = 1`` isolates contexts; ``OS = N_c`` lets every context see
the whole GPU.
"""

from __future__ import annotations

import math
from typing import List


def ceil_even(value: float) -> int:
    """Round ``value`` up to the nearest even integer (minimum 2)."""
    if value <= 0:
        raise ValueError(f"value must be positive, got {value}")
    rounded = math.ceil(value)
    if rounded % 2 == 1:
        rounded += 1
    return max(2, rounded)


def sm_quota(num_sms: int, num_contexts: int, oversubscription: float) -> int:
    """Per-context SM quota following paper Equation 9.

    The quota is capped at the physical SM count: a single context can never
    address more SMs than the device has.
    """
    if num_contexts < 1:
        raise ValueError(f"num_contexts must be >= 1, got {num_contexts}")
    if not 1.0 <= oversubscription <= max(1.0, float(num_contexts)):
        raise ValueError(
            f"oversubscription must be within [1, num_contexts]={num_contexts}, "
            f"got {oversubscription}"
        )
    quota = ceil_even(oversubscription * num_sms / num_contexts)
    return min(quota, num_sms)


def partition_quotas(num_sms: int, num_contexts: int, oversubscription: float) -> List[int]:
    """Quotas for all contexts (equal by construction)."""
    quota = sm_quota(num_sms, num_contexts, oversubscription)
    return [quota] * num_contexts


def total_oversubscription_ratio(num_sms: int, quotas: List[int]) -> float:
    """Ratio of the summed quotas to the physical SM count (>= 1 when oversubscribed)."""
    if num_sms <= 0:
        raise ValueError("num_sms must be positive")
    return sum(quotas) / float(num_sms)
