"""Event-driven GPU execution engine.

The engine owns the contexts/streams/kernels, recomputes the SM allocation
whenever the set of running kernels changes, and schedules the next kernel
completion on the simulator.  Progress is tracked continuously: each running
kernel has a remaining amount of work (SM-milliseconds) that decreases at a
rate equal to its current SM allocation times its efficiency.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.gpu.allocation import allocate_sms
from repro.gpu.calibration import DEFAULT_CALIBRATION, GpuCalibration
from repro.gpu.context import Context
from repro.gpu.kernel import KernelInstance, KernelSpec, KernelState
from repro.gpu.spec import GpuSpec
from repro.gpu.stream import Stream
from repro.sim.simulator import Simulator

_EPSILON_WORK = 1e-9
_EPSILON_TIME = 1e-9


class GpuEngine:
    """Simulated GPU shared by all contexts of one experiment."""

    def __init__(
        self,
        simulator: Simulator,
        spec: GpuSpec,
        calibration: GpuCalibration = DEFAULT_CALIBRATION,
        noise_rng: Optional[np.random.Generator] = None,
    ):
        self.simulator = simulator
        self.spec = spec
        self.calibration = calibration
        self._noise_rng = noise_rng
        self._contexts: Dict[int, Context] = {}
        self._streams: Dict[int, Dict[int, Stream]] = {}
        self._running: Dict[int, KernelInstance] = {}
        self._last_update: float = simulator.now
        self._completion_handle = None
        self._next_context_id = 0
        self._utilization_time_integral = 0.0
        self._current_utilization = 0.0
        self._current_pressure = 0.0
        self._busy_time_start: Optional[float] = None
        self._total_busy_time = 0.0
        self.completed_kernels = 0

    # ------------------------------------------------------------------ setup

    def create_context(self, sm_quota: float) -> Context:
        """Create a context with the given SM quota."""
        context = Context(context_id=self._next_context_id, sm_quota=sm_quota)
        self._next_context_id += 1
        self._contexts[context.context_id] = context
        self._streams[context.context_id] = {}
        return context

    def create_stream(self, context: Context) -> Stream:
        """Create a stream inside ``context``."""
        stream = context.create_stream()
        self._streams[context.context_id][stream.stream_id] = stream
        return stream

    @property
    def contexts(self) -> List[Context]:
        """All contexts in creation order."""
        return [self._contexts[cid] for cid in sorted(self._contexts)]

    def context(self, context_id: int) -> Context:
        """Look up a context by id."""
        return self._contexts[context_id]

    # ---------------------------------------------------------------- metrics

    @property
    def current_pressure(self) -> float:
        """Most recent oversubscription pressure (>= 1.0 when contended)."""
        return self._current_pressure

    @property
    def current_utilization(self) -> float:
        """Most recent fraction of physical SMs allocated."""
        return self._current_utilization

    def average_utilization(self, since: float = 0.0) -> float:
        """Time-weighted mean SM utilization since ``since`` (defaults to t=0)."""
        horizon = self.simulator.now - since
        if horizon <= 0:
            return 0.0
        self._accumulate_utilization()
        return min(1.0, self._utilization_time_integral / (self.simulator.now * 1.0)) if since == 0.0 else min(
            1.0, self._utilization_time_integral / horizon
        )

    def busy_time(self) -> float:
        """Total time during which at least one kernel was running (ms)."""
        total = self._total_busy_time
        if self._busy_time_start is not None:
            total += self.simulator.now - self._busy_time_start
        return total

    # ----------------------------------------------------------------- launch

    def launch(
        self,
        stream: Stream,
        spec: KernelSpec,
        on_complete: Optional[Callable[[KernelInstance], None]] = None,
    ) -> KernelInstance:
        """Enqueue a kernel on ``stream`` and return its runtime instance.

        The kernel starts executing once (a) it reaches the head of its stream
        and (b) the context dispatcher has paid the launch overhead for all
        CUDA kernels it represents.
        """
        kernel = KernelInstance(
            spec=spec,
            stream_id=stream.stream_id,
            context_id=stream.context_id,
            on_complete=on_complete,
        )
        kernel.enqueue_time = self.simulator.now
        kernel.effective_work = spec.work
        kernel.remaining_work = spec.work
        became_head = stream.push(kernel)
        if became_head:
            self._begin_dispatch(kernel)
        return kernel

    def _begin_dispatch(self, kernel: KernelInstance) -> None:
        """Charge launch overhead on the context dispatcher, then start the kernel."""
        context = self._contexts[kernel.context_id]
        launch_cost = (
            self.calibration.dispatch_overhead_ms
            + kernel.spec.num_launches * self.spec.launch_overhead_ms
        )
        start_at = max(self.simulator.now, context.dispatcher_free_at)
        ready_at = start_at + launch_cost
        context.dispatcher_free_at = ready_at
        kernel.state = KernelState.DISPATCHING
        kernel.dispatch_ready_time = ready_at
        self.simulator.schedule_at(
            ready_at,
            lambda _sim, k=kernel: self._kernel_ready(k),
            label=f"dispatch:{kernel.spec.name}",
        )

    def _kernel_ready(self, kernel: KernelInstance) -> None:
        """Transition a dispatched kernel to RUNNING and replan allocations."""
        if kernel.state is KernelState.COMPLETED:  # pragma: no cover - defensive
            return
        self._advance_progress()
        kernel.state = KernelState.RUNNING
        kernel.start_time = self.simulator.now
        context = self._contexts[kernel.context_id]
        concurrent = len(context.running_kernels()) + 1
        sigma = self.calibration.noise_sigma(concurrent, self._current_pressure or 1.0)
        kernel.noise_factor = self._sample_noise(sigma)
        kernel.effective_work = kernel.spec.work * kernel.noise_factor
        kernel.remaining_work = kernel.effective_work
        self._running[kernel.uid] = kernel
        self._replan()

    def _sample_noise(self, sigma: float) -> float:
        """Log-normal noise factor with unit mean (deterministic 1.0 without RNG)."""
        if self._noise_rng is None or sigma <= 0:
            return 1.0
        draw = self._noise_rng.normal(0.0, sigma)
        return math.exp(draw - 0.5 * sigma * sigma)

    # -------------------------------------------------------------- execution

    def _advance_progress(self) -> None:
        """Decrease remaining work of running kernels for time elapsed since last update."""
        now = self.simulator.now
        elapsed = now - self._last_update
        self._accumulate_utilization()
        if elapsed > _EPSILON_TIME:
            for kernel in self._running.values():
                kernel.remaining_work = max(
                    0.0, kernel.remaining_work - kernel.current_rate * elapsed
                )
        self._last_update = now

    def _accumulate_utilization(self) -> None:
        elapsed = self.simulator.now - self._last_update
        if elapsed > 0:
            self._utilization_time_integral += self._current_utilization * elapsed

    def _replan(self) -> None:
        """Recompute SM allocation and schedule the next completion event."""
        if self._completion_handle is not None:
            self._completion_handle.cancel()
            self._completion_handle = None

        # Track busy time for utilization-style reporting.
        if self._running and self._busy_time_start is None:
            self._busy_time_start = self.simulator.now
        elif not self._running and self._busy_time_start is not None:
            self._total_busy_time += self.simulator.now - self._busy_time_start
            self._busy_time_start = None

        if not self._running:
            self._current_utilization = 0.0
            self._current_pressure = 0.0
            return

        running_by_context: Dict[int, List] = {}
        for kernel in self._running.values():
            running_by_context.setdefault(kernel.context_id, []).append(
                (kernel.uid, kernel.spec.parallelism)
            )
        quotas = {cid: ctx.sm_quota for cid, ctx in self._contexts.items()}
        result = allocate_sms(self.spec.num_sms, quotas, running_by_context)
        self._current_pressure = result.pressure
        self._current_utilization = result.utilization

        soonest: Optional[float] = None
        for kernel in self._running.values():
            allocation = max(
                result.kernel_sms.get(kernel.uid, 0.0), self.calibration.min_rate_sms
            )
            concurrency = result.context_concurrency.get(kernel.context_id, 1)
            efficiency = self.calibration.intra_efficiency(concurrency)
            efficiency *= self.calibration.contention_efficiency(
                result.pressure, kernel.spec.memory_intensity
            )
            kernel.allocated_sms = allocation
            kernel.current_rate = allocation * efficiency
            if kernel.current_rate > 0:
                eta = kernel.remaining_work / kernel.current_rate
                if soonest is None or eta < soonest:
                    soonest = eta

        if soonest is None:  # pragma: no cover - defensive
            return
        fire_at = self.simulator.now + max(soonest, 0.0)
        self._completion_handle = self.simulator.schedule_at(
            fire_at, lambda _sim: self._on_completion(), label="gpu-completion"
        )

    def _on_completion(self) -> None:
        """Complete every kernel whose remaining work reached zero, then replan."""
        self._completion_handle = None
        self._advance_progress()
        finished = [
            kernel
            for kernel in self._running.values()
            if kernel.remaining_work <= _EPSILON_WORK
        ]
        if not finished:
            self._replan()
            return
        for kernel in finished:
            del self._running[kernel.uid]
            kernel.state = KernelState.COMPLETED
            kernel.finish_time = self.simulator.now
            kernel.remaining_work = 0.0
            self.completed_kernels += 1
            stream = self._streams[kernel.context_id][kernel.stream_id]
            popped = stream.pop_head()
            if popped.uid != kernel.uid:  # pragma: no cover - defensive
                raise RuntimeError("stream head does not match completed kernel")
            next_kernel = stream.head
            if next_kernel is not None:
                self._begin_dispatch(next_kernel)
        self._replan()
        for kernel in finished:
            if kernel.on_complete is not None:
                kernel.on_complete(kernel)

    # ------------------------------------------------------------------ query

    def running_count(self) -> int:
        """Number of kernels currently receiving SM allocation."""
        return len(self._running)

    def is_idle(self) -> bool:
        """True when no kernel is queued, dispatching or running anywhere."""
        if self._running:
            return False
        return all(ctx.queue_depth() == 0 for ctx in self._contexts.values())
