"""Event-driven GPU execution engine.

The engine owns the contexts/streams/kernels, recomputes the SM allocation
whenever the set of running kernels changes, and schedules the next kernel
completion on the simulator.  Progress is tracked continuously: each running
kernel has a remaining amount of work (SM-milliseconds) that decreases at a
rate equal to its current SM allocation times its efficiency.

Replanning is incremental: the engine maintains per-context running lists and
caches each context's water-filled allocation, so an event only re-runs the
water-filling for the context it touched.  When the cross-context scale factor
and the contention factor are unchanged by an event, the rates of kernels in
untouched contexts are provably unchanged — the fast path skips recomputing
them entirely.  All arithmetic follows the exact operation order of the
original from-scratch :func:`repro.gpu.allocation.allocate_sms` plan so that
optimized runs are bit-identical to unoptimized ones (see
``tests/test_perf_equivalence.py``).

For wide running sets (``num_contexts * streams_per_context`` well past ten
concurrently running kernels) the engine additionally keeps the remaining
work and rates in contiguous numpy arrays (``vectorized_enabled``): progress
advancement, completion detection and the next-completion ETA then run as
array expressions instead of per-kernel Python loops.  Every array expression
mirrors the scalar operation order element for element, so the vectorized
tier is bit-identical to the scalar tier as well.

Completion events use a generation token instead of a cancellable handle:
each replan bumps the generation, so a superseded completion callback simply
fires as a no-op.  This avoids allocating an :class:`Event` plus handle and
running the cancellation bookkeeping on every replan, which is the hottest
scheduling site of a scenario run.
"""

from __future__ import annotations

import math
from heapq import heappush
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.gpu.allocation import water_fill, water_fill_array
from repro.gpu.calibration import (
    CONTENTION_WEIGHT_BASE,
    CONTENTION_WEIGHT_MEMORY,
    DEFAULT_CALIBRATION,
    GpuCalibration,
)
from repro.gpu.context import Context
from repro.gpu.kernel import KernelInstance, KernelSpec, KernelState
from repro.gpu.spec import GpuSpec
from repro.gpu.stream import Stream
from repro.sim.events import next_sequence
from repro.sim.simulator import Simulator

_EPSILON_WORK = 1e-9
_EPSILON_TIME = 1e-9

# Running-set width from which the contiguous-array tier takes over.  Below
# this the per-kernel Python loops win (no array bookkeeping, no numpy call
# overhead); well above it the array expressions amortize their fixed cost
# over the whole running set.
_VECTOR_MIN_KERNELS = 24

# Per-context demand count from which the array-based water fill takes over
# in the general replan path; below it the scalar loop is cheaper than the
# numpy call overhead.
_ARRAY_FILL_MIN_DEMANDS = 8

# Noise draws are taken from the generator in chunks of this size; the chunk
# reproduces the scalar draw sequence bit for bit (``normal(0, sigma)`` is
# ``sigma * standard_normal()`` on the same underlying stream).
_NOISE_CHUNK = 256


class GpuEngine:
    """Simulated GPU shared by all contexts of one experiment."""

    # Class-level switch for the under-subscription fast path; the equivalence
    # test disables it to force the reference (full) replan on every event.
    fast_path_enabled: bool = True
    # Class-level switch for the wide-running-set numpy tier.
    vectorized_enabled: bool = True
    # Class-level switch for chunked noise draws (scalar draws when False).
    batched_noise_enabled: bool = True

    def __init__(
        self,
        simulator: Simulator,
        spec: GpuSpec,
        calibration: GpuCalibration = DEFAULT_CALIBRATION,
        noise_rng: Optional[np.random.Generator] = None,
    ):
        self.simulator = simulator
        self.spec = spec
        self.calibration = calibration
        # Plan-time invariants hoisted out of the replan hot loop.  The spec
        # and calibration are frozen dataclasses, so these never go stale.
        # ``_heap`` aliases the simulator's event heap (compaction replaces
        # its contents in place): completion/dispatch events are pushed
        # directly, skipping a Python call per scheduled event.
        self._num_sms = spec.num_sms
        self._min_rate = calibration.min_rate_sms
        self._contention_penalty = calibration.contention_penalty
        self._intra_penalty = calibration.intra_stream_penalty
        self._heap = simulator._heap
        self._noise_rng = noise_rng
        self._noise_chunk: List[float] = []
        self._noise_pos = 0
        self._contexts: Dict[int, Context] = {}
        # (id(spec), context_id) -> (spec, clipped_demand, contention_weight,
        # launch_cost): launch-time invariants memoized per spec/context pair
        # (the stored spec pins the id).  See launch().
        self._launch_invariants: Dict[Tuple[int, int], tuple] = {}
        # (allocation, contention_weight, fault_slowdown) -> the single-kernel
        # replan outputs; see the fast path in _replan().
        self._single_plan_cache: Dict[Tuple[float, float, float], tuple] = {}
        # Quota lookup used by every replan path.  Context.sm_quota is treated
        # as immutable after create_context(); all allocation code reads this
        # dict so there is a single source of truth at plan time.
        self._quotas: Dict[int, float] = {}
        self._streams: Dict[int, Dict[int, Stream]] = {}
        self._running: Dict[int, KernelInstance] = {}
        self._last_update: float = simulator.now
        self._next_context_id = 0
        self._utilization_time_integral = 0.0
        self._current_utilization = 0.0
        self._current_pressure = 0.0
        self._busy_time_start: Optional[float] = None
        self._total_busy_time = 0.0
        self.completed_kernels = 0
        # Incremental replanning state ------------------------------------
        # Per-context running kernels, in global start order (mirrors the
        # grouping the from-scratch plan derives from ``_running``).
        self._ctx_running: Dict[int, List[KernelInstance]] = {}
        # Per-context cached water-fill: (allocations, demand_sum).  Valid
        # until the context's running list changes.
        self._ctx_alloc: Dict[int, Tuple[List[float], float]] = {}
        self._dirty_contexts: set = set()
        self._last_scale = 1.0
        self._last_contention = 0.0  # contention factor last used for rates
        # Observability: how often the fast path skipped rate recomputation.
        self.fast_path_hits = 0
        self.full_replans = 0
        # Observability: how often the wide-running-set numpy tier activated.
        self.vector_engagements = 0
        # Completion scheduling: a monotonically increasing generation token.
        # Every replan bumps it, so outstanding completion callbacks from
        # older plans fire as no-ops instead of being cancelled.
        self._completion_gen = 0
        # Vectorized tier state (active only while the running set is wide).
        # ``_vec_kernels`` mirrors the insertion order of ``_running``;
        # ``_vec_rw`` is the source of truth for remaining work while active
        # (instance attributes are flushed lazily), ``_vec_rate`` mirrors the
        # always-current ``current_rate`` attributes.
        self._vec_active = False
        self._vec_kernels: List[KernelInstance] = []
        self._vec_rw: Optional[np.ndarray] = None
        self._vec_rate: Optional[np.ndarray] = None
        # Invoked as ``callback(context_id, stream_id)`` whenever a stream
        # drains to empty; the platform uses it for O(1) idle-stream tracking.
        self.stream_idle_callback: Optional[Callable[[int, int], None]] = None
        # Fault injection: global rate multiplier applied while a slowdown
        # (thermal-throttle) window is open.  Exactly 1.0 outside windows, in
        # which case no rate expression is touched — fault-free runs execute
        # the historical arithmetic bit for bit.
        self._fault_slowdown = 1.0

    # ------------------------------------------------------------------ setup

    def create_context(self, sm_quota: float) -> Context:
        """Create a context with the given SM quota."""
        context = Context(context_id=self._next_context_id, sm_quota=sm_quota)
        self._next_context_id += 1
        self._contexts[context.context_id] = context
        self._streams[context.context_id] = {}
        self._quotas[context.context_id] = context.sm_quota
        return context

    def create_stream(self, context: Context) -> Stream:
        """Create a stream inside ``context``."""
        stream = context.create_stream()
        self._streams[context.context_id][stream.stream_id] = stream
        return stream

    @property
    def contexts(self) -> List[Context]:
        """All contexts in creation order."""
        return [self._contexts[cid] for cid in sorted(self._contexts)]

    def context(self, context_id: int) -> Context:
        """Look up a context by id."""
        return self._contexts[context_id]

    # ---------------------------------------------------------------- metrics

    @property
    def current_pressure(self) -> float:
        """Most recent oversubscription pressure (>= 1.0 when contended)."""
        return self._current_pressure

    @property
    def current_utilization(self) -> float:
        """Most recent fraction of physical SMs allocated."""
        return self._current_utilization

    def utilization_integral(self) -> float:
        """Time integral of SM utilization from t=0 to now (SM-fraction · ms).

        Unlike :meth:`average_utilization`, the integral is additive: capture
        it at the start of a measurement window and subtract to get the
        utilization of that window alone.
        """
        elapsed = self.simulator.now - self._last_update
        integral = self._utilization_time_integral
        if elapsed > 0:
            integral += self._current_utilization * elapsed
        return integral

    def average_utilization(self, since: float = 0.0, integral_at_since: float = 0.0) -> float:
        """Time-weighted mean SM utilization over ``[since, now]``.

        Args:
            since: window start time in milliseconds (defaults to t=0).
            integral_at_since: value of :meth:`utilization_integral` captured
                at time ``since``; required for a correct windowed average
                (with the default 0.0 the whole since-t=0 integral would be
                divided by the truncated horizon, overstating utilization).
        """
        horizon = self.simulator.now - since
        if horizon <= 0:
            return 0.0
        integral = self.utilization_integral() - integral_at_since
        return min(1.0, integral / horizon)

    def busy_time(self) -> float:
        """Total time during which at least one kernel was running (ms)."""
        total = self._total_busy_time
        if self._busy_time_start is not None:
            total += self.simulator.now - self._busy_time_start
        return total

    # ----------------------------------------------------------------- launch

    def launch(
        self,
        stream: Stream,
        spec: KernelSpec,
        on_complete: Optional[Callable[[KernelInstance], None]] = None,
    ) -> KernelInstance:
        """Enqueue a kernel on ``stream`` and return its runtime instance.

        The kernel starts executing once (a) it reaches the head of its stream
        and (b) the context dispatcher has paid the launch overhead for all
        CUDA kernels it represents.
        """
        kernel = KernelInstance(
            spec=spec,
            stream_id=stream.stream_id,
            context_id=stream.context_id,
            on_complete=on_complete,
        )
        kernel.enqueue_time = self.simulator.now
        kernel.effective_work = spec.work
        kernel.remaining_work = spec.work
        # Plan-time invariants of this kernel: the demand clipped to its
        # context quota, the memory-intensity contention weight and the
        # dispatcher launch overhead.  All three are pure functions of the
        # (frozen) spec, the context quota and the engine calibration — none
        # of which change after setup — so they are computed once per
        # (spec, context) pair and replayed bit for bit on every relaunch of
        # the same stage (serving loops launch the same few specs thousands
        # of times).  The tuple holds a strong reference to the spec so the
        # id()-key can never be resurrected by a different object.
        context_id = stream.context_id
        invariants = self._launch_invariants
        key = (id(spec), context_id)
        cached = invariants.get(key)
        if cached is None:
            quota = self._quotas[context_id]
            demand = spec.parallelism
            if demand > quota:
                demand = quota
            cached = (
                spec,
                demand,
                CONTENTION_WEIGHT_BASE
                + CONTENTION_WEIGHT_MEMORY * spec.memory_intensity,
                self.calibration.dispatch_overhead_ms
                + spec.num_launches * self.spec.launch_overhead_ms,
            )
            invariants[key] = cached
        kernel.clipped_demand = cached[1]
        kernel.contention_weight = cached[2]
        kernel.launch_cost = cached[3]
        became_head = stream.push(kernel)
        if became_head:
            self._begin_dispatch(kernel)
        return kernel

    def _begin_dispatch(self, kernel: KernelInstance) -> None:
        """Charge launch overhead on the context dispatcher, then start the kernel."""
        context = self._contexts[kernel.context_id]
        launch_cost = kernel.launch_cost  # cached at launch(); see there
        now = self.simulator.now
        free_at = context.dispatcher_free_at
        ready_at = (now if now > free_at else free_at) + launch_cost
        context.dispatcher_free_at = ready_at
        kernel.state = KernelState.DISPATCHING
        kernel.dispatch_ready_time = ready_at
        # Direct push of a fire-and-forget dispatch event (ready_at >= now by
        # construction, so schedule_callback's past-time guard is vacuous).
        heappush(
            self._heap,
            ((ready_at, 0, next_sequence()), lambda _sim, k=kernel: self._kernel_ready(k)),
        )

    def _kernel_ready(self, kernel: KernelInstance) -> None:
        """Transition a dispatched kernel to RUNNING and replan allocations."""
        if kernel.state is KernelState.COMPLETED:  # pragma: no cover - defensive
            return
        # _advance_progress inlined (hot: once per dispatched stage).
        now = self.simulator.now
        elapsed = now - self._last_update
        if elapsed > 0:
            self._utilization_time_integral += self._current_utilization * elapsed
        if elapsed > _EPSILON_TIME:
            if self._vec_active:
                remaining = self._vec_rw - self._vec_rate * elapsed
                self._vec_rw = np.where(remaining > 0.0, remaining, 0.0)
            else:
                for running_kernel in self._running.values():
                    remaining = running_kernel.remaining_work - running_kernel.current_rate * elapsed
                    running_kernel.remaining_work = remaining if remaining > 0.0 else 0.0
        self._last_update = now
        kernel.state = KernelState.RUNNING
        kernel.start_time = now
        context_id = kernel.context_id
        ctx_list = self._ctx_running.get(context_id)
        if self._noise_rng is None:
            # Without an RNG the noise factor is exactly 1.0 and the effective
            # work equals the nominal work bitwise; skip the sigma computation.
            kernel.noise_factor = 1.0
            kernel.effective_work = kernel.spec.work
            kernel.remaining_work = kernel.spec.work
        else:
            # The kernel itself is already a RUNNING stream head at this
            # point, so the historical concurrency count includes it *plus*
            # one: noise grows with (existing runners + 2).  Preserved exactly
            # for reproducibility.
            concurrent = (len(ctx_list) if ctx_list else 0) + 2
            sigma = self.calibration.noise_sigma(concurrent, self._current_pressure or 1.0)
            kernel.noise_factor = self._sample_noise(sigma)
            kernel.effective_work = kernel.spec.work * kernel.noise_factor
            kernel.remaining_work = kernel.effective_work
        self._running[kernel.uid] = kernel
        if ctx_list is None:
            self._ctx_running[context_id] = [kernel]
        else:
            ctx_list.append(kernel)
        if self._vec_active:
            self._vec_kernels.append(kernel)
            self._vec_rw = np.append(self._vec_rw, kernel.remaining_work)
            self._vec_rate = np.append(self._vec_rate, kernel.current_rate)
        self._dirty_contexts.add(context_id)
        self._replan()

    def _sample_noise(self, sigma: float) -> float:
        """Log-normal noise factor with unit mean (deterministic 1.0 without RNG)."""
        if self._noise_rng is None or sigma <= 0:
            return 1.0
        if GpuEngine.batched_noise_enabled:
            # ``normal(0, sigma)`` draws one standard normal and scales it;
            # taking the standard normals in chunks consumes the generator
            # identically (the engine owns the "gpu-noise" stream), so the
            # draw sequence — and hence every noise factor — is unchanged.
            pos = self._noise_pos
            chunk = self._noise_chunk
            if pos >= len(chunk):
                chunk = self._noise_rng.standard_normal(size=_NOISE_CHUNK).tolist()
                self._noise_chunk = chunk
                pos = 0
            self._noise_pos = pos + 1
            draw = sigma * chunk[pos]
        else:
            draw = self._noise_rng.normal(0.0, sigma)
        return math.exp(draw - 0.5 * sigma * sigma)

    # ----------------------------------------------------------------- faults

    def set_fault_slowdown(self, scale: float) -> None:
        """Set the global fault rate multiplier (1.0 restores full speed).

        Progress earned so far is settled at the old rates first; the next
        replan then recomputes every kernel's rate under the new multiplier
        (the incremental reuse of cached rates is disabled for that replan).
        """
        if scale <= 0.0:
            raise ValueError("fault slowdown must be positive")
        if scale == self._fault_slowdown:
            return
        self._advance_progress()
        self._fault_slowdown = scale
        # Invalidate the rate-reuse fast path: NaN compares unequal to every
        # scale, forcing the general path to recompute all kernel rates.
        self._last_scale = math.nan
        self._replan()

    def interrupt_context(self, context_id: int, recovery_ms: float) -> int:
        """Crash an MPS context: in-flight work is lost, recovery is charged.

        Every kernel running in the context restarts from zero progress and
        additionally pays ``recovery_ms`` of stall, charged as equivalent
        work at its crash-time rate; the context dispatcher is blocked for
        ``recovery_ms`` so queued launches wait for the context rebuild.
        Returns the number of kernels whose progress was destroyed.
        """
        if recovery_ms < 0:
            raise ValueError("recovery_ms must be non-negative")
        self._advance_progress()
        if self._vec_active:
            # Settle the array state into the instance attributes before the
            # per-kernel rework below mutates them.
            self._vec_writeback()
        kernels = self._ctx_running.get(context_id) or ()
        for kernel in kernels:
            kernel.remaining_work = kernel.effective_work + kernel.current_rate * recovery_ms
        if self._vec_active and kernels:
            self._vec_rw = np.fromiter(
                (k.remaining_work for k in self._vec_kernels),
                np.float64,
                count=len(self._vec_kernels),
            )
        context = self._contexts[context_id]
        now = self.simulator.now
        free_at = context.dispatcher_free_at
        context.dispatcher_free_at = (now if now > free_at else free_at) + recovery_ms
        if kernels:
            # Rates are unchanged but every ETA grew: reschedule completion.
            self._replan()
        return len(kernels)

    # -------------------------------------------------------------- execution

    def _advance_progress(self) -> None:
        """Decrease remaining work of running kernels for time elapsed since last update."""
        now = self.simulator.now
        elapsed = now - self._last_update
        if elapsed > 0:
            self._utilization_time_integral += self._current_utilization * elapsed
        if elapsed > _EPSILON_TIME:
            if self._vec_active:
                # Element-for-element the same two operations and the same
                # clip conditional as the scalar loop below.
                remaining = self._vec_rw - self._vec_rate * elapsed
                self._vec_rw = np.where(remaining > 0.0, remaining, 0.0)
            else:
                for kernel in self._running.values():
                    remaining = kernel.remaining_work - kernel.current_rate * elapsed
                    kernel.remaining_work = remaining if remaining > 0.0 else 0.0
        self._last_update = now

    # ------------------------------------------------------- vectorized state

    def _vec_enter(self) -> None:
        """Build the contiguous arrays from the (current) instance attributes."""
        kernels = list(self._running.values())
        count = len(kernels)
        self._vec_kernels = kernels
        self._vec_rw = np.fromiter((k.remaining_work for k in kernels), np.float64, count=count)
        self._vec_rate = np.fromiter((k.current_rate for k in kernels), np.float64, count=count)
        self._vec_active = True
        self.vector_engagements += 1

    def _vec_writeback(self) -> None:
        """Flush the remaining-work array back into the instance attributes."""
        for kernel, remaining in zip(self._vec_kernels, self._vec_rw.tolist()):
            kernel.remaining_work = remaining

    def _vec_exit(self) -> None:
        self._vec_writeback()
        self._vec_active = False
        self._vec_kernels = []
        self._vec_rw = None
        self._vec_rate = None

    # ---------------------------------------------------------------- replans

    def _schedule_completion(self, soonest: float) -> None:
        """Push the next completion event (fire_at >= now, guard-free push)."""
        fire_at = self.simulator.now + (soonest if soonest > 0.0 else 0.0)
        gen = self._completion_gen
        heappush(
            self._heap,
            ((fire_at, 0, next_sequence()), lambda _sim, g=gen: self._on_completion(g)),
        )

    def _replan(self) -> None:
        """Recompute SM allocation and schedule the next completion event.

        The computation reproduces, operation for operation, what
        :func:`repro.gpu.allocation.allocate_sms` would return for the current
        running set; it merely avoids redoing work whose inputs are unchanged.
        """
        # Invalidate any outstanding completion callback.
        self._completion_gen += 1

        running = self._running
        # Track busy time for utilization-style reporting.
        if running and self._busy_time_start is None:
            self._busy_time_start = self.simulator.now
        elif not running and self._busy_time_start is not None:
            self._total_busy_time += self.simulator.now - self._busy_time_start
            self._busy_time_start = None

        # Enter or leave the wide-running-set array tier.  Attributes are the
        # source of truth outside the tier, the arrays inside it; both
        # transitions preserve the invariant.
        vec_wanted = GpuEngine.vectorized_enabled and len(running) >= _VECTOR_MIN_KERNELS
        if vec_wanted != self._vec_active:
            if vec_wanted:
                self._vec_enter()
            else:
                self._vec_exit()

        # Drop contexts whose running set emptied; afterwards every entry of
        # ``_ctx_running`` is non-empty and every dirty context needs only a
        # water-fill refresh.
        dirty = self._dirty_contexts
        ctx_running = self._ctx_running
        if dirty:
            stale = None  # plain loop: no comprehension frame on the hot path
            for cid in dirty:
                if not ctx_running.get(cid):
                    if stale is None:
                        stale = [cid]
                    else:
                        stale.append(cid)
            if stale:
                for cid in stale:
                    ctx_running.pop(cid, None)
                    self._ctx_alloc.pop(cid, None)
                    dirty.remove(cid)

        if not running:
            self._current_utilization = 0.0
            self._current_pressure = 0.0
            return

        # Single running kernel: the whole plan collapses to a handful of
        # float operations (same operations as the general path, in the same
        # order, so the results stay bitwise identical) — and those operations
        # are a pure function of (allocation, contention weight, fault
        # multiplier) plus frozen engine constants, so the result is memoized
        # per input triple: serving loops that cycle through the same few
        # stage specs replay the cached floats instead of re-deriving them.
        if len(running) == 1 and GpuEngine.fast_path_enabled:
            self.fast_path_hits += 1
            kernel = next(iter(running.values()))
            cid = kernel.context_id
            if dirty:
                demand = kernel.clipped_demand
                self._ctx_alloc[cid] = ([demand], demand)
                dirty.clear()
            allocation = self._ctx_alloc[cid][1]
            key = (allocation, kernel.contention_weight, self._fault_slowdown)
            cached = self._single_plan_cache.get(key)
            if cached is None:
                num_sms = self._num_sms
                pressure = allocation / num_sms
                if allocation > num_sms:
                    scale = num_sms / allocation
                    grant = allocation * scale
                else:
                    scale = 1.0
                    grant = allocation
                pressure = max(pressure, 1.0) if allocation > 0 else 0.0
                utilization = min(1.0, grant / num_sms) if num_sms else 0.0
                min_rate = self._min_rate
                allocated = grant if grant > min_rate else min_rate
                contention_factor = self._contention_penalty * (
                    pressure - 1.0 if pressure > 1.0 else 0.0
                )
                if contention_factor == 0.0:
                    # efficiency == 1/(1 + 0) == 1.0 exactly; the multiply is
                    # a bitwise no-op, so skip the division entirely.
                    rate = allocated
                else:
                    rate = allocated * (
                        1.0 / (1.0 + contention_factor * kernel.contention_weight)
                    )
                if self._fault_slowdown != 1.0:
                    rate *= self._fault_slowdown
                cached = (
                    pressure,
                    utilization,
                    allocated,
                    rate,
                    scale,
                    contention_factor,
                )
                self._single_plan_cache[key] = cached
            else:
                pressure, utilization, allocated, rate, scale, contention_factor = cached
            self._current_pressure = pressure
            self._current_utilization = utilization
            kernel.allocated_sms = allocated
            kernel.current_rate = rate
            self._last_scale = scale
            self._last_contention = contention_factor
            if rate > 0:
                # _schedule_completion inlined.
                soonest = kernel.remaining_work / rate
                fire_at = self.simulator.now + (soonest if soonest > 0.0 else 0.0)
                gen = self._completion_gen
                heappush(
                    self._heap,
                    ((fire_at, 0, next_sequence()), lambda _sim, g=gen: self._on_completion(g)),
                )
            return

        # Every context runs exactly one kernel (the MPS-policy shape, one
        # stream per context): water-filling degenerates to the clipped demand
        # and the intra efficiency is exactly 1.0, so the whole plan is a
        # single pass over the running kernels.  Operation order matches the
        # general path (context order == kernel start order here), keeping
        # results bitwise identical.
        if GpuEngine.fast_path_enabled and len(ctx_running) == len(running):
            self.fast_path_hits += 1
            ctx_alloc = self._ctx_alloc
            if dirty:
                for cid in dirty:
                    demand = ctx_running[cid][0].clipped_demand
                    ctx_alloc[cid] = ([demand], demand)
            num_sms = self._num_sms
            total_demand = 0.0
            for kernel in running.values():
                total_demand += kernel.clipped_demand
            pressure = total_demand / num_sms
            scale = 1.0 if total_demand <= num_sms else num_sms / total_demand
            self._current_pressure = pressure = (
                max(pressure, 1.0) if total_demand > 0 else 0.0
            )
            min_rate = self._min_rate
            contention_factor = self._contention_penalty * (
                pressure - 1.0 if pressure > 1.0 else 0.0
            )
            fault = self._fault_slowdown
            # When neither the cross-context scale nor the contention factor
            # moved, rates of kernels in untouched contexts are reproduced by
            # their cached values; only dirty contexts need the arithmetic.
            globals_changed = (
                scale != self._last_scale or contention_factor != self._last_contention
            )
            if globals_changed:
                granted = 0.0
                for kernel in running.values():
                    demand = kernel.clipped_demand
                    grant = demand if scale == 1.0 else demand * scale
                    granted += grant
                    allocated = grant if grant > min_rate else min_rate
                    kernel.allocated_sms = allocated
                    if contention_factor == 0.0:
                        rate = allocated
                    else:
                        rate = allocated * (
                            1.0 / (1.0 + contention_factor * kernel.contention_weight)
                        )
                    if fault != 1.0:
                        rate *= fault
                    kernel.current_rate = rate
            else:
                for cid in dirty:
                    kernel = ctx_running[cid][0]
                    demand = kernel.clipped_demand
                    grant = demand if scale == 1.0 else demand * scale
                    allocated = grant if grant > min_rate else min_rate
                    kernel.allocated_sms = allocated
                    if contention_factor == 0.0:
                        rate = allocated
                    else:
                        rate = allocated * (
                            1.0 / (1.0 + contention_factor * kernel.contention_weight)
                        )
                    if fault != 1.0:
                        rate *= fault
                    kernel.current_rate = rate
                if scale == 1.0:
                    # grant_i == demand_i, so the granted fold retraces the
                    # total_demand fold add for add.
                    granted = total_demand
                else:
                    granted = 0.0
                    for kernel in running.values():
                        granted += kernel.clipped_demand * scale
            dirty.clear()
            self._current_utilization = min(1.0, granted / num_sms) if num_sms else 0.0
            self._last_scale = scale
            self._last_contention = contention_factor
            if self._vec_active:
                self._finish_replan()
                return
            # _finish_replan + _schedule_completion inlined (hottest tail:
            # once per event at the MPS-policy shape).
            soonest = None
            for kernel in running.values():
                rate = kernel.current_rate
                if rate > 0:
                    eta = kernel.remaining_work / rate
                    if soonest is None or eta < soonest:
                        soonest = eta
            if soonest is None:  # pragma: no cover - defensive
                return
            fire_at = self.simulator.now + (soonest if soonest > 0.0 else 0.0)
            gen = self._completion_gen
            heappush(
                self._heap,
                ((fire_at, 0, next_sequence()), lambda _sim, g=gen: self._on_completion(g)),
            )
            return

        # Context order of the reference plan: order of each context's first
        # running kernel within ``_running`` (global start order).
        if len(ctx_running) == 1:
            order = list(ctx_running)
        else:
            order = []
            seen = set()
            for kernel in running.values():
                cid = kernel.context_id
                if cid not in seen:
                    seen.add(cid)
                    order.append(cid)

        # Refresh the water-fill of every touched context.
        ctx_alloc = self._ctx_alloc
        for cid in dirty:
            kernels = ctx_running.get(cid)
            if not kernels:
                ctx_running.pop(cid, None)
                ctx_alloc.pop(cid, None)
                continue
            if len(kernels) == 1:
                # Water-filling one demand degenerates to min(demand, quota),
                # and the demand is already clipped to the quota.
                demand = kernels[0].clipped_demand
                ctx_alloc[cid] = ([demand], demand)
                continue
            quota = self._quotas[cid]
            demands = [k.clipped_demand for k in kernels]
            if self.vectorized_enabled and len(demands) >= _ARRAY_FILL_MIN_DEMANDS:
                allocations = water_fill_array(quota, demands)
            else:
                allocations = water_fill(quota, demands)
            ctx_alloc[cid] = (allocations, sum(allocations))

        num_sms = self._num_sms
        total_demand = 0.0
        for cid in order:
            total_demand += ctx_alloc[cid][1]
        pressure = total_demand / num_sms
        scale = 1.0 if total_demand <= num_sms else num_sms / total_demand

        granted = 0.0
        if scale == 1.0:
            for cid in order:
                for allocation in ctx_alloc[cid][0]:
                    granted += allocation
        else:
            for cid in order:
                for allocation in ctx_alloc[cid][0]:
                    granted += allocation * scale

        self._current_pressure = pressure = max(pressure, 1.0) if total_demand > 0 else 0.0
        self._current_utilization = min(1.0, granted / num_sms) if num_sms else 0.0

        # Kernel rates.  A context's rates only change when its own membership
        # changed (water-fill + concurrency) or when a global input changed
        # (scale, contention factor): every input to the pure float rate
        # expression is otherwise identical, so reusing the stored
        # ``current_rate`` is bitwise what a full recompute would produce.
        min_rate = self._min_rate
        intra_penalty = self._intra_penalty
        # contention_efficiency(pressure, mi) inlined with its pressure-only
        # part hoisted: 1 / (1 + penalty * excess * (base + memory_weight * mi)).
        contention_factor = self._contention_penalty * (
            pressure - 1.0 if pressure > 1.0 else 0.0
        )
        globals_changed = (
            scale != self._last_scale
            or contention_factor != self._last_contention
            or not GpuEngine.fast_path_enabled
        )
        self._last_scale = scale
        self._last_contention = contention_factor
        fault = self._fault_slowdown
        for cid in order:
            if not globals_changed and cid not in dirty:
                self.fast_path_hits += 1
                continue
            self.full_replans += 1
            kernels = ctx_running[cid]
            allocations = ctx_alloc[cid][0]
            # intra_efficiency inlined; len(kernels) >= 1 so max(0, n-1) == n-1.
            intra = 1.0 / (1.0 + intra_penalty * (len(kernels) - 1))
            for kernel, allocation in zip(kernels, allocations):
                grant = allocation * scale
                allocated = grant if grant > min_rate else min_rate
                kernel.allocated_sms = allocated
                if contention_factor == 0.0:
                    # intra * (1/(1+0)) == intra exactly.
                    rate = allocated * intra
                else:
                    rate = allocated * (
                        intra
                        * (1.0 / (1.0 + contention_factor * kernel.contention_weight))
                    )
                if fault != 1.0:
                    rate *= fault
                kernel.current_rate = rate
        dirty.clear()
        self._finish_replan()

    def _finish_replan(self) -> None:
        """Find the earliest completion ETA and schedule its callback."""
        if self._vec_active:
            rates = np.fromiter(
                (k.current_rate for k in self._vec_kernels),
                np.float64,
                count=len(self._vec_kernels),
            )
            self._vec_rate = rates
            positive = rates > 0.0
            if positive.all():
                soonest = float((self._vec_rw / rates).min())
            elif positive.any():
                soonest = float((self._vec_rw[positive] / rates[positive]).min())
            else:  # pragma: no cover - defensive
                return
            self._schedule_completion(soonest)
            return
        soonest: Optional[float] = None
        for kernel in self._running.values():
            rate = kernel.current_rate
            if rate > 0:
                eta = kernel.remaining_work / rate
                if soonest is None or eta < soonest:
                    soonest = eta
        if soonest is None:  # pragma: no cover - defensive
            return
        self._schedule_completion(soonest)

    def _on_completion(self, gen: int) -> None:
        """Complete every kernel whose remaining work reached zero, then replan."""
        if gen != self._completion_gen:
            return  # superseded by a newer plan
        # _advance_progress inlined (hot: once per live completion event).
        now = self.simulator.now
        elapsed = now - self._last_update
        if elapsed > 0:
            self._utilization_time_integral += self._current_utilization * elapsed
        if elapsed > _EPSILON_TIME:
            if self._vec_active:
                remaining = self._vec_rw - self._vec_rate * elapsed
                self._vec_rw = np.where(remaining > 0.0, remaining, 0.0)
            else:
                for kernel in self._running.values():
                    remaining = kernel.remaining_work - kernel.current_rate * elapsed
                    kernel.remaining_work = remaining if remaining > 0.0 else 0.0
        self._last_update = now
        if self._vec_active:
            finished_idx = np.nonzero(self._vec_rw <= _EPSILON_WORK)[0]
            finished = [self._vec_kernels[index] for index in finished_idx.tolist()]
        else:
            finished = None  # plain loop: no comprehension frame on the hot path
            for kernel in self._running.values():
                if kernel.remaining_work <= _EPSILON_WORK:
                    if finished is None:
                        finished = [kernel]
                    else:
                        finished.append(kernel)
        if not finished:
            self._replan()
            return
        if self._vec_active:
            self._vec_rw = np.delete(self._vec_rw, finished_idx)
            self._vec_rate = np.delete(self._vec_rate, finished_idx)
            for index in reversed(finished_idx.tolist()):
                del self._vec_kernels[index]
        notify_idle = self.stream_idle_callback
        for kernel in finished:
            del self._running[kernel.uid]
            context_id = kernel.context_id
            ctx_list = self._ctx_running[context_id]
            for index, candidate in enumerate(ctx_list):
                if candidate is kernel:
                    del ctx_list[index]
                    break
            self._dirty_contexts.add(context_id)
            kernel.state = KernelState.COMPLETED
            kernel.finish_time = now
            kernel.remaining_work = 0.0
            self.completed_kernels += 1
            stream = self._streams[context_id][kernel.stream_id]
            popped = stream.pop_head()
            if popped.uid != kernel.uid:  # pragma: no cover - defensive
                raise RuntimeError("stream head does not match completed kernel")
            next_kernel = stream.head
            if next_kernel is not None:
                self._begin_dispatch(next_kernel)
            elif notify_idle is not None:
                notify_idle(context_id, kernel.stream_id)
        if self._running or self._vec_active or not GpuEngine.fast_path_enabled:
            self._replan()
        else:
            # _replan() inlined for the drained-engine case (the every-stage
            # tail of serving loops that run one kernel at a time): with no
            # running kernel and the vector tier inactive, the full replan
            # reduces to exactly these side effects — invalidate outstanding
            # completion events, settle busy time, drop emptied contexts and
            # zero the utilization signals.
            self._completion_gen += 1
            if self._busy_time_start is not None:
                self._total_busy_time += now - self._busy_time_start
                self._busy_time_start = None
            dirty = self._dirty_contexts
            if dirty:
                ctx_running = self._ctx_running
                ctx_alloc = self._ctx_alloc
                for cid in tuple(dirty):
                    if not ctx_running.get(cid):
                        ctx_running.pop(cid, None)
                        ctx_alloc.pop(cid, None)
                        dirty.discard(cid)
            self._current_utilization = 0.0
            self._current_pressure = 0.0
        for kernel in finished:
            if kernel.on_complete is not None:
                kernel.on_complete(kernel)

    # ------------------------------------------------------------------ query

    def running_count(self) -> int:
        """Number of kernels currently receiving SM allocation."""
        return len(self._running)

    def is_idle(self) -> bool:
        """True when no kernel is queued, dispatching or running anywhere."""
        if self._running:
            return False
        return all(ctx.queue_depth() == 0 for ctx in self._contexts.values())
