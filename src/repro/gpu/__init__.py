"""Calibrated discrete-event GPU model.

This package replaces the physical RTX 2080 Ti + CUDA/MPS stack used in the
DARIS paper.  It models:

* a GPU as a pool of streaming multiprocessors (SMs),
* MPS contexts, each with an SM quota derived from the oversubscription level
  (paper Equation 9),
* CUDA streams as FIFO kernel queues inside a context,
* a per-context serial dispatcher with a fixed per-kernel launch overhead,
* an SM allocation engine that water-fills SMs to runnable kernels within the
  context quota and across contexts up to the physical SM count, and
* interference: contention when quotas oversubscribe the GPU, efficiency loss
  and timing noise when multiple streams run concurrently in one context.

Only behaviour the DARIS scheduler can observe (execution times, queue
occupancy, quotas) is modelled; see DESIGN.md section 6.
"""

from repro.gpu.spec import GpuSpec, RTX_2080_TI
from repro.gpu.calibration import GpuCalibration, DEFAULT_CALIBRATION
from repro.gpu.kernel import KernelSpec, KernelInstance, KernelState
from repro.gpu.stream import Stream
from repro.gpu.context import Context
from repro.gpu.mps import sm_quota, ceil_even, partition_quotas
from repro.gpu.allocation import water_fill, water_fill_array, allocate_sms, AllocationResult
from repro.gpu.engine import GpuEngine
from repro.gpu.platform import GpuPlatform, PlatformConfig

__all__ = [
    "GpuSpec",
    "RTX_2080_TI",
    "GpuCalibration",
    "DEFAULT_CALIBRATION",
    "KernelSpec",
    "KernelInstance",
    "KernelState",
    "Stream",
    "Context",
    "sm_quota",
    "ceil_even",
    "partition_quotas",
    "water_fill",
    "water_fill_array",
    "allocate_sms",
    "AllocationResult",
    "GpuEngine",
    "GpuPlatform",
    "PlatformConfig",
]
