"""Static GPU hardware descriptions."""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import ClassVar, Dict, Mapping


@dataclass(frozen=True)
class GpuSpec:
    """Immutable description of a GPU device.

    Attributes:
        name: marketing name of the device.
        num_sms: number of streaming multiprocessors; the paper's RTX 2080 Ti
            has 68.
        sm_clock_mhz: boost clock; only used to document relative device
            strength, the work unit of the simulator is already expressed in
            SM-milliseconds on this device.
        memory_bandwidth_gbps: peak memory bandwidth; informs how strongly
            memory-intensive kernels suffer under contention.
        launch_overhead_ms: per-kernel launch gap: CPU-side launch cost plus
            the GPU-side scheduling gap between consecutive small kernels of
            one stream.  For batch-1 inference through LibTorch these gaps are
            in the 10-20 microsecond range per kernel and are the main reason
            a single un-batched inference cannot keep the GPU busy; they can
            only be reclaimed by other streams of the same context or, with
            SM oversubscription, by other contexts.
        mps_supported: whether MPS-style multi-context spatial partitioning is
            available (embedded GPUs in the paper's discussion lack it).
    """

    name: str
    num_sms: int
    sm_clock_mhz: float = 1545.0
    memory_bandwidth_gbps: float = 616.0
    launch_overhead_ms: float = 0.015
    mps_supported: bool = True

    #: Sweep-axis aliases: the design-space-exploration layer addresses
    #: hardware fields as ``gpu.<name>`` axes.
    FIELD_ALIASES: ClassVar[Dict[str, str]] = {
        "sm_count": "num_sms",
        "sms": "num_sms",
        "mem_bw_gbps": "memory_bandwidth_gbps",
    }

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise ValueError(f"num_sms must be positive, got {self.num_sms}")
        if self.launch_overhead_ms < 0:
            raise ValueError("launch_overhead_ms must be non-negative")

    def to_dict(self) -> Dict[str, object]:
        """Canonical field dictionary (stable key order; used for cache keys)."""
        return {spec_field.name: getattr(self, spec_field.name) for spec_field in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "GpuSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(**{spec_field.name: data[spec_field.name] for spec_field in fields(cls)})

    def with_field(self, name: str, value: object) -> "GpuSpec":
        """Return a copy with one (possibly aliased) field replaced.

        The hardware-axis entry point: ``--set gpu.sm_count=40`` builds a
        down-binned variant of this device.  Validation is the dataclass's
        own ``__post_init__`` (a negative SM count raises ``ValueError``).
        """
        return replace(self, **{self.FIELD_ALIASES.get(name, name): value})


RTX_2080_TI = GpuSpec(name="NVIDIA GeForce RTX 2080 Ti", num_sms=68)

JETSON_XAVIER = GpuSpec(
    name="NVIDIA Jetson AGX Xavier",
    num_sms=8,
    sm_clock_mhz=1377.0,
    memory_bandwidth_gbps=137.0,
    launch_overhead_ms=0.025,
    mps_supported=False,
)
