"""SM allocation: two-level water-filling with oversubscription.

The engine calls :func:`allocate_sms` whenever the set of running kernels
changes.  Allocation proceeds in two steps:

1. *Within each context* the context quota is water-filled across its running
   kernels, each capped by its own parallelism.
2. *Across contexts* the physical SM count is enforced.  When quotas are
   oversubscribed the summed per-context demand may exceed the device; demand
   is then scaled down proportionally and the overshoot is reported as
   contention *pressure* (>= 1.0), which the calibration converts into an
   efficiency penalty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np


def water_fill(capacity: float, demands: Sequence[float]) -> List[float]:
    """Distribute ``capacity`` across ``demands`` fairly.

    Each receiver gets at most its demand; surplus left by small demands is
    redistributed among the others.  The returned allocations sum to
    ``min(capacity, sum(demands))``.
    """
    if capacity < 0:
        raise ValueError(f"capacity must be non-negative, got {capacity}")
    allocations = [0.0] * len(demands)
    if not demands or capacity == 0:
        return allocations

    remaining_capacity = float(capacity)
    unsatisfied = [i for i, demand in enumerate(demands) if demand > 0]
    while unsatisfied and remaining_capacity > 1e-12:
        share = remaining_capacity / len(unsatisfied)
        still_unsatisfied = []
        for index in unsatisfied:
            need = demands[index] - allocations[index]
            grant = min(need, share)
            allocations[index] += grant
            remaining_capacity -= grant
            if allocations[index] < demands[index] - 1e-12:
                still_unsatisfied.append(index)
        if len(still_unsatisfied) == len(unsatisfied):
            # Everyone got a full equal share and still wants more: capacity
            # is exhausted up to floating-point error.
            break
        unsatisfied = still_unsatisfied
    return allocations


def water_fill_array(capacity: float, demands: Sequence[float]) -> List[float]:
    """Vectorized :func:`water_fill` — bit-identical, one numpy pass per round.

    A closed-form sorted water level (``allocation = min(demand, level)``)
    yields the same *real* numbers but not the same *floats*: the reference
    accumulates each receiver's allocation as a sum of per-round grants, and
    floating-point addition is not associative.  To stay bit-identical this
    version keeps the reference's round structure and replays each round with
    array operations:

    * ``grant = min(need, share)`` becomes an elementwise ``np.minimum`` —
      per-element results are the exact same IEEE values;
    * the running ``remaining_capacity`` is folded in index order over the
      grant vector (``numpy``'s pairwise-summed ``sum`` would reorder the
      subtraction chain, so a scalar fold is used — it is O(active) and cheap
      next to the vector work).

    Rounds shrink geometrically in practice (every round fully satisfies at
    least one receiver or terminates), so wide contexts pay a handful of
    O(n) vector passes instead of O(n) Python-level iterations per round.
    Returns a plain ``List[float]`` like the reference so downstream
    consumers see identical types.
    """
    if capacity < 0:
        raise ValueError(f"capacity must be non-negative, got {capacity}")
    count = len(demands)
    if count == 0 or capacity == 0:
        return [0.0] * count

    demands_arr = np.asarray(demands, dtype=np.float64)
    allocations = np.zeros(count, dtype=np.float64)
    remaining_capacity = float(capacity)
    active = np.nonzero(demands_arr > 0)[0]
    while active.size and remaining_capacity > 1e-12:
        share = remaining_capacity / active.size
        need = demands_arr[active] - allocations[active]
        grant = np.minimum(need, share)
        allocations[active] += grant
        for value in grant.tolist():
            remaining_capacity -= value
        still_unsatisfied = allocations[active] < demands_arr[active] - 1e-12
        if still_unsatisfied.all():
            # Everyone got a full equal share and still wants more: capacity
            # is exhausted up to floating-point error.
            break
        active = active[still_unsatisfied]
    return allocations.tolist()


@dataclass(frozen=True)
class AllocationResult:
    """Outcome of one allocation round.

    Attributes:
        kernel_sms: SMs granted to each kernel, keyed by kernel uid.
        context_concurrency: number of running kernels per context id.
        pressure: summed (pre-scaling) context demand divided by the physical
            SM count; values above 1.0 indicate oversubscription contention.
        utilization: fraction of physical SMs actually allocated.
    """

    kernel_sms: Mapping[int, float]
    context_concurrency: Mapping[int, int]
    pressure: float
    utilization: float


def allocate_sms(
    num_sms: int,
    context_quotas: Mapping[int, float],
    running: Mapping[int, Sequence[Tuple[int, float]]],
) -> AllocationResult:
    """Allocate physical SMs to running kernels.

    Args:
        num_sms: physical SM count of the device.
        context_quotas: SM quota per context id.
        running: per context id, a sequence of ``(kernel_uid, parallelism)``
            pairs describing the currently runnable kernels.

    Returns:
        An :class:`AllocationResult` with per-kernel SM grants.
    """
    if num_sms <= 0:
        raise ValueError("num_sms must be positive")

    per_context_alloc: Dict[int, List[float]] = {}
    per_context_uids: Dict[int, List[int]] = {}
    context_demand: Dict[int, float] = {}
    context_concurrency: Dict[int, int] = {}

    for context_id, kernels in running.items():
        if not kernels:
            continue
        quota = context_quotas[context_id]
        uids = [uid for uid, _ in kernels]
        demands = [min(parallelism, quota) for _, parallelism in kernels]
        allocations = water_fill(quota, demands)
        per_context_alloc[context_id] = allocations
        per_context_uids[context_id] = uids
        context_demand[context_id] = sum(allocations)
        context_concurrency[context_id] = len(kernels)

    total_demand = sum(context_demand.values())
    pressure = total_demand / num_sms if num_sms else 0.0
    scale = 1.0
    if total_demand > num_sms:
        scale = num_sms / total_demand

    kernel_sms: Dict[int, float] = {}
    granted = 0.0
    for context_id, allocations in per_context_alloc.items():
        for uid, allocation in zip(per_context_uids[context_id], allocations):
            grant = allocation * scale
            kernel_sms[uid] = grant
            granted += grant

    utilization = min(1.0, granted / num_sms) if num_sms else 0.0
    return AllocationResult(
        kernel_sms=kernel_sms,
        context_concurrency=context_concurrency,
        pressure=max(pressure, 1.0) if total_demand > 0 else 0.0,
        utilization=utilization,
    )
