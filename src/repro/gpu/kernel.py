"""Kernel descriptions and runtime kernel state.

A :class:`KernelSpec` is a static amount of GPU work.  The simulator usually
executes DNN *stages* as one aggregated kernel (``num_launches`` records how
many CUDA kernels the stage represents so the dispatcher can charge launch
overheads), but nothing prevents launching individual fine-grained kernels.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


class KernelState(enum.Enum):
    """Lifecycle of a kernel inside the engine."""

    QUEUED = "queued"  # in a stream, behind other kernels
    DISPATCHING = "dispatching"  # head of its stream, waiting for the dispatcher
    RUNNING = "running"  # receiving SM allocation
    COMPLETED = "completed"


@dataclass(frozen=True)
class KernelSpec:
    """Static description of a unit of GPU work.

    Attributes:
        name: human-readable identifier (e.g. ``"resnet18/stage2"``).
        work: total compute demand in SM-milliseconds: a kernel with
            ``work=10`` finishes in 1 ms when it holds 10 SMs at full
            efficiency.
        parallelism: maximum number of SMs the kernel can productively occupy
            at once; narrow kernels (InceptionV3's parallel paths) have small
            values and therefore leave SMs idle unless co-located or batched.
        num_launches: number of CUDA kernel launches this spec stands for;
            each launch costs ``GpuSpec.launch_overhead_ms`` on the owning
            context's dispatcher.
        memory_intensity: 0..1 weight describing how memory-bound the kernel
            is; memory-bound kernels suffer more from oversubscription
            contention (UNet is the memory-heavy model in the paper).
    """

    name: str
    work: float
    parallelism: float
    num_launches: int = 1
    memory_intensity: float = 0.3

    def __post_init__(self) -> None:
        if self.work < 0:
            raise ValueError(f"work must be non-negative, got {self.work}")
        if self.parallelism <= 0:
            raise ValueError(f"parallelism must be positive, got {self.parallelism}")
        if self.num_launches < 1:
            raise ValueError(f"num_launches must be >= 1, got {self.num_launches}")
        if not 0.0 <= self.memory_intensity <= 1.0:
            raise ValueError(
                f"memory_intensity must be within [0, 1], got {self.memory_intensity}"
            )

    @property
    def isolated_duration_ms(self) -> float:
        """Execution time when the kernel runs alone with all the SMs it can use."""
        return self.work / self.parallelism

    def scaled(self, work_scale: float, parallelism_scale: float, max_parallelism: float) -> "KernelSpec":
        """Return a copy with work and parallelism scaled (used by batching)."""
        return KernelSpec(
            name=self.name,
            work=self.work * work_scale,
            parallelism=min(self.parallelism * parallelism_scale, max_parallelism),
            num_launches=self.num_launches,
            memory_intensity=self.memory_intensity,
        )


_instance_counter = itertools.count()


class KernelInstance:
    """Runtime state of one launched kernel.

    A ``__slots__`` class rather than a dataclass: one instance is created per
    dispatched DNN stage and the engine touches its fields on every replan, so
    both the construction cost and the attribute access latency matter.
    """

    __slots__ = (
        "spec",
        "stream_id",
        "context_id",
        "on_complete",
        "uid",
        "state",
        "enqueue_time",
        "dispatch_ready_time",
        "start_time",
        "finish_time",
        "effective_work",
        "remaining_work",
        "noise_factor",
        "allocated_sms",
        "current_rate",
        "clipped_demand",
        "contention_weight",
        "launch_cost",
    )

    def __init__(
        self,
        spec: KernelSpec,
        stream_id: int,
        context_id: int,
        on_complete: Optional[Callable[["KernelInstance"], None]] = None,
        uid: Optional[int] = None,
        state: KernelState = KernelState.QUEUED,
    ):
        self.spec = spec
        self.stream_id = stream_id
        self.context_id = context_id
        self.on_complete = on_complete
        self.uid = next(_instance_counter) if uid is None else uid
        self.state = state
        self.enqueue_time = 0.0
        self.dispatch_ready_time = 0.0
        self.start_time = 0.0
        self.finish_time = 0.0
        self.effective_work = 0.0
        self.remaining_work = 0.0
        self.noise_factor = 1.0
        self.allocated_sms = 0.0
        self.current_rate = 0.0
        # Plan-time invariants filled in by the engine at launch: the demand
        # clipped to the context quota, the memory-intensity contention
        # weight, and the dispatcher launch overhead (all cached so replans
        # and dispatch events avoid re-deriving them).
        self.clipped_demand = spec.parallelism
        self.contention_weight = 0.0
        self.launch_cost = 0.0

    @property
    def execution_time_ms(self) -> float:
        """Wall-clock time from SM execution start to completion."""
        return self.finish_time - self.start_time

    @property
    def service_time_ms(self) -> float:
        """Wall-clock time from enqueue (launch call) to completion."""
        return self.finish_time - self.enqueue_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KernelInstance({self.spec.name!r}, state={self.state.value}, "
            f"remaining={self.remaining_work:.3f})"
        )
