"""CUDA stream model: a FIFO queue of kernels inside a context."""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.gpu.kernel import KernelInstance


class Stream:
    """A FIFO of kernels; only the head kernel of a stream can execute."""

    def __init__(self, stream_id: int, context_id: int):
        self.stream_id = stream_id
        self.context_id = context_id
        self._queue: Deque[KernelInstance] = deque()

    @property
    def depth(self) -> int:
        """Number of kernels currently enqueued (including the running head)."""
        return len(self._queue)

    @property
    def is_idle(self) -> bool:
        """True when no kernel is enqueued or running on this stream."""
        return not self._queue

    @property
    def head(self) -> Optional[KernelInstance]:
        """The kernel at the front of the queue, if any."""
        return self._queue[0] if self._queue else None

    def push(self, kernel: KernelInstance) -> bool:
        """Append a kernel; returns True when it became the stream head."""
        self._queue.append(kernel)
        return len(self._queue) == 1

    def pop_head(self) -> KernelInstance:
        """Remove and return the head kernel (after it completed)."""
        if not self._queue:
            raise RuntimeError(f"stream {self.stream_id} is empty")
        return self._queue.popleft()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Stream(id={self.stream_id}, ctx={self.context_id}, depth={self.depth})"
