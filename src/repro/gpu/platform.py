"""High-level GPU platform facade used by schedulers and baselines.

``GpuPlatform`` bundles an engine, the MPS partitioning of Equation 9 and the
stream layout of a DARIS configuration (``Nc`` contexts x ``Ns`` streams).
Schedulers talk to the platform in terms of *(context index, stream index)*
slots, which keeps their code independent of the engine internals.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.gpu.calibration import DEFAULT_CALIBRATION, GpuCalibration
from repro.gpu.context import Context
from repro.gpu.engine import GpuEngine
from repro.gpu.kernel import KernelInstance, KernelSpec
from repro.gpu.mps import partition_quotas
from repro.gpu.spec import GpuSpec, RTX_2080_TI
from repro.gpu.stream import Stream
from repro.sim.simulator import Simulator


@dataclass(frozen=True)
class PlatformConfig:
    """Spatial-partitioning configuration of the GPU platform.

    Attributes:
        num_contexts: number of MPS contexts (``Nc``).
        streams_per_context: CUDA streams per context (``Ns``).
        oversubscription: SM oversubscription level (``OS``), between 1 and
            ``Nc``.
    """

    num_contexts: int
    streams_per_context: int
    oversubscription: float

    def __post_init__(self) -> None:
        if self.num_contexts < 1:
            raise ValueError("num_contexts must be >= 1")
        if self.streams_per_context < 1:
            raise ValueError("streams_per_context must be >= 1")
        if not 1.0 <= self.oversubscription <= max(1.0, float(self.num_contexts)):
            raise ValueError(
                "oversubscription must lie in [1, num_contexts]"
                f" = [1, {self.num_contexts}], got {self.oversubscription}"
            )

    @property
    def max_parallel_jobs(self) -> int:
        """``Np = Nc * Ns``: maximum number of concurrently resident DNNs."""
        return self.num_contexts * self.streams_per_context

    def label(self) -> str:
        """Short ``Nc x Ns OS`` label used by the paper's figures."""
        os_text = (
            f"{int(self.oversubscription)}"
            if float(self.oversubscription).is_integer()
            else f"{self.oversubscription}"
        )
        return f"{self.num_contexts}x{self.streams_per_context} OS{os_text}"


class GpuPlatform:
    """A partitioned GPU exposing (context, stream) execution slots."""

    def __init__(
        self,
        simulator: Simulator,
        config: PlatformConfig,
        spec: GpuSpec = RTX_2080_TI,
        calibration: GpuCalibration = DEFAULT_CALIBRATION,
        noise_rng: Optional[np.random.Generator] = None,
    ):
        self.simulator = simulator
        self.config = config
        self.spec = spec
        self.engine = GpuEngine(simulator, spec, calibration, noise_rng=noise_rng)
        quotas = partition_quotas(
            spec.num_sms, config.num_contexts, config.oversubscription
        )
        self._contexts: List[Context] = []
        self._streams: List[List[Stream]] = []
        for quota in quotas:
            context = self.engine.create_context(quota)
            streams = [
                self.engine.create_stream(context)
                for _ in range(config.streams_per_context)
            ]
            self._contexts.append(context)
            self._streams.append(streams)
        # O(1) idle-stream tracking: per context, a min-heap of idle stream
        # indices (so the lowest idle index is returned, matching a linear
        # scan) plus a validity bitmap for lazy deletion.  The engine reports
        # drained streams through ``stream_idle_callback``; ``launch`` marks
        # streams busy.
        self._idle_heaps: List[List[int]] = [
            list(range(config.streams_per_context)) for _ in self._contexts
        ]
        self._idle_flags: List[List[bool]] = [
            [True] * config.streams_per_context for _ in self._contexts
        ]
        self.engine.stream_idle_callback = self._on_stream_idle

    def _on_stream_idle(self, context_id: int, stream_id: int) -> None:
        """Engine callback: a stream drained to empty."""
        # Context/stream ids coincide with platform indices by construction;
        # ignore contexts created on the shared engine outside this platform.
        if context_id >= len(self._idle_flags):
            return
        if not self._idle_flags[context_id][stream_id]:
            self._idle_flags[context_id][stream_id] = True
            heapq.heappush(self._idle_heaps[context_id], stream_id)

    # ----------------------------------------------------------------- layout

    @property
    def num_contexts(self) -> int:
        """Number of contexts (``Nc``)."""
        return len(self._contexts)

    @property
    def streams_per_context(self) -> int:
        """Streams per context (``Ns``)."""
        return self.config.streams_per_context

    @property
    def sm_quota(self) -> float:
        """SM quota of each context (equal by Equation 9)."""
        return self._contexts[0].sm_quota

    def context(self, context_index: int) -> Context:
        """Context object at ``context_index`` (0-based)."""
        return self._contexts[context_index]

    def stream(self, context_index: int, stream_index: int) -> Stream:
        """Stream object at the given slot."""
        return self._streams[context_index][stream_index]

    # ------------------------------------------------------------------ slots

    def idle_stream_index(self, context_index: int) -> Optional[int]:
        """Lowest index of an idle stream in the context, or None if all are busy."""
        heap = self._idle_heaps[context_index]
        flags = self._idle_flags[context_index]
        while heap:
            candidate = heap[0]
            if flags[candidate]:
                return candidate
            heapq.heappop(heap)  # stale lazy-deleted entry
        return None

    def idle_stream_count(self, context_index: int) -> int:
        """Number of idle streams in the context."""
        return sum(1 for idle in self._idle_flags[context_index] if idle)

    def busy_stream_count(self, context_index: int) -> int:
        """Number of busy streams in the context."""
        return self.config.streams_per_context - self.idle_stream_count(context_index)

    # ----------------------------------------------------------------- launch

    def launch(
        self,
        context_index: int,
        stream_index: int,
        spec: KernelSpec,
        on_complete: Optional[Callable[[KernelInstance], None]] = None,
    ) -> KernelInstance:
        """Launch a kernel (usually an aggregated DNN stage) on a slot."""
        stream = self._streams[context_index][stream_index]
        self._idle_flags[context_index][stream_index] = False
        return self.engine.launch(stream, spec, on_complete=on_complete)

    def reserve_stream(self, context_index: int, stream_index: int) -> None:
        """Mark a stream busy without launching (held through a retry delay)."""
        self._idle_flags[context_index][stream_index] = False

    def release_stream(self, context_index: int, stream_index: int) -> None:
        """Return a reserved-but-unused stream to the idle pool."""
        self._on_stream_idle(context_index, stream_index)

    # ---------------------------------------------------------------- metrics

    def is_idle(self) -> bool:
        """True when nothing is queued or running on the whole GPU."""
        return self.engine.is_idle()

    def average_utilization(self) -> float:
        """Time-averaged SM utilization since simulation start."""
        return self.engine.average_utilization()

    def utilization_integral(self) -> float:
        """Utilization time-integral for windowed measurements (see engine)."""
        return self.engine.utilization_integral()
