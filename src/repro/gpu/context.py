"""CUDA/MPS context model.

A context owns an SM quota (possibly oversubscribed relative to the physical
GPU), a set of streams, and a serial dispatcher that charges per-kernel launch
overhead.  The engine asks each context which of its kernels are runnable and
how many SMs they demand.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.gpu.kernel import KernelInstance, KernelState
from repro.gpu.stream import Stream


class Context:
    """One MPS context with an SM quota and a set of streams."""

    def __init__(self, context_id: int, sm_quota: float):
        if sm_quota <= 0:
            raise ValueError(f"sm_quota must be positive, got {sm_quota}")
        self.context_id = context_id
        self.sm_quota = float(sm_quota)
        self.streams: List[Stream] = []
        self.dispatcher_free_at: float = 0.0
        self._next_stream_id = 0

    def create_stream(self) -> Stream:
        """Create and register a new stream in this context."""
        stream = Stream(stream_id=self._next_stream_id, context_id=self.context_id)
        self._next_stream_id += 1
        self.streams.append(stream)
        return stream

    def stream(self, stream_id: int) -> Stream:
        """Look up a stream by id."""
        for stream in self.streams:
            if stream.stream_id == stream_id:
                return stream
        raise KeyError(f"no stream {stream_id} in context {self.context_id}")

    def running_kernels(self) -> List[KernelInstance]:
        """Head kernels currently in the RUNNING state."""
        running = []
        for stream in self.streams:
            head = stream.head
            if head is not None and head.state is KernelState.RUNNING:
                running.append(head)
        return running

    def idle_streams(self) -> List[Stream]:
        """Streams with no queued or running work."""
        return [stream for stream in self.streams if stream.is_idle]

    def busy_stream_count(self) -> int:
        """Number of streams with at least one kernel queued or running."""
        return sum(1 for stream in self.streams if not stream.is_idle)

    def queue_depth(self) -> int:
        """Total kernels enqueued across all streams of this context."""
        return sum(stream.depth for stream in self.streams)

    def snapshot(self) -> Dict[str, float]:
        """Small status dictionary used by traces and debugging output."""
        return {
            "context_id": self.context_id,
            "sm_quota": self.sm_quota,
            "streams": len(self.streams),
            "busy_streams": self.busy_stream_count(),
            "queue_depth": self.queue_depth(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Context(id={self.context_id}, quota={self.sm_quota:.1f}, "
            f"streams={len(self.streams)})"
        )
