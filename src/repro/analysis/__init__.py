"""Small analysis utilities: statistics, text tables and ASCII charts."""

from repro.analysis.stats import normalize, percentile, summarize_series
from repro.analysis.tables import format_table, format_comparison
from repro.analysis.plotting import ascii_bar_chart, ascii_series

__all__ = [
    "normalize",
    "percentile",
    "summarize_series",
    "format_table",
    "format_comparison",
    "ascii_bar_chart",
    "ascii_series",
]
