"""Statistics helpers shared by the experiment reports."""

from __future__ import annotations

import math
from typing import Dict, Sequence

import numpy as np


def normalize(values: Sequence[float], reference: float) -> list:
    """Divide every value by ``reference`` (used for normalized-throughput plots)."""
    if reference == 0:
        raise ValueError("reference must be non-zero")
    return [value / reference for value in values]


def percentile(values: Sequence[float], q: float) -> float:
    """Percentile with an empty-input guard."""
    if not 0 <= q <= 100:
        raise ValueError("q must be within [0, 100]")
    # len(), not truthiness: ``not values`` raises on numpy-array input
    # ("truth value of an array ... is ambiguous").
    if len(values) == 0:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=float), q))


# Two-sided 95 % Student-t critical values by degrees of freedom.  Seed
# replication uses small sample counts (2-10 seeds), where the normal 1.96
# badly understates the interval; beyond 30 degrees of freedom the normal
# approximation is within ~2 %.
_T_CRITICAL_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}


def t_critical_95(degrees_of_freedom: int) -> float:
    """Two-sided 95 % Student-t critical value (normal 1.96 beyond df=30)."""
    if degrees_of_freedom < 1:
        raise ValueError("degrees of freedom must be >= 1")
    return _T_CRITICAL_95.get(degrees_of_freedom, 1.96)


def replication_summary(values: Sequence[float]) -> Dict[str, float]:
    """Mean / sample stdev / 95 % CI half-width of replicated measurements.

    The interval is the Student-t confidence interval for the mean,
    ``t * s / sqrt(n)``; with a single replicate the stdev and interval are
    zero (there is no dispersion information).
    """
    if len(values) == 0:
        raise ValueError("replication_summary needs at least one value")
    array = np.asarray(values, dtype=float)
    count = array.size
    mean = float(array.mean())
    if count == 1:
        return {"mean": mean, "std": 0.0, "ci95": 0.0, "n": 1}
    std = float(array.std(ddof=1))
    half_width = t_critical_95(count - 1) * std / math.sqrt(count)
    return {"mean": mean, "std": std, "ci95": half_width, "n": count}


def summarize_series(values: Sequence[float]) -> Dict[str, float]:
    """Mean / min / max / p50 / p95 summary of a series."""
    if len(values) == 0:
        return {"mean": 0.0, "min": 0.0, "max": 0.0, "p50": 0.0, "p95": 0.0}
    array = np.asarray(values, dtype=float)
    return {
        "mean": float(array.mean()),
        "min": float(array.min()),
        "max": float(array.max()),
        "p50": float(np.percentile(array, 50)),
        "p95": float(np.percentile(array, 95)),
    }
