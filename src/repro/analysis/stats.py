"""Statistics helpers shared by the experiment reports."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np


def normalize(values: Sequence[float], reference: float) -> list:
    """Divide every value by ``reference`` (used for normalized-throughput plots)."""
    if reference == 0:
        raise ValueError("reference must be non-zero")
    return [value / reference for value in values]


def percentile(values: Sequence[float], q: float) -> float:
    """Percentile with an empty-input guard."""
    if not 0 <= q <= 100:
        raise ValueError("q must be within [0, 100]")
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=float), q))


def summarize_series(values: Sequence[float]) -> Dict[str, float]:
    """Mean / min / max / p50 / p95 summary of a series."""
    if not values:
        return {"mean": 0.0, "min": 0.0, "max": 0.0, "p50": 0.0, "p95": 0.0}
    array = np.asarray(values, dtype=float)
    return {
        "mean": float(array.mean()),
        "min": float(array.min()),
        "max": float(array.max()),
        "p50": float(np.percentile(array, 50)),
        "p95": float(np.percentile(array, 95)),
    }
