"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def format_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str] = ()) -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns = list(columns) if columns else list(rows[0].keys())
    rendered: List[List[str]] = [[_cell(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), max(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    header = " | ".join(column.ljust(width) for column, width in zip(columns, widths))
    separator = "-+-".join("-" * width for width in widths)
    body = "\n".join(
        " | ".join(value.ljust(width) for value, width in zip(line, widths)) for line in rendered
    )
    return f"{header}\n{separator}\n{body}"


#: Column-name suffixes the seed-replication engine appends to varying metrics.
STD_SUFFIX = "_std"
CI_SUFFIX = "_ci95"


def format_replicated_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] = (),
    show_std: bool = False,
) -> str:
    """Render seed-replicated rows, folding CI columns into ``mean ±ci`` cells.

    The experiment engine annotates every seed-varying metric column ``x``
    with companions ``x_std`` and ``x_ci95``.  This renderer collapses each
    such triple into a single ``mean ±ci95`` cell (optionally ``mean ±ci95
    (σ=std)`` with ``show_std``), leaving non-replicated columns untouched —
    so single-seed and replicated reports read the same way.
    """
    if not rows:
        return "(no rows)"
    display_rows: List[Dict[str, object]] = []
    for row in rows:
        display: Dict[str, object] = {}
        for column, value in row.items():
            if column.endswith(STD_SUFFIX) or column.endswith(CI_SUFFIX):
                continue
            ci = row.get(f"{column}{CI_SUFFIX}")
            if isinstance(value, (int, float)) and isinstance(ci, (int, float)):
                cell = f"{_cell(value)} ±{_cell(float(ci))}"
                if show_std:
                    std = row.get(f"{column}{STD_SUFFIX}", 0.0)
                    cell += f" (σ={_cell(float(std))})"
                display[column] = cell
            else:
                display[column] = value
        display_rows.append(display)
    return format_table(display_rows, columns)


def format_comparison(
    rows: Sequence[Mapping[str, object]],
    measured_key: str = "measured",
    paper_key: str = "paper",
) -> str:
    """Render paper-vs-measured rows, adding a ratio column when both are numeric."""
    augmented: List[Dict[str, object]] = []
    for row in rows:
        entry = dict(row)
        measured = row.get(measured_key)
        paper = row.get(paper_key)
        if isinstance(measured, (int, float)) and isinstance(paper, (int, float)) and paper:
            entry["ratio"] = f"{measured / paper:.2f}"
        else:
            entry["ratio"] = "-"
        augmented.append(entry)
    return format_table(augmented)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
