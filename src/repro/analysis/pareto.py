"""Pareto-frontier analysis for design-space exploration.

The DSE grid (:mod:`repro.experiments.dse_grid`) sweeps config axes —
scheduler tunables crossed with GPU hardware points — and every swept point
lands somewhere in a multi-objective space: deadline-miss rate and tail
latency should be low, utilization high, hardware cost low.  No single
scalar ranks such points; the useful output is the **Pareto frontier** —
the designs not dominated by any other design — plus, for each dominated
design, how many frontier points beat it.

Dominance here is **confidence-interval aware**.  Replicated experiments
(``--seeds N``) carry a Student-t 95 % half-width per objective, and a mean
difference inside the overlap of two CIs is noise, not signal.  Point ``a``
dominates ``b`` only when ``a`` is at least as good everywhere *by mean*
and strictly better on some objective *by more than the two CIs combined*:

    a.mean + a.ci < b.mean - b.ci        (for a minimized objective)

With zero CIs (single-seed runs) this degenerates to classic strict Pareto
dominance.  The conservative direction is deliberate: noisy data yields a
*larger* frontier, never a design discarded on statistical noise.

GPU cost is not a simulator input — no result depends on it — so it lives
here as a reference cost model (:func:`gpu_cost_per_hour`) applied at
analysis time, rather than as a :class:`~repro.gpu.spec.GpuSpec` field that
would perturb every scenario fingerprint without changing any behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.gpu.spec import GpuSpec, RTX_2080_TI

#: Senses an objective can have.
MINIMIZE = "min"
MAXIMIZE = "max"


@dataclass(frozen=True)
class Objective:
    """One axis of the multi-objective space.

    Attributes:
        name: the key under which points carry this objective's value.
        sense: ``"min"`` (smaller is better) or ``"max"`` (larger is better).
        label: display label for tables (defaults to ``name``).
    """

    name: str
    sense: str = MINIMIZE
    label: str = ""

    def __post_init__(self) -> None:
        if self.sense not in (MINIMIZE, MAXIMIZE):
            raise ValueError(f"sense must be '{MINIMIZE}' or '{MAXIMIZE}', got {self.sense!r}")
        if not self.label:
            object.__setattr__(self, "label", self.name)

    def signed(self, value: float) -> float:
        """The value mapped into minimization space (negated for ``max``)."""
        return value if self.sense == MINIMIZE else -value


@dataclass(frozen=True)
class ParetoPoint:
    """One evaluated design point.

    Attributes:
        key: stable identity for reports (e.g. the config-override string).
        values: objective name -> measured mean.
        ci: objective name -> 95 % CI half-width (absent/0 = exact).
        meta: free-form annotations carried through to the frontier rows
            (axis settings, backend name, ...).
    """

    key: str
    values: Mapping[str, float]
    ci: Mapping[str, float] = field(default_factory=dict)
    meta: Mapping[str, object] = field(default_factory=dict)

    def value(self, objective: Objective) -> float:
        return float(self.values[objective.name])

    def half_width(self, objective: Objective) -> float:
        return float(self.ci.get(objective.name, 0.0))


#: The DSE grid's canonical objective set.  ``utilization`` is the mean GPU
#: busy fraction — note the Clockwork backend never reports it (always 0),
#: so frontiers over clockwork-only slices should drop this objective.
DEFAULT_OBJECTIVES: Tuple[Objective, ...] = (
    Objective("miss_rate", MINIMIZE, "deadline-miss rate"),
    Objective("p99_ms", MINIMIZE, "p99 response (ms)"),
    Objective("utilization", MAXIMIZE, "GPU utilization"),
    Objective("gpu_cost", MINIMIZE, "GPU cost ($/h)"),
)


def dominates(a: ParetoPoint, b: ParetoPoint, objectives: Sequence[Objective]) -> bool:
    """CI-aware Pareto dominance: does ``a`` dominate ``b``?

    ``a`` dominates ``b`` iff, in minimization space, ``a``'s mean is no
    worse on *every* objective and on at least one objective ``a`` is
    better by more than the combined 95 % half-widths
    (``a.mean + a.ci < b.mean - b.ci``).  Ties on every objective (and any
    CI overlap on the would-be strict objective) mean no domination.
    """
    strictly_better = False
    for objective in objectives:
        a_mean = objective.signed(a.value(objective))
        b_mean = objective.signed(b.value(objective))
        if a_mean > b_mean:
            return False
        if a_mean + a.half_width(objective) < b_mean - b.half_width(objective):
            strictly_better = True
    return strictly_better


@dataclass(frozen=True)
class ParetoResult:
    """The frontier split of one point set.

    Attributes:
        frontier: non-dominated points, in input order.
        dominated: dominated points, in input order.
        dominated_by: point key -> number of frontier points dominating it
            (0 for frontier members).
        objectives: the objective set the split was computed under.
    """

    frontier: Tuple[ParetoPoint, ...]
    dominated: Tuple[ParetoPoint, ...]
    dominated_by: Mapping[str, int]
    objectives: Tuple[Objective, ...]


def pareto_frontier(
    points: Sequence[ParetoPoint], objectives: Sequence[Objective] = DEFAULT_OBJECTIVES
) -> ParetoResult:
    """Split ``points`` into the non-dominated frontier and the rest.

    O(n^2) pairwise dominance — design grids are tens to hundreds of points,
    so clarity wins over a divide-and-conquer frontier.  Duplicate keys are
    rejected (the key is the report identity).
    """
    if not objectives:
        raise ValueError("at least one objective is required")
    seen: set = set()
    for point in points:
        if point.key in seen:
            raise ValueError(f"duplicate point key {point.key!r}")
        seen.add(point.key)
        for objective in objectives:
            if objective.name not in point.values:
                raise ValueError(
                    f"point {point.key!r} is missing objective {objective.name!r}"
                )
    frontier: List[ParetoPoint] = []
    dominated: List[ParetoPoint] = []
    dominated_by: Dict[str, int] = {}
    for point in points:
        dominators = sum(
            1 for other in points if other is not point and dominates(other, point, objectives)
        )
        dominated_by[point.key] = dominators
        (dominated if dominators else frontier).append(point)
    # dominated_by counts *frontier* dominators for reporting: a point beaten
    # only by other dominated points is impossible under transitive dominance
    # with exact values, but CI-aware dominance is not transitive, so recount
    # against the frontier for a stable, meaningful "beaten by" number.
    frontier_points = tuple(frontier)
    for point in dominated:
        dominated_by[point.key] = sum(
            1 for other in frontier_points if dominates(other, point, objectives)
        ) or dominated_by[point.key]
    return ParetoResult(
        frontier=frontier_points,
        dominated=tuple(dominated),
        dominated_by=dominated_by,
        objectives=tuple(objectives),
    )


# ------------------------------------------------------------- cost model

#: Reference price of the anchor GPU (RTX 2080 Ti class) in $/hour, the
#: scale every swept hardware point is priced against.
ANCHOR_COST_PER_HOUR = 1.50

#: Compute-vs-bandwidth split of the cost model: SMs carry most of the die.
_SM_WEIGHT = 0.7
_BW_WEIGHT = 0.3


def gpu_cost_per_hour(
    gpu: GpuSpec, anchor: GpuSpec = RTX_2080_TI, anchor_cost: float = ANCHOR_COST_PER_HOUR
) -> float:
    """Deterministic $/hour estimate for a swept GPU hardware point.

    A linear blend of SM count and memory bandwidth relative to the anchor
    GPU: ``anchor_cost * (0.7 * sms/anchor_sms + 0.3 * bw/anchor_bw)``.
    The anchor itself therefore costs exactly ``anchor_cost``.  This is an
    *analysis-time* model — simulation results never depend on it — so
    changing it re-prices old cached results consistently.
    """
    if anchor_cost <= 0:
        raise ValueError("anchor_cost must be positive")
    return anchor_cost * (
        _SM_WEIGHT * gpu.num_sms / anchor.num_sms
        + _BW_WEIGHT * gpu.memory_bandwidth_gbps / anchor.memory_bandwidth_gbps
    )


# --------------------------------------------------- rows <-> points bridge

def points_from_rows(
    rows: Sequence[Mapping[str, object]],
    objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
    key_columns: Optional[Sequence[str]] = None,
    ci_suffix: str = "_ci95",
) -> List[ParetoPoint]:
    """Lift report rows into :class:`ParetoPoint` objects.

    Rows that lack a numeric value for *any* objective are skipped (e.g. a
    backend that does not report utilization in a mixed-backend table).
    ``key_columns`` names the identity columns (defaults to every column
    that is not an objective or a CI companion); ``<objective><ci_suffix>``
    columns, when present and numeric, become the point's CI half-widths.
    """
    objective_names = {objective.name for objective in objectives}
    points: List[ParetoPoint] = []
    for row in rows:
        values: Dict[str, float] = {}
        ci: Dict[str, float] = {}
        usable = True
        for objective in objectives:
            value = row.get(objective.name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                usable = False
                break
            values[objective.name] = float(value)
            half = row.get(f"{objective.name}{ci_suffix}")
            if isinstance(half, (int, float)) and not isinstance(half, bool):
                ci[objective.name] = float(half)
        if not usable:
            continue
        if key_columns is None:
            identity = [
                (column, row[column])
                for column in row
                if column not in objective_names
                and not str(column).endswith(ci_suffix)
                and not str(column).endswith("_std")
            ]
        else:
            identity = [(column, row.get(column, "-")) for column in key_columns]
        key = " ".join(f"{column}={value}" for column, value in identity)
        points.append(
            ParetoPoint(key=key, values=values, ci=ci, meta=dict(identity))
        )
    return points


def frontier_rows(result: ParetoResult) -> List[Dict[str, object]]:
    """Flatten a :class:`ParetoResult` into report rows (frontier first).

    Each row carries the point's meta columns, its objective values, a
    ``frontier`` yes/no column and ``dominated_by`` (0 on the frontier).
    """
    rows: List[Dict[str, object]] = []
    for group, on_frontier in ((result.frontier, True), (result.dominated, False)):
        for point in group:
            row: Dict[str, object] = dict(point.meta)
            for objective in result.objectives:
                row[objective.name] = point.value(objective)
            row["frontier"] = "yes" if on_frontier else "no"
            row["dominated_by"] = result.dominated_by[point.key]
            rows.append(row)
    return rows
