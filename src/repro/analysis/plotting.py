"""ASCII charts for quick terminal inspection of experiment results."""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple


def ascii_bar_chart(values: Mapping[str, float], width: int = 50, title: str = "") -> str:
    """Horizontal bar chart of labelled values."""
    if not values:
        return "(no data)"
    maximum = max(values.values()) or 1.0
    label_width = max(len(label) for label in values)
    lines = [title] if title else []
    for label, value in values.items():
        bar = "#" * max(1, int(round(width * value / maximum))) if value > 0 else ""
        lines.append(f"{label.ljust(label_width)} | {bar} {value:.2f}")
    return "\n".join(lines)


def ascii_series(
    points: Sequence[Tuple[float, float]],
    height: int = 12,
    width: int = 60,
    title: str = "",
) -> str:
    """Scatter-style ASCII plot of an (x, y) series."""
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        column = int((x - x_min) / x_span * (width - 1))
        row = height - 1 - int((y - y_min) / y_span * (height - 1))
        grid[row][column] = "*"
    lines = [title] if title else []
    lines.extend("".join(row) for row in grid)
    lines.append(f"x: [{x_min:.1f}, {x_max:.1f}]  y: [{y_min:.2f}, {y_max:.2f}]")
    return "\n".join(lines)
