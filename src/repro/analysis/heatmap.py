"""Text-grid ablation heatmaps over experiment report rows.

Turns a flat list of dict rows (the shape every experiment's ``run()``
returns and ``--json`` emits) into a two-axis matrix: one categorical row
column on the y axis, one on the x axis, and the mean of a numeric metric
column in each cell.  Rendering is plain aligned text — the terminal
counterpart of a matplotlib ``imshow`` ablation figure — plus a CSV matrix
export for spreadsheets/plotting.

Aggregation is the arithmetic mean because a (y, x) cell may cover several
rows (e.g. the DSE grid's ``miss_rate`` over ``window`` x ``sms`` averages
across the remaining swept axes); cells with no rows render as ``-`` (CSV:
empty).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple


def _check_columns(rows: Sequence[Mapping[str, object]], *names: str) -> None:
    if not rows:
        raise ValueError("no rows to render a heatmap from")
    available = list(rows[0].keys())
    for name in names:
        if name not in rows[0]:
            raise ValueError(
                f"unknown heatmap column {name!r}; available: {', '.join(available)}"
            )


def _axis_values(rows: Sequence[Mapping[str, object]], column: str) -> List[object]:
    """Distinct axis values in first-appearance order (stable, seed-free)."""
    seen: List[object] = []
    for row in rows:
        value = row[column]
        if value not in seen:
            seen.append(value)
    return seen


def heatmap_cells(
    rows: Sequence[Mapping[str, object]],
    x: str,
    y: str,
    metric: str,
) -> Tuple[List[object], List[object], Dict[Tuple[object, object], float]]:
    """Group ``rows`` into a ``(y, x) -> mean(metric)`` matrix.

    Returns ``(x_values, y_values, cells)``; missing combinations are simply
    absent from ``cells``.
    """
    _check_columns(rows, x, y, metric)
    x_values = _axis_values(rows, x)
    y_values = _axis_values(rows, y)
    sums: Dict[Tuple[object, object], float] = {}
    counts: Dict[Tuple[object, object], int] = {}
    for row in rows:
        value = row[metric]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(
                f"heatmap metric {metric!r} must be numeric; got {value!r}"
            )
        key = (row[y], row[x])
        sums[key] = sums.get(key, 0.0) + float(value)
        counts[key] = counts.get(key, 0) + 1
    cells = {key: sums[key] / counts[key] for key in sums}
    return x_values, y_values, cells


def _format_value(value: float) -> str:
    text = f"{value:.4f}".rstrip("0").rstrip(".")
    return text if text and text != "-0" else "0"


def render_heatmap(
    rows: Sequence[Mapping[str, object]],
    x: str,
    y: str,
    metric: str,
) -> str:
    """Render the mean of ``metric`` over ``y`` (rows) x ``x`` (columns)."""
    x_values, y_values, cells = heatmap_cells(rows, x, y, metric)
    header_cells = [f"{y}\\{x}"] + [str(value) for value in x_values]
    lines: List[List[str]] = [header_cells]
    for y_value in y_values:
        line = [str(y_value)]
        for x_value in x_values:
            mean = cells.get((y_value, x_value))
            line.append("-" if mean is None else _format_value(mean))
        lines.append(line)
    widths = [max(len(line[i]) for line in lines) for i in range(len(header_cells))]
    rendered = [
        " | ".join(cell.ljust(width) for cell, width in zip(line, widths))
        for line in lines
    ]
    rendered.insert(1, "-+-".join("-" * width for width in widths))
    title = f"mean {metric} over {y} (rows) x {x} (cols)"
    return "\n".join([title] + rendered)


def heatmap_csv(
    rows: Sequence[Mapping[str, object]],
    x: str,
    y: str,
    metric: str,
) -> str:
    """The same matrix as :func:`render_heatmap`, as CSV (empty = no rows)."""
    x_values, y_values, cells = heatmap_cells(rows, x, y, metric)
    lines = [",".join([f"{y}\\{x}"] + [str(value) for value in x_values])]
    for y_value in y_values:
        cols = [str(y_value)]
        for x_value in x_values:
            mean = cells.get((y_value, x_value))
            cols.append("" if mean is None else repr(mean))
        lines.append(",".join(cols))
    return "\n".join(lines) + "\n"
