"""DARIS reproduction: an oversubscribed spatio-temporal scheduler for real-time DNN inference.

This package reproduces the system described in "DARIS: An Oversubscribed
Spatio-Temporal Scheduler for Real-Time DNN Inference on GPUs" (DAC 2025) on a
calibrated discrete-event GPU simulator.  The public surface most users need:

* :func:`repro.dnn.build_model` — calibrated DNN workload models,
* :func:`repro.rt.table2_taskset` — the paper's task sets,
* :class:`repro.scheduler.DarisConfig` / :class:`repro.scheduler.DarisScheduler`
  — the scheduler itself,
* :func:`repro.experiments.run_daris_scenario` — one-call scenario execution,
* :mod:`repro.experiments` — per-figure/table reproduction harnesses,
* :mod:`repro.backends` — the pluggable scheduler-backend registry (DARIS
  plus every baseline behind one scenario API), and
* :mod:`repro.baselines` — the batching / GSlice / Clockwork / RTGPU baselines.
"""

from repro.dnn import build_model, available_models
from repro.rt import table2_taskset, mixed_taskset, make_taskset, Priority
from repro.scheduler import DarisConfig, DarisScheduler, Policy
from repro.backends import backend_names, get_backend
from repro.experiments import (
    ResultCache,
    ScenarioRequest,
    run_cached_scenarios,
    run_daris_scenario,
    run_experiment,
    run_scenarios_parallel,
)
from repro.sim import Simulator, RngFactory
from repro.sim.workload import WorkloadSpec
from repro.gpu import GpuPlatform, PlatformConfig, RTX_2080_TI

__version__ = "1.0.0"

__all__ = [
    "build_model",
    "available_models",
    "table2_taskset",
    "mixed_taskset",
    "make_taskset",
    "Priority",
    "DarisConfig",
    "DarisScheduler",
    "Policy",
    "run_daris_scenario",
    "ScenarioRequest",
    "ResultCache",
    "run_cached_scenarios",
    "run_experiment",
    "run_scenarios_parallel",
    "Simulator",
    "RngFactory",
    "WorkloadSpec",
    "backend_names",
    "get_backend",
    "GpuPlatform",
    "PlatformConfig",
    "RTX_2080_TI",
    "__version__",
]
