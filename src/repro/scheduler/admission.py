"""Online admission test and migration (paper Section IV-B1).

LP jobs (and, in the Overload+HPA variant, HP jobs) are admitted into a
context only if the active utilization leaves room (Equations 11-12).  When
the task's own context fails the test, the other contexts are probed as
migration candidates and the job migrates to the admissible context with the
earliest predicted finish time; if no context passes, the job is rejected.

In addition to the utilization test, the controller can require the context's
*predicted finish time* for the job (the same estimate the paper uses to rank
migration candidates) to fall before the job's absolute deadline.  Admitting a
job that is already predicted to miss only wastes GPU time on late work, so
DARIS rejects it; this keeps the accepted-job deadline-miss rate low even when
a context is heavily backlogged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.rt.task import Job, Priority, Task
from repro.rt.utilization import remaining_utilization
from repro.scheduler.config import DarisConfig


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of the admission test for one job."""

    admitted: bool
    context_index: int
    migrated: bool
    reason: str = ""


class AdmissionController:
    """Tracks per-context active utilization and runs the admission test."""

    def __init__(self, config: DarisConfig, tasks: Iterable[Task]):
        self.config = config
        self._tasks = list(tasks)
        self._active_low: List[Dict[int, int]] = [
            {} for _ in range(config.num_contexts)
        ]  # context -> task_id -> active job count
        self._active_high: List[Dict[int, int]] = [
            {} for _ in range(config.num_contexts)
        ]
        self._task_by_id = {task.task_id: task for task in self._tasks}
        # HP tasks never migrate, so their context assignment is fixed once
        # the offline phase ran; cache the per-context HP task lists instead
        # of filtering the whole task list on every admission probe.
        self._hp_tasks_by_context: List[List[Task]] = [
            [
                task
                for task in self._tasks
                if task.priority is Priority.HIGH and task.context_index == index
            ]
            for index in range(config.num_contexts)
        ]
        # Hot-path invariants of the fused probe in :meth:`decide`.
        self._num_contexts = config.num_contexts
        self._streams_f = float(config.streams_per_context)

    # ----------------------------------------------------------- bookkeeping

    def register_admission(self, job: Job, context_index: int) -> None:
        """Record that ``job`` became active in ``context_index``."""
        table = self._table_for(job.priority)[context_index]
        table[job.task.task_id] = table.get(job.task.task_id, 0) + 1

    def register_completion(self, job: Job, context_index: int) -> None:
        """Record that ``job`` finished (or was abandoned) in ``context_index``."""
        table = self._table_for(job.priority)[context_index]
        count = table.get(job.task.task_id, 0)
        if count <= 1:
            table.pop(job.task.task_id, None)
        else:
            table[job.task.task_id] = count - 1

    def _table_for(self, priority: Priority) -> List[Dict[int, int]]:
        return self._active_high if priority is Priority.HIGH else self._active_low

    # ----------------------------------------------------------- utilization

    def high_priority_utilization(self, context_index: int) -> float:
        """Equation 4: total utilization of HP tasks assigned to the context."""
        total = 0.0
        for task in self._hp_tasks_by_context[context_index]:
            total += task.utilization()
        return total

    def active_low_utilization(self, context_index: int) -> float:
        """Equation 7's LP component: utilization of LP tasks with an active job."""
        task_by_id = self._task_by_id
        total = 0.0
        for task_id, count in self._active_low[context_index].items():
            if count > 0:
                total += task_by_id[task_id].utilization()
        return total

    def active_high_utilization(self, context_index: int) -> float:
        """Utilization of HP tasks with an active job (used by Overload+HPA)."""
        task_by_id = self._task_by_id
        total = 0.0
        for task_id, count in self._active_high[context_index].items():
            if count > 0:
                total += task_by_id[task_id].utilization()
        return total

    def remaining(self, context_index: int) -> float:
        """Equation 11: remaining LP capacity of one context."""
        return remaining_utilization(
            self.config.streams_per_context, self.high_priority_utilization(context_index)
        )

    # -------------------------------------------------------------- the test

    def utilization_passes(self, job: Job, context_index: int) -> bool:
        """Equation 12 for one candidate context."""
        utilization = job.task.utilization()
        if job.priority is Priority.LOW:
            return (
                self.active_low_utilization(context_index) + utilization
                < self.remaining(context_index)
            )
        # HP admission (Overload+HPA): HP jobs may use the full context
        # capacity, so they are tested against Ns with their own active load.
        return (
            self.active_high_utilization(context_index) + utilization
            < float(self.config.streams_per_context)
        )

    def context_passes(
        self,
        job: Job,
        context_index: int,
        predicted_finish: Optional[Callable[[int], float]] = None,
        finish_inflation: float = 1.0,
    ) -> bool:
        """Utilization test plus the predicted-finish feasibility check.

        ``finish_inflation`` supports deadline-aware shedding under GPU
        degradation: the predicted *remaining* work (everything past the
        job's release) is stretched by the factor — e.g. ``1 / slowdown``
        while a thermal-throttle window is open — so jobs that can only make
        their deadline on a healthy GPU are shed instead of admitted.  The
        default 1.0 reproduces the historical test exactly.
        """
        if not self.utilization_passes(job, context_index):
            return False
        if predicted_finish is None:
            return True
        finish_estimate = predicted_finish(context_index) + job.task.mret_total()
        if finish_inflation != 1.0:
            finish_estimate = job.release_time + finish_inflation * (
                finish_estimate - job.release_time
            )
        return finish_estimate <= job.absolute_deadline + 1e-9

    def _utilization_passes_fused(self, index: int, job_util: float, is_low: bool) -> bool:
        """Equation 12 with the per-probe method layers flattened.

        Identical arithmetic (same summation order, same comparison) to
        :meth:`utilization_passes`; exists because :meth:`decide` runs this up
        to ``num_contexts`` times per release and the method-call tower
        dominates the probe cost.
        """
        task_by_id = self._task_by_id
        if is_low:
            hp = 0.0
            for task in self._hp_tasks_by_context[index]:
                hp += task.utilization()
            total = 0.0
            for task_id, count in self._active_low[index].items():
                if count > 0:
                    total += task_by_id[task_id].utilization()
            return total + job_util < self._streams_f - hp
        total = 0.0
        for task_id, count in self._active_high[index].items():
            if count > 0:
                total += task_by_id[task_id].utilization()
        return total + job_util < self._streams_f

    def decide(
        self,
        job: Job,
        predicted_finish: Callable[[int], float],
        finish_inflation: float = 1.0,
    ) -> AdmissionDecision:
        """Run the admission test, probing migration candidates when needed.

        Args:
            job: the released job.
            predicted_finish: callable mapping a context index to its predicted
                finish time for this job (used both to rank admissible
                candidates and to reject jobs that are already bound to miss).
            finish_inflation: degraded-mode stretch applied to predicted
                finish times (see :meth:`context_passes`); a rejection under
                inflation > 1 reports reason ``"shed"``.
        """
        task = job.task
        needs_test = (
            self.config.admission_enabled
            and (job.priority is Priority.LOW or self.config.hp_admission)
        )
        home = task.context_index
        if not needs_test:
            return AdmissionDecision(admitted=True, context_index=home, migrated=False, reason="exempt")

        is_low = job.priority is Priority.LOW
        job_util = task.utilization()
        mret = task.mret_total()
        deadline = job.absolute_deadline + 1e-9
        release = job.release_time

        # Home probe (context_passes flattened).
        if self._utilization_passes_fused(home, job_util, is_low):
            finish_estimate = predicted_finish(home) + mret
            if finish_inflation != 1.0:
                finish_estimate = release + finish_inflation * (finish_estimate - release)
            if finish_estimate <= deadline:
                return AdmissionDecision(
                    admitted=True, context_index=home, migrated=False, reason="home"
                )

        may_migrate = self.config.lp_migration and is_low
        if may_migrate:
            # Fused probe: test each candidate once, keeping the admissible
            # one with the earliest predicted finish.  Equivalent to
            # collecting every passing candidate and taking the min by
            # ``(predicted_finish, index)`` — candidates are visited in index
            # order and only a strictly earlier finish displaces the best —
            # but without a second ``predicted_finish`` evaluation per
            # candidate, and dominated probes exit before the deadline check.
            best = -1
            best_finish = 0.0
            for index in range(self._num_contexts):
                if index == home:
                    continue
                if not self._utilization_passes_fused(index, job_util, True):
                    continue
                predicted = predicted_finish(index)
                if best >= 0 and predicted >= best_finish:
                    continue  # dominated: cannot beat the current best
                finish_estimate = predicted + mret
                if finish_inflation != 1.0:
                    finish_estimate = release + finish_inflation * (finish_estimate - release)
                if finish_estimate > deadline:
                    continue
                best = index
                best_finish = predicted
            if best >= 0:
                return AdmissionDecision(
                    admitted=True, context_index=best, migrated=True, reason="migrated"
                )
        reason = "shed" if finish_inflation > 1.0 else "rejected"
        return AdmissionDecision(admitted=False, context_index=home, migrated=False, reason=reason)
