"""Stage priority levels (paper Section IV-B2).

Task priorities (HP / LP) are extended to eight fixed levels at stage
granularity.  Within each level, EDF on the stages' virtual deadlines breaks
ties.  The ordering implements the paper's three rules:

1. stages of HP tasks always precede stages of LP tasks,
2. the *last* stage of a job is elevated (finishing a nearly-done job
   prevents an overall deadline miss), and
3. a stage whose predecessor missed its virtual deadline is elevated (to stop
   a cascade of misses within the job).

Each of rules 2 and 3 can be disabled individually, which yields the "No
Last" and "No Prior" ablations of Figure 8; disabling the HP/LP separation
("No Fixed") collapses everything to a single EDF level.
"""

from __future__ import annotations

from typing import Tuple

from repro.rt.task import Priority, StageInstance
from repro.scheduler.config import DarisConfig

NUM_PRIORITY_LEVELS = 8

_LAST_AND_MISS = 0
_LAST_ONLY = 1
_MISS_ONLY = 2
_PLAIN = 3
_LEVELS_PER_PRIORITY = 4


def stage_priority_level(stage: StageInstance, config: DarisConfig) -> int:
    """Fixed priority level of a stage (0 = highest, 7 = lowest)."""
    if not config.fixed_priority_levels:
        return 0

    is_last = stage.is_last and config.prioritize_last_stage
    predecessor_missed = stage.predecessor_missed and config.boost_missed_predecessor

    if is_last and predecessor_missed:
        within = _LAST_AND_MISS
    elif is_last:
        within = _LAST_ONLY
    elif predecessor_missed:
        within = _MISS_ONLY
    else:
        within = _PLAIN

    base = 0 if stage.priority is Priority.HIGH else _LEVELS_PER_PRIORITY
    return base + within


def stage_queue_key(stage: StageInstance, config: DarisConfig, sequence: int) -> Tuple[int, float, int]:
    """Ready-queue ordering key: (fixed level, EDF virtual deadline, FIFO sequence)."""
    return (stage_priority_level(stage, config), stage.virtual_deadline, sequence)
