"""DARIS: the deadline-aware real-time DNN inference scheduler (paper Section IV).

The scheduler package contains the paper's primary contribution:

* :mod:`repro.scheduler.config` — the ``Nc x Ns OS`` configuration space and
  the three partitioning policies (STR, MPS, MPS+STR),
* :mod:`repro.scheduler.offline` — AFET initialization and the
  utilization-balancing initial context assignment (Algorithm 1),
* :mod:`repro.scheduler.admission` — the online utilization-based admission
  test (Equations 11-12) with migration to the context with the earliest
  predicted finish time,
* :mod:`repro.scheduler.priorities` — the eight fixed stage priority levels
  with EDF tie-breaking,
* :mod:`repro.scheduler.daris` — the online scheduler binding everything to
  the simulated GPU, and
* :mod:`repro.scheduler.ablations` — the module-contribution variants of
  Figure 8 (No Staging / No Last / No Prior / No Fixed).
"""

from repro.scheduler.config import DarisConfig, Policy
from repro.scheduler.priorities import stage_priority_level, stage_queue_key, NUM_PRIORITY_LEVELS
from repro.scheduler.offline import populate_contexts, initialize_timing
from repro.scheduler.admission import AdmissionController, AdmissionDecision
from repro.scheduler.daris import DarisScheduler
from repro.scheduler.ablations import (
    ablation_no_staging,
    ablation_no_last,
    ablation_no_prior,
    ablation_no_fixed,
    ABLATIONS,
)

__all__ = [
    "DarisConfig",
    "Policy",
    "stage_priority_level",
    "stage_queue_key",
    "NUM_PRIORITY_LEVELS",
    "populate_contexts",
    "initialize_timing",
    "AdmissionController",
    "AdmissionDecision",
    "DarisScheduler",
    "ablation_no_staging",
    "ablation_no_last",
    "ablation_no_prior",
    "ablation_no_fixed",
    "ABLATIONS",
]
