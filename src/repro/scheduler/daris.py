"""The DARIS online scheduler (paper Figure 3 and Section IV-B).

``DarisScheduler`` binds a task set to the simulated GPU platform:

* periodic job releases trigger virtual-deadline assignment and the admission
  test (with migration),
* admitted stages are kept in per-context ready queues ordered by the eight
  fixed priority levels + EDF,
* whenever a context has an idle stream, the highest-priority ready stage is
  dispatched to it,
* completed stages feed the MRET estimators, may raise the priority of their
  successor (missed virtual deadline), and completed jobs feed the metrics.

With one context (the STR policy) the per-context queue degenerates into the
single global queue the paper describes.
"""

from __future__ import annotations

import gc
import heapq
import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dnn.batching import batched_stage_specs
from repro.gpu.calibration import DEFAULT_CALIBRATION, GpuCalibration
from repro.gpu.kernel import KernelInstance
from repro.gpu.platform import GpuPlatform, PlatformConfig
from repro.gpu.spec import GpuSpec, RTX_2080_TI
from repro.rt.deadlines import assign_virtual_deadlines
from repro.rt.metrics import FaultImpact, MetricsCollector, ScenarioMetrics
from repro.rt.task import Job, JobState, Priority, StageInstance, Task
from repro.rt.taskset import TaskSetSpec
from repro.rt.trace import JobTraceRecord, StageTraceRecord, TraceRecorder
from repro.scheduler.admission import AdmissionController
from repro.scheduler.config import DarisConfig
from repro.scheduler.offline import initialize_timing, populate_contexts
from repro.scheduler.priorities import stage_queue_key
from repro.sim.faults import (
    DEFAULT_POLICY,
    FaultInjector,
    FaultSpec,
    ResiliencePolicy,
    deferred_launch,
)
from repro.sim.rng import RngFactory
from repro.sim.simulator import Simulator
from repro.sim.workload import PERIODIC_WORKLOAD, ReleaseStream, WorkloadSpec


class _ContextBacklog:
    """Incrementally maintained MRET backlog of one context.

    Tracks, per task, how many ready-queue entries sit at each stage index and
    how many active jobs currently point at each stage.  The backlog in
    milliseconds is then recomputed from the *current* MRET stage values in
    O(tasks x stages), independent of the ready-queue length — the reference
    computation (:meth:`DarisScheduler._predicted_finish_reference`) walks the
    whole queue and every active job on each admission probe instead.

    Numerical caveat: unlike the engine fast paths, this sum is *not* bitwise
    identical to the reference scan — terms are grouped per task (and summed
    via suffix accumulation) rather than in ready-queue order, so the result
    can differ from the reference in the last ulp.  The admission test
    compares the prediction against a deadline with an explicit 1e-9 slack,
    so a divergence would require the estimate to land within rounding error
    of that boundary; the trace-identity tests pin representative scenarios,
    and ``DarisScheduler.incremental_backlog_enabled = False`` restores the
    exact reference computation if ever needed.
    """

    __slots__ = ("_tasks", "_queued", "_active", "_entries", "_cache")

    def __init__(self, tasks: Sequence[Task]):
        self._tasks = tasks
        self._queued: Dict[int, List[int]] = {t.task_id: [0] * t.num_stages for t in tasks}
        self._active: Dict[int, List[int]] = {t.task_id: [0] * t.num_stages for t in tasks}
        # Total number of queued stages + active jobs per task: tasks with no
        # entries contribute nothing and are skipped entirely.
        self._entries: Dict[int, int] = {t.task_id: 0 for t in tasks}
        # task_id -> [timing version, contribution]; a contribution is valid
        # while the counters are untouched and the MRET model unchanged
        # (counter mutations invalidate by setting the version to -1).
        self._cache: Dict[int, List] = {t.task_id: [-1, 0.0] for t in tasks}

    def stage_enqueued(self, task_id: int, stage_index: int) -> None:
        self._queued[task_id][stage_index] += 1
        self._entries[task_id] += 1
        self._cache[task_id][0] = -1

    def stage_dequeued(self, task_id: int, stage_index: int) -> None:
        self._queued[task_id][stage_index] -= 1
        self._entries[task_id] -= 1
        self._cache[task_id][0] = -1

    def job_entered(self, task_id: int, stage_index: int) -> None:
        self._active[task_id][stage_index] += 1
        self._entries[task_id] += 1
        self._cache[task_id][0] = -1

    def job_left(self, task_id: int, stage_index: int) -> None:
        self._active[task_id][stage_index] -= 1
        self._entries[task_id] -= 1
        self._cache[task_id][0] = -1

    def job_advanced(self, task_id: int, old_stage: int, new_stage: int) -> None:
        """Fused ``job_left(old) + job_entered(new)`` (entry count unchanged)."""
        active = self._active[task_id]
        active[old_stage] -= 1
        active[new_stage] += 1
        self._cache[task_id][0] = -1

    def total_ms(self) -> float:
        """Backlog: queued-stage MRETs plus every active job's remaining MRET."""
        backlog = 0.0
        entries = self._entries
        cache = self._cache
        for task in self._tasks:
            task_id = task.task_id
            if not entries[task_id]:
                continue
            timing = task.timing
            cached = cache[task_id]
            if cached[0] == timing.version:
                backlog += cached[1]
                continue
            queued = self._queued[task_id]
            active = self._active[task_id]
            contribution = 0.0
            suffix = 0.0  # sum of stage values from stage j to the last stage
            for j in range(len(queued) - 1, -1, -1):
                value = timing.stage_value(j)
                suffix += value
                queued_count = queued[j]
                if queued_count:
                    contribution += queued_count * value
                active_count = active[j]
                if active_count:
                    contribution += active_count * suffix
            cached[0] = timing.version
            cached[1] = contribution
            backlog += contribution
        return backlog


class DarisScheduler:
    """Deadline-aware real-time DNN inference scheduler on the simulated GPU."""

    # Class-level switch used by the equivalence tests: when False, admission
    # probes use the reference O(queue) backlog scan instead of the
    # incrementally maintained counters.
    incremental_backlog_enabled: bool = True

    def __init__(
        self,
        simulator: Simulator,
        taskset: TaskSetSpec,
        config: DarisConfig,
        gpu: GpuSpec = RTX_2080_TI,
        calibration: GpuCalibration = DEFAULT_CALIBRATION,
        rng: Optional[RngFactory] = None,
        trace: Optional[TraceRecorder] = None,
        workload: Optional[WorkloadSpec] = None,
        faults: Optional[FaultSpec] = None,
        resilience: Optional[ResiliencePolicy] = None,
    ):
        self.simulator = simulator
        self.config = config
        self.gpu = gpu
        self.calibration = calibration
        self.rng = rng if rng is not None else RngFactory(seed=0)
        self.workload = workload if workload is not None else PERIODIC_WORKLOAD
        if self.workload.saturated:
            raise ValueError(
                "DARIS schedules released jobs against deadlines; saturated"
                " workloads (no arrival process) do not apply"
            )
        self.metrics = MetricsCollector()
        self.metrics.set_warmup(config.warmup_ms)
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.resilience = resilience if resilience is not None else DEFAULT_POLICY
        self.injector = FaultInjector(faults, rng=self.rng, policy=self.resilience)
        # Per-component flags keep the fault-free hot paths untouched.
        spec = self.injector.spec
        self._drop_faults = spec.requests is not None and spec.requests.drop_prob > 0.0
        self._launch_faults = spec.launch is not None and spec.launch.failure_prob > 0.0
        self._timeout_ms = self.injector.timeout_ms
        self._shed_degraded = self.resilience.shed_when_degraded and (
            spec.slowdown is not None or spec.crash is not None
        )
        self._timed_out_jobs: set = set()

        self.platform = GpuPlatform(
            simulator,
            PlatformConfig(
                num_contexts=config.num_contexts,
                streams_per_context=config.streams_per_context,
                oversubscription=config.oversubscription,
            ),
            spec=gpu,
            calibration=calibration,
            noise_rng=self.rng.stream("gpu-noise"),
        )

        self.tasks: List[Task] = [self._build_task(spec) for spec in taskset.tasks]
        self._task_by_id = {task.task_id: task for task in self.tasks}

        # Offline phase: AFET seeding plus Algorithm 1 context assignment.
        initialize_timing(self.tasks, config, gpu=gpu, calibration=calibration, seed=self.rng.seed)
        populate_contexts(self.tasks, config.num_contexts)

        self.admission = AdmissionController(config, self.tasks)
        self._queues: List[List[Tuple[Tuple[int, float, int], StageInstance]]] = [
            [] for _ in range(config.num_contexts)
        ]
        self._sequence = itertools.count()
        self._active_jobs: List[Dict[int, Job]] = [dict() for _ in range(config.num_contexts)]
        self._backlogs: List[_ContextBacklog] = [
            _ContextBacklog(self.tasks) for _ in range(config.num_contexts)
        ]

    # ------------------------------------------------------------------ setup

    def _build_task(self, spec) -> Task:
        """Instantiate the runtime task, applying staging and batching choices."""
        model = spec.model
        if not self.config.staging:
            model = model.merged()
        if spec.batch_size > 1:
            stages = batched_stage_specs(model, spec.batch_size)
        else:
            stages = list(model.stages)
        return Task(spec, stages=stages, window_size=self.config.window_size)

    def start(self, horizon_ms: float) -> None:
        """Schedule every task's job releases up to ``horizon_ms``.

        The release process per task comes from the scheduler's
        :class:`~repro.sim.workload.WorkloadSpec`, driven through the shared
        :class:`~repro.sim.workload.ReleaseStream` pipeline (periodic at the
        task's period/phase by default; poisson/mmpp at the same mean rate,
        trace replay, jitter and diurnal modulation all come for free).  The
        default workload reproduces the historical behaviour exactly (same
        arrival times, same RNG stream usage).
        """
        if horizon_ms <= 0:
            raise ValueError("horizon must be positive")
        self.injector.install(self.simulator, self.platform, horizon_ms)
        stream = ReleaseStream(self.workload, self.rng)
        for task in self.tasks:
            stream.drive(
                self.simulator,
                horizon_ms,
                task_id=task.task_id,
                period_ms=task.spec.period_ms,
                phase_ms=task.spec.phase_ms,
                callback=lambda event, task=task: self._on_release(task, event.time),
            )

    def run(self, horizon_ms: float) -> ScenarioMetrics:
        """Run the scenario and return the summary metrics.

        The cyclic garbage collector is paused for the duration of the event
        loop: a scenario run allocates hundreds of thousands of short-lived
        objects (jobs, stages, kernels, heap entries), and the resulting
        generation-0 scans account for ~15% of the wall time.  The deferred
        cyclic garbage (job <-> stage back references) is collected as soon as
        the collector is re-enabled.
        """
        self.start(horizon_ms)
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self.simulator.run_until(horizon_ms)
        finally:
            if gc_was_enabled:
                gc.enable()
        return self.metrics.summarize(
            horizon_ms,
            gpu_utilization=self.platform.average_utilization(),
            fault_impact=FaultImpact.from_summary(self.injector.summary()),
        )

    # -------------------------------------------------------------- releases

    def _on_release(self, task: Task, release_time: float) -> None:
        job = task.release_job(release_time)
        self.metrics.record_release(job)
        if self._drop_faults and self.injector.drop_request():
            job.state = JobState.DROPPED
            self.metrics.record_drop(job)
            return
        assign_virtual_deadlines(job)

        finish_inflation = 1.0
        if self._shed_degraded and self.injector.degraded:
            factor = self.injector.slowdown_factor
            if factor < 1.0:
                finish_inflation = 1.0 / factor
        decision = self.admission.decide(
            job, self._predicted_finish, finish_inflation=finish_inflation
        )
        if not decision.admitted:
            job.state = JobState.REJECTED
            task.jobs_rejected += 1
            self.metrics.record_rejection(job, shed=decision.reason == "shed")
            return

        context_index = decision.context_index
        job.state = JobState.ADMITTED
        job.context_index = context_index
        task.jobs_admitted += 1
        if decision.migrated and job.priority is Priority.LOW:
            # The paper's zero-delay migration: the LP task simply changes its
            # current context; no state transfer is modelled because weights
            # are resident in every context's address space under MPS.
            task.context_index = context_index
        self.metrics.record_admission(job)
        self.admission.register_admission(job, context_index)
        self._active_jobs[context_index][job.uid] = job
        self._backlogs[context_index].job_entered(job.task.task_id, job.current_stage_index)

        if self._timeout_ms is not None:
            self.simulator.schedule_after(
                self._timeout_ms,
                lambda _sim, job=job: self._on_request_timeout(job),
                label="request-timeout",
            )
        self._enqueue_stage(job.current_stage, context_index)
        self._dispatch(context_index)

    def _predicted_finish(self, context_index: int) -> float:
        """Predicted finish time of a new job in ``context_index``.

        The prediction adds the MRET backlog of the context's queued and
        active stages (divided by the stream count) to the current time.
        """
        if self.incremental_backlog_enabled:
            backlog = self._backlogs[context_index].total_ms()
        else:
            return self._predicted_finish_reference(context_index)
        return self.simulator.now + backlog / self.config.streams_per_context

    def _predicted_finish_reference(self, context_index: int) -> float:
        """Reference backlog scan (O(queue length + active jobs x stages))."""
        backlog = 0.0
        for _, stage in self._queues[context_index]:
            backlog += stage.job.task.timing.stage_value(stage.stage_index)
        for job in self._active_jobs[context_index].values():
            backlog += job.remaining_mret()
        return self.simulator.now + backlog / self.config.streams_per_context

    # ---------------------------------------------------------------- queues

    def _enqueue_stage(self, stage: StageInstance, context_index: int) -> None:
        stage.context_index = context_index
        stage.enqueue_time = self.simulator.now
        # stage_queue_key / stage_priority_level inlined (one call per stage
        # of every admitted job): (fixed level, EDF virtual deadline, FIFO).
        job = stage.job
        config = self.config
        if config.fixed_priority_levels:
            is_last = stage.stage_index == job.num_stages - 1 and config.prioritize_last_stage
            predecessor_missed = stage.predecessor_missed and config.boost_missed_predecessor
            if is_last:
                within = 0 if predecessor_missed else 1
            else:
                within = 2 if predecessor_missed else 3
            level = within if job.priority is Priority.HIGH else 4 + within
        else:
            level = 0
        key = (level, stage.virtual_deadline, next(self._sequence))
        heapq.heappush(self._queues[context_index], (key, stage))
        self._backlogs[context_index].stage_enqueued(job.task.task_id, stage.stage_index)

    def _dispatch(self, context_index: int) -> None:
        """Dispatch ready stages to idle streams of ``context_index``."""
        queue = self._queues[context_index]
        if not queue:
            return
        platform = self.platform
        backlog = self._backlogs[context_index]
        timed_out = self._timed_out_jobs
        pop = heapq.heappop
        while queue:
            stream_index = platform.idle_stream_index(context_index)
            if stream_index is None:
                return
            _, stage = pop(queue)
            backlog.stage_dequeued(stage.job.task.task_id, stage.stage_index)
            if timed_out and stage.job.uid in timed_out:
                # Lazily discard stages of client-abandoned jobs on pop.
                continue
            stage.dispatch_time = self.simulator.now
            # The unlabeled conversion is memoized on the stage spec; a
            # per-job label would force a fresh KernelSpec per dispatch and
            # is only cosmetic.
            spec = stage.spec.to_kernel_spec()
            if self._launch_faults:
                outcome = self.injector.launch_attempt()
                if outcome.retries:
                    self.metrics.record_launch_retries(stage.job, outcome.retries)
                if not outcome.succeeded or outcome.delay_ms > 0.0:
                    # Hold the stream slot through the retry delay so other
                    # stages cannot double-book it.
                    self.platform.reserve_stream(context_index, stream_index)
                    deferred_launch(
                        self.simulator,
                        outcome,
                        do_launch=lambda ctx=context_index, si=stream_index, sp=spec, st=stage: (
                            self.platform.launch(
                                ctx,
                                si,
                                sp,
                                on_complete=lambda kernel, stage=st: self._on_stage_complete(
                                    stage, kernel
                                ),
                            )
                        ),
                        on_failed=lambda ctx=context_index, si=stream_index, st=stage: (
                            self._on_launch_failed(st, ctx, si)
                        ),
                    )
                    continue
            platform.launch(
                context_index,
                stream_index,
                spec,
                on_complete=lambda kernel, stage=stage: self._on_stage_complete(stage, kernel),
            )

    # ---------------------------------------------------------------- faults

    def _on_launch_failed(self, stage: StageInstance, context_index: int, stream_index: int) -> None:
        """A stage exhausted its launch-retry budget: the owning job dies."""
        job = stage.job
        job.state = JobState.FAILED
        self.metrics.record_failure(job)
        self._backlogs[job.context_index].job_left(job.task.task_id, job.current_stage_index)
        self._active_jobs[job.context_index].pop(job.uid, None)
        self.admission.register_completion(job, job.context_index)
        self.platform.release_stream(context_index, stream_index)
        self._dispatch(context_index)

    def _on_request_timeout(self, job: Job) -> None:
        """Client abandonment: drop a job still waiting for its first dispatch."""
        if job.state is not JobState.ADMITTED:
            return
        if job.current_stage_index > 0 or job.current_stage.dispatch_time is not None:
            return  # already in service; completion stands
        job.state = JobState.TIMED_OUT
        self._timed_out_jobs.add(job.uid)
        self.metrics.record_timeout(job)
        context = job.context_index
        self._backlogs[context].job_left(job.task.task_id, job.current_stage_index)
        self._active_jobs[context].pop(job.uid, None)
        self.admission.register_completion(job, context)

    # ------------------------------------------------------------ completions

    def _on_stage_complete(self, stage: StageInstance, kernel: KernelInstance) -> None:
        now = self.simulator.now
        stage.start_time = kernel.start_time
        stage.finish_time = kernel.finish_time
        # The observed stage time is measured the way the paper's LibTorch
        # implementation measures it: from the submission of the stage's
        # kernels to the return of its synchronization point.  It therefore
        # includes the launch gaps and any SM sharing the stage experienced,
        # but not the time the stage spent waiting in the scheduler's ready
        # queue.
        dispatch_time = stage.dispatch_time if stage.dispatch_time is not None else kernel.start_time
        execution_time = kernel.finish_time - dispatch_time
        job = stage.job
        task = job.task

        task.timing.observe(stage.stage_index, execution_time)
        stage.missed_virtual_deadline = stage.finish_time > stage.virtual_deadline + 1e-9

        if self.trace.enabled:
            self.trace.record_stage(
                StageTraceRecord(
                    time_ms=now,
                    task_name=task.name,
                    priority=task.priority,
                    job_index=job.index,
                    stage_index=stage.stage_index,
                    execution_time_ms=execution_time,
                    mret_prediction_ms=stage.mret_at_release,
                    virtual_deadline_ms=stage.virtual_deadline,
                    missed_virtual_deadline=stage.missed_virtual_deadline,
                    context_index=stage.context_index,
                )
            )

        backlog = self._backlogs[job.context_index]
        old_index = job.current_stage_index
        job.current_stage_index = new_index = old_index + 1  # job.advance() inlined
        if new_index >= job.num_stages:
            backlog.job_left(task.task_id, old_index)
            self._complete_job(job, now)
        else:
            backlog.job_advanced(task.task_id, old_index, new_index)
            next_stage = job.stages[new_index]
            next_stage.predecessor_missed = stage.missed_virtual_deadline
            next_context = self._next_stage_context(job, stage.context_index)
            self._enqueue_stage(next_stage, next_context)
            if next_context != stage.context_index:
                self._move_active_job(job, stage.context_index, next_context)
            self._dispatch(next_context)

        # The completed stage freed a stream slot in its context.
        self._dispatch(stage.context_index)

    def _next_stage_context(self, job: Job, current_context: int) -> int:
        """Context for the job's next stage (zero-delay stage migration for LP)."""
        if not self.config.stage_migration or job.priority is Priority.HIGH:
            return current_context
        if self.platform.idle_stream_index(current_context) is not None:
            return current_context
        if self._queues[current_context]:
            for candidate in range(self.config.num_contexts):
                if candidate == current_context:
                    continue
                if (
                    self.platform.idle_stream_index(candidate) is not None
                    and not self._queues[candidate]
                ):
                    return candidate
        return current_context

    def _move_active_job(self, job: Job, old_context: int, new_context: int) -> None:
        self._active_jobs[old_context].pop(job.uid, None)
        self._active_jobs[new_context][job.uid] = job
        task_id = job.task.task_id
        self._backlogs[old_context].job_left(task_id, job.current_stage_index)
        self._backlogs[new_context].job_entered(task_id, job.current_stage_index)
        self.admission.register_completion(job, old_context)
        self.admission.register_admission(job, new_context)
        job.context_index = new_context

    def _complete_job(self, job: Job, now: float) -> None:
        job.state = JobState.COMPLETED
        job.completion_time = now
        task = job.task
        task.jobs_completed += 1
        if job.missed_deadline:
            task.jobs_missed += 1
        self.metrics.record_completion(job)
        self.injector.note_completion(now, on_time=not job.missed_deadline)
        self.admission.register_completion(job, job.context_index)
        self._active_jobs[job.context_index].pop(job.uid, None)
        if self.trace.enabled:
            self.trace.record_job(
                JobTraceRecord(
                    time_ms=now,
                    task_name=task.name,
                    priority=task.priority,
                    job_index=job.index,
                    release_time_ms=job.release_time,
                    response_time_ms=job.response_time or 0.0,
                    missed_deadline=bool(job.missed_deadline),
                    context_index=job.context_index,
                )
            )

    # ------------------------------------------------------------------ views

    def queue_depth(self, context_index: int) -> int:
        """Number of ready (not yet dispatched) stages in one context."""
        return len(self._queues[context_index])

    def context_tasks(self, context_index: int) -> List[Task]:
        """Tasks currently assigned to a context."""
        return [task for task in self.tasks if task.context_index == context_index]
