"""DARIS configuration: partitioning policy, concurrency and feature switches."""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields, replace
from typing import ClassVar, Dict, Mapping


class Policy(enum.Enum):
    """GPU partitioning policies evaluated in the paper (Section V).

    * ``STR`` — a single context, CUDA streams only (the only option on GPUs
      without MPS); one global job queue.
    * ``MPS`` — one stream per context, MPS contexts only.
    * ``MPS_STR`` — several contexts, several streams each.
    """

    STR = "STR"
    MPS = "MPS"
    MPS_STR = "MPS+STR"


@dataclass(frozen=True)
class DarisConfig:
    """Full configuration of a DARIS run.

    Attributes:
        policy: partitioning policy (STR / MPS / MPS+STR).
        num_contexts: number of MPS contexts, ``Nc``.
        streams_per_context: CUDA streams per context, ``Ns``.
        oversubscription: SM oversubscription level ``OS`` (1..Nc).
        window_size: MRET sliding-window size ``ws`` (the paper uses 5).
        staging: divide DNNs into stages (False reproduces the "No Staging"
            ablation).
        prioritize_last_stage: elevate the final stage of each job (False is
            the "No Last" ablation).
        boost_missed_predecessor: elevate a stage whose predecessor missed its
            virtual deadline (False is the "No Prior" ablation).
        fixed_priority_levels: differentiate HP from LP stages (False is the
            "No Fixed" ablation: pure EDF across all stages).
        admission_enabled: run the utilization-based admission test for LP
            jobs.
        hp_admission: also subject HP jobs to the admission test (the
            Overload+HPA scenario of Figure 11).
        lp_migration: allow LP tasks to migrate to another context when their
            own context fails the admission test.
        stage_migration: allow an LP job's next stage to migrate to an idle
            context mid-job (the paper's zero-delay migration).
        afet_mode: ``"analytic"`` (closed-form full-load estimate) or
            ``"profile"`` (measure AFET on the simulated GPU, as the paper
            does); analytic is the default because it is much faster and the
            online MRET replaces it within a few jobs either way.
        warmup_ms: measurement warm-up excluded from the reported metrics.
    """

    policy: Policy
    num_contexts: int
    streams_per_context: int
    oversubscription: float
    window_size: int = 5
    staging: bool = True
    prioritize_last_stage: bool = True
    boost_missed_predecessor: bool = True
    fixed_priority_levels: bool = True
    admission_enabled: bool = True
    hp_admission: bool = False
    lp_migration: bool = True
    stage_migration: bool = True
    afet_mode: str = "analytic"
    warmup_ms: float = 500.0

    #: Sweep-axis aliases: the design-space-exploration layer addresses
    #: config fields as ``daris.<name>`` axes, and these map the paper's
    #: vocabulary onto the dataclass field names (``mret_window`` is the
    #: MRET sliding-window size ``ws``).
    FIELD_ALIASES: ClassVar[Dict[str, str]] = {
        "mret_window": "window_size",
        "os": "oversubscription",
    }

    def __post_init__(self) -> None:
        if self.num_contexts < 1 or self.streams_per_context < 1:
            raise ValueError("num_contexts and streams_per_context must be >= 1")
        if not 1.0 <= self.oversubscription <= max(1.0, float(self.num_contexts)):
            raise ValueError(
                f"oversubscription must be in [1, {self.num_contexts}], got {self.oversubscription}"
            )
        if self.window_size < 1:
            raise ValueError("window_size must be >= 1")
        if self.afet_mode not in ("analytic", "profile"):
            raise ValueError("afet_mode must be 'analytic' or 'profile'")
        if self.policy is Policy.STR and self.num_contexts != 1:
            raise ValueError("the STR policy uses exactly one context")
        if self.policy is Policy.MPS and self.streams_per_context != 1:
            raise ValueError("the MPS policy uses exactly one stream per context")
        if (
            self.policy is Policy.MPS_STR
            and (self.num_contexts < 2 or self.streams_per_context < 2)
        ):
            raise ValueError("the MPS+STR policy needs >= 2 contexts and >= 2 streams each")

    @property
    def max_parallel_jobs(self) -> int:
        """``Np = Nc * Ns``."""
        return self.num_contexts * self.streams_per_context

    def label(self) -> str:
        """Human-readable configuration label, e.g. ``"MPS 6x1 OS6"``."""
        os_value = self.oversubscription
        os_text = f"{int(os_value)}" if float(os_value).is_integer() else f"{os_value}"
        return (
            f"{self.policy.value} {self.num_contexts}x{self.streams_per_context} OS{os_text}"
        )

    def with_overrides(self, **kwargs) -> "DarisConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)

    def with_field(self, name: str, value: object) -> "DarisConfig":
        """Return a copy with one (possibly aliased) field replaced.

        The config-axis entry point: ``name`` may be a dataclass field or a
        :data:`FIELD_ALIASES` key, so ``--set daris.mret_window=8`` lands on
        ``window_size``.  Validation is the dataclass's own ``__post_init__``
        (an out-of-range value raises ``ValueError`` as usual).
        """
        return replace(self, **{self.FIELD_ALIASES.get(name, name): value})

    def to_dict(self) -> Dict[str, object]:
        """Canonical field dictionary (stable key order, JSON-safe values).

        The policy enum is flattened to its value string so the dictionary can
        round-trip through JSON; :meth:`from_dict` restores the enum.  Used by
        the experiment result cache both as part of the cache key and to
        rebuild configurations from cached entries.
        """
        data: Dict[str, object] = {}
        for config_field in fields(self):
            value = getattr(self, config_field.name)
            data[config_field.name] = value.value if isinstance(value, Policy) else value
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "DarisConfig":
        """Rebuild a configuration from :meth:`to_dict` output."""
        kwargs = {config_field.name: data[config_field.name] for config_field in fields(cls)}
        kwargs["policy"] = Policy(kwargs["policy"])
        return cls(**kwargs)

    # ------------------------------------------------------------ constructors

    @staticmethod
    def str_config(num_streams: int, **kwargs) -> "DarisConfig":
        """STR policy: one context holding the whole GPU, ``num_streams`` streams."""
        return DarisConfig(
            policy=Policy.STR,
            num_contexts=1,
            streams_per_context=num_streams,
            oversubscription=1.0,
            **kwargs,
        )

    @staticmethod
    def mps_config(num_contexts: int, oversubscription: float, **kwargs) -> "DarisConfig":
        """MPS policy: ``num_contexts`` contexts, one stream each."""
        return DarisConfig(
            policy=Policy.MPS,
            num_contexts=num_contexts,
            streams_per_context=1,
            oversubscription=oversubscription,
            **kwargs,
        )

    @staticmethod
    def mps_str_config(
        num_contexts: int, streams_per_context: int, oversubscription: float, **kwargs
    ) -> "DarisConfig":
        """MPS+STR policy: several contexts with several streams each."""
        return DarisConfig(
            policy=Policy.MPS_STR,
            num_contexts=num_contexts,
            streams_per_context=streams_per_context,
            oversubscription=oversubscription,
            **kwargs,
        )
