"""Module-contribution ablations (paper Section VI-F, Figure 8).

The paper evaluates DARIS against four degraded variants of itself:

* **No Staging** — tasks are scheduled as whole units (no coarse-grained
  preemption),
* **No Last** — the final stage of a job is not elevated,
* **No Prior** — a stage whose predecessor missed its virtual deadline is not
  elevated, and
* **No Fixed** — no HP/LP differentiation between stages (pure EDF).

Each helper takes a fully configured DARIS configuration and returns the
ablated variant, so the ablation study runs the exact same platform and task
set with a single switch flipped.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.scheduler.config import DarisConfig


def ablation_no_staging(config: DarisConfig) -> DarisConfig:
    """Disable staging: whole DNNs are dispatched as single units."""
    return config.with_overrides(staging=False)


def ablation_no_last(config: DarisConfig) -> DarisConfig:
    """Do not elevate the last stage of each job."""
    return config.with_overrides(prioritize_last_stage=False)


def ablation_no_prior(config: DarisConfig) -> DarisConfig:
    """Do not elevate stages whose predecessor missed its virtual deadline."""
    return config.with_overrides(boost_missed_predecessor=False)


def ablation_no_fixed(config: DarisConfig) -> DarisConfig:
    """Remove the HP/LP fixed-priority separation between stages (pure EDF)."""
    return config.with_overrides(fixed_priority_levels=False)


ABLATIONS: Dict[str, Callable[[DarisConfig], DarisConfig]] = {
    "DARIS": lambda config: config,
    "No Staging": ablation_no_staging,
    "No Last": ablation_no_last,
    "No Prior": ablation_no_prior,
    "No Fixed": ablation_no_fixed,
}
