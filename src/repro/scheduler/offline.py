"""DARIS offline phase (paper Section IV-A).

Before the online scheduler starts, two things happen:

1. **Timing initialization** — with no measurement history, MRET cannot be
   used; the Average Full-Load Execution Time (AFET) seeds every stage's
   estimator (Equation 10).
2. **Initial context assignment** — Algorithm 1 distributes HP tasks, then LP
   tasks, always to the context with the smallest total utilization, which
   balances ``U^t_k(0)`` across contexts.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.gpu.calibration import DEFAULT_CALIBRATION, GpuCalibration
from repro.gpu.mps import sm_quota
from repro.gpu.platform import PlatformConfig
from repro.gpu.spec import GpuSpec, RTX_2080_TI
from repro.rt.afet import estimate_afet_analytic, profile_afet
from repro.rt.task import Priority, Task
from repro.scheduler.config import DarisConfig


def initialize_timing(
    tasks: Sequence[Task],
    config: DarisConfig,
    gpu: GpuSpec = RTX_2080_TI,
    calibration: GpuCalibration = DEFAULT_CALIBRATION,
    seed: int = 0,
) -> None:
    """Seed every task's MRET estimators with AFET values (Equation 10)."""
    quota = sm_quota(gpu.num_sms, config.num_contexts, config.oversubscription)
    concurrent = config.max_parallel_jobs

    if config.afet_mode == "profile":
        platform_config = PlatformConfig(
            num_contexts=config.num_contexts,
            streams_per_context=config.streams_per_context,
            oversubscription=config.oversubscription,
        )
        models = [task.spec.model for task in tasks]
        cache: Dict[str, List[float]] = {}
        for task in tasks:
            key = f"{task.spec.model.name}/b{task.spec.batch_size}/{len(task.stages)}"
            if key not in cache:
                cache[key] = profile_afet(
                    task.spec.model,
                    background=models,
                    platform_config=platform_config,
                    gpu=gpu,
                    calibration=calibration,
                    seed=seed,
                )
            afets = cache[key]
            task.timing.set_afet(_match_stage_count(afets, task))
        return

    cache: Dict[str, List[float]] = {}
    for task in tasks:
        key = f"{task.spec.model.name}/b{task.spec.batch_size}/{len(task.stages)}"
        if key not in cache:
            per_model = estimate_afet_analytic(
                task.spec.model,
                sm_quota=quota,
                concurrent_jobs=concurrent,
                calibration=calibration,
                num_sms=gpu.num_sms,
            )
            cache[key] = per_model
        task.timing.set_afet(_match_stage_count(cache[key], task))


def _match_stage_count(afets: List[float], task: Task) -> List[float]:
    """Adapt model-level AFETs to the task's stage list (handles merged stages)."""
    if len(afets) == task.num_stages:
        return afets
    if task.num_stages == 1:
        return [sum(afets)]
    # Fallback: spread the total uniformly; only reachable with custom stagings.
    total = sum(afets)
    return [total / task.num_stages] * task.num_stages


def populate_contexts(tasks: Sequence[Task], num_contexts: int) -> Dict[int, float]:
    """Algorithm 1: assign each task to the context with minimum total utilization.

    HP tasks are placed first (they keep this context for the whole run), LP
    tasks afterwards; both passes always pick the least-utilized context,
    which balances the per-context utilization of Equation 6.

    Returns the resulting total utilization per context.
    """
    if num_contexts < 1:
        raise ValueError("num_contexts must be >= 1")
    pool: Dict[int, float] = {index: 0.0 for index in range(num_contexts)}

    def assign(task: Task) -> None:
        context_index = min(pool, key=lambda idx: (pool[idx], idx))
        task.context_index = context_index
        pool[context_index] += task.utilization()

    for task in tasks:
        if task.priority is Priority.HIGH:
            assign(task)
    for task in tasks:
        if task.priority is Priority.LOW:
            assign(task)
    return pool
