"""GSlice-like spatial-sharing inference server (paper Section VI-B).

GSlice (Dhakal et al., SoCC 2020) controls spatial sharing by giving each
model a fixed fraction of the GPU's SMs and batching requests inside each
partition.  Compared to DARIS it has no oversubscription (partitions are
isolated), no task priorities and no staging; its gain over pure batching is
therefore modest (the paper quotes ~3.5 % for ResNet50).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.baselines.results import LegacyMappingResult, single_class_metrics
from repro.dnn.batching import batched_stage_specs
from repro.dnn.model import DnnModel
from repro.gpu.calibration import DEFAULT_CALIBRATION, GpuCalibration
from repro.gpu.platform import GpuPlatform, PlatformConfig
from repro.gpu.spec import GpuSpec, RTX_2080_TI
from repro.rt.metrics import FaultImpact, ScenarioMetrics
from repro.sim.faults import (
    DEFAULT_POLICY,
    FaultInjector,
    FaultSpec,
    ResiliencePolicy,
    deferred_launch,
)
from repro.sim.rng import RngFactory
from repro.sim.simulator import Simulator


@dataclass(frozen=True)
class GSliceResult(LegacyMappingResult):
    """Typed summary of a saturated GSlice run.

    Replaces the raw per-model ``dict`` (with its magic ``"total"`` key)
    :meth:`GSliceServer.run_saturated` used to return; the historical keys
    stay readable through the deprecated mapping shim.
    """

    metrics: ScenarioMetrics
    per_model_jps: Mapping[str, float]

    @property
    def total_jps(self) -> float:
        """Throughput summed over every partition."""
        return self.metrics.total_jps

    def legacy_mapping(self) -> Dict[str, object]:
        return {**dict(self.per_model_jps), "total": self.total_jps}


class GSliceServer:
    """Static spatial partitions, one model per partition, batching inside each.

    The partitions are realised as MPS contexts with ``OS = 1`` (no SM quota
    overlap), which is exactly the isolation GSlice enforces through CUDA MPS
    resource provisioning.
    """

    def __init__(
        self,
        models: Sequence[DnnModel],
        batch_sizes: Optional[Sequence[int]] = None,
        gpu: GpuSpec = RTX_2080_TI,
        calibration: GpuCalibration = DEFAULT_CALIBRATION,
        oversubscription: float = 1.0,
    ):
        if not models:
            raise ValueError("at least one model is required")
        self.models = list(models)
        if batch_sizes is None:
            batch_sizes = [model.profile.preferred_batch_size for model in self.models]
        if len(batch_sizes) != len(self.models):
            raise ValueError("one batch size per model is required")
        if not 1.0 <= oversubscription <= max(1.0, float(len(self.models))):
            raise ValueError(
                f"oversubscription must be in [1, {len(self.models)}], got {oversubscription}"
            )
        self.batch_sizes = list(batch_sizes)
        self.gpu = gpu
        self.calibration = calibration
        self.oversubscription = oversubscription
        self.completed_jobs: Dict[str, int] = {}

    def run_saturated(
        self,
        horizon_ms: float,
        faults: Optional[FaultSpec] = None,
        resilience: Optional[ResiliencePolicy] = None,
        rng: Optional[RngFactory] = None,
    ) -> GSliceResult:
        """Run every partition at saturation; returns per-model and total JPS.

        ``faults`` / ``resilience`` inject the scenario's fault processes:
        throttle windows and context crashes slow/stall the partitions, and
        a batch launch that exhausts its retry budget loses that batch
        (``failed`` counts one per request in the batch).  Request-level
        drops/timeouts do not apply to the saturated closed loop.
        """
        if horizon_ms <= 0:
            raise ValueError("horizon must be positive")
        policy = resilience if resilience is not None else DEFAULT_POLICY
        injector = FaultInjector(faults, rng=rng, policy=policy)
        simulator = Simulator()
        num_partitions = len(self.models)
        platform = GpuPlatform(
            simulator,
            PlatformConfig(
                num_contexts=num_partitions,
                streams_per_context=1,
                oversubscription=self.oversubscription,
            ),
            spec=self.gpu,
            calibration=self.calibration,
        )
        injector.install(simulator, platform, horizon_ms)
        self.completed_jobs = {model.name: 0 for model in self.models}
        batch_latencies: Dict[str, List[float]] = {model.name: [] for model in self.models}
        fault_counts = {"failed": 0, "retries": 0}

        def launch_batch(partition: int) -> None:
            model = self.models[partition]
            batch = self.batch_sizes[partition]
            stages = batched_stage_specs(model, batch)
            start_time = simulator.now
            state = {"stage": 0}

            def on_stage_done(_kernel) -> None:
                state["stage"] += 1
                if state["stage"] < len(stages):
                    submit_stage()
                    return
                self.completed_jobs[model.name] += batch
                batch_latencies[model.name].append(simulator.now - start_time)
                injector.note_completion(simulator.now, on_time=True)
                if simulator.now < horizon_ms:
                    launch_batch(partition)

            def submit_stage() -> None:
                stage = stages[state["stage"]]
                platform.launch(partition, 0, stage.to_kernel_spec(), on_complete=on_stage_done)

            outcome = injector.launch_attempt()
            fault_counts["retries"] += outcome.retries
            if not outcome.succeeded or outcome.delay_ms > 0.0:

                def on_launch_failed(partition=partition, batch=batch) -> None:
                    fault_counts["failed"] += batch
                    if simulator.now < horizon_ms:
                        launch_batch(partition)

                deferred_launch(simulator, outcome, submit_stage, on_launch_failed)
                return
            submit_stage()

        for partition in range(num_partitions):
            launch_batch(partition)
        simulator.run_until(horizon_ms)

        per_model = {
            name: 1000.0 * count / horizon_ms for name, count in self.completed_jobs.items()
        }
        response_times = [
            latency
            for partition, model in enumerate(self.models)
            for latency in batch_latencies[model.name]
            for _ in range(self.batch_sizes[partition])
        ]
        completed = sum(self.completed_jobs.values())
        served = completed + fault_counts["failed"]
        metrics = single_class_metrics(
            horizon_ms,
            completed=completed,
            released=served,
            admitted=served,
            failed=fault_counts["failed"],
            launch_retries=fault_counts["retries"],
            response_times=response_times,
            per_task_completed=dict(self.completed_jobs),
            fault_impact=FaultImpact.from_summary(injector.summary()),
        )
        return GSliceResult(metrics=metrics, per_model_jps=per_model)

    @staticmethod
    def reported_gain_over_batching() -> float:
        """Throughput gain over pure batching reported by the GSlice paper (~3.5 %)."""
        return 1.035
