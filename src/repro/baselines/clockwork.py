"""Clockwork-like predictable inference server.

Clockwork (Gujarati et al., OSDI 2020) achieves predictable latency by
executing exactly one DNN at a time, relying on the resulting deterministic
execution times to decide up front whether a request can meet its deadline;
requests that cannot are dropped.  The paper cites it as the design point that
trades throughput for predictability.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dnn.model import DnnModel
from repro.gpu.calibration import DEFAULT_CALIBRATION, GpuCalibration
from repro.gpu.platform import GpuPlatform, PlatformConfig
from repro.gpu.spec import GpuSpec, RTX_2080_TI
from repro.rt.taskset import TaskSetSpec
from repro.sim.simulator import Simulator


@dataclass(order=True)
class _QueuedRequest:
    deadline: float
    seq: int
    release: float = field(compare=False)
    model: DnnModel = field(compare=False, default=None)


class ClockworkServer:
    """One-at-a-time EDF executor with admission by predicted completion time."""

    def __init__(
        self,
        gpu: GpuSpec = RTX_2080_TI,
        calibration: GpuCalibration = DEFAULT_CALIBRATION,
    ):
        self.gpu = gpu
        self.calibration = calibration
        self.completed = 0
        self.dropped = 0
        self.missed = 0
        self.response_times: List[float] = []

    def run_taskset(self, taskset: TaskSetSpec, horizon_ms: float) -> Dict[str, float]:
        """Serve a periodic task set; returns throughput, drop and miss rates."""
        if horizon_ms <= 0:
            raise ValueError("horizon must be positive")
        simulator = Simulator()
        platform = GpuPlatform(
            simulator,
            PlatformConfig(num_contexts=1, streams_per_context=1, oversubscription=1.0),
            spec=self.gpu,
            calibration=self.calibration,
        )
        self.completed = 0
        self.dropped = 0
        self.missed = 0
        self.response_times = []

        queue: List[_QueuedRequest] = []
        busy = {"running": False, "until": 0.0}
        seq = {"value": 0}
        released = {"count": 0}

        def predicted_latency(model: DnnModel) -> float:
            # One DNN at a time on the whole GPU: the isolated latency *is*
            # the (deterministic) worst case, which is Clockwork's core idea.
            return model.isolated_latency_ms(self.calibration)

        def start_next() -> None:
            while queue and not busy["running"]:
                request = heapq.heappop(queue)
                latency = predicted_latency(request.model)
                if simulator.now + latency > request.deadline + 1e-9:
                    self.dropped += 1
                    continue
                busy["running"] = True
                state = {"stage": 0}

                def on_stage_done(_kernel, request=request, state=state) -> None:
                    state["stage"] += 1
                    if state["stage"] < request.model.num_stages:
                        submit_stage(request, state)
                        return
                    busy["running"] = False
                    self.completed += 1
                    response = simulator.now - request.release
                    self.response_times.append(response)
                    if simulator.now > request.deadline + 1e-9:
                        self.missed += 1
                    start_next()

                def submit_stage(request=request, state=state) -> None:
                    stage = request.model.stages[state["stage"]]
                    platform.launch(
                        0,
                        0,
                        stage.to_kernel_spec(),
                        on_complete=lambda kernel: on_stage_done(kernel),
                    )

                submit_stage(request, state)
                return

        def on_release(model: DnnModel, release_time: float, deadline: float) -> None:
            released["count"] += 1
            seq["value"] += 1
            heapq.heappush(
                queue,
                _QueuedRequest(deadline=deadline, seq=seq["value"], release=release_time, model=model),
            )
            start_next()

        for task in taskset.tasks:
            next_release = task.phase_ms
            while next_release <= horizon_ms:
                simulator.schedule_at(
                    next_release,
                    lambda _sim, task=task: on_release(
                        task.model, _sim.now, _sim.now + task.relative_deadline_ms
                    ),
                    priority=-1,
                    label=f"clockwork-release[{task.task_id}]",
                )
                next_release += task.period_ms
        simulator.run_until(horizon_ms)

        accepted = max(1, self.completed + self.missed)
        return {
            "throughput_jps": 1000.0 * self.completed / horizon_ms,
            "drop_rate": self.dropped / max(1, released["count"]),
            "deadline_miss_rate": self.missed / accepted,
            "mean_response_ms": (
                sum(self.response_times) / len(self.response_times)
                if self.response_times
                else 0.0
            ),
        }
