"""Clockwork-like predictable inference server.

Clockwork (Gujarati et al., OSDI 2020) achieves predictable latency by
executing exactly one DNN at a time, relying on the resulting deterministic
execution times to decide up front whether a request can meet its deadline;
requests that cannot are dropped.  The paper cites it as the design point that
trades throughput for predictability.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.baselines.results import LegacyMappingResult, accepted_miss_rate
from repro.dnn.model import DnnModel
from repro.gpu.calibration import DEFAULT_CALIBRATION, GpuCalibration
from repro.gpu.platform import GpuPlatform, PlatformConfig
from repro.gpu.spec import GpuSpec, RTX_2080_TI
from repro.rt.metrics import FaultImpact, PriorityMetrics, ScenarioMetrics
from repro.rt.task import Priority
from repro.rt.taskset import TaskSetSpec
from repro.sim.faults import (
    DEFAULT_POLICY,
    FaultInjector,
    FaultSpec,
    ResiliencePolicy,
    deferred_launch,
)
from repro.sim.rng import RngFactory
from repro.sim.simulator import Simulator
from repro.sim.workload import PERIODIC_WORKLOAD, ReleaseStream, WorkloadSpec


@dataclass(order=True)
class _QueuedRequest:
    deadline: float
    seq: int
    release: float = field(compare=False)
    model: DnnModel = field(compare=False, default=None)
    priority: Priority = field(compare=False, default=Priority.LOW)
    task_name: str = field(compare=False, default="")


@dataclass(frozen=True)
class ClockworkResult(LegacyMappingResult):
    """Typed summary of a Clockwork run.

    Replaces the raw ``dict`` :meth:`ClockworkServer.run_taskset` used to
    return; the historical keys (``throughput_jps`` / ``drop_rate`` /
    ``deadline_miss_rate`` / ``mean_response_ms``) stay readable through the
    deprecated mapping shim and are reproduced exactly by the typed
    properties, including the historical ``missed / (completed + missed)``
    miss-rate denominator.
    """

    metrics: ScenarioMetrics

    @property
    def throughput_jps(self) -> float:
        """Completed requests per second."""
        return self.metrics.total_jps

    @property
    def dropped(self) -> int:
        """Requests rejected up front because they could not make their deadline."""
        return self.metrics.high.rejected + self.metrics.low.rejected

    @property
    def drop_rate(self) -> float:
        """Dropped requests over released requests."""
        released = self.metrics.high.released + self.metrics.low.released
        return self.dropped / max(1, released)

    @property
    def deadline_miss_rate(self) -> float:
        """Late completions over accepted requests (the historical ratio)."""
        return accepted_miss_rate(self.metrics)

    @property
    def mean_response_ms(self) -> float:
        """Mean response time across every completed request."""
        samples = self.metrics.high.response_times + self.metrics.low.response_times
        return sum(samples) / len(samples) if samples else 0.0

    def legacy_mapping(self) -> Dict[str, object]:
        return {
            "throughput_jps": self.throughput_jps,
            "drop_rate": self.drop_rate,
            "deadline_miss_rate": self.deadline_miss_rate,
            "mean_response_ms": self.mean_response_ms,
        }


class ClockworkServer:
    """One-at-a-time EDF executor with admission by predicted completion time."""

    def __init__(
        self,
        gpu: GpuSpec = RTX_2080_TI,
        calibration: GpuCalibration = DEFAULT_CALIBRATION,
        admission_slack: float = 1.0,
    ):
        if not admission_slack > 0:
            raise ValueError("admission_slack must be positive")
        self.gpu = gpu
        self.calibration = calibration
        self.admission_slack = admission_slack
        self.completed = 0
        self.dropped = 0
        self.missed = 0
        self.response_times: List[float] = []

    def run_taskset(
        self,
        taskset: TaskSetSpec,
        horizon_ms: float,
        workload: Optional[WorkloadSpec] = None,
        rng: Optional[RngFactory] = None,
        faults: Optional[FaultSpec] = None,
        resilience: Optional[ResiliencePolicy] = None,
    ) -> ClockworkResult:
        """Serve a task set; returns the typed throughput / drop / miss summary.

        ``workload`` selects the release process per task, driven through the
        shared :class:`~repro.sim.workload.ReleaseStream`: the default is the
        historical periodic release at each task's period/phase; ``poisson``
        and ``mmpp`` draw memoryless / bursty releases at the same mean rates
        (reproducible via ``rng``), ``trace`` replays explicit times, and
        jitter / diurnal modulators compose on any rate-driven kind.
        Saturated workloads are meaningless for a deadline-driven admission
        server and are rejected.

        ``faults`` injects the scenario's fault processes; ``resilience``
        sets the server's answer.  Clockwork's core mechanism — admission by
        predicted completion time — doubles as its degradation answer: with
        ``shed_when_degraded`` the predicted latency is inflated by the
        current slowdown during throttle windows, so requests that only fit
        a healthy GPU are shed at admission instead of missing late.  Queued
        requests whose client timeout has expired by the time the executor
        reaches them are charged as ``timed_out`` (counted admitted: they
        entered the queue).
        """
        if horizon_ms <= 0:
            raise ValueError("horizon must be positive")
        workload = workload if workload is not None else PERIODIC_WORKLOAD
        if workload.saturated:
            raise ValueError("the Clockwork baseline is deadline-driven; saturated workloads do not apply")
        rng = rng if rng is not None else RngFactory(0)
        policy = resilience if resilience is not None else DEFAULT_POLICY
        injector = FaultInjector(faults, rng=rng, policy=policy)
        simulator = Simulator()
        platform = GpuPlatform(
            simulator,
            PlatformConfig(num_contexts=1, streams_per_context=1, oversubscription=1.0),
            spec=self.gpu,
            calibration=self.calibration,
        )
        self.completed = 0
        self.dropped = 0
        self.missed = 0
        self.response_times = []
        injector.install(simulator, platform, horizon_ms)
        timeout_ms = injector.timeout_ms

        queue: List[_QueuedRequest] = []
        busy = {"running": False, "until": 0.0}
        seq = {"value": 0}
        per_priority = {Priority.HIGH: PriorityMetrics(), Priority.LOW: PriorityMetrics()}
        per_task_completed: Dict[str, int] = {}

        def predicted_latency(model: DnnModel) -> float:
            # One DNN at a time on the whole GPU: the isolated latency *is*
            # the (deterministic) worst case, which is Clockwork's core idea.
            # The admission slack scales the prediction the test uses —
            # > 1 sheds earlier (conservative), < 1 admits deeper (optimistic).
            return model.isolated_latency_ms(self.calibration) * self.admission_slack

        def start_next() -> None:
            while queue and not busy["running"]:
                request = heapq.heappop(queue)
                bucket = per_priority[request.priority]
                if (
                    timeout_ms is not None
                    and simulator.now - request.release > timeout_ms + 1e-9
                ):
                    # The client gave up while the request sat queued; it
                    # entered the system, so it counts admitted + timed out.
                    bucket.admitted += 1
                    bucket.timed_out += 1
                    continue
                latency = predicted_latency(request.model)
                effective = latency
                if policy.shed_when_degraded and injector.degraded:
                    factor = injector.slowdown_factor
                    if 0.0 < factor < 1.0:
                        effective = latency / factor
                if simulator.now + effective > request.deadline + 1e-9:
                    self.dropped += 1
                    bucket.rejected += 1
                    if simulator.now + latency <= request.deadline + 1e-9:
                        # Only the degradation-inflated prediction failed:
                        # this is a shed, not a plain rejection.
                        bucket.shed += 1
                    continue
                busy["running"] = True
                bucket.admitted += 1
                state = {"stage": 0}

                def on_stage_done(_kernel, request=request, state=state) -> None:
                    state["stage"] += 1
                    if state["stage"] < request.model.num_stages:
                        submit_stage(request, state)
                        return
                    busy["running"] = False
                    self.completed += 1
                    bucket = per_priority[request.priority]
                    bucket.completed += 1
                    per_task_completed[request.task_name] = (
                        per_task_completed.get(request.task_name, 0) + 1
                    )
                    response = simulator.now - request.release
                    self.response_times.append(response)
                    bucket.response_times.append(response)
                    late = simulator.now > request.deadline + 1e-9
                    if late:
                        self.missed += 1
                        bucket.missed += 1
                    injector.note_completion(simulator.now, on_time=not late)
                    start_next()

                def submit_stage(request=request, state=state) -> None:
                    stage = request.model.stages[state["stage"]]
                    platform.launch(
                        0,
                        0,
                        stage.to_kernel_spec(),
                        on_complete=lambda kernel: on_stage_done(kernel),
                    )

                outcome = injector.launch_attempt()
                if outcome.retries:
                    bucket.launch_retries += outcome.retries
                if not outcome.succeeded or outcome.delay_ms > 0.0:

                    def on_launch_failed(request=request) -> None:
                        per_priority[request.priority].failed += 1
                        busy["running"] = False
                        start_next()

                    deferred_launch(
                        simulator,
                        outcome,
                        lambda request=request, state=state: submit_stage(request, state),
                        on_launch_failed,
                    )
                    return
                submit_stage(request, state)
                return

        def on_release(task, release_time: float) -> None:
            per_priority[task.priority].released += 1
            if injector.drop_request():
                per_priority[task.priority].dropped += 1
                return
            seq["value"] += 1
            heapq.heappush(
                queue,
                _QueuedRequest(
                    deadline=release_time + task.relative_deadline_ms,
                    seq=seq["value"],
                    release=release_time,
                    model=task.model,
                    priority=task.priority,
                    task_name=task.name,
                ),
            )
            start_next()

        ReleaseStream(workload, rng).drive_taskset(
            simulator,
            horizon_ms,
            taskset.tasks,
            lambda task, event: on_release(task, event.time),
        )
        simulator.run_until(horizon_ms)

        metrics = ScenarioMetrics.from_priority_metrics(
            horizon_ms,
            high=per_priority[Priority.HIGH],
            low=per_priority[Priority.LOW],
            per_task_completed=per_task_completed,
            fault_impact=FaultImpact.from_summary(injector.summary()),
        )
        return ClockworkResult(metrics=metrics)
