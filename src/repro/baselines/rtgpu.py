"""RTGPU-like baseline: a real-time GPU scheduler without task prioritization.

RTGPU (Zou et al., TPDS 2023) schedules hard-deadline parallel tasks with
fine-grained utilization accounting, but — as the DARIS paper points out — it
lacks task prioritization, so high- and low-priority tasks experience the same
deadline miss behaviour (the paper quotes up to 11 % overall misses).  This
baseline reuses the DARIS machinery with every priority-related feature
disabled: a single EDF level across all tasks and no HP exemption from the
admission test.
"""

from __future__ import annotations

from typing import Optional

from repro.gpu.calibration import DEFAULT_CALIBRATION, GpuCalibration
from repro.gpu.spec import GpuSpec, RTX_2080_TI
from repro.rt.metrics import ScenarioMetrics
from repro.rt.taskset import TaskSetSpec
from repro.scheduler.config import DarisConfig
from repro.scheduler.daris import DarisScheduler
from repro.sim.faults import FaultSpec, ResiliencePolicy
from repro.sim.rng import RngFactory
from repro.sim.simulator import Simulator
from repro.sim.workload import WorkloadSpec


class RtgpuScheduler:
    """EDF-only multi-tenant scheduler (no HP/LP differentiation)."""

    def __init__(
        self,
        base_config: DarisConfig,
        gpu: GpuSpec = RTX_2080_TI,
        calibration: GpuCalibration = DEFAULT_CALIBRATION,
    ):
        self.config = base_config.with_overrides(
            fixed_priority_levels=False,
            prioritize_last_stage=False,
            boost_missed_predecessor=False,
            hp_admission=True,
        )
        self.gpu = gpu
        self.calibration = calibration

    def run_taskset(
        self,
        taskset: TaskSetSpec,
        horizon_ms: float,
        seed: int = 0,
        simulator: Optional[Simulator] = None,
        workload: Optional[WorkloadSpec] = None,
        faults: Optional[FaultSpec] = None,
        resilience: Optional[ResiliencePolicy] = None,
    ) -> ScenarioMetrics:
        """Run the task set under pure EDF and return the scenario metrics.

        ``workload`` selects the release process (periodic by default;
        ``poisson`` / ``mmpp`` for memoryless / bursty releases at the same
        mean rates, ``trace`` for explicit replay, plus jitter and diurnal
        modulators), exactly as for the full DARIS scheduler — both ride the
        shared :class:`~repro.sim.workload.ReleaseStream` pipeline.
        ``faults`` / ``resilience`` inject fault processes and the backend's
        answer to them, again through the shared DARIS machinery.
        """
        sim = simulator if simulator is not None else Simulator()
        scheduler = DarisScheduler(
            sim,
            taskset,
            self.config,
            gpu=self.gpu,
            calibration=self.calibration,
            rng=RngFactory(seed),
            workload=workload,
            faults=faults,
            resilience=resilience,
        )
        return scheduler.run(horizon_ms)
