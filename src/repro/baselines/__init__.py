"""Baseline executors and schedulers the paper compares against.

* :mod:`repro.baselines.single` — the *lower baseline*: one inference at a
  time on the whole GPU (Table I ``min`` column).
* :mod:`repro.baselines.batching_server` — the *upper baseline*: saturated
  input batching on the whole GPU (Table I ``max`` column, Figure 1).
* :mod:`repro.baselines.gslice` — a GSlice-like inference server: static
  spatial partitions (no oversubscription), batching inside each partition,
  no task priorities (Section VI-B comparison).
* :mod:`repro.baselines.clockwork` — a Clockwork-like predictable server:
  one DNN at a time, EDF, jobs that cannot finish before their deadline are
  dropped up front.
* :mod:`repro.baselines.rtgpu` — an RTGPU-like real-time scheduler: EDF with
  admission but without task prioritization.
"""

from repro.baselines.results import JpsResult, LegacyMappingResult, single_class_metrics
from repro.baselines.single import SingleTenantExecutor
from repro.baselines.batching_server import (
    BatchingArrivalResult,
    BatchingServer,
    saturated_batching_jps,
)
from repro.baselines.gslice import GSliceResult, GSliceServer
from repro.baselines.clockwork import ClockworkResult, ClockworkServer
from repro.baselines.rtgpu import RtgpuScheduler

__all__ = [
    "BatchingArrivalResult",
    "BatchingServer",
    "ClockworkResult",
    "ClockworkServer",
    "GSliceResult",
    "GSliceServer",
    "JpsResult",
    "LegacyMappingResult",
    "RtgpuScheduler",
    "SingleTenantExecutor",
    "saturated_batching_jps",
    "single_class_metrics",
]
