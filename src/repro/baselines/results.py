"""Typed results for the baseline executors, with legacy-shape shims.

Historically each baseline returned its own ad-hoc shape — a raw ``dict``
from :meth:`ClockworkServer.run_taskset` / :meth:`GSliceServer.run_saturated`
/ :meth:`BatchingServer.run_with_arrivals`, a bare ``float`` from
:meth:`SingleTenantExecutor.run` — which made them second-class citizens of
the experiment engine (no uniform metrics, nothing to cache).  Every baseline
now returns a typed result carrying a full
:class:`~repro.rt.metrics.ScenarioMetrics`, and this module provides the two
compatibility shims that keep the old shapes working for one deprecation
cycle:

* :class:`LegacyMappingResult` — mixin giving a typed result read-only
  ``dict``-style access to its historical keys, each access raising a
  :class:`DeprecationWarning`.
* :class:`JpsResult` — a ``float`` subclass (the measured jobs-per-second)
  that also exposes ``.metrics``, so ``executor.run(...) * 2`` and
  ``pytest.approx`` comparisons keep working while new code reads the full
  metrics.
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterator, List, Optional

from repro.rt.metrics import FaultImpact, PriorityMetrics, ScenarioMetrics


class LegacyMappingResult:
    """Mixin: deprecated ``dict``-style access to a typed result.

    Subclasses implement :meth:`legacy_mapping` returning the historical
    key/value shape; ``result["key"]`` (and ``in`` / ``keys()`` / ``items()``
    / ``get()``) then keep working, each emitting a deprecation warning that
    names the typed replacement.
    """

    def legacy_mapping(self) -> Dict[str, object]:
        """The historical ``dict`` shape of this result."""
        raise NotImplementedError

    def _warn(self) -> None:
        warnings.warn(
            f"dict-style access to {type(self).__name__} is deprecated;"
            " use its typed attributes (.metrics and friends) instead",
            DeprecationWarning,
            stacklevel=3,
        )

    def __getitem__(self, key: str) -> object:
        self._warn()
        return self.legacy_mapping()[key]

    def __contains__(self, key: object) -> bool:
        self._warn()
        return key in self.legacy_mapping()

    def __iter__(self) -> Iterator[str]:
        self._warn()
        return iter(self.legacy_mapping())

    def keys(self):
        """Deprecated: the historical dictionary's keys."""
        self._warn()
        return self.legacy_mapping().keys()

    def items(self):
        """Deprecated: the historical dictionary's items."""
        self._warn()
        return self.legacy_mapping().items()

    def values(self):
        """Deprecated: the historical dictionary's values."""
        self._warn()
        return self.legacy_mapping().values()

    def __len__(self) -> int:
        self._warn()
        return len(self.legacy_mapping())

    def get(self, key: str, default: object = None) -> object:
        """Deprecated: the historical dictionary's ``get``."""
        self._warn()
        return self.legacy_mapping().get(key, default)


class JpsResult(float):
    """A measured jobs-per-second value that also carries scenario metrics.

    Behaves exactly like the ``float`` the saturated executors used to
    return (arithmetic, formatting, ``pytest.approx``), while new callers
    read ``.metrics`` for the uniform :class:`ScenarioMetrics` summary.
    """

    metrics: ScenarioMetrics

    def __new__(cls, jps: float, metrics: ScenarioMetrics) -> "JpsResult":
        result = super().__new__(cls, jps)
        result.metrics = metrics
        return result

    def __getnewargs__(self):
        # float.__getnewargs__ would reconstruct with the value alone and
        # crash __new__; supplying both arguments keeps pickle/deepcopy
        # working exactly as they did on the bare float.
        return (float(self), self.metrics)

    @property
    def jps(self) -> float:
        """The plain throughput value."""
        return float(self)


def accepted_miss_rate(metrics: ScenarioMetrics) -> float:
    """The historical Clockwork DMR: late completions over accepted requests.

    The legacy denominator counts every completion plus every miss (misses
    are a subset of completions, so late jobs weigh double) — kept verbatim
    so typed results and report rows reproduce the pre-typed numbers exactly.
    Works on any :class:`ScenarioMetrics`, which is all the engine returns.
    """
    missed = metrics.high.missed + metrics.low.missed
    return missed / max(1, metrics.total_completed + missed)


def single_class_metrics(
    horizon_ms: float,
    completed: int,
    missed: int = 0,
    released: Optional[int] = None,
    admitted: Optional[int] = None,
    rejected: int = 0,
    dropped: int = 0,
    timed_out: int = 0,
    failed: int = 0,
    launch_retries: int = 0,
    response_times: Optional[List[float]] = None,
    per_task_completed: Optional[Dict[str, int]] = None,
    fault_impact: Optional[FaultImpact] = None,
) -> ScenarioMetrics:
    """Metrics for a server with no priority classes (everything low).

    The single-tenant / batching / GSlice executors serve one undifferentiated
    request class; by convention their traffic lands in the *low* priority
    bucket (DARIS shields the high one) with an empty high bucket.  Unless
    stated otherwise, ``released`` and ``admitted`` default to ``completed``
    (the saturated executors observe only completions), which also keeps the
    deadline-miss denominator (``missed / admitted``) equal to the historical
    ``missed / completed`` ratios.

    The fault-cause counters (``dropped`` / ``timed_out`` / ``failed`` /
    ``launch_retries`` / ``fault_impact``) default to zero/absent, so
    fault-free callers produce byte-identical metrics to the pre-fault
    layout.
    """
    low = PriorityMetrics(
        released=released if released is not None else completed,
        admitted=admitted if admitted is not None else completed,
        rejected=rejected,
        dropped=dropped,
        timed_out=timed_out,
        failed=failed,
        launch_retries=launch_retries,
        completed=completed,
        missed=missed,
        response_times=list(response_times or []),
    )
    return ScenarioMetrics.from_priority_metrics(
        horizon_ms,
        low=low,
        per_task_completed=per_task_completed,
        fault_impact=fault_impact,
    )
