"""Pure-batching upper baseline (Table I ``max`` column, Figure 1).

The batching server accumulates incoming requests into fixed-size batches and
executes one batch at a time on the whole GPU.  Its *saturated* throughput --
requests always waiting, so every batch is full -- is the paper's upper
baseline; the server can also be driven by rate-based arrivals with deadlines
(fixed-rate by default; Poisson, bursty MMPP, trace replay and jittered or
diurnally modulated variants via a
:class:`~repro.sim.workload.WorkloadSpec`) to show why batching alone is
problematic for real-time workloads (jobs wait for their batch to fill).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from repro.baselines.results import JpsResult, LegacyMappingResult, single_class_metrics
from repro.dnn.batching import batched_stage_specs
from repro.dnn.model import DnnModel
from repro.gpu.calibration import DEFAULT_CALIBRATION, GpuCalibration
from repro.gpu.platform import GpuPlatform, PlatformConfig
from repro.gpu.spec import GpuSpec, RTX_2080_TI
from repro.rt.metrics import FaultImpact, ScenarioMetrics
from repro.sim.faults import (
    DEFAULT_POLICY,
    FaultInjector,
    FaultSpec,
    ResiliencePolicy,
    deferred_launch,
)
from repro.sim.rng import RngFactory
from repro.sim.simulator import Simulator
from repro.sim.workload import PERIODIC_WORKLOAD, ReleaseStream, WorkloadSpec


def saturated_batching_jps(
    model: DnnModel,
    batch_size: int,
    horizon_ms: float = 2000.0,
    gpu: GpuSpec = RTX_2080_TI,
    calibration: GpuCalibration = DEFAULT_CALIBRATION,
) -> JpsResult:
    """Measured throughput of back-to-back full batches on an idle GPU."""
    server = BatchingServer(model, batch_size, gpu=gpu, calibration=calibration)
    return server.run_saturated(horizon_ms)


@dataclass(frozen=True)
class BatchingArrivalResult(LegacyMappingResult):
    """Typed summary of a rate-driven batching run.

    Replaces the raw ``dict`` :meth:`BatchingServer.run_with_arrivals` used
    to return; the historical keys (``throughput_jps`` /
    ``deadline_miss_rate`` / ``completed``) remain readable through the
    deprecated mapping shim.
    """

    metrics: ScenarioMetrics
    released: int

    @property
    def throughput_jps(self) -> float:
        """Completed requests per second."""
        return self.metrics.total_jps

    @property
    def deadline_miss_rate(self) -> float:
        """Fraction of completed requests that finished past their deadline."""
        return self.metrics.overall_dmr

    @property
    def completed(self) -> int:
        """Requests that completed within the horizon."""
        return self.metrics.total_completed

    def legacy_mapping(self) -> Dict[str, object]:
        return {
            "throughput_jps": self.throughput_jps,
            "deadline_miss_rate": self.deadline_miss_rate,
            "completed": self.completed,
        }


class BatchingServer:
    """Executes one fixed-size batch at a time on the full GPU."""

    def __init__(
        self,
        model: DnnModel,
        batch_size: int,
        gpu: GpuSpec = RTX_2080_TI,
        calibration: GpuCalibration = DEFAULT_CALIBRATION,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.model = model
        self.batch_size = batch_size
        self.gpu = gpu
        self.calibration = calibration
        self.stages = batched_stage_specs(model, batch_size)
        self.completed_jobs = 0
        self.completed_batches = 0
        self.batch_latencies_ms: List[float] = []

    # ------------------------------------------------------------- saturated

    def run_saturated(
        self,
        horizon_ms: float,
        faults: Optional[FaultSpec] = None,
        resilience: Optional[ResiliencePolicy] = None,
        rng: Optional[RngFactory] = None,
    ) -> JpsResult:
        """Run with an always-full request queue; returns jobs per second.

        The return value is the same throughput ``float`` as always
        (:class:`~repro.baselines.results.JpsResult`), now also carrying
        ``.metrics`` with each job's response time set to its batch latency.

        ``faults`` / ``resilience`` inject the scenario's fault processes;
        a batch launch that exhausts its retry budget loses the whole batch
        (``failed`` counts one per request in it).  Request-level drops and
        timeouts do not apply to the saturated closed loop.
        """
        if horizon_ms <= 0:
            raise ValueError("horizon must be positive")
        policy = resilience if resilience is not None else DEFAULT_POLICY
        injector = FaultInjector(faults, rng=rng, policy=policy)
        simulator = Simulator()
        platform = GpuPlatform(
            simulator,
            PlatformConfig(num_contexts=1, streams_per_context=1, oversubscription=1.0),
            spec=self.gpu,
            calibration=self.calibration,
        )
        injector.install(simulator, platform, horizon_ms)
        self.completed_jobs = 0
        self.completed_batches = 0
        self.batch_latencies_ms = []
        fault_counts = {"failed": 0, "retries": 0}

        def launch_batch() -> None:
            start_time = simulator.now
            state = {"stage": 0}

            def on_stage_done(_kernel) -> None:
                state["stage"] += 1
                if state["stage"] < len(self.stages):
                    submit_stage()
                    return
                self.completed_batches += 1
                self.completed_jobs += self.batch_size
                self.batch_latencies_ms.append(simulator.now - start_time)
                injector.note_completion(simulator.now, on_time=True)
                if simulator.now < horizon_ms:
                    launch_batch()

            def submit_stage() -> None:
                stage = self.stages[state["stage"]]
                platform.launch(0, 0, stage.to_kernel_spec(), on_complete=on_stage_done)

            outcome = injector.launch_attempt()
            fault_counts["retries"] += outcome.retries
            if not outcome.succeeded or outcome.delay_ms > 0.0:

                def on_launch_failed() -> None:
                    fault_counts["failed"] += self.batch_size
                    if simulator.now < horizon_ms:
                        launch_batch()

                deferred_launch(simulator, outcome, submit_stage, on_launch_failed)
                return
            submit_stage()

        launch_batch()
        simulator.run_until(horizon_ms)
        jps = 1000.0 * self.completed_jobs / horizon_ms
        response_times = [
            latency for latency in self.batch_latencies_ms for _ in range(self.batch_size)
        ]
        served = self.completed_jobs + fault_counts["failed"]
        metrics = single_class_metrics(
            horizon_ms,
            completed=self.completed_jobs,
            released=served,
            admitted=served,
            failed=fault_counts["failed"],
            launch_retries=fault_counts["retries"],
            response_times=response_times,
            per_task_completed={self.model.name: self.completed_jobs},
            fault_impact=FaultImpact.from_summary(injector.summary()),
        )
        return JpsResult(jps, metrics)

    # ----------------------------------------------------------- rate-driven

    def run_with_arrivals(
        self,
        arrival_rate_jps: float,
        deadline_ms: float,
        horizon_ms: float,
        timeout_ms: Optional[float] = None,
        workload: Optional[WorkloadSpec] = None,
        rng: Union[np.random.Generator, RngFactory, None] = None,
        faults: Optional[FaultSpec] = None,
        resilience: Optional[ResiliencePolicy] = None,
    ) -> BatchingArrivalResult:
        """Drive the server with rate-based request arrivals and deadlines.

        Requests are queued until ``batch_size`` of them are available (or the
        optional ``timeout_ms`` forces a partial batch); the returned summary
        reports throughput and the fraction of requests that finished after
        their deadline — the effect the paper cites when arguing that real-time
        inference cannot simply rely on batching.

        ``workload`` selects the arrival process, driven in aggregate mode
        through the shared :class:`~repro.sim.workload.ReleaseStream`: the
        default (``periodic``) is the historical fixed-rate stream at
        ``arrival_rate_jps``; ``poisson`` / ``mmpp`` draw memoryless / bursty
        inter-arrivals at the same mean rate (``rng`` required — an
        :class:`~repro.sim.rng.RngFactory` or a bare generator), ``trace``
        replays explicit times, and jitter / diurnal modulators compose on
        any rate-driven kind.  Saturated workloads have no arrival stream —
        use :meth:`run_saturated`.

        ``faults`` / ``resilience`` inject the scenario's fault processes:
        requests can be dropped at arrival or abandoned by their client
        after the fault spec's timeout while queued, a batch launch that
        exhausts its retry budget fails the whole batch, and — with the
        ``"partial-batch"`` degraded fallback — the server stops waiting
        for full batches while the GPU is degraded, trading efficiency for
        latency exactly when throttling already inflates service times.
        """
        if arrival_rate_jps <= 0 or deadline_ms <= 0 or horizon_ms <= 0:
            raise ValueError("arrival rate, deadline and horizon must be positive")
        workload = workload if workload is not None else PERIODIC_WORKLOAD
        if workload.saturated:
            raise ValueError("saturated workloads have no arrival stream; use run_saturated")
        policy = resilience if resilience is not None else DEFAULT_POLICY
        injector = FaultInjector(
            faults, rng=rng if isinstance(rng, RngFactory) else None, policy=policy
        )
        faults_active = faults is not None and faults.active
        simulator = Simulator()
        platform = GpuPlatform(
            simulator,
            PlatformConfig(num_contexts=1, streams_per_context=1, oversubscription=1.0),
            spec=self.gpu,
            calibration=self.calibration,
        )
        injector.install(simulator, platform, horizon_ms)
        client_timeout = injector.timeout_ms
        pending: List[float] = []  # release times of queued requests
        busy = {"running": False}
        completed = {"count": 0, "missed": 0}
        fault_counts = {"dropped": 0, "timed_out": 0, "failed": 0, "retries": 0}
        response_times: List[float] = []

        def maybe_launch(force: bool = False) -> None:
            if busy["running"]:
                return
            if client_timeout is not None and pending:
                # Clients abandon requests that sat queued past their timeout.
                fresh = [r for r in pending if simulator.now - r <= client_timeout + 1e-9]
                fault_counts["timed_out"] += len(pending) - len(fresh)
                pending[:] = fresh
            if not pending:
                return
            if policy.degraded_fallback == "partial-batch" and injector.degraded:
                # Degraded mode: don't wait for a full batch on a slow GPU.
                force = True
            if len(pending) < self.batch_size and not force:
                return
            batch = pending[: self.batch_size]
            del pending[: len(batch)]
            busy["running"] = True
            scale = len(batch) / float(self.batch_size)
            state = {"stage": 0}

            def on_stage_done(_kernel) -> None:
                state["stage"] += 1
                if state["stage"] < len(self.stages):
                    submit_stage()
                    return
                busy["running"] = False
                for release in batch:
                    completed["count"] += 1
                    response_times.append(simulator.now - release)
                    late = simulator.now > release + deadline_ms
                    if late:
                        completed["missed"] += 1
                    injector.note_completion(simulator.now, on_time=not late)
                maybe_launch(force=False)

            def submit_stage() -> None:
                stage = self.stages[state["stage"]]
                spec = stage.to_kernel_spec()
                if scale < 1.0:
                    spec = spec.scaled(scale, 1.0, float(self.gpu.num_sms))
                platform.launch(0, 0, spec, on_complete=on_stage_done)

            outcome = injector.launch_attempt()
            fault_counts["retries"] += outcome.retries
            if not outcome.succeeded or outcome.delay_ms > 0.0:

                def on_launch_failed(batch=batch) -> None:
                    fault_counts["failed"] += len(batch)
                    busy["running"] = False
                    maybe_launch(force=False)

                deferred_launch(simulator, outcome, submit_stage, on_launch_failed)
                return
            submit_stage()

        def on_arrival(simulator_now: float) -> None:
            if injector.drop_request():
                fault_counts["dropped"] += 1
                return
            pending.append(simulator_now)
            maybe_launch(force=False)
            if timeout_ms is not None:
                simulator.schedule_after(
                    timeout_ms, lambda _sim: maybe_launch(force=True), label="batch-timeout"
                )

        released = ReleaseStream(workload, rng).drive_aggregate(
            simulator, horizon_ms, arrival_rate_jps, lambda event: on_arrival(event.time)
        )
        simulator.run_until(horizon_ms)

        # Fault-free runs keep the historical metrics layout byte-identical:
        # the cause counters stay zero and ``admitted`` keeps its
        # completed-count default, so the gate below only fires when a fault
        # process is actually configured.
        fault_kwargs: Dict[str, object] = {}
        if faults_active:
            fault_kwargs = dict(
                admitted=released - fault_counts["dropped"],
                dropped=fault_counts["dropped"],
                timed_out=fault_counts["timed_out"],
                failed=fault_counts["failed"],
                launch_retries=fault_counts["retries"],
                fault_impact=FaultImpact.from_summary(injector.summary()),
            )
        metrics = single_class_metrics(
            horizon_ms,
            completed=completed["count"],
            missed=completed["missed"],
            released=released,
            response_times=response_times,
            per_task_completed={self.model.name: completed["count"]},
            **fault_kwargs,
        )
        return BatchingArrivalResult(metrics=metrics, released=released)
