"""Single-tenant lower baseline: one inference at a time on the full GPU."""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.results import JpsResult, single_class_metrics
from repro.dnn.model import DnnModel
from repro.gpu.calibration import DEFAULT_CALIBRATION, GpuCalibration
from repro.gpu.platform import GpuPlatform, PlatformConfig
from repro.gpu.spec import GpuSpec, RTX_2080_TI
from repro.rt.metrics import FaultImpact
from repro.sim.faults import (
    DEFAULT_POLICY,
    FaultInjector,
    FaultSpec,
    ResiliencePolicy,
    deferred_launch,
)
from repro.sim.rng import RngFactory
from repro.sim.simulator import Simulator


class SingleTenantExecutor:
    """Runs back-to-back single inferences of one model on an otherwise idle GPU.

    This reproduces the ``min`` column of Table I: the throughput of a single
    CUDA stream with no co-location and no batching.
    """

    def __init__(
        self,
        model: DnnModel,
        gpu: GpuSpec = RTX_2080_TI,
        calibration: GpuCalibration = DEFAULT_CALIBRATION,
    ):
        self.model = model
        self.gpu = gpu
        self.calibration = calibration
        self.completed_jobs = 0
        self.job_latencies_ms: List[float] = []
        self._horizon: Optional[float] = None

    def run(
        self,
        horizon_ms: float,
        faults: Optional[FaultSpec] = None,
        resilience: Optional[ResiliencePolicy] = None,
        rng: Optional[RngFactory] = None,
    ) -> JpsResult:
        """Execute jobs until ``horizon_ms`` and return the measured JPS.

        The return value *is* the jobs-per-second float it always was
        (:class:`~repro.baselines.results.JpsResult` subclasses ``float``),
        and additionally carries ``.metrics`` — the uniform
        :class:`~repro.rt.metrics.ScenarioMetrics` the scheduler-backend API
        consumes.

        ``faults`` / ``resilience`` inject the scenario's fault processes
        (throttle windows slow the engine, flaky launches cost retries, a
        launch that exhausts its retry budget loses the job).  Request-level
        drops and client timeouts do not apply to a saturated closed loop —
        there are no external requests to drop — and are ignored by
        construction of the fault spec's grid pairing.
        """
        if horizon_ms <= 0:
            raise ValueError("horizon must be positive")
        policy = resilience if resilience is not None else DEFAULT_POLICY
        injector = FaultInjector(faults, rng=rng, policy=policy)
        simulator = Simulator()
        platform = GpuPlatform(
            simulator,
            PlatformConfig(num_contexts=1, streams_per_context=1, oversubscription=1.0),
            spec=self.gpu,
            calibration=self.calibration,
        )
        injector.install(simulator, platform, horizon_ms)
        self.completed_jobs = 0
        self.job_latencies_ms = []
        self._horizon = horizon_ms
        fault_counts = {"failed": 0, "retries": 0}

        def launch_job() -> None:
            start_time = simulator.now
            remaining = {"stage": 0}

            def on_stage_done(_kernel) -> None:
                remaining["stage"] += 1
                if remaining["stage"] < self.model.num_stages:
                    submit_stage()
                else:
                    self.completed_jobs += 1
                    self.job_latencies_ms.append(simulator.now - start_time)
                    injector.note_completion(simulator.now, on_time=True)
                    if simulator.now < horizon_ms:
                        launch_job()

            def submit_stage() -> None:
                stage = self.model.stages[remaining["stage"]]
                platform.launch(0, 0, stage.to_kernel_spec(), on_complete=on_stage_done)

            outcome = injector.launch_attempt()
            fault_counts["retries"] += outcome.retries
            if not outcome.succeeded or outcome.delay_ms > 0.0:

                def on_launch_failed() -> None:
                    fault_counts["failed"] += 1
                    if simulator.now < horizon_ms:
                        launch_job()

                deferred_launch(simulator, outcome, submit_stage, on_launch_failed)
                return
            submit_stage()

        launch_job()
        simulator.run_until(horizon_ms)
        jps = 1000.0 * self.completed_jobs / horizon_ms
        served = self.completed_jobs + fault_counts["failed"]
        metrics = single_class_metrics(
            horizon_ms,
            completed=self.completed_jobs,
            released=served,
            admitted=served,
            failed=fault_counts["failed"],
            launch_retries=fault_counts["retries"],
            response_times=self.job_latencies_ms,
            per_task_completed={self.model.name: self.completed_jobs},
            fault_impact=FaultImpact.from_summary(injector.summary()),
        )
        return JpsResult(jps, metrics)

    def measured_latency_ms(self) -> float:
        """Average single-job latency implied by the last run."""
        if not self.completed_jobs or self._horizon is None:
            raise RuntimeError("run() must complete at least one job first")
        return self._horizon / self.completed_jobs
