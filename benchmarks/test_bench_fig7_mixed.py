"""Benchmark: regenerate Figure 7 (mixed task set, STR vs MPS)."""

from conftest import emit, run_once

from repro.experiments import fig7_mixed


def test_bench_fig7_mixed(benchmark):
    rows = run_once(benchmark, fig7_mixed.run, True)
    emit("Figure 7: mixed task set", rows)

    best_mps = max((r for r in rows if r["policy"] == "MPS"), key=lambda r: r["total_jps"])
    best_str = max((r for r in rows if r["policy"] == "STR"), key=lambda r: r["total_jps"])
    # MPS achieves the highest throughput; STR keeps LP misses (near) zero.
    assert best_mps["total_jps"] >= best_str["total_jps"]
    str_rows = [r for r in rows if r["policy"] == "STR"]
    assert max(r["lp_dmr"] for r in str_rows) < 0.05
    # HP misses stay negligible for every reasonably sized configuration
    # (tiny Np=2 configurations are allowed a small residual rate).
    assert all(r["hp_dmr"] < 0.05 for r in rows)
    assert best_mps["hp_dmr"] < 0.01
