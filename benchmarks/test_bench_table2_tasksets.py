"""Benchmark: regenerate Table II (task-set composition and demanded load)."""

from conftest import emit, run_once

from repro.experiments import table2_tasksets


def test_bench_table2_tasksets(benchmark):
    rows = run_once(benchmark, table2_tasksets.run, True)
    emit("Table II: task sets", rows)

    by_name = {row["task_set"]: row for row in rows}
    assert by_name["resnet18"]["num_high"] == 17 and by_name["resnet18"]["num_low"] == 34
    assert by_name["unet"]["num_high"] == 5 and by_name["unet"]["num_low"] == 10
    assert by_name["inceptionv3"]["num_high"] == 9 and by_name["inceptionv3"]["num_low"] == 18
    # Every set demands roughly 150 % of its upper baseline (the paper's overload).
    for row in rows:
        assert 1.2 <= row["load_vs_upper_baseline"] <= 1.7
