"""Benchmark: regenerate Figure 9 (execution time versus MRET prediction)."""

from conftest import emit, run_once

from repro.experiments import fig9_mret


def test_bench_fig9_mret(benchmark):
    rows = run_once(benchmark, fig9_mret.run, True)
    emit("Figure 9: execution time vs MRET", rows)

    by_config = {row["config"]: row for row in rows}
    good = by_config["6x1 OS6 (best throughput)"]
    volatile = by_config["3x3 OS1 (worst DMR)"]
    # MRET tracks execution tightly in the best-throughput configuration; in
    # the volatile 3x3 OS1 configuration execution times are larger and the
    # prediction error grows (paper Figure 9).
    assert good["jobs_traced"] > 50
    assert volatile["mean_exec_ms"] > good["mean_exec_ms"]
    assert volatile["mean_abs_error_ms"] > good["mean_abs_error_ms"]
