"""Benchmark: regenerate Figure 8 (DARIS module contributions)."""

from conftest import emit, run_once

from repro.experiments import fig8_ablations


def test_bench_fig8_ablations(benchmark):
    rows = run_once(benchmark, fig8_ablations.run, True)
    emit("Figure 8: module ablations", rows)

    by_variant = {row["variant"]: row for row in rows}
    daris = by_variant["DARIS"]
    # Full DARIS keeps HP deadline misses at zero.
    assert daris["hp_dmr"] == 0.0
    # Removing staging costs throughput (the paper reports a 33 % drop).
    assert by_variant["No Staging"]["normalized_jps"] < 1.0
    # No ablation improves on DARIS by more than noise.
    for name, row in by_variant.items():
        assert row["normalized_jps"] <= 1.1, name
