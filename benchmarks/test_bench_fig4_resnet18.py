"""Benchmark: regenerate Figure 4 (ResNet18 task set: throughput and LP DMR)."""

from conftest import emit, run_once

from repro.experiments import fig4_6_main


def test_bench_fig4_resnet18(benchmark):
    rows = run_once(benchmark, fig4_6_main.run, "resnet18", True)
    emit("Figure 4: ResNet18 scheduling results", rows)

    best = fig4_6_main.best_row(rows)
    upper_baseline = fig4_6_main.PAPER_HIGHLIGHTS["resnet18"]["upper_baseline"]
    # DARIS beats the pure-batching upper baseline without batching, and the
    # best configuration uses the MPS policy (paper Section VI-1).
    assert best["total_jps"] > upper_baseline
    assert best["policy"] == "MPS"
    # (Essentially) no HP deadline misses anywhere in the sweep.
    assert all(row["hp_dmr"] <= 0.01 for row in rows)
