"""Cluster-backend scaling benchmark: one serving scenario at 1..64 GPUs.

Times the composite ``cluster`` backend end to end — release generation,
routing, N per-GPU EDF loops and telemetry assembly on one simulator — with
the offered load scaled to the cluster size, so the per-GPU event volume is
constant and the timing isolates the cost of the cluster layer itself as
devices are added.  With the indexed dispatch tier
(``ClusterServer.indexed_dispatch_enabled``) the per-release cost is O(1) in
cluster size, so ``jobs_per_wall_second`` should hold near-flat from 1 to 64
GPUs; the 16/32/64 rows exist to catch any reintroduced O(num_gpus) scan.
When the benchmarks actually time (not ``--benchmark-disable`` smoke mode),
the results are written to ``BENCH_cluster.json`` through the shared
perf-report helper and gated by the perf-smoke CI lane.
"""

import math

import pytest

from conftest import run_once

from repro.cluster import ClusterConfig, ClusterServer
from repro.dnn.zoo import build_model
from repro.experiments.perf_report import write_bench_summary
from repro.gpu.calibration import DEFAULT_CALIBRATION
from repro.rt.taskset import make_taskset
from repro.sim.rng import RngFactory
from repro.sim.workload import POISSON_WORKLOAD

HORIZON_MS = 4_000.0
GPU_COUNTS = (1, 2, 4, 8, 16, 32, 64)
LOAD_FACTOR = 0.7

#: label -> (seconds, completed jobs), filled as the parametrized runs time.
_RESULTS = {}


def _scaled_taskset(num_gpus: int):
    """Poisson demand at ``LOAD_FACTOR`` x the cluster's serial capacity."""
    model = build_model("resnet50")
    serial_jps = 1000.0 / model.isolated_latency_ms(DEFAULT_CALIBRATION)
    task_jps = 25.0
    total = max(2, int(round(LOAD_FACTOR * num_gpus * serial_jps / task_jps)))
    num_high = max(1, total // 3)
    return make_taskset(
        [model],
        num_high=num_high,
        num_low=total - num_high,
        task_jps=task_jps,
        name=f"bench-cluster/g{num_gpus}",
    )


def _serve_cluster(num_gpus: int) -> int:
    taskset = _scaled_taskset(num_gpus)
    server = ClusterServer(ClusterConfig(num_gpus=num_gpus))
    metrics = server.serve(
        taskset, HORIZON_MS, workload=POISSON_WORKLOAD, rng=RngFactory(1)
    )
    return metrics.high.completed + metrics.low.completed


@pytest.fixture(scope="module", autouse=True)
def _cluster_perf_report(request):
    """Persist the collected timings as BENCH_cluster.json at module end."""
    yield
    timings = {label: seconds for label, (seconds, _) in _RESULTS.items() if seconds}
    if not timings:
        return  # --benchmark-disable smoke mode collects no timings
    extras = {
        label: {
            "completed_jobs": _RESULTS[label][1],
            "jobs_per_wall_second": round(_RESULTS[label][1] / seconds, 1),
        }
        for label, seconds in timings.items()
    }
    try:
        path = write_bench_summary(
            timings,
            request.config.rootpath / "BENCH_cluster.json",
            title="cluster-backend scaling benchmarks",
            extras=extras,
        )
    except OSError:  # pragma: no cover - read-only checkouts
        return
    if path is not None:
        print(f"\ncluster perf report written to {path}")


@pytest.mark.parametrize("num_gpus", GPU_COUNTS)
def test_bench_cluster_scaling(benchmark, num_gpus):
    """End-to-end cluster serving at a fixed per-GPU load, varying size."""
    completed = run_once(benchmark, _serve_cluster, num_gpus)
    # At 0.7x capacity the cluster completes nearly everything released.
    assert completed > 0
    stats = getattr(benchmark, "stats", None)
    data = getattr(getattr(stats, "stats", None), "data", None) or getattr(
        stats, "data", None
    )
    seconds = min(data) if data else None
    if seconds and math.isfinite(seconds):
        _RESULTS[f"cluster-{num_gpus}gpu"] = (seconds, completed)
