"""Benchmark: regenerate Figure 2 (staging and virtual deadline assignment)."""

from conftest import emit, run_once

from repro.experiments import fig2_staging


def test_bench_fig2_virtual_deadlines(benchmark):
    rows = run_once(benchmark, fig2_staging.run, True)
    emit("Figure 2: virtual deadlines per stage", rows)

    # Virtual deadline shares of each model sum to the task's relative deadline.
    per_model = {}
    for row in rows:
        per_model.setdefault(row["model"], 0.0)
        per_model[row["model"]] += row["deadline_fraction"]
    for model, total in per_model.items():
        assert abs(total - 1.0) < 0.02, model
