"""Arrival-generation benchmarks: releases per second for every workload kind.

These do not correspond to a paper figure; they document the raw generation
rate of each arrival process (no simulator, no scheduler) at a large horizon,
so a regression in the workload layer's own cost is visible before it taxes
every backend.  When the benchmarks actually time (not ``--benchmark-disable``
smoke mode), the rates are written to ``BENCH_workloads.json`` through the
shared perf-report helper.
"""

import math

import pytest

from conftest import run_once

from repro.experiments.perf_report import write_bench_summary
from repro.sim.rng import RngFactory
from repro.sim.workload import (
    DIURNAL_WORKLOAD,
    MMPP_WORKLOAD,
    PERIODIC_WORKLOAD,
    POISSON_WORKLOAD,
    ReleaseStream,
    WorkloadSpec,
)

#: Large-horizon generation: 120 s of simulated time at 1000 releases/s
#: nominal, i.e. ~120k events per kind.
HORIZON_MS = 120_000.0
RATE_JPS = 1000.0


def _trace_workload() -> WorkloadSpec:
    period = 1000.0 / RATE_JPS
    return WorkloadSpec.trace([period * index for index in range(int(RATE_JPS * HORIZON_MS / 1000.0))])


BENCH_WORKLOADS = {
    "periodic": PERIODIC_WORKLOAD,
    "periodic+jitter": WorkloadSpec(jitter_ms=0.5),
    "poisson": POISSON_WORKLOAD,
    "mmpp": MMPP_WORKLOAD,
    "mmpp+jitter": MMPP_WORKLOAD.with_jitter(0.5),
    "diurnal-sin": DIURNAL_WORKLOAD,
    "diurnal-piecewise": POISSON_WORKLOAD.with_diurnal(
        period_ms=1000.0, shape="piecewise", levels=(0.25, 1.0, 2.75)
    ),
    "trace": _trace_workload(),
}

#: label -> (seconds, releases), filled as the parametrized benchmarks run.
_RESULTS = {}


def _generate(workload: WorkloadSpec) -> int:
    """Generate (not simulate) every release up to the horizon; returns count."""
    stream = ReleaseStream(workload, RngFactory(1))
    arrival = stream.arrival_for(task_id=0, period_ms=1000.0 / RATE_JPS)
    count = 0
    for _ in arrival.events(HORIZON_MS):
        count += 1
    return count


@pytest.fixture(scope="module", autouse=True)
def _workload_perf_report(request):
    """Persist the collected rates as BENCH_workloads.json at module end."""
    yield
    timings = {label: seconds for label, (seconds, _) in _RESULTS.items() if seconds}
    if not timings:
        return  # --benchmark-disable smoke mode collects no timings
    extras = {
        label: {
            "releases": _RESULTS[label][1],
            "releases_per_second": round(_RESULTS[label][1] / seconds, 1),
        }
        for label, seconds in timings.items()
    }
    try:
        path = write_bench_summary(
            timings,
            request.config.rootpath / "BENCH_workloads.json",
            title="arrival-generation benchmarks",
            extras=extras,
        )
    except OSError:  # pragma: no cover - read-only checkouts
        return
    if path is not None:
        print(f"\nworkload perf report written to {path}")


@pytest.mark.parametrize("label", sorted(BENCH_WORKLOADS))
def test_bench_arrival_generation(benchmark, label):
    """Releases/sec of one arrival kind generated against a large horizon."""
    workload = BENCH_WORKLOADS[label]
    count = run_once(benchmark, _generate, workload)
    # Every kind is calibrated to a mean rate of ~RATE_JPS, so the horizon
    # should produce on the order of 120k releases (trace: exactly).
    assert count > 0.5 * RATE_JPS * HORIZON_MS / 1000.0
    stats = getattr(benchmark, "stats", None)
    data = getattr(getattr(stats, "stats", None), "data", None) or getattr(
        stats, "data", None
    )
    seconds = min(data) if data else None
    if seconds and math.isfinite(seconds):
        _RESULTS[label] = (seconds, count)
