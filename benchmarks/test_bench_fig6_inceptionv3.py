"""Benchmark: regenerate Figure 6 (InceptionV3 task set: throughput and LP DMR)."""

from conftest import emit, run_once

from repro.experiments import fig4_6_main


def test_bench_fig6_inceptionv3(benchmark):
    rows = run_once(benchmark, fig4_6_main.run, "inceptionv3", True)
    emit("Figure 6: InceptionV3 scheduling results", rows)

    best = fig4_6_main.best_row(rows)
    upper_baseline = fig4_6_main.PAPER_HIGHLIGHTS["inceptionv3"]["upper_baseline"]
    # InceptionV3 stays below its batching baseline without batching (paper: ~87 %).
    assert best["total_jps"] < upper_baseline
    assert best["total_jps"] > 0.75 * upper_baseline
    # It keeps benefitting from concurrency: 8 contexts beat 2 contexts under MPS.
    mps = [row for row in rows if row["policy"] == "MPS" and row["oversubscription"] > 1.0]
    small = max(r["total_jps"] for r in mps if r["parallel_dnns"] == 2)
    large = max(r["total_jps"] for r in mps if r["parallel_dnns"] == 8)
    assert large > small
