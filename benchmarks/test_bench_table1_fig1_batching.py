"""Benchmark: regenerate Table I and Figure 1 (batching throughput per DNN)."""

from conftest import emit, run_once

from repro.experiments import fig1_table1_batching


def test_bench_table1_fig1_batching(benchmark):
    rows = run_once(benchmark, fig1_table1_batching.run, True)
    emit("Table I / Figure 1: batching performance", rows)

    gains = {row["model"]: row for row in rows if row["batch_size"] == "gain"}
    # Qualitative shape from the paper: InceptionV3 benefits the most from
    # batching, UNet the least.
    assert gains["inceptionv3"]["normalized"] > gains["resnet18"]["normalized"]
    assert gains["unet"]["normalized"] < 1.3
    assert gains["inceptionv3"]["normalized"] > 2.0
