"""Benchmark: regenerate the Section VI-B state-of-the-art comparison (ResNet50)."""

from conftest import emit, run_once

from repro.experiments import sota_comparison


def test_bench_sota_resnet50(benchmark):
    rows = run_once(benchmark, sota_comparison.run, True)
    emit("Section VI-B: ResNet50 comparison", rows)

    by_system = {row["system"]: row for row in rows}
    batching = by_system["pure batching (upper baseline)"]["measured_jps"]
    daris = by_system["DARIS (MPS 6x1 OS6)"]["measured_jps"]
    no_os = by_system["DARIS without oversubscription (OS1)"]["measured_jps"]
    clockwork = by_system["Clockwork-like (one DNN at a time)"]["measured_jps"]

    # Shape from the paper: DARIS beats batching; removing oversubscription
    # hurts badly; the one-at-a-time predictable server is far below all of them.
    assert daris > batching
    assert no_os < daris
    assert clockwork < batching
