"""Microbenchmarks of the simulation substrate itself.

These do not correspond to a paper figure; they document the cost of the GPU
engine and of a full scheduling run so regressions in the simulator's own
performance are visible.
"""

from conftest import run_once

from repro.dnn.zoo import build_model
from repro.experiments.runner import run_daris_scenario
from repro.gpu.platform import GpuPlatform, PlatformConfig
from repro.rt.taskset import table2_taskset
from repro.scheduler.config import DarisConfig
from repro.sim.simulator import Simulator


def test_bench_engine_kernel_throughput(benchmark):
    """Time to execute 2000 back-to-back stages through the GPU engine."""
    model = build_model("resnet18")

    def run_engine():
        simulator = Simulator()
        platform = GpuPlatform(
            simulator, PlatformConfig(num_contexts=1, streams_per_context=1, oversubscription=1.0)
        )
        state = {"count": 0}

        def relaunch(_kernel):
            state["count"] += 1
            if state["count"] < 2000:
                submit()

        def submit():
            stage = model.stages[state["count"] % model.num_stages]
            platform.launch(0, 0, stage.to_kernel_spec(), on_complete=relaunch)

        submit()
        simulator.run(max_events=200000)
        return state["count"]

    completed = run_once(benchmark, run_engine)
    assert completed == 2000


def test_bench_full_scheduling_run(benchmark):
    """Wall-clock cost of one second of simulated DARIS scheduling."""
    taskset = table2_taskset("resnet18")
    config = DarisConfig.mps_config(6, 6.0)

    result = run_once(
        benchmark, run_daris_scenario, taskset, config, 1000.0
    )
    assert result.total_jps > 0
