"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper in its reduced
("quick") form and prints the resulting rows, so running::

    pytest benchmarks/ --benchmark-only -s

both times the harness and shows the reproduced numbers.
"""

from __future__ import annotations

from typing import Callable, List, Mapping, Sequence

from repro.analysis.tables import format_table


def run_once(benchmark, func: Callable, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def emit(title: str, rows: Sequence[Mapping[str, object]]) -> None:
    """Print a reproduced table under a banner."""
    print(f"\n=== {title} ===")
    print(format_table(list(rows)))
