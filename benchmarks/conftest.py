"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper in its reduced
("quick") form and prints the resulting rows, so running::

    pytest benchmarks/ --benchmark-only -s

both times the harness and shows the reproduced numbers.

All benchmarks are marked ``slow`` so that ``pytest -m "not slow"`` gives a
fast test lane; and when the substrate benchmarks actually ran (i.e. not under
``--benchmark-disable``), their timings are written to ``BENCH_substrate.json``
via :mod:`repro.experiments.perf_report`.
"""

from __future__ import annotations

from typing import Callable, List, Mapping, Sequence

import pytest

from repro.analysis.tables import format_table
from repro.experiments.perf_report import write_bench_summary

_SUBSTRATE_PREFIX = "test_bench_engine_kernel_throughput", "test_bench_full_scheduling_run"


def pytest_collection_modifyitems(items) -> None:
    """Mark every benchmark test as slow (they simulate whole figures)."""
    slow = pytest.mark.slow
    for item in items:
        if "benchmarks" in str(item.fspath):
            item.add_marker(slow)


def pytest_sessionfinish(session) -> None:
    """Persist substrate benchmark timings as a BENCH_*.json perf report."""
    benchmark_session = getattr(session.config, "_benchmarksession", None)
    if benchmark_session is None:
        return
    timings = {}
    for bench in getattr(benchmark_session, "benchmarks", []):
        if not bench.name.startswith(_SUBSTRATE_PREFIX):
            continue
        stats = getattr(bench, "stats", None)
        if stats is None or not getattr(stats, "data", None):
            continue  # --benchmark-disable smoke mode collects no data
        timings[bench.name] = min(stats.data)
    try:
        path = write_bench_summary(timings, session.config.rootpath / "BENCH_substrate.json")
    except OSError:  # pragma: no cover - read-only checkouts
        return
    if path is not None:
        print(f"\nsubstrate perf report written to {path}")


def run_once(benchmark, func: Callable, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def emit(title: str, rows: Sequence[Mapping[str, object]]) -> None:
    """Print a reproduced table under a banner."""
    print(f"\n=== {title} ===")
    print(format_table(list(rows)))
