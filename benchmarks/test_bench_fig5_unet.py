"""Benchmark: regenerate Figure 5 (UNet task set: throughput and LP DMR)."""

from conftest import emit, run_once

from repro.experiments import fig4_6_main


def test_bench_fig5_unet(benchmark):
    rows = run_once(benchmark, fig4_6_main.run, "unet", True)
    emit("Figure 5: UNet scheduling results", rows)

    best = fig4_6_main.best_row(rows)
    upper_baseline = fig4_6_main.PAPER_HIGHLIGHTS["unet"]["upper_baseline"]
    assert best["total_jps"] > upper_baseline * 0.98
    assert best["policy"] == "MPS"
    # UNet is the least sensitive network: LP DMR stays low across the sweep.
    assert all(row["lp_dmr"] < 0.10 for row in rows)
