"""Benchmark: regenerate Figure 10 (DARIS combined with input batching)."""

from conftest import emit, run_once

from repro.experiments import fig10_batched


def _run_all(quick):
    rows = []
    for model_name in ("resnet18", "unet", "inceptionv3"):
        rows.extend(fig10_batched.run(model_name, quick))
    return rows


def test_bench_fig10_batched_daris(benchmark):
    rows = run_once(benchmark, _run_all, True)
    emit("Figure 10: DARIS + batching", rows)

    def best_gain(model):
        return max(row["gain"] for row in rows if row["model"] == model)

    # InceptionV3 gains the most from batching on top of DARIS, UNet the least
    # (paper: >= 55 % versus <= 18 %).
    assert best_gain("inceptionv3") > best_gain("unet")
    assert best_gain("inceptionv3") > 1.2
    # Batched DARIS approaches the upper baseline even at low concurrency
    # (the paper exceeds it; the simulator gets within ~15 %).
    inception_rows = [row for row in rows if row["model"] == "inceptionv3"]
    assert any(
        row["batched_jps"] >= 0.85 * row["upper_baseline_jps"] for row in inception_rows
    )
