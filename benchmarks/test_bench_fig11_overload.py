"""Benchmark: regenerate Figure 11 (overloading and HP-to-LP ratios)."""

from conftest import emit, run_once

from repro.experiments import fig11_overload


def test_bench_fig11_overload(benchmark):
    rows = run_once(benchmark, fig11_overload.run, True)
    emit("Figure 11: overload and task ratios", rows)

    # Under full load there are no deadline misses for either priority.
    full_load = [row for row in rows if row["scenario"] == "full load"]
    assert all(row["hp_dmr"] == 0.0 and row["lp_dmr"] < 0.02 for row in full_load)

    # Overload+HPA keeps HP misses (near) zero even when HP demand is high,
    # at the cost of dropping some HP jobs.
    hpa = [row for row in rows if row["scenario"] == "overload+HPA"]
    assert all(row["hp_dmr"] <= 0.02 for row in hpa)

    # Plain overload with a high HP share produces more HP misses than HPA.
    overload_high_hp = [
        row for row in rows if row["scenario"] == "overload" and row["hp_fraction"] >= 0.5
    ]
    hpa_high_hp = [row for row in hpa if row["hp_fraction"] >= 0.5]
    if overload_high_hp and hpa_high_hp:
        assert max(r["hp_dmr"] for r in overload_high_hp) >= max(r["hp_dmr"] for r in hpa_high_hp)
