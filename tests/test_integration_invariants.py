"""End-to-end invariants of the full stack (scheduler + GPU + task model).

These tests run small but complete scenarios and check properties that must
hold regardless of calibration: conservation of jobs, causality of timestamps,
stage ordering within jobs, and the paper's headline qualitative relations on
a reduced workload.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rt.task import Priority
from repro.rt.taskset import make_taskset, table2_taskset
from repro.rt.trace import TraceRecorder
from repro.scheduler.config import DarisConfig
from repro.scheduler.daris import DarisScheduler
from repro.sim.rng import RngFactory
from repro.sim.simulator import Simulator


def _run(taskset, config, horizon=1000.0, seed=3):
    simulator = Simulator()
    trace = TraceRecorder(enabled=True)
    scheduler = DarisScheduler(simulator, taskset, config, rng=RngFactory(seed), trace=trace)
    metrics = scheduler.run(horizon)
    return scheduler, metrics, trace


def test_stage_timestamps_are_causal_and_ordered(resnet18):
    taskset = make_taskset([resnet18], num_high=2, num_low=4, task_jps=15.0)
    _, _, trace = _run(taskset, DarisConfig.mps_config(3, 3.0))
    per_job = {}
    for record in trace.stage_records:
        per_job.setdefault((record.task_name, record.job_index), []).append(record)
    assert per_job
    for records in per_job.values():
        records.sort(key=lambda r: r.stage_index)
        finish_times = [r.time_ms for r in records]
        # Stages of one job finish in stage order (they are sequential).
        assert finish_times == sorted(finish_times)
        assert all(r.execution_time_ms > 0 for r in records)


def test_job_records_match_completed_counts(resnet18):
    taskset = make_taskset([resnet18], num_high=2, num_low=4, task_jps=15.0)
    _, metrics, trace = _run(taskset, DarisConfig.mps_config(3, 3.0, warmup_ms=0.0))
    assert len(trace.job_records) == metrics.total_completed
    missed_in_trace = sum(1 for r in trace.job_records if r.missed_deadline)
    assert missed_in_trace == metrics.high.missed + metrics.low.missed
    assert all(r.response_time_ms > 0 for r in trace.job_records)


def test_completed_jobs_never_exceed_released(resnet18, unet):
    taskset = make_taskset([resnet18, unet], num_high=3, num_low=6, task_jps=18.0)
    _, metrics, _ = _run(taskset, DarisConfig.mps_str_config(2, 2, 2.0))
    for bucket in (metrics.high, metrics.low):
        assert bucket.completed <= bucket.admitted <= bucket.released
        assert bucket.missed <= bucket.completed


def test_policy_headline_relations_on_reduced_workload(resnet18):
    taskset = table2_taskset("resnet18", model=resnet18)
    configs = {
        "MPS": DarisConfig.mps_config(6, 6.0),
        "MPS_OS1": DarisConfig.mps_config(6, 1.0),
        "STR": DarisConfig.str_config(6),
    }
    results = {}
    for name, config in configs.items():
        _, metrics, _ = _run(taskset, config, horizon=1500.0)
        results[name] = metrics
    # MPS with full oversubscription beats both SM isolation and streams-only.
    assert results["MPS"].total_jps > results["MPS_OS1"].total_jps
    assert results["MPS"].total_jps > results["STR"].total_jps
    # Nobody misses HP deadlines on the reduced workload.
    assert all(m.high.deadline_miss_rate == 0.0 for m in results.values())


def test_gpu_never_reports_impossible_utilization(resnet18):
    taskset = make_taskset([resnet18], num_high=2, num_low=4, task_jps=20.0)
    scheduler, metrics, _ = _run(taskset, DarisConfig.mps_config(2, 2.0))
    assert 0.0 <= metrics.average_gpu_utilization <= 1.0
    assert scheduler.platform.engine.current_utilization <= 1.0 + 1e-9


def test_hpa_eliminates_hp_misses_under_pure_hp_overload(resnet18):
    overload = make_taskset([resnet18], num_high=40, num_low=0, task_jps=30.0)
    _, without_hpa, _ = _run(overload, DarisConfig.mps_config(6, 6.0), horizon=1500.0)
    _, with_hpa, _ = _run(
        overload, DarisConfig.mps_config(6, 6.0, hp_admission=True), horizon=1500.0
    )
    assert with_hpa.high.deadline_miss_rate <= without_hpa.high.deadline_miss_rate
    assert with_hpa.high.deadline_miss_rate <= 0.02
    assert with_hpa.high.rejection_rate > 0.0


def test_staging_improves_throughput_over_no_staging(resnet18):
    taskset = table2_taskset("resnet18", model=resnet18, scale=0.6)
    _, staged, _ = _run(taskset, DarisConfig.mps_config(6, 6.0), horizon=1500.0)
    _, unstaged, _ = _run(
        taskset, DarisConfig.mps_config(6, 6.0, staging=False), horizon=1500.0
    )
    assert staged.total_jps >= unstaged.total_jps * 0.95


@settings(deadline=None, max_examples=8)
@given(
    num_contexts=st.integers(min_value=1, max_value=6),
    streams=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=100),
)
def test_property_job_conservation_across_configurations(num_contexts, streams, seed):
    model = _MODEL_CACHE["resnet18"]
    if num_contexts == 1:
        config = DarisConfig.str_config(streams)
    elif streams == 1:
        config = DarisConfig.mps_config(num_contexts, float(num_contexts))
    else:
        config = DarisConfig.mps_str_config(num_contexts, streams, float(num_contexts))
    taskset = make_taskset([model], num_high=2, num_low=4, task_jps=15.0)
    simulator = Simulator()
    scheduler = DarisScheduler(simulator, taskset, config, rng=RngFactory(seed))
    metrics = scheduler.run(600.0)
    released = metrics.high.released + metrics.low.released
    admitted = metrics.high.admitted + metrics.low.admitted
    rejected = metrics.high.rejected + metrics.low.rejected
    assert admitted + rejected == released
    assert metrics.total_completed <= admitted
    assert metrics.high.missed <= metrics.high.completed
    assert metrics.low.missed <= metrics.low.completed


# Built once at import time so hypothesis examples do not pay the zoo cost.
from repro.dnn.zoo import build_model as _build_model  # noqa: E402

_MODEL_CACHE = {"resnet18": _build_model("resnet18")}
