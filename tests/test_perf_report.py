"""Tests for the BENCH_*.json summary writer and baseline comparison gate."""

import json

import pytest

from repro.experiments.perf_report import (
    EXIT_BAD_INPUT,
    EXIT_OK,
    EXIT_REGRESSION,
    build_bench_summary,
    compare_bench_summaries,
    format_comparison,
    load_bench_summary,
    main,
    write_bench_summary,
)


def test_build_summary_rounds_and_sorts():
    summary = build_bench_summary({"b": 0.5, "a": 0.25})
    names = [entry["name"] for entry in summary["benchmarks"]]
    assert names == ["a", "b"]
    assert summary["benchmarks"][0]["ops_per_second"] == pytest.approx(4.0)


def test_write_and_load_round_trip(tmp_path):
    path = write_bench_summary({"full_run": 0.25, "engine": 0.03}, tmp_path / "BENCH.json")
    assert load_bench_summary(path) == {"full_run": 0.25, "engine": 0.03}


def test_load_skips_unusable_entries(tmp_path):
    path = tmp_path / "BENCH.json"
    path.write_text(json.dumps({"benchmarks": [
        {"name": "good", "seconds": 0.1},
        {"name": "zero", "seconds": 0.0},
        {"name": "missing"},
        {"seconds": 0.5},
    ]}))
    assert load_bench_summary(path) == {"good": 0.1}


def test_load_rejects_malformed_file(tmp_path):
    path = tmp_path / "BENCH.json"
    path.write_text("not json")
    with pytest.raises(ValueError, match="unreadable"):
        load_bench_summary(path)
    with pytest.raises(ValueError, match="unreadable"):
        load_bench_summary(tmp_path / "absent.json")


def test_compare_classifies_every_status():
    rows = compare_bench_summaries(
        current={"same": 0.1, "faster": 0.05, "slower": 0.15, "new": 0.2},
        baseline={"same": 0.1, "faster": 0.1, "slower": 0.1, "gone": 0.3},
    )
    by_name = {row["name"]: row for row in rows}
    assert by_name["same"]["status"] == "ok"
    assert by_name["faster"]["status"] == "ok"
    assert by_name["faster"]["speedup"] == pytest.approx(2.0)
    assert by_name["slower"]["status"] == "regressed"
    assert by_name["new"]["status"] == "new"
    assert by_name["gone"]["status"] == "removed"


def test_compare_threshold_is_exclusive():
    # Exactly at the threshold is not a regression; just past it is.
    at = compare_bench_summaries({"b": 0.12}, {"b": 0.1}, threshold=0.2)
    past = compare_bench_summaries({"b": 0.121}, {"b": 0.1}, threshold=0.2)
    assert at[0]["status"] == "ok"
    assert past[0]["status"] == "regressed"


def test_compare_rejects_negative_threshold():
    with pytest.raises(ValueError):
        compare_bench_summaries({}, {}, threshold=-0.1)


def test_format_comparison_renders_missing_fields():
    rows = compare_bench_summaries({"new": 0.2}, {"gone": 0.3})
    text = format_comparison(rows)
    assert "new" in text and "removed" in text and "-" in text


def _write(tmp_path, name, timings):
    path = tmp_path / name
    path.write_text(json.dumps({"benchmarks": [
        {"name": key, "seconds": value} for key, value in timings.items()
    ]}))
    return str(path)


def test_main_exit_codes(tmp_path, capsys):
    baseline = _write(tmp_path, "base.json", {"run": 0.1})
    ok = _write(tmp_path, "ok.json", {"run": 0.1})
    bad = _write(tmp_path, "bad.json", {"run": 0.2})

    assert main([ok, "--baseline", baseline]) == EXIT_OK
    assert main([bad, "--baseline", baseline]) == EXIT_REGRESSION
    assert "perf regression" in capsys.readouterr().err
    assert main([str(tmp_path / "nope.json"), "--baseline", baseline]) == EXIT_BAD_INPUT


def test_main_new_and_removed_do_not_fail(tmp_path):
    baseline = _write(tmp_path, "base.json", {"gone": 0.1})
    current = _write(tmp_path, "cur.json", {"fresh": 0.2})
    assert main([current, "--baseline", baseline]) == EXIT_OK


def test_main_custom_threshold(tmp_path):
    baseline = _write(tmp_path, "base.json", {"run": 0.1})
    slower = _write(tmp_path, "cur.json", {"run": 0.14})
    assert main([slower, "--baseline", baseline]) == EXIT_REGRESSION
    assert main([slower, "--baseline", baseline, "--threshold", "0.5"]) == EXIT_OK
    assert main([slower, "--baseline", baseline, "--threshold", "0.1"]) == EXIT_REGRESSION
