"""Tests for the analysis helpers (stats, tables, ASCII plots)."""

import numpy as np
import pytest

from repro.analysis.plotting import ascii_bar_chart, ascii_series
from repro.analysis.stats import (
    normalize,
    percentile,
    replication_summary,
    summarize_series,
)
from repro.analysis.tables import format_comparison, format_table


def test_normalize_divides_by_reference():
    assert normalize([1.0, 2.0, 3.0], 2.0) == [0.5, 1.0, 1.5]
    with pytest.raises(ValueError):
        normalize([1.0], 0.0)


def test_percentile_handles_empty_and_bounds():
    assert percentile([], 50) == 0.0
    assert percentile([1.0, 2.0, 3.0], 50) == 2.0
    with pytest.raises(ValueError):
        percentile([1.0], 150)


def test_summarize_series():
    summary = summarize_series([1.0, 2.0, 3.0, 4.0])
    assert summary["mean"] == pytest.approx(2.5)
    assert summary["min"] == 1.0 and summary["max"] == 4.0
    assert summarize_series([])["p95"] == 0.0


def test_stats_accept_numpy_array_inputs():
    """Regression: the empty guards used truthiness, which raises
    "truth value of an array ... is ambiguous" for ndarray inputs."""
    values = np.array([1.0, 2.0, 3.0])
    assert percentile(values, 50) == 2.0
    assert summarize_series(values)["mean"] == pytest.approx(2.0)
    assert replication_summary(values)["mean"] == pytest.approx(2.0)
    empty = np.array([])
    assert percentile(empty, 95) == 0.0
    assert summarize_series(empty) == {
        "mean": 0.0, "min": 0.0, "max": 0.0, "p50": 0.0, "p95": 0.0,
    }
    with pytest.raises(ValueError):
        replication_summary(empty)


def test_format_table_alignment_and_order():
    rows = [{"name": "a", "value": 1.5}, {"name": "bb", "value": 20.0}]
    text = format_table(rows)
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert "1.50" in text and "20.00" in text
    assert len(lines) == 4  # header, separator, two rows


def test_format_table_empty_and_explicit_columns():
    assert format_table([]) == "(no rows)"
    rows = [{"a": 1, "b": 2}]
    text = format_table(rows, columns=["b"])
    assert "a" not in text.splitlines()[0]


def test_format_comparison_adds_ratio():
    rows = [{"system": "daris", "measured": 500.0, "paper": 498.0}]
    text = format_comparison(rows)
    assert "1.00" in text
    rows = [{"system": "x", "measured": 1.0, "paper": "-"}]
    assert "-" in format_comparison(rows)


def test_ascii_bar_chart_scales_bars():
    chart = ascii_bar_chart({"a": 10.0, "b": 5.0}, width=10)
    lines = chart.splitlines()
    assert lines[0].count("#") == 10
    assert lines[1].count("#") == 5
    assert ascii_bar_chart({}) == "(no data)"


def test_ascii_series_renders_grid():
    points = [(0.0, 0.0), (1.0, 1.0), (2.0, 4.0)]
    plot = ascii_series(points, height=5, width=20, title="t")
    lines = plot.splitlines()
    assert lines[0] == "t"
    assert len(lines) == 7  # title + 5 rows + axis legend
    assert plot.count("*") == 3
    assert ascii_series([]) == "(no data)"
