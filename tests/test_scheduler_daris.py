"""Integration tests for the DARIS scheduler on small workloads."""

import pytest

from repro.rt.task import Priority
from repro.rt.taskset import make_taskset, table2_taskset
from repro.rt.trace import TraceRecorder
from repro.scheduler.config import DarisConfig
from repro.scheduler.daris import DarisScheduler
from repro.sim.rng import RngFactory
from repro.sim.simulator import Simulator

HORIZON = 1200.0


def _run(taskset, config, seed=1, horizon=HORIZON, with_trace=False):
    simulator = Simulator()
    trace = TraceRecorder(enabled=with_trace)
    scheduler = DarisScheduler(simulator, taskset, config, rng=RngFactory(seed), trace=trace)
    metrics = scheduler.run(horizon)
    return scheduler, metrics, trace


def _small_set(resnet18, num_high=3, num_low=6, task_jps=20.0):
    return make_taskset([resnet18], num_high=num_high, num_low=num_low, task_jps=task_jps)


def test_scheduler_completes_jobs_and_accounts_them(resnet18):
    taskset = _small_set(resnet18)
    scheduler, metrics, _ = _run(taskset, DarisConfig.mps_config(3, 3.0))
    assert metrics.total_completed > 0
    assert metrics.total_jps > 0
    released = metrics.high.released + metrics.low.released
    admitted = metrics.high.admitted + metrics.low.admitted
    rejected = metrics.high.rejected + metrics.low.rejected
    assert admitted + rejected == released
    assert metrics.total_completed <= admitted


def test_light_load_meets_every_deadline_and_accepts_everything(resnet18):
    taskset = _small_set(resnet18, num_high=2, num_low=2, task_jps=10.0)
    _, metrics, _ = _run(taskset, DarisConfig.mps_config(4, 4.0))
    assert metrics.high.deadline_miss_rate == 0.0
    assert metrics.low.deadline_miss_rate == 0.0
    assert metrics.low.rejection_rate == 0.0
    assert metrics.high.rejection_rate == 0.0


def test_offline_phase_assigns_every_task_a_context(resnet18):
    taskset = _small_set(resnet18)
    scheduler, _, _ = _run(taskset, DarisConfig.mps_config(3, 3.0, warmup_ms=0.0), horizon=200.0)
    assert all(0 <= task.context_index < 3 for task in scheduler.tasks)


def test_hp_jobs_are_never_rejected_without_hpa(resnet18):
    taskset = table2_taskset("resnet18", model=resnet18, scale=0.5)
    _, metrics, _ = _run(taskset, DarisConfig.mps_config(4, 4.0))
    assert metrics.high.rejected == 0


def test_overload_rejects_lp_jobs_but_keeps_hp_misses_at_zero(resnet18):
    taskset = table2_taskset("resnet18", model=resnet18)  # 150 % overload
    _, metrics, _ = _run(taskset, DarisConfig.mps_config(6, 6.0))
    assert metrics.low.rejection_rate > 0.1
    assert metrics.high.deadline_miss_rate == 0.0
    assert metrics.high.response_time_stats()["mean"] < metrics.low.response_time_stats()["mean"] + 1e-9


def test_hp_response_times_beat_lp_response_times_under_load(resnet18):
    taskset = table2_taskset("resnet18", model=resnet18)
    _, metrics, _ = _run(taskset, DarisConfig.mps_config(6, 6.0))
    hp_mean = metrics.high.response_time_stats()["mean"]
    lp_mean = metrics.low.response_time_stats()["mean"]
    assert hp_mean < lp_mean


def test_str_policy_uses_single_context(resnet18):
    taskset = _small_set(resnet18)
    scheduler, metrics, _ = _run(taskset, DarisConfig.str_config(4))
    assert scheduler.platform.num_contexts == 1
    assert all(task.context_index == 0 for task in scheduler.tasks)
    assert metrics.total_completed > 0


def test_no_staging_config_dispatches_whole_jobs(resnet18):
    taskset = _small_set(resnet18, num_high=2, num_low=2, task_jps=10.0)
    config = DarisConfig.mps_config(4, 4.0, staging=False)
    scheduler, metrics, trace = _run(taskset, config, with_trace=True)
    assert all(task.num_stages == 1 for task in scheduler.tasks)
    assert metrics.total_completed > 0
    assert all(record.stage_index == 0 for record in trace.stage_records)


def test_trace_records_stages_and_jobs(resnet18):
    taskset = _small_set(resnet18, num_high=1, num_low=1, task_jps=10.0)
    _, metrics, trace = _run(
        taskset, DarisConfig.mps_config(2, 2.0, warmup_ms=0.0), with_trace=True
    )
    assert len(trace.job_records) == metrics.total_completed
    assert len(trace.stage_records) >= metrics.total_completed * resnet18.num_stages
    record = trace.stage_records[0]
    assert record.execution_time_ms > 0
    assert record.mret_prediction_ms > 0


def test_mret_adapts_from_afet_to_measurements(resnet18):
    taskset = _small_set(resnet18, num_high=1, num_low=0, task_jps=10.0)
    scheduler, _, _ = _run(taskset, DarisConfig.mps_config(2, 2.0, warmup_ms=0.0), horizon=500.0)
    task = scheduler.tasks[0]
    # After running, MRET reflects observed executions on the full context, so
    # the total should be well below the pessimistic full-load AFET seed and
    # above the sum of pure isolated kernel times.
    mret = task.mret_total()
    isolated = sum(stage.isolated_duration_ms(68.0) for stage in task.stages)
    assert mret >= isolated * 0.9
    assert mret < 10.0 * isolated


def test_determinism_same_seed_same_results(resnet18):
    taskset = _small_set(resnet18)
    config = DarisConfig.mps_config(3, 3.0)
    _, first, _ = _run(taskset, config, seed=5)
    _, second, _ = _run(taskset, config, seed=5)
    assert first.total_jps == pytest.approx(second.total_jps)
    assert first.low.missed == second.low.missed


def test_different_seeds_change_noise_but_not_structure(resnet18):
    taskset = _small_set(resnet18)
    config = DarisConfig.mps_config(3, 3.0)
    _, first, _ = _run(taskset, config, seed=1)
    _, second, _ = _run(taskset, config, seed=2)
    assert first.total_completed > 0 and second.total_completed > 0
    assert abs(first.total_jps - second.total_jps) / first.total_jps < 0.2


def test_mixed_priorities_rejecting_all_lp_still_serves_hp(resnet18):
    # Overwhelm a tiny configuration: HP must still complete.
    taskset = make_taskset([resnet18], num_high=8, num_low=40, task_jps=30.0)
    _, metrics, _ = _run(taskset, DarisConfig.mps_config(2, 2.0))
    assert metrics.high.completed > 0
    assert metrics.low.rejection_rate > 0.3


def test_queue_depth_and_context_task_views(resnet18):
    taskset = _small_set(resnet18)
    scheduler, _, _ = _run(taskset, DarisConfig.mps_config(3, 3.0, warmup_ms=0.0), horizon=300.0)
    total_tasks = sum(len(scheduler.context_tasks(ctx)) for ctx in range(3))
    assert total_tasks == len(taskset.tasks)
    assert all(scheduler.queue_depth(ctx) >= 0 for ctx in range(3))


def test_run_rejects_nonpositive_horizon(resnet18):
    taskset = _small_set(resnet18)
    scheduler = DarisScheduler(Simulator(), taskset, DarisConfig.mps_config(2, 2.0), rng=RngFactory(0))
    with pytest.raises(ValueError):
        scheduler.run(0.0)
