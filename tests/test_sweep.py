"""Tests for the sharded, resumable sweep driver.

Covers the key-range partitioner (stability, disjoint covering shards), the
acceptance path (two shards + merge byte-identical to an unsharded run), the
resume guarantee (a killed shard re-simulates only what had not committed,
asserted via cache hit/miss counters), store robustness (truncated tails,
grid mismatch detection), merge semantics (incomplete sweeps, traced
scenarios) and the CLI surface.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter

import pytest

import repro.experiments.sweep as sweep_module
from repro.experiments import cli
from repro.experiments.cache import ResultCache
from repro.experiments.engine import run_experiment
from repro.experiments.parallel import ScenarioRequest, _run_request
from repro.experiments.registry import ExperimentPlan, ExperimentSpec
from repro.experiments.sweep import (
    KEY_PREFIX_LEN,
    ShardStore,
    SweepGridMismatch,
    SweepIncomplete,
    build_sweep_grid,
    merge_sweep,
    plan_sweep,
    run_sweep_shard,
    shard_for_key,
    sweep_status,
)
from repro.rt.taskset import table2_taskset
from repro.scheduler.config import DarisConfig

TINY_HORIZON = 600.0
TINY_CONFIGS = [DarisConfig.mps_config(2, 2.0), DarisConfig.str_config(2)]


def _tiny_taskset(scale: float = 0.25):
    return table2_taskset("resnet18", scale=scale)


def _tiny_row(config: DarisConfig, result) -> dict:
    return {
        "config": config.label(),
        "total_jps": round(result.total_jps, 1),
        "lp_dmr": round(result.lp_dmr, 4),
    }


def _tiny_spec(with_trace: bool = False) -> ExperimentSpec:
    def build(ctx):
        taskset = _tiny_taskset()
        requests = [
            ScenarioRequest(taskset, config, TINY_HORIZON, seed=ctx.seed, with_trace=with_trace)
            for config in TINY_CONFIGS
        ]

        def make_rows(row_ctx):
            if with_trace:
                for result in row_ctx.results:
                    assert result.trace is not None
            return [
                _tiny_row(config, result)
                for config, result in zip(TINY_CONFIGS, row_ctx.results)
            ]

        return ExperimentPlan(requests=requests, make_rows=make_rows)

    return ExperimentSpec(name="tiny_sweep", title="tiny sweep spec", build=build)


def _split_shard_count(grid, max_shards: int = 64) -> int:
    """Smallest shard count that actually splits this grid's keys."""
    for num_shards in range(2, max_shards):
        if len({shard_for_key(unit.key, num_shards) for unit in grid.units}) >= 2:
            return num_shards
    pytest.fail("grid keys never split across shards")


# ----------------------------------------------------------------- partitioner


def test_shard_for_key_is_deterministic_disjoint_and_covering():
    keys = [hashlib.sha256(str(i).encode()).hexdigest() for i in range(500)]
    for num_shards in (1, 2, 3, 7, 16):
        shards = [shard_for_key(key, num_shards) for key in keys]
        assert all(0 <= shard < num_shards for shard in shards)
        # deterministic: recomputation agrees (no per-process salting)
        assert shards == [shard_for_key(key, num_shards) for key in keys]
        # hex-prefix ranges: sorting by key prefix sorts by shard
        by_prefix = sorted(zip(keys, shards))
        assert [s for _, s in by_prefix] == sorted(s for _, s in by_prefix)
    # 500 uniform keys over 16 shards: every shard owns something
    assert len(set(shard_for_key(key, 16) for key in keys)) == 16


def test_shard_for_key_only_reads_the_prefix():
    key = "ab" * 32
    mutated = key[:KEY_PREFIX_LEN] + "0" * (64 - KEY_PREFIX_LEN)
    assert shard_for_key(key, 8) == shard_for_key(mutated, 8)
    with pytest.raises(ValueError):
        shard_for_key(key, 0)


# ------------------------------------------------------------------ acceptance


def test_two_shard_sweep_then_merge_is_byte_identical_to_run(tmp_path):
    spec = _tiny_spec()
    baseline = run_experiment(spec, quick=True, seeds=2, processes=1)

    grid = build_sweep_grid([spec], quick=True, seeds=2)
    num_shards = _split_shard_count(grid)
    cache = ResultCache(tmp_path / "cache")
    reports = [
        run_sweep_shard(
            [spec],
            shard_index=shard,
            num_shards=num_shards,
            quick=True,
            seeds=2,
            processes=1,
            sweep_dir=tmp_path / "sweep",
            cache=cache,
        )
        for shard in range(num_shards)
    ]
    assert sum(report.shard_units for report in reports) == len(grid.units) == 4
    assert all(report.complete for report in reports)
    assert sum(report.simulated for report in reports) == 4

    merged = merge_sweep(
        [spec], quick=True, seeds=2, sweep_dir=tmp_path / "sweep", cache=cache
    )
    assert merged.simulated == 0 and merged.from_store == 4
    report = merged.reports[0]
    assert report.rows == baseline.rows
    assert report.rows_by_seed == baseline.rows_by_seed
    # byte-identical, not approximately equal
    assert json.dumps(report.rows) == json.dumps(baseline.rows)


def test_rerunning_a_complete_shard_simulates_nothing(tmp_path):
    spec = _tiny_spec()
    kwargs = dict(
        quick=True,
        seeds=2,
        processes=1,
        sweep_dir=tmp_path / "sweep",
        cache=ResultCache(tmp_path / "cache"),
    )
    first = run_sweep_shard([spec], shard_index=0, num_shards=1, **kwargs)
    assert first.shard_units == 4 and first.simulated == 4
    second = run_sweep_shard([spec], shard_index=0, num_shards=1, **kwargs)
    assert second.already_committed == 4
    assert second.simulated == 0 and second.from_cache == 0


# ---------------------------------------------------------------------- resume


def test_killed_shard_resumes_only_uncommitted_scenarios(tmp_path, monkeypatch):
    """Acceptance: after a mid-run kill, a re-run simulates exactly the
    scenarios that had not yet committed (cache counters prove no re-work)."""
    spec = _tiny_spec()
    kwargs = dict(quick=True, seeds=2, processes=1, sweep_dir=tmp_path / "sweep")

    def _killed_after_one(requests, processes=None, on_result=None, ordered=True):
        result = _run_request(requests[0])
        if on_result is not None:
            on_result(0, result)  # one scenario commits (cache + rows.jsonl) ...
        raise KeyboardInterrupt  # ... then the machine dies

    monkeypatch.setattr(sweep_module, "run_scenarios_parallel", _killed_after_one)
    with pytest.raises(KeyboardInterrupt):
        run_sweep_shard(
            [spec], shard_index=0, num_shards=1,
            cache=ResultCache(tmp_path / "cache"), **kwargs,
        )
    monkeypatch.undo()

    store = ShardStore(tmp_path / "sweep", 0, 1)
    assert len(store.committed_records()) == 1  # the in-flight rest was lost

    resume_cache = ResultCache(tmp_path / "cache")
    report = run_sweep_shard(
        [spec], shard_index=0, num_shards=1, cache=resume_cache, **kwargs
    )
    assert report.already_committed == 1  # served by the row store, not probed
    assert report.from_cache == 0
    assert report.simulated == 3  # only what had not committed
    assert resume_cache.misses == 3 and resume_cache.hits == 0


def test_shard_store_skips_truncated_tail_lines(tmp_path):
    store = ShardStore(tmp_path, 0, 1)
    store.directory.mkdir(parents=True)
    good = {"key": "aa" * 32, "result": {"label": "x"}}
    with store.rows_path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(good) + "\n")
        handle.write('{"key": "bb", "result": {"label"')  # killed mid-append
    records = store.committed_records()
    assert list(records) == [good["key"]]
    assert records[good["key"]]["result"] == {"label": "x"}
    assert store.committed_keys() == {good["key"]}


def test_appender_truncates_a_partial_tail_before_resuming(tmp_path):
    """Regression: resuming after a kill mid-append must neither concatenate
    the first new record onto the dangling partial line (both lost) nor leave
    the damaged line in the file's interior — a partial payload that already
    contains the "key"/"result" fields would then fool the fast key scan into
    counting a scenario that never committed."""
    store = ShardStore(tmp_path, 0, 1)
    store.directory.mkdir(parents=True)
    good = {"key": "aa" * 32, "result": {"label": "x"}}
    damaged = {"key": "bb" * 32, "result": {"label": "big payload", "extra": 1}}
    with store.rows_path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(good) + "\n")
        handle.write(json.dumps(damaged)[:-4])  # killed mid-payload, no newline
    fresh = {"key": "cc" * 32, "result": {"label": "y"}}
    with store.appender() as append:
        append(fresh)
    assert store.committed_keys() == {good["key"], fresh["key"]}  # not damaged's
    records = store.committed_records()
    assert records[fresh["key"]]["result"] == {"label": "y"}
    assert damaged["key"] not in records
    assert store.rows_path.read_text().count("\n") == 2  # partial tail is gone


def test_shard_store_refuses_concurrent_writers(tmp_path):
    """The store is single-writer: a second appender on the same shard must
    fail fast instead of truncating the live writer's in-flight tail."""
    store = ShardStore(tmp_path, 0, 1)
    with store.appender() as append:
        append({"key": "aa" * 32, "result": {"label": "x"}})
        with pytest.raises(sweep_module.SweepError):
            with ShardStore(tmp_path, 0, 1).appender():
                pass
    # the lock is released on exit; a later resume can append again
    with store.appender() as append:
        append({"key": "bb" * 32, "result": {"label": "y"}})
    assert store.committed_keys() == {"aa" * 32, "bb" * 32}


def test_corrupt_manifest_is_never_complete_and_rejected(tmp_path):
    """A store whose manifest cannot be read must not report itself complete
    (status) nor be silently adopted by run/plan/merge (grid unverifiable)."""
    spec = _tiny_spec()
    kwargs = dict(
        quick=True, seeds=1, processes=1,
        sweep_dir=tmp_path / "sweep", cache=ResultCache(tmp_path / "cache"),
    )
    run_sweep_shard([spec], shard_index=0, num_shards=1, **kwargs)
    store = ShardStore(tmp_path / "sweep", 0, 1)
    store.manifest_path.write_text("{ not json")
    (status,) = sweep_status(tmp_path / "sweep")
    assert not status.manifest_ok and not status.complete
    with pytest.raises(SweepGridMismatch):
        run_sweep_shard([spec], shard_index=0, num_shards=1, **kwargs)
    with pytest.raises(SweepGridMismatch):
        merge_sweep([spec], quick=True, seeds=1,
                    sweep_dir=tmp_path / "sweep", cache=tmp_path / "cache")


def test_mismatched_grid_is_rejected(tmp_path):
    spec = _tiny_spec()
    kwargs = dict(
        quick=True, processes=1,
        sweep_dir=tmp_path / "sweep", cache=ResultCache(tmp_path / "cache"),
    )
    run_sweep_shard([spec], shard_index=0, num_shards=1, seeds=1, **kwargs)
    with pytest.raises(SweepGridMismatch):
        run_sweep_shard([spec], shard_index=0, num_shards=1, seeds=2, **kwargs)
    with pytest.raises(SweepGridMismatch):
        merge_sweep([spec], quick=True, seeds=2,
                    sweep_dir=tmp_path / "sweep", cache=tmp_path / "cache")
    with pytest.raises(SweepGridMismatch):
        plan_sweep([spec], num_shards=1, quick=True, seeds=2,
                   sweep_dir=tmp_path / "sweep", cache=tmp_path / "cache")


def test_corrupt_cache_payload_degrades_to_resimulation(tmp_path):
    """A cache entry with a valid envelope but a damaged result payload must
    cost a re-simulation, not poison the row store or abort the merge."""
    spec = _tiny_spec()
    cache = ResultCache(tmp_path / "cache")
    grid = build_sweep_grid([spec], quick=True, seeds=1)
    for unit in grid.units:  # plant damaged-but-parseable entries
        path = cache.path_for(unit.key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(
            {"entry_schema": 1, "key": unit.key, "result": {"label": "broken"}}
        ))
    report = run_sweep_shard(
        [spec], shard_index=0, num_shards=1, quick=True, processes=1,
        sweep_dir=tmp_path / "sweep", cache=cache,
    )
    assert report.from_cache == 0 and report.simulated == 2
    merged = merge_sweep([spec], quick=True,
                         sweep_dir=tmp_path / "sweep", cache=cache)
    assert merged.from_store == 2
    assert merged.reports[0].rows == run_experiment(spec, quick=True, processes=1).rows


# ----------------------------------------------------------------------- merge


def test_merge_of_incomplete_sweep_raises_then_simulates_on_request(tmp_path):
    spec = _tiny_spec()
    grid = build_sweep_grid([spec], quick=True, seeds=2)
    num_shards = _split_shard_count(grid)
    counts = Counter(shard_for_key(unit.key, num_shards) for unit in grid.units)
    ran_shard = min(shard for shard in counts)  # run one shard, leave the rest
    cache = ResultCache(tmp_path / "cache")
    run_sweep_shard(
        [spec], shard_index=ran_shard, num_shards=num_shards,
        quick=True, seeds=2, processes=1, sweep_dir=tmp_path / "sweep", cache=cache,
    )
    missing = len(grid.units) - counts[ran_shard]
    assert missing > 0

    with pytest.raises(SweepIncomplete) as excinfo:
        merge_sweep([spec], quick=True, seeds=2,
                    sweep_dir=tmp_path / "sweep", cache=cache)
    assert excinfo.value.missing == missing

    merged = merge_sweep(
        [spec], quick=True, seeds=2, processes=1,
        sweep_dir=tmp_path / "sweep", cache=cache, simulate_missing=True,
    )
    assert merged.simulated == missing
    baseline = run_experiment(spec, quick=True, seeds=2, processes=1)
    assert merged.reports[0].rows == baseline.rows

    # the merge committed its simulations to the cache: a second merge is clean
    again = merge_sweep([spec], quick=True, seeds=2,
                        sweep_dir=tmp_path / "sweep", cache=cache)
    assert again.simulated == 0 and again.from_cache == missing


def test_traced_scenarios_are_excluded_from_shards_and_merge_simulates(tmp_path):
    spec = _tiny_spec(with_trace=True)
    report = run_sweep_shard(
        [spec], shard_index=0, num_shards=1, quick=True, processes=1,
        sweep_dir=tmp_path / "sweep", cache=ResultCache(tmp_path / "cache"),
    )
    assert report.shard_units == 0 and report.uncacheable == 2
    assert report.simulated == 0

    merged = merge_sweep([spec], quick=True, processes=1,
                         sweep_dir=tmp_path / "sweep", cache=tmp_path / "cache")
    assert merged.traced == 2 and merged.simulated == 0  # traced don't count
    assert merged.reports[0].uncached == 2
    assert merged.reports[0].rows == run_experiment(spec, quick=True, processes=1).rows
    assert not (tmp_path / "cache").exists()  # traced results never reach the cache


# ------------------------------------------------------------------------ plan


def test_plan_probes_without_simulating_or_creating_directories(tmp_path, monkeypatch):
    spec = _tiny_spec()

    def _forbidden(*args, **kwargs):
        raise AssertionError("plan must not simulate")

    monkeypatch.setattr(sweep_module, "run_scenarios_parallel", _forbidden)
    grid, entries = plan_sweep(
        [spec], num_shards=2, quick=True, seeds=2,
        sweep_dir=tmp_path / "sweep", cache=tmp_path / "cache",
    )
    assert sum(entry.units for entry in entries) == len(grid.units) == 4
    assert all(entry.committed == 0 and entry.cached == 0 for entry in entries)
    assert sum(entry.misses for entry in entries) == 4
    assert not (tmp_path / "sweep").exists()  # pure inspection
    assert not (tmp_path / "cache").exists()
    monkeypatch.undo()

    # after one shard runs, plan sees its commits; a warm cache turns the
    # other shard's misses into "cached" without reading a single entry
    cache = ResultCache(tmp_path / "cache")
    run_sweep_shard([spec], shard_index=0, num_shards=1, quick=True, seeds=2,
                    processes=1, sweep_dir=tmp_path / "sweep", cache=cache)
    _, entries = plan_sweep(
        [spec], num_shards=1, quick=True, seeds=2,
        sweep_dir=tmp_path / "sweep", cache=cache,
    )
    assert entries[0].committed == 4 and entries[0].misses == 0
    hits_before, misses_before = cache.hits, cache.misses
    _, entries = plan_sweep(
        [spec], num_shards=1, quick=True, seeds=2,
        sweep_dir=tmp_path / "fresh-sweep", cache=cache,
    )
    assert entries[0].cached == 4 and entries[0].misses == 0
    assert (cache.hits, cache.misses) == (hits_before, misses_before)  # stat-only


# ------------------------------------------------------------------------- CLI


def test_cli_sweep_round_trip_matches_run_output(tmp_path, capsys):
    """Acceptance (CLI face): shard 0/2 + shard 1/2 + merge --json emits rows
    byte-identical to an unsharded `run --json` of the same spec/seeds."""
    sweep_dir, cache_dir = str(tmp_path / "sweep"), str(tmp_path / "cache")
    common = ["sota", "--quick", "--seeds", "2", "--base-seed", "1"]
    for shard in ("0/2", "1/2"):
        code = cli.main(
            ["sweep", "run", *common, "--shard", shard, "--jobs", "1",
             "--sweep-dir", sweep_dir, "--cache-dir", cache_dir]
        )
        assert code == cli.EXIT_OK
    capsys.readouterr()

    assert cli.main(["sweep", "status", "--sweep-dir", sweep_dir]) == cli.EXIT_OK
    status_out = capsys.readouterr().out
    assert "2/2 shard store(s) complete" in status_out

    assert cli.main(
        ["sweep", "merge", *common, "--json",
         "--sweep-dir", sweep_dir, "--cache-dir", cache_dir]
    ) == cli.EXIT_OK
    merged_out = capsys.readouterr().out

    assert cli.main(["run", *common, "--json", "--jobs", "1", "--no-cache"]) == cli.EXIT_OK
    run_out = capsys.readouterr().out
    assert merged_out == run_out  # byte-identical rows
    assert merged_out.strip()


def test_cli_sweep_status_without_stores(tmp_path, capsys):
    assert cli.main(
        ["sweep", "status", "--sweep-dir", str(tmp_path / "nothing")]
    ) == cli.EXIT_SWEEP_INCOMPLETE
    assert "no shard stores" in capsys.readouterr().err


def test_cli_sweep_status_flags_never_started_shards(tmp_path, capsys):
    """A complete shard 0 of 2 is not a complete sweep: the store that shard
    1's machine never created must keep status (and pollers) at exit 5."""
    spec = _tiny_spec()
    grid = build_sweep_grid([spec], quick=True, seeds=2)
    num_shards = _split_shard_count(grid)
    ran = min(shard_for_key(unit.key, num_shards) for unit in grid.units)
    run_sweep_shard(
        [spec], shard_index=ran, num_shards=num_shards, quick=True, seeds=2,
        processes=1, sweep_dir=tmp_path / "sweep", cache=ResultCache(tmp_path / "cache"),
    )
    assert cli.main(
        ["sweep", "status", "--sweep-dir", str(tmp_path / "sweep")]
    ) == cli.EXIT_SWEEP_INCOMPLETE
    captured = capsys.readouterr()
    assert "not started yet" in captured.err


def test_cli_sweep_plan_rejects_mismatched_store_cleanly(tmp_path, capsys):
    sweep_dir, cache_dir = str(tmp_path / "sweep"), str(tmp_path / "cache")
    run_sweep_shard(
        ["sota"], shard_index=0, num_shards=1, quick=True, processes=1,
        sweep_dir=sweep_dir, cache=cache_dir,
    )
    code = cli.main(
        ["sweep", "plan", "sota", "--shards", "1", "--seeds", "3",
         "--sweep-dir", sweep_dir, "--cache-dir", cache_dir]
    )
    assert code == cli.EXIT_SWEEP_MISMATCH  # a permanent error, not "poll again"
    assert "different grid" in capsys.readouterr().err


def test_cli_sweep_plan_prints_shard_sizes(tmp_path, capsys):
    code = cli.main(
        ["sweep", "plan", "sota", "--shards", "2", "--seeds", "2",
         "--sweep-dir", str(tmp_path / "sweep"), "--cache-dir", str(tmp_path / "cache")]
    )
    assert code == cli.EXIT_OK
    out = capsys.readouterr().out
    # sota expands to 6 systems (every backend is a cacheable unit) x 2 seeds,
    # minus the seed-insensitive baselines (batching/gslice/clockwork), whose
    # replicates share one unit: 3 x 2 + 3 = 9
    assert "9 unit(s) across 2 shard(s)" in out
    assert "shard 0/2" in out and "shard 1/2" in out
    assert not (tmp_path / "sweep").exists() and not (tmp_path / "cache").exists()


def test_cli_shard_argument_is_validated():
    for bad in ("2/2", "-1/2", "x/2", "1", "1/0"):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["sweep", "run", "sota", "--shard", bad])
        assert excinfo.value.code == 2
