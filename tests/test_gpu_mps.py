"""Tests for MPS partitioning (paper Equation 9)."""

import pytest
from hypothesis import given, strategies as st

from repro.gpu.mps import ceil_even, partition_quotas, sm_quota, total_oversubscription_ratio


def test_ceil_even_rounds_up_to_even():
    assert ceil_even(11.2) == 12
    assert ceil_even(12.0) == 12
    assert ceil_even(12.1) == 14
    assert ceil_even(1.0) == 2


def test_ceil_even_rejects_nonpositive():
    with pytest.raises(ValueError):
        ceil_even(0.0)


def test_equation9_examples_from_paper_configurations():
    # 6 contexts, OS = 6 -> every context sees the whole GPU.
    assert sm_quota(68, 6, 6.0) == 68
    # 6 contexts, OS = 1 -> ceil_even(68 / 6) = 12.
    assert sm_quota(68, 6, 1.0) == 12
    # 2 contexts, OS = 1 -> 34.
    assert sm_quota(68, 2, 1.0) == 34
    # 3 contexts, OS = 1.5 -> ceil_even(34) = 34.
    assert sm_quota(68, 3, 1.5) == 34


def test_quota_never_exceeds_physical_sm_count():
    assert sm_quota(68, 2, 2.0) == 68
    assert sm_quota(68, 1, 1.0) == 68


def test_oversubscription_out_of_range_rejected():
    with pytest.raises(ValueError):
        sm_quota(68, 4, 0.5)
    with pytest.raises(ValueError):
        sm_quota(68, 4, 5.0)
    with pytest.raises(ValueError):
        sm_quota(68, 0, 1.0)


def test_partition_quotas_are_equal_for_all_contexts():
    quotas = partition_quotas(68, 4, 2.0)
    assert len(quotas) == 4
    assert len(set(quotas)) == 1


def test_total_oversubscription_ratio():
    quotas = partition_quotas(68, 6, 6.0)
    assert total_oversubscription_ratio(68, quotas) == pytest.approx(6.0)
    quotas = partition_quotas(68, 6, 1.0)
    assert total_oversubscription_ratio(68, quotas) == pytest.approx(72.0 / 68.0)


@given(
    num_sms=st.integers(min_value=2, max_value=256),
    num_contexts=st.integers(min_value=1, max_value=16),
    data=st.data(),
)
def test_property_quota_bounds(num_sms, num_contexts, data):
    oversubscription = data.draw(
        st.floats(min_value=1.0, max_value=float(num_contexts), allow_nan=False)
    )
    quota = sm_quota(num_sms, num_contexts, oversubscription)
    # Quotas are even unless capped at an odd physical SM count.
    assert quota % 2 == 0 or quota == num_sms
    assert 2 <= quota <= num_sms
    # The quota never falls below an even share of the requested oversubscription.
    assert quota >= min(num_sms, oversubscription * num_sms / num_contexts) - 2
