"""Pareto-frontier analysis: dominance, CI awareness, the DSE grid bridge.

Covers :mod:`repro.analysis.pareto` (hand-built 2D/4D frontiers, ties,
CI-overlap cases, a property test that dominated points never appear in the
frontier) and the :mod:`repro.experiments.dse_grid` slice end to end
through the cache.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.pareto import (
    DEFAULT_OBJECTIVES,
    MAXIMIZE,
    MINIMIZE,
    Objective,
    ParetoPoint,
    dominates,
    frontier_rows,
    gpu_cost_per_hour,
    pareto_frontier,
    points_from_rows,
)
from repro.gpu.spec import RTX_2080_TI


MIN2 = (Objective("cost"), Objective("latency"))


def _point(key, **values):
    ci = values.pop("ci", None)
    return ParetoPoint(key=key, values=values, ci=ci or {})


# ------------------------------------------------------------- dominance


def test_strict_dominance_in_2d():
    better = _point("a", cost=1.0, latency=1.0)
    worse = _point("b", cost=2.0, latency=2.0)
    assert dominates(better, worse, MIN2)
    assert not dominates(worse, better, MIN2)


def test_equal_points_do_not_dominate_each_other():
    a = _point("a", cost=1.0, latency=1.0)
    b = _point("b", cost=1.0, latency=1.0)
    assert not dominates(a, b, MIN2)
    assert not dominates(b, a, MIN2)


def test_tradeoff_points_do_not_dominate():
    cheap = _point("cheap", cost=1.0, latency=9.0)
    fast = _point("fast", cost=9.0, latency=1.0)
    assert not dominates(cheap, fast, MIN2)
    assert not dominates(fast, cheap, MIN2)


def test_tie_on_one_objective_still_dominates():
    a = _point("a", cost=1.0, latency=1.0)
    b = _point("b", cost=1.0, latency=5.0)
    assert dominates(a, b, MIN2)
    assert not dominates(b, a, MIN2)


def test_maximize_sense_flips_the_comparison():
    objectives = (Objective("throughput", MAXIMIZE),)
    high = _point("high", throughput=10.0)
    low = _point("low", throughput=5.0)
    assert dominates(high, low, objectives)
    assert not dominates(low, high, objectives)


def test_bad_sense_is_rejected():
    with pytest.raises(ValueError, match="sense"):
        Objective("x", "upward")


def test_ci_overlap_blocks_domination():
    # Means differ (1.0 vs 2.0) but the CIs overlap (1.0+0.8 > 2.0-0.8):
    # the difference is statistical noise, so no domination either way.
    a = _point("a", cost=1.0, latency=1.0, ci={"cost": 0.8, "latency": 0.8})
    b = _point("b", cost=2.0, latency=2.0, ci={"cost": 0.8, "latency": 0.8})
    assert not dominates(a, b, MIN2)
    assert not dominates(b, a, MIN2)


def test_ci_separation_on_one_objective_suffices():
    # Tight CIs on cost (separated), overlapping on latency: a still wins
    # because dominance needs mean-no-worse everywhere + CI-better somewhere.
    a = _point("a", cost=1.0, latency=1.0, ci={"cost": 0.1, "latency": 5.0})
    b = _point("b", cost=2.0, latency=2.0, ci={"cost": 0.1, "latency": 5.0})
    assert dominates(a, b, MIN2)


def test_zero_ci_degenerates_to_strict_pareto():
    a = _point("a", cost=1.0, latency=1.0, ci={"cost": 0.0, "latency": 0.0})
    b = _point("b", cost=1.0 + 1e-9, latency=1.0, ci={"cost": 0.0, "latency": 0.0})
    assert dominates(a, b, MIN2)


# --------------------------------------------------------------- frontier


def test_2d_frontier_hand_built():
    points = [
        _point("best-cost", cost=1.0, latency=9.0),
        _point("balanced", cost=4.0, latency=4.0),
        _point("best-latency", cost=9.0, latency=1.0),
        _point("dominated", cost=5.0, latency=5.0),  # beaten by balanced
        _point("awful", cost=10.0, latency=10.0),  # beaten by everything
    ]
    result = pareto_frontier(points, MIN2)
    assert {point.key for point in result.frontier} == {
        "best-cost",
        "balanced",
        "best-latency",
    }
    assert {point.key for point in result.dominated} == {"dominated", "awful"}
    assert result.dominated_by["balanced"] == 0
    assert result.dominated_by["dominated"] == 1
    assert result.dominated_by["awful"] == 3


def test_4d_frontier_with_mixed_senses():
    objectives = DEFAULT_OBJECTIVES  # miss_rate/p99 down, utilization up, cost down
    good = _point("good", miss_rate=0.01, p99_ms=50.0, utilization=0.9, gpu_cost=1.0)
    tradeoff = _point(
        "tradeoff", miss_rate=0.005, p99_ms=80.0, utilization=0.7, gpu_cost=1.5
    )
    bad = _point("bad", miss_rate=0.02, p99_ms=60.0, utilization=0.8, gpu_cost=1.2)
    result = pareto_frontier([good, tradeoff, bad], objectives)
    assert {point.key for point in result.frontier} == {"good", "tradeoff"}
    assert result.dominated_by["bad"] == 1  # only `good` beats it everywhere


def test_all_tied_points_form_one_big_frontier():
    points = [_point(f"p{i}", cost=1.0, latency=1.0) for i in range(4)]
    result = pareto_frontier(points, MIN2)
    assert len(result.frontier) == 4 and not result.dominated


def test_duplicate_keys_are_rejected():
    points = [_point("same", cost=1.0, latency=1.0), _point("same", cost=2.0, latency=2.0)]
    with pytest.raises(ValueError, match="duplicate"):
        pareto_frontier(points, MIN2)


def test_missing_objective_is_rejected():
    with pytest.raises(ValueError, match="missing objective"):
        pareto_frontier([_point("a", cost=1.0)], MIN2)


def test_empty_objectives_are_rejected():
    with pytest.raises(ValueError, match="objective"):
        pareto_frontier([_point("a", cost=1.0)], ())


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0),
            st.floats(min_value=0.0, max_value=100.0),
        ),
        min_size=1,
        max_size=12,
    )
)
def test_frontier_members_are_never_dominated(values):
    points = [
        _point(f"p{i}", cost=cost, latency=latency)
        for i, (cost, latency) in enumerate(values)
    ]
    result = pareto_frontier(points, MIN2)
    # Partition is exact and frontier members are dominated by nobody.
    assert len(result.frontier) + len(result.dominated) == len(points)
    assert result.frontier  # a finite point set always has a frontier
    for member in result.frontier:
        assert not any(
            dominates(other, member, MIN2) for other in points if other is not member
        )
    # Every dominated point is beaten by at least one frontier member
    # (transitivity holds for exact, CI-free values).
    for loser in result.dominated:
        assert any(dominates(member, loser, MIN2) for member in result.frontier)
        assert result.dominated_by[loser.key] >= 1


# -------------------------------------------------------------- cost model


def test_anchor_gpu_costs_exactly_the_anchor_price():
    assert gpu_cost_per_hour(RTX_2080_TI) == pytest.approx(1.50)


def test_fewer_sms_cost_less_and_cost_is_monotone():
    small = RTX_2080_TI.with_field("num_sms", 40)
    mid = RTX_2080_TI.with_field("num_sms", 54)
    assert (
        gpu_cost_per_hour(small) < gpu_cost_per_hour(mid) < gpu_cost_per_hour(RTX_2080_TI)
    )


def test_cost_model_rejects_nonpositive_anchor_cost():
    with pytest.raises(ValueError):
        gpu_cost_per_hour(RTX_2080_TI, anchor_cost=0.0)


# ------------------------------------------------------- rows <-> points


def test_points_from_rows_reads_ci_companions_and_skips_unusable_rows():
    rows = [
        {"backend": "daris", "miss_rate": 0.1, "miss_rate_ci95": 0.02, "p99_ms": 50.0},
        {"backend": "broken", "miss_rate": "-", "p99_ms": 50.0},  # skipped
    ]
    objectives = (Objective("miss_rate"), Objective("p99_ms"))
    points = points_from_rows(rows, objectives, key_columns=("backend",))
    assert len(points) == 1
    assert points[0].key == "backend=daris"
    assert points[0].ci == {"miss_rate": 0.02}
    assert points[0].meta == {"backend": "daris"}


def test_frontier_rows_round_trip():
    points = [
        _point("a", cost=1.0, latency=1.0),
        _point("b", cost=2.0, latency=2.0),
    ]
    result = pareto_frontier(points, MIN2)
    rows = frontier_rows(result)
    assert [row["frontier"] for row in rows] == ["yes", "no"]
    assert rows[0]["dominated_by"] == 0 and rows[1]["dominated_by"] == 1


# ------------------------------------------------- dse grid, end to end


def test_dse_grid_slice_through_cache(tmp_path):
    from repro.experiments.dse_grid import SPEC, frontier_from_rows
    from repro.experiments.engine import run_experiment

    cache_dir = str(tmp_path / "cache")
    report = run_experiment(
        SPEC, quick=True, processes=1, cache=cache_dir, params={"scheduler": "daris"}
    )
    assert report.simulated == 8  # 2 windows x 2 OS x 2 SM counts
    # Heatmap-ready rows: every axis setting is a column.
    for row in report.rows:
        assert {"backend", "window", "os", "slack", "sms"} <= set(row)
        assert row["slack"] == "-"  # daris-only slice
    result = frontier_from_rows(report.rows)
    assert result.frontier and len(result.frontier) + len(result.dominated) == 8
    frontier_keys = {point.key for point in result.frontier}
    for point in result.dominated:
        assert point.key not in frontier_keys
        assert result.dominated_by[point.key] >= 1
    # Second run: everything served from cache, rows identical.
    again = run_experiment(
        SPEC, quick=True, processes=1, cache=cache_dir, params={"scheduler": "daris"}
    )
    assert again.simulated == 0 and again.cache_hits == 8
    assert again.rows == report.rows


def test_dse_grid_declares_its_axes():
    from repro.experiments.dse_grid import SPEC

    axes = {axis.spec_string() for axis in SPEC.axes}
    assert axes == {
        "daris.window_size",
        "daris.oversubscription",
        "clockwork.admission_slack",
        "gpu.num_sms",
    }
    # >= 2 backend-config axes crossed with >= 1 hardware axis (acceptance).
    assert sum(1 for axis in SPEC.axes if axis.target != "gpu") >= 2
    assert any(axis.target == "gpu" for axis in SPEC.axes)


def test_dse_replicated_rows_carry_ci_companions_into_the_frontier(tmp_path):
    from repro.experiments.dse_grid import SPEC, frontier_from_rows
    from repro.experiments.engine import run_experiment

    report = run_experiment(
        SPEC,
        quick=True,
        seeds=2,
        processes=1,
        cache=str(tmp_path / "cache"),
        params={"scheduler": "daris"},
    )
    assert any("miss_rate_ci95" in row for row in report.rows)
    result = frontier_from_rows(report.rows)
    assert any(point.ci for point in result.frontier + result.dominated)
