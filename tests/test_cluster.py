"""Tests for the multi-GPU cluster subsystem.

Covers the ``ClusterConfig`` axis surface (validation, aliases, parse-time
errors), the router policies (unit invariants plus an end-to-end dispatch
invariant), single-GPU equivalence with the plain Clockwork backend,
determinism and cache round-trips, GPU-targeted fault injection with router
failover, queue migration, per-GPU telemetry serialization, the registered
``cluster`` experiment grid, and the text heatmap renderer the grid's rows
feed.
"""

from __future__ import annotations

import json

import pytest

from repro.backends import get_backend
from repro.backends.base import BackendRequestError
from repro.backends.configs import config_from_dict
from repro.cluster import (
    ClusterConfig,
    ClusterServer,
    DeadlineAwareRouter,
    GpuLoadView,
    LeastLoadedRouter,
    PlacementSpec,
    RoundRobinRouter,
    make_router,
)
from repro.dnn.zoo import build_model
from repro.experiments.parallel import ScenarioRequest
from repro.experiments.runner import ScenarioResult
from repro.experiments.scenarios import named_workload, parse_config_override
from repro.rt.metrics import GpuTelemetry, ScenarioMetrics
from repro.rt.taskset import make_taskset, table2_taskset
from repro.sim.faults import FaultSpec
from repro.sim.rng import RngFactory
from repro.sim.workload import POISSON_WORKLOAD, SATURATED_WORKLOAD

HORIZON = 600.0


def _taskset():
    return table2_taskset("resnet18", scale=0.25)


def _serve(config, seed=7, faults=None, workload=POISSON_WORKLOAD, on_dispatch=None):
    backend = get_backend("cluster")
    server = ClusterServer(config)
    return server.serve(
        _taskset(),
        HORIZON,
        workload=workload,
        rng=RngFactory(seed),
        faults=faults,
        resilience=backend.resilience,
        on_dispatch=on_dispatch,
    )


# ------------------------------------------------------------------ config


def test_cluster_config_validates_its_vocabulary():
    with pytest.raises(ValueError, match="num_gpus must be >= 1"):
        ClusterConfig(num_gpus=0)
    with pytest.raises(ValueError) as excinfo:
        ClusterConfig(router="random")
    assert "least_loaded" in str(excinfo.value)
    assert "round_robin" in str(excinfo.value)
    assert "deadline_aware" in str(excinfo.value)
    with pytest.raises(ValueError) as excinfo:
        ClusterConfig(placement="sharded")
    assert "replicated" in str(excinfo.value) and "partitioned" in str(excinfo.value)
    with pytest.raises(ValueError):
        ClusterConfig(migration_backlog=-1)
    with pytest.raises(ValueError):
        ClusterConfig(migration_window_ms=0.0)


def test_cluster_config_round_trips_and_dispatches_by_kind():
    config = ClusterConfig(
        num_gpus=4,
        router="deadline_aware",
        placement="partitioned",
        migration_backlog=3,
    )
    data = json.loads(json.dumps(config.to_dict()))
    assert data["kind"] == "cluster"
    assert config_from_dict(data) == config
    # New kind: every field always serializes (no EXTENDED_FIELDS games) —
    # the kind itself is new, so no pre-existing fingerprint can change.
    assert set(data) == {
        "kind",
        "num_gpus",
        "router",
        "placement",
        "migration_backlog",
        "migration_window_ms",
    }


def test_cluster_axes_parse_with_validation_and_aliases():
    target, field, value = parse_config_override("cluster.num_gpus=4")
    assert (target, field, value) == ("cluster", "num_gpus", 4)
    assert parse_config_override("cluster.gpus=8")[1:] == ("num_gpus", 8)
    assert parse_config_override("cluster.policy=round_robin")[1:] == (
        "router",
        "round_robin",
    )
    with pytest.raises(ValueError, match="num_gpus must be >= 1"):
        parse_config_override("cluster.num_gpus=0")
    with pytest.raises(ValueError) as excinfo:
        parse_config_override("cluster.router=fastest")
    assert "least_loaded" in str(excinfo.value)


def test_single_gpu_cluster_warns_and_bad_fault_target_is_rejected():
    request = ScenarioRequest(
        _taskset(),
        ClusterConfig(num_gpus=1),
        HORIZON,
        seed=7,
        scheduler="cluster",
        workload=POISSON_WORKLOAD,
    )
    with pytest.warns(UserWarning, match="equivalent to the plain 'clockwork'"):
        get_backend("cluster").validate_request(request)

    targeted = ScenarioRequest(
        _taskset(),
        ClusterConfig(num_gpus=2),
        HORIZON,
        seed=7,
        scheduler="cluster",
        workload=POISSON_WORKLOAD,
        faults=FaultSpec.crashes(mtbf_ms=100.0).targeting(5),
    )
    with pytest.raises(BackendRequestError, match="targets GPU 5"):
        get_backend("cluster").validate_request(targeted)


def test_cluster_rejects_saturated_workloads():
    with pytest.raises(ValueError, match="deadline-driven"):
        _serve(ClusterConfig(num_gpus=2), workload=SATURATED_WORKLOAD)


# ------------------------------------------------------------------ routers


def _views(*loads, alive=None):
    alive = alive or [True] * len(loads)
    return [
        GpuLoadView(index=i, outstanding_ms=load, queue_depth=i, alive=up)
        for i, (load, up) in enumerate(zip(loads, alive))
    ]


def test_least_loaded_router_picks_the_minimum_with_index_tiebreak():
    router = LeastLoadedRouter()
    assert router.select(0.0, 100.0, 5.0, _views(4.0, 2.0, 7.0)) == 1
    assert router.select(0.0, 100.0, 5.0, _views(3.0, 3.0)) == 0  # tie -> low index


def test_round_robin_router_cycles_deterministically():
    router = RoundRobinRouter()
    picks = [router.select(0.0, 100.0, 5.0, _views(0.0, 0.0, 0.0)) for _ in range(6)]
    assert picks == [0, 1, 2, 0, 1, 2]


def test_round_robin_rotation_under_filtered_views():
    """The cursor counts dispatches, not device positions: a filtered
    eligible list is indexed at ``cursor mod len(eligible)``, keeping traffic
    uniform over whatever devices are currently up (pinned semantics — see
    the RoundRobinRouter docstring)."""
    router = RoundRobinRouter()
    full = _views(0.0, 0.0, 0.0, 0.0)
    assert router.select(0.0, 100.0, 5.0, full) == 0  # cursor 0 -> position 0
    assert router.select(0.0, 100.0, 5.0, full) == 1  # cursor 1 -> position 1
    # Device 1 drops out: three eligible, cursor 2 -> position 2 -> index 3.
    filtered = [view for view in full if view.index != 1]
    assert router.select(0.0, 100.0, 5.0, filtered) == 3
    # Narrower still (devices 2 and 3): cursor 3 -> position 1 -> index 3.
    narrow = [view for view in full if view.index in (2, 3)]
    assert router.select(0.0, 100.0, 5.0, narrow) == 3
    # The full list returns: cursor 4 -> position 0, a fresh lap over all.
    assert router.select(0.0, 100.0, 5.0, full) == 0
    # select_index (the indexed fast path) shares the same cursor, so mixed
    # fast/reference runs rotate exactly like an all-reference run.
    assert router.select_index((0, 1, 2, 3)) == 1
    assert router.select(0.0, 100.0, 5.0, full) == 2


def test_deadline_aware_router_packs_feasible_and_falls_back():
    router = DeadlineAwareRouter()
    # GPU 1 is the most loaded that still meets the deadline -> packed there.
    assert router.select(0.0, 20.0, 5.0, _views(2.0, 10.0, 30.0)) == 1
    # Nothing feasible -> least-loaded fallback.
    assert router.select(0.0, 4.0, 5.0, _views(2.0, 10.0, 30.0)) == 0


def test_make_router_rejects_unknown_names_with_the_vocabulary():
    with pytest.raises(ValueError) as excinfo:
        make_router("hash_ring")
    assert "least_loaded" in str(excinfo.value)


def test_least_loaded_dispatch_invariant_end_to_end():
    """Every dispatched request lands on a GPU no more loaded than any other
    alive candidate at dispatch time — observed via the dispatch hook."""
    observed = []

    def on_dispatch(now, model_name, chosen, views):
        observed.append((chosen, tuple(views)))

    _serve(ClusterConfig(num_gpus=3), on_dispatch=on_dispatch)
    assert observed, "no dispatches observed"
    for chosen, views in observed:
        chosen_view = next(view for view in views if view.index == chosen)
        alive = [view for view in views if view.alive]
        assert all(chosen_view.outstanding_ms <= view.outstanding_ms for view in alive)


# ------------------------------------------------------------ determinism


def test_cluster_metrics_are_bit_identical_per_seed():
    config = ClusterConfig(num_gpus=3, router="deadline_aware")
    first = _serve(config, seed=11)
    second = _serve(config, seed=11)
    assert first == second
    assert first.gpu_breakdown is not None and len(first.gpu_breakdown) == 3
    other_seed = _serve(config, seed=12)
    assert other_seed != first  # the seed actually matters


def test_cluster_result_round_trips_through_serialization():
    request = ScenarioRequest(
        _taskset(),
        ClusterConfig(num_gpus=2),
        HORIZON,
        seed=9,
        scheduler="cluster",
        workload=POISSON_WORKLOAD,
    )
    result = get_backend("cluster").execute(request)
    restored = ScenarioResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert restored == result  # config, label, metrics incl. gpu_breakdown
    assert restored.metrics.gpu_breakdown == result.metrics.gpu_breakdown


def test_single_gpu_cluster_reproduces_the_clockwork_backend():
    """The 1-GPU cluster is the Clockwork loop behind a trivial router: its
    buckets and per-task completions must match the plain backend exactly."""
    taskset = _taskset()
    base = dict(workload=POISSON_WORKLOAD, seed=7)
    clockwork_request = ScenarioRequest(
        taskset,
        get_backend("clockwork").config_type(),
        HORIZON,
        scheduler="clockwork",
        **base,
    )
    clockwork = get_backend("clockwork").execute(clockwork_request).metrics
    with pytest.warns(UserWarning):
        cluster_request = ScenarioRequest(
            taskset,
            ClusterConfig(num_gpus=1),
            HORIZON,
            scheduler="cluster",
            **base,
        )
        cluster = get_backend("cluster").execute(cluster_request).metrics
    assert cluster.high == clockwork.high
    assert cluster.low == clockwork.low
    assert cluster.per_task_completed == clockwork.per_task_completed
    assert cluster.total_jps == clockwork.total_jps
    assert cluster.gpu_breakdown is not None and len(cluster.gpu_breakdown) == 1


# ------------------------------------------------------------------ faults


def test_targeted_crash_fault_fails_over_to_the_other_gpus():
    config = ClusterConfig(num_gpus=2)
    faults = FaultSpec.crashes(mtbf_ms=80.0, recovery_ms=150.0).targeting(1)
    metrics = _serve(config, faults=faults)
    assert metrics.fault_impact is not None
    assert metrics.fault_impact.episodes >= 1
    breakdown = {gpu.gpu: gpu for gpu in metrics.gpu_breakdown}
    # The healthy device absorbs the shed traffic while GPU 1 is down.
    assert breakdown[0].routed > breakdown[1].routed
    healthy = _serve(config)
    assert metrics.goodput_jps <= healthy.goodput_jps


def test_targeted_fault_leaves_other_devices_untouched():
    """A slowdown pinned to GPU 1 must not alter draws on GPU 0's timeline:
    an untargeted 2-GPU run and a run targeting a non-existent load pattern
    differ, but targeting vs global faulting are distinct behaviors."""
    config = ClusterConfig(num_gpus=2)
    slowdown = FaultSpec.throttle(period_ms=120.0, duration_ms=60.0, factor=0.3)
    targeted = _serve(config, faults=slowdown.targeting(1))
    globally = _serve(config, faults=slowdown)
    assert targeted != globally


# --------------------------------------------------------------- placement


def test_placement_spec_builds_replicated_and_partitioned_maps():
    replicated = PlacementSpec.build("replicated", ["a", "b"], 4)
    assert replicated.gpus_for("a") == (0, 1, 2, 3)
    partitioned = PlacementSpec.build("partitioned", ["a", "b"], 4)
    assert partitioned.gpus_for("a") == (0, 2)
    assert partitioned.gpus_for("b") == (1, 3)
    # More models than devices: every model still gets at least one GPU.
    crowded = PlacementSpec.build("partitioned", ["a", "b", "c"], 2)
    assert crowded.gpus_for("c") == (0,)
    reassigned = partitioned.reassign("a", (3,))
    assert reassigned is None  # in-place primitive
    assert partitioned.gpus_for("a") == (3,)


def test_migration_moves_a_backlogged_queue_and_counts_it():
    models = [build_model("resnet18"), build_model("resnet50")]
    taskset = make_taskset(
        models, num_high=2, num_low=6, task_jps=30.0, name="migration"
    )
    # Partitioned placement pins each model to a device subset; a low
    # threshold with a short window forces at least one migration under
    # bursty arrivals.
    config = ClusterConfig(
        num_gpus=3,
        placement="partitioned",
        migration_backlog=1,
        migration_window_ms=5.0,
    )
    server = ClusterServer(config)
    metrics = server.serve(
        taskset,
        HORIZON,
        workload=named_workload("bursty"),
        rng=RngFactory(3),
    )
    assert sum(gpu.migrations for gpu in metrics.gpu_breakdown) >= 1
    # Determinism holds with migration enabled.
    again = ClusterServer(config).serve(
        taskset, HORIZON, workload=named_workload("bursty"), rng=RngFactory(3)
    )
    assert again == metrics


def test_migration_counts_only_contributing_devices(monkeypatch):
    """``migrations`` telemetry counts a device only when ``take_queued``
    actually moved requests off it (PR 9 counted every eligible device,
    inflating the telemetry whenever a device's queue was already empty)."""
    from repro.cluster import server as server_module

    contributed: list = []
    original_take = server_module._GpuWorker.take_queued

    def recording_take(self, model_name):
        taken = original_take(self, model_name)
        if taken:
            contributed.append(self.index)
        return taken

    monkeypatch.setattr(server_module._GpuWorker, "take_queued", recording_take)
    models = [build_model("resnet18"), build_model("resnet50")]
    taskset = make_taskset(
        models, num_high=2, num_low=6, task_jps=30.0, name="migration-count"
    )
    config = ClusterConfig(
        num_gpus=3,
        placement="partitioned",
        migration_backlog=1,
        migration_window_ms=5.0,
    )
    metrics = ClusterServer(config).serve(
        taskset, HORIZON, workload=named_workload("bursty"), rng=RngFactory(3)
    )
    per_device = {g: contributed.count(g) for g in set(contributed)}
    assert sum(per_device.values()) >= 1, "scenario produced no migrations"
    for telemetry in metrics.gpu_breakdown:
        assert telemetry.migrations == per_device.get(telemetry.gpu, 0)


# ------------------------------------------------------------- telemetry


def test_gpu_breakdown_serializes_only_when_present():
    plain = ScenarioMetrics.from_priority_metrics(100.0)
    assert "gpu_breakdown" not in plain.to_dict()
    assert ScenarioMetrics.from_dict(plain.to_dict()) == plain

    telemetry = (
        GpuTelemetry(gpu=0, routed=5, completed=4, missed=1, utilization=0.5),
        GpuTelemetry(gpu=1, routed=3, completed=3, max_queue_depth=2, migrations=1),
    )
    annotated = ScenarioMetrics.from_priority_metrics(100.0, gpu_breakdown=telemetry)
    data = json.loads(json.dumps(annotated.to_dict()))
    assert [entry["gpu"] for entry in data["gpu_breakdown"]] == [0, 1]
    assert ScenarioMetrics.from_dict(data) == annotated


def test_fault_spec_gpu_target_serializes_only_when_set():
    spec = FaultSpec.crashes(mtbf_ms=50.0)
    assert "gpu" not in spec.to_dict()
    targeted = spec.targeting(2)
    assert targeted.to_dict()["gpu"] == 2
    assert FaultSpec.from_dict(targeted.to_dict()) == targeted
    assert "@gpu2" in targeted.label()
    with pytest.raises(ValueError):
        spec.targeting(-1)


# ------------------------------------------------------------------- grid


def test_cluster_grid_expands_filters_and_caches(tmp_path):
    from repro.experiments.cluster_grid import run
    from repro.experiments.engine import expand_experiment

    plan = expand_experiment("cluster", quick=True)
    routers = {request.config.router for request in plan.requests}
    gpu_counts = {request.config.num_gpus for request in plan.requests}
    assert len(routers) >= 2 and len(gpu_counts) >= 2
    assert all(request.scheduler == "cluster" for request in plan.requests)

    cache_dir = str(tmp_path / "cache")
    rows = run(quick=True, cache=cache_dir, workload="poisson")
    assert rows and {row["workload"] for row in rows} == {"poisson"}
    for row in rows:
        assert {"router", "gpus", "load", "miss_rate", "max_queue"} <= set(row)
    # Cached re-run reproduces the rows bit-identically.
    assert run(quick=True, cache=cache_dir, workload="poisson") == rows

    with pytest.raises(KeyError):
        run(quick=True, workload="does-not-exist")


# ---------------------------------------------------------------- heatmap


def test_heatmap_renders_means_and_marks_missing_cells():
    from repro.analysis.heatmap import heatmap_csv, render_heatmap

    rows = [
        {"router": "ll", "gpus": 2, "miss_rate": 0.2},
        {"router": "ll", "gpus": 2, "miss_rate": 0.4},  # averaged with the first
        {"router": "ll", "gpus": 4, "miss_rate": 0.1},
        {"router": "rr", "gpus": 2, "miss_rate": 0.5},
        # (rr, 4) intentionally absent
    ]
    text = render_heatmap(rows, x="gpus", y="router", metric="miss_rate")
    lines = text.splitlines()
    assert "mean miss_rate" in lines[0]
    ll_line = next(line for line in lines if line.startswith("ll"))
    assert "0.3" in ll_line and "0.1" in ll_line
    rr_line = next(line for line in lines if line.startswith("rr"))
    assert "-" in rr_line

    csv_text = heatmap_csv(rows, x="gpus", y="router", metric="miss_rate")
    assert csv_text.splitlines()[0] == "router\\gpus,2,4"
    assert csv_text.splitlines()[2].endswith(",")  # missing cell -> empty

    with pytest.raises(ValueError, match="available:"):
        render_heatmap(rows, x="nope", y="router", metric="miss_rate")
    with pytest.raises(ValueError, match="numeric"):
        render_heatmap(rows, x="gpus", y="miss_rate", metric="router")


def test_heatmap_works_on_cluster_grid_rows(tmp_path):
    from repro.analysis.heatmap import render_heatmap
    from repro.experiments.cluster_grid import run

    rows = run(quick=True, cache=str(tmp_path / "cache"), workload="poisson")
    text = render_heatmap(rows, x="gpus", y="router", metric="miss_rate")
    assert "least_loaded" in text and "round_robin" in text
