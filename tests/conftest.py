"""Shared fixtures: calibrated models are expensive enough to build once per session."""

from __future__ import annotations

import pytest

from repro.dnn.zoo import build_inceptionv3, build_resnet18, build_resnet50, build_unet


@pytest.fixture(scope="session")
def resnet18():
    return build_resnet18()


@pytest.fixture(scope="session")
def resnet50():
    return build_resnet50()


@pytest.fixture(scope="session")
def unet():
    return build_unet()


@pytest.fixture(scope="session")
def inceptionv3():
    return build_inceptionv3()


@pytest.fixture(scope="session")
def all_models(resnet18, resnet50, unet, inceptionv3):
    return {
        "resnet18": resnet18,
        "resnet50": resnet50,
        "unet": unet,
        "inceptionv3": inceptionv3,
    }
