"""Tests for metrics collection, trace recording and AFET estimation."""

import pytest

from repro.gpu.platform import PlatformConfig
from repro.rt.afet import estimate_afet_analytic, profile_afet
from repro.rt.metrics import MetricsCollector
from repro.rt.task import Priority, Task, TaskSpec
from repro.rt.trace import JobTraceRecord, StageTraceRecord, TraceRecorder


def _task(model, priority=Priority.HIGH, period=40.0, task_id=0):
    task = Task(TaskSpec(task_id=task_id, model=model, period_ms=period, priority=priority))
    task.timing.set_afet([1.0] * task.num_stages)
    return task


def _completed_job(task, release, completion):
    job = task.release_job(release)
    job.completion_time = completion
    return job


def test_metrics_throughput_and_dmr(resnet18):
    collector = MetricsCollector()
    hp = _task(resnet18, Priority.HIGH)
    lp = _task(resnet18, Priority.LOW, task_id=1)
    for release, completion in ((0.0, 10.0), (40.0, 90.0)):  # second job misses (deadline 40)
        job = _completed_job(hp, release, completion)
        collector.record_release(job)
        collector.record_admission(job)
        collector.record_completion(job)
    rejected = lp.release_job(0.0)
    collector.record_release(rejected)
    collector.record_rejection(rejected)
    summary = collector.summarize(horizon_ms=1000.0)
    assert summary.high.admitted == 2
    assert summary.high.missed == 1
    assert summary.high.deadline_miss_rate == pytest.approx(0.5)
    assert summary.low.rejection_rate == pytest.approx(1.0)
    assert summary.total_jps == pytest.approx(2.0)
    assert summary.overall_dmr == pytest.approx(0.5)
    assert summary.per_task_completed[hp.name] == 2


def test_metrics_warmup_excludes_early_jobs(resnet18):
    collector = MetricsCollector()
    collector.set_warmup(100.0)
    task = _task(resnet18)
    early = _completed_job(task, 10.0, 20.0)
    late = _completed_job(task, 200.0, 210.0)
    for job in (early, late):
        collector.record_release(job)
        collector.record_admission(job)
        collector.record_completion(job)
    summary = collector.summarize(horizon_ms=1100.0)
    assert summary.high.completed == 1
    assert summary.total_jps == pytest.approx(1.0)


def test_metrics_validation(resnet18):
    collector = MetricsCollector()
    with pytest.raises(ValueError):
        collector.set_warmup(-1.0)
    with pytest.raises(ValueError):
        collector.summarize(horizon_ms=0.0)
    collector.set_warmup(100.0)
    with pytest.raises(ValueError):
        collector.summarize(horizon_ms=50.0)


def test_response_time_stats_empty_and_filled(resnet18):
    collector = MetricsCollector()
    stats = collector.priority_metrics(Priority.HIGH).response_time_stats()
    assert stats["mean"] == 0.0
    task = _task(resnet18)
    job = _completed_job(task, 0.0, 12.0)
    collector.record_release(job)
    collector.record_admission(job)
    collector.record_completion(job)
    stats = collector.priority_metrics(Priority.HIGH).response_time_stats()
    assert stats["mean"] == pytest.approx(12.0)
    assert stats["max"] == pytest.approx(12.0)


def test_trace_recorder_filters_and_aggregates():
    trace = TraceRecorder(enabled=True)
    for job_index, (exec_time, mret) in enumerate([(2.0, 3.0), (4.0, 3.0)]):
        for stage_index in range(2):
            trace.record_stage(
                StageTraceRecord(
                    time_ms=10.0 * job_index + stage_index,
                    task_name="resnet18/task0",
                    priority=Priority.HIGH,
                    job_index=job_index,
                    stage_index=stage_index,
                    execution_time_ms=exec_time / 2,
                    mret_prediction_ms=mret / 2,
                    virtual_deadline_ms=20.0,
                    missed_virtual_deadline=False,
                    context_index=0,
                )
            )
    series = trace.execution_vs_mret("resnet18/task0")
    assert len(series) == 2
    assert series[0][1] == pytest.approx(2.0)
    assert trace.underprediction_rate("resnet18/task0") == pytest.approx(0.5)
    assert len(trace.stage_series(stage_index=1)) == 2
    assert trace.stage_series(task_name="other") == []


def test_trace_recorder_disabled_records_nothing():
    trace = TraceRecorder(enabled=False)
    trace.record_job(
        JobTraceRecord(
            time_ms=1.0,
            task_name="t",
            priority=Priority.LOW,
            job_index=0,
            release_time_ms=0.0,
            response_time_ms=1.0,
            missed_deadline=False,
            context_index=0,
        )
    )
    assert trace.job_records == []
    assert trace.job_series(Priority.LOW) == []


def test_analytic_afet_is_pessimistic_versus_isolated(resnet18):
    afets = estimate_afet_analytic(resnet18, sm_quota=68.0, concurrent_jobs=6)
    isolated = [stage.isolated_duration_ms(68.0) for stage in resnet18.stages]
    assert len(afets) == resnet18.num_stages
    assert all(afet >= iso - 1e-9 for afet, iso in zip(afets, isolated))


def test_analytic_afet_respects_quota(resnet18):
    wide = estimate_afet_analytic(resnet18, sm_quota=68.0, concurrent_jobs=1)
    narrow = estimate_afet_analytic(resnet18, sm_quota=12.0, concurrent_jobs=1)
    assert sum(narrow) > sum(wide)
    with pytest.raises(ValueError):
        estimate_afet_analytic(resnet18, sm_quota=68.0, concurrent_jobs=0)


def test_profiled_afet_runs_the_measurement_procedure(resnet18, unet):
    config = PlatformConfig(num_contexts=2, streams_per_context=1, oversubscription=2.0)
    afets = profile_afet(resnet18, [unet], config, repetitions=3, seed=0)
    assert len(afets) == resnet18.num_stages
    assert all(value > 0 for value in afets)
    # Full-load AFET should not be faster than the isolated stage time.
    isolated = [stage.isolated_duration_ms(68.0) for stage in resnet18.stages]
    assert sum(afets) >= sum(isolated) * 0.9
