"""Tests for the GPU platform facade."""

import pytest

from repro.gpu.kernel import KernelSpec
from repro.gpu.platform import GpuPlatform, PlatformConfig
from repro.gpu.spec import RTX_2080_TI
from repro.sim.simulator import Simulator


def test_platform_config_validation():
    with pytest.raises(ValueError):
        PlatformConfig(num_contexts=0, streams_per_context=1, oversubscription=1.0)
    with pytest.raises(ValueError):
        PlatformConfig(num_contexts=2, streams_per_context=0, oversubscription=1.0)
    with pytest.raises(ValueError):
        PlatformConfig(num_contexts=2, streams_per_context=1, oversubscription=3.0)


def test_platform_config_labels_and_parallelism():
    config = PlatformConfig(num_contexts=3, streams_per_context=2, oversubscription=1.5)
    assert config.max_parallel_jobs == 6
    assert config.label() == "3x2 OS1.5"
    assert PlatformConfig(6, 1, 6.0).label() == "6x1 OS6"


def test_platform_builds_requested_layout():
    platform = GpuPlatform(Simulator(), PlatformConfig(3, 2, 3.0))
    assert platform.num_contexts == 3
    assert platform.streams_per_context == 2
    assert platform.sm_quota == 68
    assert platform.context(1).context_id == 1


def test_platform_quota_follows_equation9():
    platform = GpuPlatform(Simulator(), PlatformConfig(6, 1, 1.0))
    assert platform.sm_quota == 12


def test_idle_stream_tracking():
    simulator = Simulator()
    platform = GpuPlatform(simulator, PlatformConfig(1, 2, 1.0))
    assert platform.idle_stream_index(0) == 0
    assert platform.idle_stream_count(0) == 2
    platform.launch(0, 0, KernelSpec("k", work=68.0, parallelism=68.0))
    assert platform.idle_stream_index(0) == 1
    assert platform.busy_stream_count(0) == 1
    simulator.run_until(10.0)
    assert platform.idle_stream_count(0) == 2
    assert platform.is_idle()


def test_launch_completion_callback_receives_kernel():
    simulator = Simulator()
    platform = GpuPlatform(simulator, PlatformConfig(2, 1, 2.0), spec=RTX_2080_TI)
    seen = []
    platform.launch(1, 0, KernelSpec("k", work=6.8, parallelism=68.0), seen.append)
    simulator.run_until(10.0)
    assert len(seen) == 1
    assert seen[0].context_id == platform.context(1).context_id


def test_average_utilization_reflects_load():
    simulator = Simulator()
    platform = GpuPlatform(simulator, PlatformConfig(1, 1, 1.0))
    platform.launch(0, 0, KernelSpec("k", work=680.0, parallelism=68.0))
    simulator.run_until(10.0)
    assert platform.average_utilization() > 0.9
