"""Tests for the arrival processes, the spec hierarchy and ReleaseStream."""

import math

import numpy as np
import pytest

from repro.sim.rng import RngFactory
from repro.sim.simulator import Simulator
from repro.sim.workload import (
    ARRIVAL_KINDS,
    DIURNAL_WORKLOAD,
    MMPP_WORKLOAD,
    PERIODIC_WORKLOAD,
    POISSON_WORKLOAD,
    DiurnalModulator,
    MmppArrival,
    PeriodicArrival,
    PoissonArrival,
    ReleaseStream,
    TraceArrival,
    WorkloadSpec,
)


def test_periodic_nominal_release_times():
    arrival = PeriodicArrival(period=10.0, phase=3.0)
    assert arrival.nominal_release(0) == 3.0
    assert arrival.nominal_release(4) == 43.0


def test_periodic_next_arrival_increments_index():
    arrival = PeriodicArrival(period=5.0)
    events = [arrival.next_arrival() for _ in range(3)]
    assert [event.index for event in events] == [0, 1, 2]
    assert [event.time for event in events] == [0.0, 5.0, 10.0]


def test_periodic_rejects_bad_period_and_jitter():
    with pytest.raises(ValueError):
        PeriodicArrival(period=0.0)
    with pytest.raises(ValueError):
        PeriodicArrival(period=5.0, jitter=5.0)
    with pytest.raises(ValueError):
        PeriodicArrival(period=5.0, jitter=-1.0)


def test_periodic_jitter_stays_below_one_period():
    rng = np.random.default_rng(0)
    arrival = PeriodicArrival(period=10.0, jitter=2.0, rng=rng)
    for index in range(50):
        event = arrival.next_arrival()
        assert arrival.nominal_release(index) <= event.time < arrival.nominal_release(index) + 2.0


def test_periodic_drive_schedules_until_horizon():
    sim = Simulator()
    arrival = PeriodicArrival(period=10.0)
    seen = []
    count = arrival.drive(sim, horizon=35.0, callback=lambda event: seen.append(event.time))
    sim.run_until(35.0)
    assert count == 4  # releases at 0, 10, 20, 30
    assert seen == [0.0, 10.0, 20.0, 30.0]


def test_poisson_mean_rate_is_roughly_requested():
    rng = np.random.default_rng(1)
    arrival = PoissonArrival(rate_jps=100.0, rng=rng)
    times = [arrival.next_arrival().time for _ in range(2000)]
    measured_rate = 1000.0 * len(times) / times[-1]
    assert 85.0 <= measured_rate <= 115.0


def test_poisson_rejects_nonpositive_rate():
    with pytest.raises(ValueError):
        PoissonArrival(rate_jps=0.0, rng=np.random.default_rng(0))


def test_poisson_drive_counts_match_callbacks():
    sim = Simulator()
    rng = np.random.default_rng(2)
    arrival = PoissonArrival(rate_jps=50.0, rng=rng)
    seen = []
    count = arrival.drive(sim, horizon=1000.0, callback=lambda event: seen.append(event.index))
    sim.run_until(1000.0)
    assert count == len(seen)
    assert seen == sorted(seen)


# ----------------------------------------------------- new arrival processes


def test_mmpp_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        MmppArrival(rates_jps=(100.0,), dwell_ms=(10.0,), rng=rng)  # >= 2 phases
    with pytest.raises(ValueError):
        MmppArrival(rates_jps=(100.0, 50.0), dwell_ms=(10.0,), rng=rng)  # mismatch
    with pytest.raises(ValueError):
        MmppArrival(rates_jps=(0.0, 0.0), dwell_ms=(10.0, 10.0), rng=rng)  # all off
    with pytest.raises(ValueError):
        MmppArrival(rates_jps=(100.0, 50.0), dwell_ms=(10.0, 0.0), rng=rng)


def test_mmpp_mean_rate_matches_the_dwell_weighted_phases():
    """Long-run MMPP rate ~ sum(rate_i * dwell_i) / sum(dwell_i)."""
    rng = np.random.default_rng(7)
    arrival = MmppArrival(rates_jps=(50.0, 300.0), dwell_ms=(400.0, 100.0), rng=rng)
    times = [arrival.next_arrival().time for _ in range(4000)]
    measured = 1000.0 * len(times) / times[-1]
    expected = (50.0 * 400.0 + 300.0 * 100.0) / 500.0  # = 100 jps
    assert 0.85 * expected <= measured <= 1.15 * expected


def test_mmpp_off_phase_emits_nothing():
    """A zero-rate phase is a pure gap: all arrivals fall in the on phase."""
    rng = np.random.default_rng(3)
    arrival = MmppArrival(rates_jps=(0.0, 500.0), dwell_ms=(50.0, 50.0), rng=rng)
    events = [arrival.next_arrival() for _ in range(200)]
    assert all(
        later.time >= earlier.time for earlier, later in zip(events, events[1:])
    )


def test_trace_replays_exact_times_and_exhausts():
    arrival = TraceArrival([0.0, 5.0, 5.0, 12.5], offset_ms=2.0)
    events = [arrival.next_arrival() for _ in range(6)]
    assert [event.time for event in events[:4]] == [2.0, 7.0, 7.0, 14.5]
    assert math.isinf(events[4].time) and math.isinf(events[5].time)
    assert [event.index for event in events] == [0, 1, 2, 3, 4, 5]


def test_trace_drive_stops_at_exhaustion():
    sim = Simulator()
    arrival = TraceArrival([1.0, 2.0, 3.0])
    seen = []
    count = arrival.drive(sim, horizon=100.0, callback=lambda event: seen.append(event.time))
    sim.run_until(100.0)
    assert count == 3 and seen == [1.0, 2.0, 3.0]


def test_diurnal_modulator_cumulative_inverse_round_trip():
    for profile in (
        DiurnalModulator(period_ms=500.0, amplitude=0.8),
        DiurnalModulator(period_ms=300.0, shape="piecewise", levels=(0.2, 1.0, 2.8)),
        DiurnalModulator(period_ms=300.0, shape="piecewise", levels=(0.0, 2.0)),
    ):
        for time in (0.0, 13.7, 299.9, 300.0, 1234.5):
            target = profile.cumulative(time)
            recovered = profile.inverse_cumulative(target)
            assert profile.cumulative(recovered) == pytest.approx(target, abs=1e-6)


def test_diurnal_preserves_mean_rate():
    """Time rescaling keeps the long-run rate at the nominal value."""
    spec = POISSON_WORKLOAD.with_diurnal(period_ms=200.0, amplitude=0.9)
    arrival = spec.arrival_for_task(period_ms=10.0, rng=np.random.default_rng(11))
    times = [event.time for event in arrival.events(20000.0)]
    measured = 1000.0 * len(times) / times[-1]
    assert 85.0 <= measured <= 115.0  # nominal 100 jps


# ----------------------------------------------- property-style invariants


def _arrival_for(workload: WorkloadSpec, seed: int):
    stream = ReleaseStream(workload, RngFactory(seed))
    return stream.arrival_for(task_id=0, period_ms=8.0, phase_ms=1.0)


INVARIANT_WORKLOADS = {
    "periodic": PERIODIC_WORKLOAD,
    "periodic+jitter": WorkloadSpec(jitter_ms=2.0),
    "poisson": POISSON_WORKLOAD,
    "poisson+jitter": WorkloadSpec(arrival="poisson", jitter_ms=2.0),
    "mmpp": MMPP_WORKLOAD,
    "mmpp+jitter": MMPP_WORKLOAD.with_jitter(1.0),
    "diurnal-sin": DIURNAL_WORKLOAD,
    "diurnal-piecewise": POISSON_WORKLOAD.with_diurnal(
        period_ms=250.0, shape="piecewise", levels=(0.5, 2.0, 0.5)
    ),
    "diurnal-periodic": PERIODIC_WORKLOAD.with_diurnal(period_ms=250.0, amplitude=0.7),
    "trace": WorkloadSpec.trace([1.5 * index for index in range(700)]),
}


@pytest.mark.parametrize("label", sorted(INVARIANT_WORKLOADS))
def test_every_kind_yields_ordered_indices_and_nondecreasing_times(label):
    events = list(_arrival_for(INVARIANT_WORKLOADS[label], seed=9).events(1000.0))
    assert events, label
    assert [event.index for event in events] == list(range(len(events)))
    assert all(
        later.time >= earlier.time for earlier, later in zip(events, events[1:])
    )
    assert all(event.time <= 1000.0 for event in events)


@pytest.mark.parametrize("label", sorted(INVARIANT_WORKLOADS))
def test_every_kind_is_bit_identical_for_a_fixed_seed(label):
    workload = INVARIANT_WORKLOADS[label]
    first = [
        (event.index, event.time) for event in _arrival_for(workload, seed=4).events(1000.0)
    ]
    second = [
        (event.index, event.time) for event in _arrival_for(workload, seed=4).events(1000.0)
    ]
    assert first == second


def test_modulated_processes_preserve_base_fingerprint_compatibility():
    """Modulators only ever *add* keys: stripped of its modulator keys, a
    modulated spec's fingerprint is exactly its base's fingerprint, and the
    flat kinds keep the flat two-key shape."""
    for base in (PERIODIC_WORKLOAD, POISSON_WORKLOAD):
        base_fingerprint = base.fingerprint()
        assert set(base_fingerprint) == {"arrival", "jitter_ms"}
        modulated = base.with_diurnal(period_ms=400.0).with_jitter(1.0)
        fingerprint = modulated.fingerprint()
        assert fingerprint["arrival"] == base_fingerprint["arrival"]
        stripped = {
            key: value for key, value in fingerprint.items() if key != "diurnal"
        }
        stripped["jitter_ms"] = 0.0
        assert stripped == base_fingerprint
    mmpp = MMPP_WORKLOAD
    modulated = mmpp.with_diurnal(period_ms=400.0)
    assert {
        key: value for key, value in modulated.fingerprint().items() if key != "diurnal"
    } == mmpp.fingerprint()


def test_every_workload_spec_is_hashable():
    """Specs promise value semantics: every composed shape must hash (they
    live in engine dicts/sets and deduplicate value-identical requests)."""
    for workload in INVARIANT_WORKLOADS.values():
        assert hash(workload) == hash(
            WorkloadSpec.from_dict(workload.to_dict())
        )


def test_arrival_kinds_vocabulary_is_closed():
    assert ARRIVAL_KINDS == ("periodic", "poisson", "saturated", "mmpp", "trace")
    for kind in ("periodic", "poisson", "mmpp", "trace"):
        spec = (
            WorkloadSpec.trace([1.0]) if kind == "trace" else WorkloadSpec(arrival=kind)
        )
        assert spec.arrival == kind


# ------------------------------------------------------------- ReleaseStream


def test_release_stream_reproduces_the_legacy_rng_discipline():
    """Per-task poisson streams and the shared jitter stream match what the
    backends historically derived by hand from the same RngFactory."""
    factory = RngFactory(21)
    stream = ReleaseStream(POISSON_WORKLOAD, factory)
    events = [
        (event.index, event.time)
        for event in stream.arrival_for(task_id=3, period_ms=10.0).events(200.0)
    ]
    legacy_rng = RngFactory(21).stream("poisson-arrivals[3]")
    legacy = POISSON_WORKLOAD.arrival_for_task(period_ms=10.0, rng=legacy_rng)
    assert events == [(event.index, event.time) for event in legacy.events(200.0)]

    jitter_spec = WorkloadSpec(jitter_ms=2.0)
    stream = ReleaseStream(jitter_spec, RngFactory(21))
    jittered = [
        event.time for event in stream.arrival_for(task_id=0, period_ms=10.0).events(100.0)
    ]
    legacy = jitter_spec.arrival_for_task(
        period_ms=10.0, rng=RngFactory(21).stream("release-jitter")
    )
    assert jittered == [event.time for event in legacy.events(100.0)]


def test_release_stream_drive_taskset_counts_and_orders_releases():
    class _Spec:
        def __init__(self, task_id, period_ms, phase_ms=0.0):
            self.task_id = task_id
            self.period_ms = period_ms
            self.phase_ms = phase_ms

    sim = Simulator()
    stream = ReleaseStream(PERIODIC_WORKLOAD, RngFactory(0))
    seen = []
    released = stream.drive_taskset(
        sim,
        40.0,
        [_Spec(0, 10.0), _Spec(1, 20.0, phase_ms=5.0)],
        lambda task, event: seen.append((task.task_id, event.time)),
    )
    sim.run_until(40.0)
    assert released == len(seen) == 5 + 2
    assert [time for _, time in seen] == sorted(time for _, time in seen)


def test_release_stream_aggregate_mode_matches_the_legacy_batching_stream():
    sim_a, sim_b = Simulator(), Simulator()
    times_new, times_old = [], []
    stream = ReleaseStream(POISSON_WORKLOAD, RngFactory(8))
    count_new = stream.drive_aggregate(
        sim_a, 300.0, 100.0, lambda event: times_new.append(event.time)
    )
    legacy_rng = RngFactory(8).stream("batching-arrivals")
    legacy = POISSON_WORKLOAD.arrival_for_task(period_ms=10.0, rng=legacy_rng)
    count_old = legacy.drive(sim_b, 300.0, lambda event: times_old.append(event.time))
    sim_a.run_until(300.0)
    sim_b.run_until(300.0)
    assert count_new == count_old and times_new == times_old


def test_release_stream_accepts_a_bare_generator_for_legacy_callers():
    stream = ReleaseStream(POISSON_WORKLOAD, np.random.default_rng(5))
    events = list(stream.arrival_for(task_id=0, period_ms=10.0).events(100.0))
    legacy = POISSON_WORKLOAD.arrival_for_task(
        period_ms=10.0, rng=np.random.default_rng(5)
    )
    assert [event.time for event in events] == [
        event.time for event in legacy.events(100.0)
    ]


def test_release_stream_without_rng_rejects_randomized_workloads():
    stream = ReleaseStream(POISSON_WORKLOAD, None)
    with pytest.raises(ValueError):
        stream.arrival_for(task_id=0, period_ms=10.0)
