"""Tests for the periodic and Poisson arrival processes."""

import numpy as np
import pytest

from repro.sim.simulator import Simulator
from repro.sim.workload import PeriodicArrival, PoissonArrival


def test_periodic_nominal_release_times():
    arrival = PeriodicArrival(period=10.0, phase=3.0)
    assert arrival.nominal_release(0) == 3.0
    assert arrival.nominal_release(4) == 43.0


def test_periodic_next_arrival_increments_index():
    arrival = PeriodicArrival(period=5.0)
    events = [arrival.next_arrival() for _ in range(3)]
    assert [event.index for event in events] == [0, 1, 2]
    assert [event.time for event in events] == [0.0, 5.0, 10.0]


def test_periodic_rejects_bad_period_and_jitter():
    with pytest.raises(ValueError):
        PeriodicArrival(period=0.0)
    with pytest.raises(ValueError):
        PeriodicArrival(period=5.0, jitter=5.0)
    with pytest.raises(ValueError):
        PeriodicArrival(period=5.0, jitter=-1.0)


def test_periodic_jitter_stays_below_one_period():
    rng = np.random.default_rng(0)
    arrival = PeriodicArrival(period=10.0, jitter=2.0, rng=rng)
    for index in range(50):
        event = arrival.next_arrival()
        assert arrival.nominal_release(index) <= event.time < arrival.nominal_release(index) + 2.0


def test_periodic_drive_schedules_until_horizon():
    sim = Simulator()
    arrival = PeriodicArrival(period=10.0)
    seen = []
    count = arrival.drive(sim, horizon=35.0, callback=lambda event: seen.append(event.time))
    sim.run_until(35.0)
    assert count == 4  # releases at 0, 10, 20, 30
    assert seen == [0.0, 10.0, 20.0, 30.0]


def test_poisson_mean_rate_is_roughly_requested():
    rng = np.random.default_rng(1)
    arrival = PoissonArrival(rate_jps=100.0, rng=rng)
    times = [arrival.next_arrival().time for _ in range(2000)]
    measured_rate = 1000.0 * len(times) / times[-1]
    assert 85.0 <= measured_rate <= 115.0


def test_poisson_rejects_nonpositive_rate():
    with pytest.raises(ValueError):
        PoissonArrival(rate_jps=0.0, rng=np.random.default_rng(0))


def test_poisson_drive_counts_match_callbacks():
    sim = Simulator()
    rng = np.random.default_rng(2)
    arrival = PoissonArrival(rate_jps=50.0, rng=rng)
    seen = []
    count = arrival.drive(sim, horizon=1000.0, callback=lambda event: seen.append(event.index))
    sim.run_until(1000.0)
    assert count == len(seen)
    assert seen == sorted(seen)
