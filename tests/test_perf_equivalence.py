"""Equivalence and infrastructure tests for the simulation fast paths.

The GPU engine's incremental replanning, the scheduler's incremental MRET
backlog and the simulator's heap compaction are pure optimizations: for a
fixed seed they must not change a single trace record.  These tests pin that
guarantee by running the same scenario with the fast paths enabled (default)
and disabled (reference behavior) and comparing the complete
``StageTraceRecord`` / ``JobTraceRecord`` streams and the final
``ScenarioMetrics``.

Scope of the guarantee: the engine and simulator fast paths replicate the
reference floating-point operations exactly (bitwise).  The incremental MRET
backlog sums the same terms in a different order, so its prediction can
differ from the reference scan in the last ulp (see ``_ContextBacklog``); a
trace divergence would additionally require that rounding error to flip an
admission comparison that carries an explicit 1e-9 slack.  The trace-identity
test below pins representative scenarios end to end.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterConfig, ClusterServer
from repro.dnn.zoo import build_model
from repro.experiments.parallel import ScenarioRequest, run_scenarios_parallel
from repro.experiments.runner import run_daris_scenario
from repro.experiments.scenarios import named_fault
from repro.gpu.engine import GpuEngine
from repro.rt.taskset import make_taskset, table2_taskset
from repro.scheduler.config import DarisConfig
from repro.scheduler.daris import DarisScheduler
from repro.sim.faults import FaultSpec
from repro.sim.rng import RngFactory
from repro.sim.simulator import Simulator
from repro.sim.workload import (
    POISSON_WORKLOAD,
    DiurnalModulator,
    ReleaseStream,
    WorkloadSpec,
)


@pytest.fixture
def reference_mode():
    """Disable every fast path, restoring the unoptimized reference behavior."""
    GpuEngine.fast_path_enabled = False
    DarisScheduler.incremental_backlog_enabled = False
    yield
    GpuEngine.fast_path_enabled = True
    DarisScheduler.incremental_backlog_enabled = True


def _run_traced(seed: int = 1, horizon: float = 1000.0):
    return run_daris_scenario(
        table2_taskset("resnet18"),
        DarisConfig.mps_config(6, 6.0),
        horizon,
        seed=seed,
        with_trace=True,
    )


# --------------------------------------------------------------- equivalence


def test_fast_path_produces_identical_traces(reference_mode):
    """Optimized and reference schedulers emit bit-identical trace streams."""
    reference = _run_traced()

    GpuEngine.fast_path_enabled = True
    DarisScheduler.incremental_backlog_enabled = True
    optimized = _run_traced()

    assert len(optimized.trace.stage_records) == len(reference.trace.stage_records)
    assert optimized.trace.stage_records == reference.trace.stage_records
    assert optimized.trace.job_records == reference.trace.job_records
    assert optimized.metrics == reference.metrics


def test_fast_path_actually_engages():
    """The specialized replan paths fire during a normal scheduling run."""
    # MPS 6x1: every context runs at most one kernel, so replans collapse to
    # the single-pass fast paths and the generic plan never runs.
    simulator = Simulator()
    scheduler = DarisScheduler(
        simulator,
        table2_taskset("resnet18"),
        DarisConfig.mps_config(6, 1.0),
        rng=RngFactory(1),
    )
    scheduler.run(800.0)
    engine = scheduler.platform.engine
    assert engine.fast_path_hits > 0
    assert engine.full_replans == 0

    # MPS+STR 2x2: contexts run several kernels concurrently, exercising the
    # generic incremental plan (cached water-fills + per-context recompute).
    simulator = Simulator()
    scheduler = DarisScheduler(
        simulator,
        table2_taskset("resnet18"),
        DarisConfig.mps_str_config(2, 2, 2.0),
        rng=RngFactory(1),
    )
    scheduler.run(800.0)
    engine = scheduler.platform.engine
    assert engine.full_replans > 0


def test_incremental_backlog_matches_reference_scan():
    """The O(tasks x stages) backlog equals the O(queue) reference scan."""
    simulator = Simulator()
    scheduler = DarisScheduler(
        simulator,
        table2_taskset("resnet18"),
        DarisConfig.mps_config(6, 6.0),
        rng=RngFactory(3),
    )
    scheduler.start(700.0)
    checked = 0
    while True:
        next_time = simulator.peek_next_time()
        if next_time is None or next_time > 700.0:
            break
        simulator.run(max_events=50)
        for context in range(scheduler.config.num_contexts):
            incremental = scheduler._predicted_finish(context)
            reference = scheduler._predicted_finish_reference(context)
            assert incremental == pytest.approx(reference, rel=1e-9, abs=1e-9)
            checked += 1
    assert checked > 0


# ----------------------------------------------------------- toggle matrix
#
# Every optimization tier introduced by the vectorized-substrate work hides
# behind a class-level toggle.  The matrix below runs one adversarial
# scenario — stochastic arrivals with jitter and a diurnal profile, under the
# ``storm`` fault profile — once per toggle configuration and requires the
# complete trace streams to be bit-identical.  The scenario deliberately
# exercises every toggled code path at once: batched release draws, the
# Newton diurnal inversion, the engine fast path and chunked noise draws.

_SUBSTRATE_TOGGLES = (
    (GpuEngine, "fast_path_enabled"),
    (GpuEngine, "vectorized_enabled"),
    (GpuEngine, "batched_noise_enabled"),
    (ReleaseStream, "batched_draws_enabled"),
    (DiurnalModulator, "newton_enabled"),
)


@pytest.fixture
def toggle_guard():
    """Snapshot and restore every substrate toggle around a test."""
    saved = [(owner, name, getattr(owner, name)) for owner, name in _SUBSTRATE_TOGGLES]
    yield
    for owner, name, value in saved:
        setattr(owner, name, value)


def _set_substrate_toggles(enabled: bool) -> None:
    for owner, name in _SUBSTRATE_TOGGLES:
        setattr(owner, name, enabled)


def _run_storm_traced(config=None, workload=None, seed: int = 7):
    return run_daris_scenario(
        table2_taskset("resnet18"),
        config if config is not None else DarisConfig.mps_config(6, 6.0),
        1000.0,
        seed=seed,
        with_trace=True,
        workload=workload
        if workload is not None
        else WorkloadSpec("poisson", jitter_ms=0.4).with_diurnal(period_ms=600.0, amplitude=0.6),
        faults=named_fault("storm"),
    )


def _assert_same_run(left, right):
    assert left.trace.stage_records == right.trace.stage_records
    assert left.trace.job_records == right.trace.job_records
    assert left.metrics == right.metrics


def test_toggle_matrix_all_off_matches_all_on_under_storm(toggle_guard):
    """Reference (all toggles off) and optimized (all on) traces are identical
    on a fault-injected, jittered, diurnal poisson scenario."""
    _set_substrate_toggles(True)
    optimized = _run_storm_traced()
    _set_substrate_toggles(False)
    reference = _run_storm_traced()
    assert len(optimized.trace.stage_records) > 0
    _assert_same_run(optimized, reference)


@pytest.mark.parametrize("toggle_index", range(len(_SUBSTRATE_TOGGLES)))
def test_toggle_matrix_each_toggle_alone_is_neutral(toggle_guard, toggle_index):
    """Disabling any single tier while the rest stay on changes nothing —
    localizes a divergence to one tier instead of the whole matrix."""
    _set_substrate_toggles(True)
    optimized = _run_storm_traced()
    owner, name = _SUBSTRATE_TOGGLES[toggle_index]
    setattr(owner, name, False)
    single_off = _run_storm_traced()
    _assert_same_run(optimized, single_off)


def test_vector_tier_wide_config_trace_identical(toggle_guard):
    """A 32-stream config pushes the running set past the vector-tier
    threshold; the contiguous-array tier and the array water fill must leave
    the trace untouched."""
    config = DarisConfig.str_config(32)
    workload = WorkloadSpec("poisson")
    _set_substrate_toggles(True)
    vectorized = _run_storm_traced(config=config, workload=workload)
    GpuEngine.vectorized_enabled = False
    scalar = _run_storm_traced(config=config, workload=workload)
    _assert_same_run(vectorized, scalar)


def test_vector_tier_actually_engages(toggle_guard):
    """The wide-config scenario genuinely enters the numpy tier (and the
    fault-free narrow config never does)."""
    _set_substrate_toggles(True)
    simulator = Simulator()
    scheduler = DarisScheduler(
        simulator,
        table2_taskset("resnet18"),
        DarisConfig.str_config(32),
        rng=RngFactory(1),
        workload=WorkloadSpec("poisson"),
    )
    scheduler.run(800.0)
    assert scheduler.platform.engine.vector_engagements > 0

    simulator = Simulator()
    scheduler = DarisScheduler(
        simulator,
        table2_taskset("resnet18"),
        DarisConfig.mps_config(6, 6.0),
        rng=RngFactory(1),
    )
    scheduler.run(800.0)
    assert scheduler.platform.engine.vector_engagements == 0


# ---------------------------------------------------------- heap compaction


def test_simulator_compacts_cancelled_events():
    """Cancelled events are physically removed once they dominate the heap."""
    simulator = Simulator()
    handles = [simulator.schedule_at(float(i + 1), lambda _sim: None) for i in range(300)]
    assert simulator.pending_events == 300
    assert simulator.live_events == 300

    for handle in handles[:299]:
        handle.cancel()

    assert simulator.live_events == 1
    assert simulator.compactions >= 1
    # Compaction physically dropped the cancelled entries.
    assert simulator.pending_events < 300


def test_compaction_preserves_firing_order_and_counts():
    """A compacting run fires the same events, in the same order, as a naive one."""
    fired = []
    simulator = Simulator()
    keep = []
    for i in range(200):
        handle = simulator.schedule_at(float(i), lambda _sim, i=i: fired.append(i))
        if i % 3 == 0:
            keep.append(i)
        else:
            handle.cancel()
    simulator.run_until(500.0)
    assert fired == keep
    assert simulator.live_events == 0


def test_engine_replanning_does_not_bloat_heap():
    """Replan churn (cancel + reschedule per event) stays bounded via compaction."""
    result = _run_traced(seed=2, horizon=600.0)
    assert result.metrics.total_jps > 0


def test_live_events_counter_tracks_cancellations():
    simulator = Simulator()
    a = simulator.schedule_at(1.0, lambda _sim: None)
    simulator.schedule_at(2.0, lambda _sim: None)
    assert simulator.live_events == 2
    a.cancel()
    a.cancel()  # idempotent
    assert simulator.live_events == 1
    simulator.run_until(3.0)
    assert simulator.live_events == 0


# ------------------------------------------------------ windowed utilization


def test_average_utilization_windowed_measurement():
    """The windowed average uses the integral captured at the window start."""
    from repro.gpu.kernel import KernelSpec
    from repro.gpu.spec import RTX_2080_TI

    simulator = Simulator()
    engine = GpuEngine(simulator, RTX_2080_TI)
    context = engine.create_context(sm_quota=float(RTX_2080_TI.num_sms))
    stream = engine.create_stream(context)

    # Idle until t=100, then one full-width kernel for ~100 ms.
    simulator.run_until(100.0)
    mark = engine.utilization_integral()
    assert mark == pytest.approx(0.0)
    work = 100.0 * RTX_2080_TI.num_sms
    engine.launch(stream, KernelSpec("k", work=work, parallelism=float(RTX_2080_TI.num_sms)))
    simulator.run_until(250.0)

    windowed = engine.average_utilization(since=100.0, integral_at_since=mark)
    overall = engine.average_utilization()
    # The kernel ran at full width for ~100 of the 150 ms window...
    assert windowed == pytest.approx(100.0 / 150.0, rel=0.05)
    # ...but only ~100 of the 250 ms total horizon: the old truncated-horizon
    # formula would have reported the windowed value as ~1.67x too high.
    assert overall == pytest.approx(100.0 / 250.0, rel=0.05)
    assert windowed < 1.0


# ------------------------------------------------------------ parallel runner


def test_parallel_runner_matches_serial_results():
    """Fan-out over processes returns ordered, seed-stable, identical results."""
    taskset = table2_taskset("resnet18")
    requests = [
        ScenarioRequest(taskset, DarisConfig.mps_config(2, 2.0), 600.0, seed=5, label="a"),
        ScenarioRequest(taskset, DarisConfig.mps_config(6, 6.0), 600.0, seed=5, label="b"),
    ]
    serial = run_scenarios_parallel(requests, processes=1)
    parallel = run_scenarios_parallel(requests, processes=2)
    assert [r.label for r in parallel] == ["a", "b"]
    for left, right in zip(serial, parallel):
        assert left.metrics == right.metrics


def test_parallel_runner_empty_and_single():
    assert run_scenarios_parallel([]) == []
    taskset = table2_taskset("resnet18")
    request = ScenarioRequest(taskset, DarisConfig.mps_config(2, 2.0), 600.0, seed=9)
    (result,) = run_scenarios_parallel([request], processes=8)
    assert result.total_jps > 0


def test_parallel_runner_unordered_mode_returns_request_order():
    """imap_unordered streaming (the sweep driver's mode) may deliver
    completions in any order, but the returned list and the callback indices
    must still line up with the request list."""
    taskset = table2_taskset("resnet18")
    requests = [
        ScenarioRequest(taskset, DarisConfig.mps_config(2, 2.0), 600.0, seed=5, label="a"),
        ScenarioRequest(taskset, DarisConfig.mps_config(6, 6.0), 600.0, seed=5, label="b"),
        ScenarioRequest(taskset, DarisConfig.str_config(2), 600.0, seed=5, label="c"),
    ]
    seen = {}
    results = run_scenarios_parallel(
        requests, processes=2, on_result=lambda i, r: seen.__setitem__(i, r.label),
        ordered=False,
    )
    assert [r.label for r in results] == ["a", "b", "c"]
    assert seen == {0: "a", 1: "b", 2: "c"}
    ordered = run_scenarios_parallel(requests, processes=1)
    for left, right in zip(ordered, results):
        assert left.metrics == right.metrics


# ------------------------------------------------- cluster indexed dispatch
#
# The O(1) indexed-dispatch tier (heap/bisect routing index, incremental
# migration trigger, memoized task profiles) must answer every routing and
# migration question exactly as the PR 9 reference scan would — same floats,
# same tie-breaks, same epsilon.  These tests pin the full router x placement
# x targeted-fault x migration matrix bit-identical between the tiers, per
# seed, by comparing complete ``ScenarioMetrics`` (deep dataclass equality
# including the per-request response-time lists and the per-GPU breakdown).


@pytest.fixture
def cluster_toggle_guard():
    """Snapshot and restore the cluster dispatch toggle around a test."""
    saved = ClusterServer.indexed_dispatch_enabled
    yield
    ClusterServer.indexed_dispatch_enabled = saved


def _serve_cluster_traced(cfg_kwargs, faults=None, seed=3):
    model = build_model("resnet18")
    taskset = make_taskset(
        [model], num_high=3, num_low=5, task_jps=40.0, name="cluster-eq"
    )
    server = ClusterServer(ClusterConfig(**cfg_kwargs))
    metrics = server.serve(
        taskset,
        1500.0,
        workload=POISSON_WORKLOAD,
        rng=RngFactory(seed),
        faults=faults,
    )
    return metrics, server.indexed_engagements


_CLUSTER_MATRIX = (
    ("least_loaded", dict(num_gpus=4, router="least_loaded"), None),
    ("round_robin", dict(num_gpus=4, router="round_robin"), None),
    ("deadline_aware", dict(num_gpus=4, router="deadline_aware"), None),
    (
        "partitioned",
        dict(num_gpus=4, router="least_loaded", placement="partitioned"),
        None,
    ),
    (
        "partitioned-migration",
        dict(
            num_gpus=4,
            router="deadline_aware",
            placement="partitioned",
            migration_backlog=2,
            migration_window_ms=40.0,
        ),
        None,
    ),
    (
        "targeted-crash",
        dict(num_gpus=4, router="least_loaded"),
        FaultSpec.crashes(mtbf_ms=100.0, recovery_ms=60.0).targeting(1),
    ),
    (
        "targeted-throttle",
        dict(num_gpus=4, router="deadline_aware"),
        FaultSpec.throttle(period_ms=120.0, duration_ms=50.0, factor=0.5).targeting(0),
    ),
)


@pytest.mark.parametrize(
    ("cfg_kwargs", "faults"),
    [(kwargs, faults) for _, kwargs, faults in _CLUSTER_MATRIX],
    ids=[label for label, _, _ in _CLUSTER_MATRIX],
)
def test_cluster_indexed_dispatch_trace_identical(
    cluster_toggle_guard, cfg_kwargs, faults
):
    """Indexed tier on vs off: merged metrics are bit-identical per seed."""
    for seed in (3, 11):
        ClusterServer.indexed_dispatch_enabled = True
        fast, engaged = _serve_cluster_traced(cfg_kwargs, faults, seed=seed)
        ClusterServer.indexed_dispatch_enabled = False
        reference, ref_engaged = _serve_cluster_traced(cfg_kwargs, faults, seed=seed)
        assert fast == reference
        assert engaged > 0
        assert ref_engaged == 0


def test_cluster_indexed_dispatch_actually_engages(cluster_toggle_guard):
    """Fault-free runs resolve every dispatch through the index; targeted
    faults drop to the reference view path only inside degraded windows."""
    ClusterServer.indexed_dispatch_enabled = True
    metrics, engaged = _serve_cluster_traced(dict(num_gpus=4, router="least_loaded"))
    dispatches = (
        metrics.high.admitted
        + metrics.high.rejected
        + metrics.low.admitted
        + metrics.low.rejected
    )
    assert engaged > 0
    assert engaged >= dispatches  # every release routed through the index

    faults = FaultSpec.crashes(mtbf_ms=100.0, recovery_ms=60.0).targeting(1)
    _, engaged_faulted = _serve_cluster_traced(
        dict(num_gpus=4, router="least_loaded"), faults
    )
    assert 0 < engaged_faulted < engaged


def test_cluster_on_dispatch_hook_forces_reference_views(cluster_toggle_guard):
    """An observed run builds reference views even with the tier enabled, so
    the hook sees exactly what a reference router saw — and the observed
    choices match the indexed run's telemetry."""
    ClusterServer.indexed_dispatch_enabled = True
    observed = []
    model = build_model("resnet18")
    taskset = make_taskset([model], num_high=2, num_low=2, task_jps=30.0, name="hook")
    server = ClusterServer(ClusterConfig(num_gpus=3, router="least_loaded"))
    metrics = server.serve(
        taskset,
        800.0,
        workload=POISSON_WORKLOAD,
        rng=RngFactory(5),
        on_dispatch=lambda now, name, chosen, views: observed.append((chosen, views)),
    )
    assert server.indexed_engagements == 0  # hook pins the reference path
    assert len(observed) > 0
    for chosen, views in observed:
        eligible = [v for v in views if v.alive] or list(views)
        best = min(eligible, key=lambda v: (v.outstanding_ms, v.index))
        assert chosen == best.index
    routed = sum(t.routed for t in metrics.gpu_breakdown)
    assert routed == len(observed)
