"""Tests for the DARIS configuration space and the 8-level stage priorities."""

import pytest

from repro.rt.task import Priority, Task, TaskSpec
from repro.scheduler.ablations import ABLATIONS
from repro.scheduler.config import DarisConfig, Policy
from repro.scheduler.priorities import NUM_PRIORITY_LEVELS, stage_priority_level, stage_queue_key


def test_policy_constructors_enforce_layouts():
    str_config = DarisConfig.str_config(6)
    assert str_config.policy is Policy.STR
    assert str_config.num_contexts == 1 and str_config.streams_per_context == 6
    mps = DarisConfig.mps_config(6, 6.0)
    assert mps.policy is Policy.MPS and mps.streams_per_context == 1
    hybrid = DarisConfig.mps_str_config(3, 2, 3.0)
    assert hybrid.policy is Policy.MPS_STR and hybrid.max_parallel_jobs == 6


def test_config_validation():
    with pytest.raises(ValueError):
        DarisConfig(policy=Policy.STR, num_contexts=2, streams_per_context=2, oversubscription=1.0)
    with pytest.raises(ValueError):
        DarisConfig(policy=Policy.MPS, num_contexts=2, streams_per_context=2, oversubscription=1.0)
    with pytest.raises(ValueError):
        DarisConfig(policy=Policy.MPS_STR, num_contexts=1, streams_per_context=2, oversubscription=1.0)
    with pytest.raises(ValueError):
        DarisConfig.mps_config(4, 8.0)
    with pytest.raises(ValueError):
        DarisConfig.mps_config(4, 2.0, window_size=0)
    with pytest.raises(ValueError):
        DarisConfig.mps_config(4, 2.0, afet_mode="magic")


def test_config_labels():
    assert DarisConfig.mps_config(6, 6.0).label() == "MPS 6x1 OS6"
    assert DarisConfig.mps_str_config(3, 3, 1.5).label() == "MPS+STR 3x3 OS1.5"
    assert DarisConfig.str_config(8).label() == "STR 1x8 OS1"


def test_with_overrides_returns_modified_copy():
    config = DarisConfig.mps_config(6, 6.0)
    modified = config.with_overrides(staging=False, window_size=9)
    assert not modified.staging and modified.window_size == 9
    assert config.staging and config.window_size == 5


def test_ablation_factories_flip_exactly_one_feature():
    base = DarisConfig.mps_config(6, 6.0)
    assert not ABLATIONS["No Staging"](base).staging
    assert not ABLATIONS["No Last"](base).prioritize_last_stage
    assert not ABLATIONS["No Prior"](base).boost_missed_predecessor
    assert not ABLATIONS["No Fixed"](base).fixed_priority_levels
    assert ABLATIONS["DARIS"](base) == base


def _stage(resnet18, priority, stage_index, predecessor_missed=False, period=33.33):
    task = Task(TaskSpec(task_id=0, model=resnet18, period_ms=period, priority=priority))
    task.timing.set_afet([1.0] * task.num_stages)
    job = task.release_job(0.0)
    stage = job.stages[stage_index]
    stage.predecessor_missed = predecessor_missed
    stage.virtual_deadline = 10.0
    return stage


def test_priority_levels_follow_the_paper_hierarchy(resnet18):
    config = DarisConfig.mps_config(6, 6.0)
    hp_last_missed = _stage(resnet18, Priority.HIGH, 3, predecessor_missed=True)
    hp_last = _stage(resnet18, Priority.HIGH, 3)
    hp_missed = _stage(resnet18, Priority.HIGH, 1, predecessor_missed=True)
    hp_plain = _stage(resnet18, Priority.HIGH, 1)
    lp_last = _stage(resnet18, Priority.LOW, 3)
    lp_plain = _stage(resnet18, Priority.LOW, 1)
    levels = [
        stage_priority_level(stage, config)
        for stage in (hp_last_missed, hp_last, hp_missed, hp_plain, lp_last, lp_plain)
    ]
    assert levels == sorted(levels)
    assert levels[0] == 0
    # Every HP stage outranks every LP stage.
    assert max(levels[:4]) < min(levels[4:])
    assert max(levels) < NUM_PRIORITY_LEVELS


def test_priority_ablations_change_levels(resnet18):
    base = DarisConfig.mps_config(6, 6.0)
    lp_last = _stage(resnet18, Priority.LOW, 3)
    assert stage_priority_level(lp_last, base) == 5
    no_last = base.with_overrides(prioritize_last_stage=False)
    assert stage_priority_level(lp_last, no_last) == 7
    hp_missed = _stage(resnet18, Priority.HIGH, 2, predecessor_missed=True)
    no_prior = base.with_overrides(boost_missed_predecessor=False)
    assert stage_priority_level(hp_missed, no_prior) == 3
    no_fixed = base.with_overrides(fixed_priority_levels=False)
    assert stage_priority_level(hp_missed, no_fixed) == 0
    assert stage_priority_level(lp_last, no_fixed) == 0


def test_queue_key_orders_by_level_then_edf_then_fifo(resnet18):
    config = DarisConfig.mps_config(6, 6.0)
    hp = _stage(resnet18, Priority.HIGH, 1)
    lp_early_deadline = _stage(resnet18, Priority.LOW, 1)
    lp_early_deadline.virtual_deadline = 1.0
    lp_late_deadline = _stage(resnet18, Priority.LOW, 1)
    lp_late_deadline.virtual_deadline = 5.0
    keys = [
        stage_queue_key(lp_late_deadline, config, 0),
        stage_queue_key(lp_early_deadline, config, 1),
        stage_queue_key(hp, config, 2),
    ]
    ordered = sorted(keys)
    assert ordered[0] == stage_queue_key(hp, config, 2)
    assert ordered[1] == stage_queue_key(lp_early_deadline, config, 1)
